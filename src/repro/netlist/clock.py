"""Clock-specific netlist views: sinks, source, and the clock net."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Point, bounding_box


@dataclass(frozen=True, slots=True)
class ClockSink:
    """A clock sink: the clock pin of a flip-flop (or a macro clock pin).

    Attributes:
        name: name of the sink instance (the flip-flop).
        location: absolute location of the clock pin in micrometres.
        capacitance: clock pin input capacitance in fF.
    """

    name: str
    location: Point
    capacitance: float = 1.0

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError(f"sink {self.name}: capacitance must be positive")


@dataclass(frozen=True, slots=True)
class ClockSource:
    """The clock root: a top-level port or the output of a clock generator."""

    name: str
    location: Point
    drive_resistance: float = 0.1  # kOhm, source driver strength
    output_slew: float = 10.0  # ps, slew at the root


@dataclass
class ClockNet:
    """The clock net to be synthesised: one source, many sinks."""

    name: str
    source: ClockSource
    sinks: list[ClockSink] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [s.name for s in self.sinks]
        if len(names) != len(set(names)):
            raise ValueError(f"clock net {self.name}: duplicate sink names")

    @property
    def sink_count(self) -> int:
        return len(self.sinks)

    @property
    def total_sink_capacitance(self) -> float:
        """Sum of all sink pin capacitances (fF)."""
        return sum(s.capacitance for s in self.sinks)

    def sink_locations(self) -> list[Point]:
        return [s.location for s in self.sinks]

    def bounding_box(self):
        """Bounding box of all sinks and the source."""
        return bounding_box([self.source.location] + self.sink_locations())

    def sink_by_name(self, name: str) -> ClockSink:
        for sink in self.sinks:
            if sink.name == name:
                return sink
        raise KeyError(f"clock net {self.name}: no sink named {name!r}")

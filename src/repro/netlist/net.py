"""Logical nets connecting pins."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import bounding_box
from repro.netlist.pin import Pin, PinDirection


@dataclass
class Net:
    """A signal net: one driver pin and a set of load pins.

    CTS only cares about the clock net, but the design database keeps all
    nets so that utilisation statistics and DEF round-tripping work.
    """

    name: str
    driver: Pin | None = None
    loads: list[Pin] = field(default_factory=list)
    is_clock: bool = False

    def add_load(self, pin: Pin) -> None:
        """Attach a load pin to the net."""
        if pin.direction is PinDirection.OUTPUT:
            raise ValueError(f"net {self.name}: load pin {pin.full_name} is an output")
        self.loads.append(pin)

    def set_driver(self, pin: Pin) -> None:
        """Set the driver pin of the net."""
        if pin.direction is PinDirection.INPUT:
            raise ValueError(f"net {self.name}: driver pin {pin.full_name} is an input")
        if self.driver is not None:
            raise ValueError(f"net {self.name}: already has driver {self.driver.full_name}")
        self.driver = pin

    @property
    def fanout(self) -> int:
        """Number of load pins."""
        return len(self.loads)

    @property
    def pins(self) -> list[Pin]:
        """All pins on the net (driver first when present)."""
        result = []
        if self.driver is not None:
            result.append(self.driver)
        result.extend(self.loads)
        return result

    def hpwl(self) -> float:
        """Half-perimeter wirelength estimate of the net (um)."""
        pins = self.pins
        if len(pins) < 2:
            return 0.0
        return bounding_box(p.location for p in pins).half_perimeter

    def total_load_capacitance(self) -> float:
        """Sum of all load pin capacitances (fF)."""
        return sum(p.capacitance for p in self.loads)

"""Pins: named connection points on cells or the die boundary."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geometry import Point


class PinDirection(enum.Enum):
    """Signal direction of a pin as seen from its owning cell."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"


@dataclass(frozen=True, slots=True)
class Pin:
    """A pin instance with an absolute location.

    Attributes:
        name: pin name, unique within its owner (e.g. ``"CLK"``).
        owner: name of the owning cell, or ``"PIN"`` for a top-level port.
        direction: signal direction.
        location: absolute placement location in micrometres.
        capacitance: input pin capacitance in fF (0 for outputs).
    """

    name: str
    owner: str
    direction: PinDirection
    location: Point
    capacitance: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError(f"pin {self.full_name}: capacitance must be non-negative")

    @property
    def full_name(self) -> str:
        """Hierarchical name ``owner/name`` (or just ``name`` for ports)."""
        if self.owner == "PIN":
            return self.name
        return f"{self.owner}/{self.name}"

    @property
    def is_port(self) -> bool:
        """True when this is a top-level port rather than a cell pin."""
        return self.owner == "PIN"

"""The top-level :class:`Design` container (a placed design)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Point, Rect
from repro.netlist.cell import Cell, CellKind
from repro.netlist.clock import ClockNet, ClockSink, ClockSource
from repro.netlist.net import Net


@dataclass
class Design:
    """A placed design: die area, cells, nets, and the clock net.

    This is the structure produced by the DEF reader and by the synthetic
    benchmark generator, and consumed by every CTS flow in the library.
    """

    name: str
    die_area: Rect
    cells: dict[str, Cell] = field(default_factory=dict)
    nets: dict[str, Net] = field(default_factory=dict)
    clock_net: ClockNet | None = None

    # ------------------------------------------------------------------ cells
    def add_cell(self, cell: Cell) -> None:
        """Register a placed cell; the name must be unique and inside the die."""
        if cell.name in self.cells:
            raise ValueError(f"design {self.name}: duplicate cell {cell.name!r}")
        if not self.die_area.contains(cell.location, tol=1e-6):
            raise ValueError(
                f"design {self.name}: cell {cell.name!r} placed outside the die area"
            )
        self.cells[cell.name] = cell

    def add_net(self, net: Net) -> None:
        """Register a logical net."""
        if net.name in self.nets:
            raise ValueError(f"design {self.name}: duplicate net {net.name!r}")
        self.nets[net.name] = net

    def flip_flops(self) -> list[Cell]:
        """Return all flip-flop instances (the clock sinks)."""
        return [c for c in self.cells.values() if c.kind is CellKind.FLIP_FLOP]

    def macros(self) -> list[Cell]:
        """Return all macro instances (placement blockages for CTS cells)."""
        return [c for c in self.cells.values() if c.kind is CellKind.MACRO]

    # ------------------------------------------------------------ clock setup
    def build_clock_net(
        self,
        name: str = "clk",
        source_location: Point | None = None,
        default_sink_capacitance: float = 1.0,
    ) -> ClockNet:
        """Derive the clock net from the placed flip-flops.

        The clock source defaults to the middle of the bottom die edge (the
        usual location of a clock port).  Flip-flops whose
        ``clock_pin_capacitance`` is zero get ``default_sink_capacitance``.
        """
        ffs = self.flip_flops()
        if not ffs:
            raise ValueError(f"design {self.name}: no flip-flops, nothing to synthesise")
        if source_location is None:
            source_location = Point(self.die_area.center.x, self.die_area.ylo)
        sinks = [
            ClockSink(
                name=ff.name,
                location=ff.center,
                capacitance=ff.clock_pin_capacitance or default_sink_capacitance,
            )
            for ff in ffs
        ]
        self.clock_net = ClockNet(
            name=name,
            source=ClockSource(name=f"{name}_root", location=source_location),
            sinks=sinks,
        )
        return self.clock_net

    def require_clock_net(self) -> ClockNet:
        """Return the clock net, building it with defaults if necessary."""
        if self.clock_net is None:
            return self.build_clock_net()
        return self.clock_net

    # -------------------------------------------------------------- statistics
    @property
    def cell_count(self) -> int:
        return len(self.cells)

    @property
    def flip_flop_count(self) -> int:
        return len(self.flip_flops())

    def placement_utilization(self) -> float:
        """Total placed cell area divided by die area."""
        if self.die_area.area == 0:
            return 0.0
        used = sum(c.area for c in self.cells.values())
        return used / self.die_area.area

    def statistics(self) -> dict[str, float | int | str]:
        """Return the Table II style statistics for this design."""
        return {
            "design": self.name,
            "cells": self.cell_count,
            "ffs": self.flip_flop_count,
            "utilization": round(self.placement_utilization(), 3),
            "die_width_um": round(self.die_area.width, 2),
            "die_height_um": round(self.die_area.height, 2),
        }

    # ------------------------------------------------------------------ misc
    def cell(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError as exc:
            raise KeyError(f"design {self.name}: no cell named {name!r}") from exc

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError as exc:
            raise KeyError(f"design {self.name}: no net named {name!r}") from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Design(name={self.name!r}, cells={self.cell_count}, "
            f"ffs={self.flip_flop_count}, die={self.die_area.width:.0f}x"
            f"{self.die_area.height:.0f}um)"
        )

"""Netlist / physical design database.

A *placed design* is the input to clock tree synthesis: standard cells and
macros with legalised locations, a clock net with a source (clock root or
port) and a set of sinks (flip-flop clock pins), and the die area.  This
package models exactly that — it is the in-memory form a placed DEF parses
into and the structure the synthetic benchmark generator produces.
"""

from repro.netlist.pin import Pin, PinDirection
from repro.netlist.cell import Cell, CellKind
from repro.netlist.net import Net
from repro.netlist.clock import ClockSink, ClockSource, ClockNet
from repro.netlist.design import Design

__all__ = [
    "Pin",
    "PinDirection",
    "Cell",
    "CellKind",
    "Net",
    "ClockSink",
    "ClockSource",
    "ClockNet",
    "Design",
]

"""Placed cell instances (standard cells, flip-flops, macros)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry import Point, Rect


class CellKind(enum.Enum):
    """Coarse classification of a cell instance for CTS purposes."""

    COMBINATIONAL = "comb"
    FLIP_FLOP = "ff"
    MACRO = "macro"
    CLOCK_BUFFER = "clock_buffer"
    NTSV = "ntsv"


@dataclass
class Cell:
    """A placed cell instance.

    Attributes:
        name: instance name, unique within the design.
        master: library cell name (e.g. ``"DFFHQNx1_ASAP7_75t_R"``).
        kind: coarse classification used by CTS (flip-flops are clock sinks).
        location: lower-left placement location in micrometres.
        width / height: footprint in micrometres.
        clock_pin_capacitance: input capacitance of the clock pin (fF), only
            meaningful for flip-flops and clock buffers.
        fixed: True for macros and pre-placed cells that CTS must not move.
    """

    name: str
    master: str
    kind: CellKind
    location: Point
    width: float = 0.27
    height: float = 0.27
    clock_pin_capacitance: float = 0.0
    fixed: bool = False
    properties: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"cell {self.name}: non-positive footprint")
        if self.clock_pin_capacitance < 0:
            raise ValueError(f"cell {self.name}: negative clock pin capacitance")

    @property
    def is_sink(self) -> bool:
        """True when the cell is a clock sink (i.e. a flip-flop)."""
        return self.kind is CellKind.FLIP_FLOP

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def bbox(self) -> Rect:
        return Rect(
            self.location.x,
            self.location.y,
            self.location.x + self.width,
            self.location.y + self.height,
        )

    @property
    def center(self) -> Point:
        return self.bbox.center

    def moved_to(self, location: Point) -> "Cell":
        """Return a copy of the cell placed at ``location``."""
        if self.fixed:
            raise ValueError(f"cell {self.name} is fixed and cannot be moved")
        return Cell(
            name=self.name,
            master=self.master,
            kind=self.kind,
            location=location,
            width=self.width,
            height=self.height,
            clock_pin_capacitance=self.clock_pin_capacitance,
            fixed=self.fixed,
            properties=dict(self.properties),
        )

"""Reading and writing the DEF subset needed by clock tree synthesis.

Supported constructs:

* ``VERSION``, ``DESIGN``, ``UNITS DISTANCE MICRONS``, ``DIEAREA``
* ``COMPONENTS`` with ``+ PLACED ( x y ) <orient>`` or ``+ FIXED ...``
* ``END DESIGN``

Everything else (nets, pins, rows, tracks…) is skipped gracefully, which is
enough to ingest an OpenROAD post-place DEF and run CTS on it.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.geometry import Point, Rect
from repro.netlist.cell import Cell, CellKind
from repro.netlist.design import Design

#: Substrings of master names that identify sequential (clock sink) cells.
DEFAULT_FF_MASTER_HINTS: tuple[str, ...] = ("DFF", "SDFF", "DLL", "LATCH", "ICG")

_DIEAREA_RE = re.compile(
    r"DIEAREA\s*\(\s*(-?\d+)\s+(-?\d+)\s*\)\s*\(\s*(-?\d+)\s+(-?\d+)\s*\)"
)
_COMPONENT_RE = re.compile(
    r"-\s+(?P<name>\S+)\s+(?P<master>\S+)"
    r".*?\+\s*(?:PLACED|FIXED)\s*\(\s*(?P<x>-?\d+)\s+(?P<y>-?\d+)\s*\)",
    re.DOTALL,
)


class DefParseError(ValueError):
    """Raised when a DEF file cannot be interpreted."""


def read_def(
    text: str,
    ff_master_hints: Iterable[str] | None = None,
    default_ff_clock_cap: float = 0.8,
) -> Design:
    """Parse a placed DEF document into a :class:`Design`.

    Args:
        text: the DEF file contents.
        ff_master_hints: substrings identifying flip-flop masters; defaults
            to common liberty naming conventions (DFF/SDFF/…).
        default_ff_clock_cap: clock pin capacitance (fF) assigned to sinks.
    """
    hints = tuple(ff_master_hints) if ff_master_hints is not None else DEFAULT_FF_MASTER_HINTS

    design_match = re.search(r"DESIGN\s+(\S+)\s*;", text)
    if design_match is None:
        raise DefParseError("missing DESIGN statement")
    name = design_match.group(1)

    units_match = re.search(r"UNITS\s+DISTANCE\s+MICRONS\s+(\d+)", text)
    dbu = int(units_match.group(1)) if units_match else 1000

    die_match = _DIEAREA_RE.search(text)
    if die_match is None:
        raise DefParseError("missing DIEAREA statement")
    xlo, ylo, xhi, yhi = (int(v) / dbu for v in die_match.groups())
    design = Design(name=name, die_area=Rect(xlo, ylo, xhi, yhi))

    components_match = re.search(
        r"COMPONENTS\s+\d+\s*;(?P<body>.*?)END\s+COMPONENTS", text, re.DOTALL
    )
    if components_match is not None:
        body = components_match.group("body")
        for statement in body.split(";"):
            statement = statement.strip()
            if not statement:
                continue
            match = _COMPONENT_RE.search(statement)
            if match is None:
                continue
            master = match.group("master")
            is_ff = any(hint in master.upper() for hint in hints)
            kind = CellKind.FLIP_FLOP if is_ff else CellKind.COMBINATIONAL
            location = Point(int(match.group("x")) / dbu, int(match.group("y")) / dbu)
            design.add_cell(
                Cell(
                    name=match.group("name"),
                    master=master,
                    kind=kind,
                    location=design.die_area.clamp(location),
                    clock_pin_capacitance=default_ff_clock_cap if is_ff else 0.0,
                )
            )
    return design


def write_def(design: Design, dbu: int = 1000) -> str:
    """Serialise a :class:`Design` back to a minimal placed DEF document."""
    lines = [
        "VERSION 5.8 ;",
        "DIVIDERCHAR \"/\" ;",
        "BUSBITCHARS \"[]\" ;",
        f"DESIGN {design.name} ;",
        f"UNITS DISTANCE MICRONS {dbu} ;",
        "DIEAREA ( {:d} {:d} ) ( {:d} {:d} ) ;".format(
            int(design.die_area.xlo * dbu),
            int(design.die_area.ylo * dbu),
            int(design.die_area.xhi * dbu),
            int(design.die_area.yhi * dbu),
        ),
        f"COMPONENTS {design.cell_count} ;",
    ]
    for cell in design.cells.values():
        keyword = "FIXED" if cell.fixed else "PLACED"
        lines.append(
            f"- {cell.name} {cell.master} + {keyword} "
            f"( {int(cell.location.x * dbu)} {int(cell.location.y * dbu)} ) N ;"
        )
    lines.append("END COMPONENTS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"

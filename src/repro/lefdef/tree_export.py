"""Serialising synthesised clock trees (JSON round-trip and DEF snippet)."""

from __future__ import annotations

import json

from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.geometry import Point
from repro.tech.layers import Side


def tree_to_json(tree: ClockTree) -> str:
    """Serialise a clock tree to a JSON document (structure + attributes)."""

    def encode(node: ClockTreeNode) -> dict:
        return {
            "name": node.name,
            "kind": node.kind.value,
            "x": node.location.x,
            "y": node.location.y,
            "side": node.side.value,
            "wire_side": node.wire_side.value,
            "capacitance": node.capacitance,
            "children": [encode(child) for child in node.children],
        }

    return json.dumps({"name": tree.name, "root": encode(tree.root)}, indent=2)


def tree_from_json(text: str) -> ClockTree:
    """Rebuild a clock tree from :func:`tree_to_json` output."""
    payload = json.loads(text)

    def decode(data: dict) -> ClockTreeNode:
        node = ClockTreeNode(
            name=data["name"],
            kind=NodeKind(data["kind"]),
            location=Point(data["x"], data["y"]),
            side=Side(data["side"]),
            capacitance=data["capacitance"],
            wire_side=Side(data["wire_side"]),
        )
        for child_data in data["children"]:
            node.add_child(decode(child_data))
        return node

    root = decode(payload["root"])
    return ClockTree(root, name=payload["name"])


def tree_to_def_snippet(
    tree: ClockTree,
    buffer_master: str = "BUFx4_ASAP7_75t_R",
    ntsv_master: str = "NTSV_ASAP7_BS",
    dbu: int = 1000,
) -> str:
    """Render the inserted cells and the clock net as a DEF-style snippet.

    The snippet contains a COMPONENTS section for every inserted buffer and
    nTSV and a NETS section describing the clock net connectivity, which is
    the information a post-CTS DEF adds on top of the placed DEF.
    """
    buffers = tree.buffers()
    ntsvs = tree.ntsvs()
    lines = [f"COMPONENTS {len(buffers) + len(ntsvs)} ;"]
    for node in buffers:
        lines.append(
            f"- {node.name} {buffer_master} + PLACED "
            f"( {int(node.location.x * dbu)} {int(node.location.y * dbu)} ) N ;"
        )
    for node in ntsvs:
        lines.append(
            f"- {node.name} {ntsv_master} + PLACED "
            f"( {int(node.location.x * dbu)} {int(node.location.y * dbu)} ) N ;"
        )
    lines.append("END COMPONENTS")
    lines.append("NETS 1 ;")
    lines.append(f"- {tree.name} ( PIN {tree.root.name} )")
    for node in tree.nodes():
        if node.is_sink:
            lines.append(f"  ( {node.name} CLK )")
        elif node.is_buffer:
            lines.append(f"  ( {node.name} A )")
    lines.append("  + USE CLOCK ;")
    lines.append("END NETS")
    return "\n".join(lines) + "\n"

"""A tiny LEF macro reader/writer (cell footprints and pin uses)."""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass(frozen=True)
class LefMacro:
    """One LEF MACRO: its footprint and whether it has a clock input pin."""

    name: str
    width: float
    height: float
    is_sequential: bool = False


_MACRO_RE = re.compile(
    r"MACRO\s+(?P<name>\S+)\s+(?P<body>.*?)END\s+(?P=name)", re.DOTALL
)
_SIZE_RE = re.compile(r"SIZE\s+([\d.]+)\s+BY\s+([\d.]+)")
_CLOCK_PIN_RE = re.compile(r"USE\s+CLOCK|PIN\s+CLK\b", re.IGNORECASE)


def read_lef(text: str) -> dict[str, LefMacro]:
    """Parse LEF text and return ``macro name -> LefMacro``."""
    macros: dict[str, LefMacro] = {}
    for match in _MACRO_RE.finditer(text):
        name = match.group("name")
        body = match.group("body")
        size_match = _SIZE_RE.search(body)
        if size_match is None:
            continue
        width, height = float(size_match.group(1)), float(size_match.group(2))
        macros[name] = LefMacro(
            name=name,
            width=width,
            height=height,
            is_sequential=bool(_CLOCK_PIN_RE.search(body)),
        )
    return macros


def write_lef(macros: dict[str, LefMacro] | list[LefMacro]) -> str:
    """Serialise macros back to LEF text."""
    items = macros.values() if isinstance(macros, dict) else macros
    lines = ["VERSION 5.8 ;", "BUSBITCHARS \"[]\" ;", "DIVIDERCHAR \"/\" ;", ""]
    for macro in items:
        lines.append(f"MACRO {macro.name}")
        lines.append("  CLASS CORE ;")
        lines.append(f"  SIZE {macro.width:.4f} BY {macro.height:.4f} ;")
        if macro.is_sequential:
            lines.append("  PIN CLK")
            lines.append("    DIRECTION INPUT ;")
            lines.append("    USE CLOCK ;")
            lines.append("  END CLK")
        lines.append(f"END {macro.name}")
        lines.append("")
    lines.append("END LIBRARY")
    return "\n".join(lines) + "\n"

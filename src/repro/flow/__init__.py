"""End-to-end CTS flows (Fig. 4 of the paper).

* :class:`DoubleSideCTS` — the paper's flow: hierarchical clock routing,
  concurrent buffer and nTSV insertion, and skew refinement ("Ours").
* :class:`SingleSideCTS` — the same flow on a front-side-only technology
  ("Our Buffered Clock Tree"), used as the substrate for the post-CTS
  baselines and the Fig. 10 / Fig. 12 comparisons.
"""

from repro.flow.config import BackendSelection, CtsConfig, ResolvedBackends
from repro.flow.cts import DoubleSideCTS, CtsRunResult
from repro.flow.single_side import SingleSideCTS
from repro.parallel import ParallelDiagnostic, ParallelError, ParallelPolicy

__all__ = [
    "BackendSelection",
    "CtsConfig",
    "DoubleSideCTS",
    "CtsRunResult",
    "ParallelDiagnostic",
    "ParallelError",
    "ParallelPolicy",
    "ResolvedBackends",
    "SingleSideCTS",
]

"""The systematic multi-objective double-side CTS flow ("Ours" in Table III).

The flow follows Fig. 4 of the paper:

    placed design  ->  hierarchical clock routing
                   ->  concurrent buffer & nTSV insertion (multi-objective DP)
                   ->  skew refinement
                   ->  legal double-side clock tree + metrics
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.clocktree import ClockTree
from repro.evaluation.metrics import ClockTreeMetrics, evaluate_tree
from repro.flow.config import CtsConfig
from repro.insertion.concurrent import ConcurrentInserter, InsertionConfig, InsertionResult
from repro.netlist.clock import ClockNet
from repro.netlist.design import Design
from repro.refinement.skew_refinement import SkewRefiner, SkewRefinementReport
from repro.routing.hierarchical import HierarchicalClockRouter, HierarchicalRoutingResult
from repro.tech.pdk import Pdk


@dataclass
class CtsRunResult:
    """Everything a flow run produces."""

    design_name: str
    flow_name: str
    tree: ClockTree
    routing: HierarchicalRoutingResult
    insertion: InsertionResult
    skew_report: SkewRefinementReport | None
    metrics: ClockTreeMetrics
    runtime: float

    @property
    def latency(self) -> float:
        return self.metrics.latency

    @property
    def skew(self) -> float:
        return self.metrics.skew

    def summary(self) -> dict[str, float | int | str]:
        return self.metrics.as_row()


class DoubleSideCTS:
    """The paper's systematic double-side CTS flow."""

    flow_name = "ours"

    def __init__(self, pdk: Pdk, config: CtsConfig | None = None) -> None:
        if not pdk.has_backside:
            raise ValueError(
                "DoubleSideCTS needs a back-side enabled PDK; "
                "use SingleSideCTS for front-side-only technologies"
            )
        self.pdk = pdk
        self.config = config if config is not None else CtsConfig()

    # ----------------------------------------------------------------- public
    def run(self, design: Design | ClockNet, design_name: str | None = None) -> CtsRunResult:
        """Synthesise the clock tree of ``design`` and return the run result."""
        clock_net, name = self._resolve_input(design, design_name)
        start = time.perf_counter()

        routing = self._route(clock_net)
        insertion = self._insert(routing.tree)
        skew_report = self._refine(routing.tree)

        runtime = time.perf_counter() - start
        routing.tree.validate()
        metrics = evaluate_tree(
            routing.tree,
            self.pdk,
            design=name,
            flow=self.flow_name,
            runtime=runtime,
            engine=self.config.timing_engine,
            corners=self.config.corners,
        )
        return CtsRunResult(
            design_name=name,
            flow_name=self.flow_name,
            tree=routing.tree,
            routing=routing,
            insertion=insertion,
            skew_report=skew_report,
            metrics=metrics,
            runtime=runtime,
        )

    # ------------------------------------------------------------------ steps
    def _route(self, clock_net: ClockNet) -> HierarchicalRoutingResult:
        router = HierarchicalClockRouter(
            self.pdk,
            high_cluster_size=self.config.high_cluster_size,
            low_cluster_size=self.config.low_cluster_size,
            seed=self.config.seed,
            hierarchical=self.config.hierarchical_routing,
            dme_backend=self.config.dme_backend,
        )
        return router.route(clock_net)

    def _insert(self, tree: ClockTree) -> InsertionResult:
        inserter = ConcurrentInserter(
            self.pdk,
            self._insertion_config(),
            engine=self.config.timing_engine,
            corners=self.config.construction_corners(),
        )
        return inserter.run(tree, fanout_threshold=self.config.fanout_threshold)

    def _refine(self, tree: ClockTree) -> SkewRefinementReport | None:
        if not self.config.enable_skew_refinement:
            return None
        refiner = SkewRefiner(
            self.pdk,
            skew_trigger_fraction=self.config.skew_trigger_fraction,
            max_endpoints=self.config.max_refined_endpoints,
            strategy=self.config.skew_strategy,
            engine=self.config.timing_engine,
            corners=self.config.construction_corners(),
            nominal_skew_budget=self.config.nominal_skew_budget,
        )
        return refiner.refine(tree)

    def _insertion_config(self) -> InsertionConfig:
        return InsertionConfig(
            weights=self.config.moes_weights,
            selection=self.config.selection,
            max_segment_length=self.config.max_segment_length,
            keep_resource_diversity=self.config.keep_resource_diversity,
            max_candidates_per_side=self.config.max_candidates_per_side,
            default_mode=self.config.default_mode,
            dp_backend=self.config.dp_backend,
        )

    # ------------------------------------------------------------------ input
    @staticmethod
    def _resolve_input(
        design: Design | ClockNet, design_name: str | None
    ) -> tuple[ClockNet, str]:
        if isinstance(design, Design):
            return design.require_clock_net(), design_name or design.name
        if isinstance(design, ClockNet):
            return design, design_name or design.name
        raise TypeError(
            f"expected a Design or ClockNet, got {type(design).__name__}"
        )

"""The systematic multi-objective double-side CTS flow ("Ours" in Table III).

The flow follows Fig. 4 of the paper:

    placed design  ->  hierarchical clock routing
                   ->  concurrent buffer & nTSV insertion (multi-objective DP)
                   ->  skew refinement
                   ->  legal double-side clock tree + metrics

Every stage is *guarded* (see :mod:`repro.guard`): under the default
``off`` policy the flow runs exactly as before, while ``degrade`` / ``strict``
validate the inputs at entry, probe the stage invariants after every step,
and either re-run an anomalous stage on the reference backend (recording a
:class:`~repro.guard.GuardDiagnostic` on the result) or fail fast with a
typed :class:`~repro.guard.GuardError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.clocktree import ClockTree
from repro.evaluation.metrics import ClockTreeMetrics, evaluate_tree
from repro.flow.config import CtsConfig, ResolvedBackends
from repro.guard.faults import StageFault
from repro.guard.policy import StageGuard, GuardDiagnostic
from repro.guard.validation import insertion_anomaly, metrics_anomaly
from repro.insertion.concurrent import InsertionResult
from repro.ir.design import DesignArrays
from repro.netlist.clock import ClockNet
from repro.netlist.design import Design
from repro.refinement.skew_refinement import SkewRefinementReport
from repro.routing.hierarchical import (
    DesignRoutingResult,
    HierarchicalRoutingResult,
)
from repro.tech.pdk import Pdk


@dataclass
class CtsRunResult:
    """Everything a flow run produces.

    An IR-native run (``CtsConfig.backends.representation == "ir"``) stores
    the persistent :class:`DesignArrays` design in :attr:`design`; the
    object :attr:`tree` is realised lazily on first access, outside the
    timed flow region.  Object-hop runs store the tree directly and leave
    :attr:`design` None.
    """

    design_name: str
    flow_name: str
    routing: "HierarchicalRoutingResult | DesignRoutingResult"
    insertion: InsertionResult
    skew_report: SkewRefinementReport | None
    metrics: ClockTreeMetrics
    runtime: float
    guard_policy: str = "off"
    guard_diagnostics: list[GuardDiagnostic] = field(default_factory=list)
    parallel_tasks: int = 0
    parallel_diagnostics: list = field(default_factory=list)
    design: DesignArrays | None = None
    _tree: ClockTree | None = field(default=None, repr=False)

    @property
    def tree(self) -> ClockTree:
        """The synthesised clock tree (realised lazily for IR-native runs)."""
        if self._tree is None:
            if self.design is None:
                raise ValueError("flow result carries neither a tree nor a design")
            self._tree = self.design.to_clock_tree()
        return self._tree

    @property
    def latency(self) -> float:
        return self.metrics.latency

    @property
    def skew(self) -> float:
        return self.metrics.skew

    @property
    def degraded(self) -> bool:
        """True when any stage was re-run on a reference backend."""
        return bool(self.guard_diagnostics)

    @property
    def parallel_retried(self) -> int:
        """Worker-pool tasks that succeeded only after a retry."""
        return sum(
            1 for d in self.parallel_diagnostics if d.action == "retried"
        )

    @property
    def parallel_degraded(self) -> int:
        """Worker-pool tasks recomputed inline after exhausting retries."""
        return sum(
            1
            for d in self.parallel_diagnostics
            if d.action == "degraded-to-serial"
        )

    def parallel_summary(self) -> str:
        """One-line pool fault-tolerance summary (``dscts run`` report)."""
        return (
            f"parallel: {self.parallel_tasks} tasks, "
            f"{self.parallel_retried} retried, "
            f"{self.parallel_degraded} degraded-to-serial"
        )

    def summary(self) -> dict[str, float | int | str]:
        return self.metrics.as_row()


def _collect_parallel(*results) -> tuple[int, list]:
    """Sum pool task counts and concatenate diagnostics across stage results.

    Stage results that predate the fault-tolerant tier (e.g. the object-path
    :class:`HierarchicalRoutingResult`) simply contribute nothing.
    """
    tasks = 0
    diagnostics: list = []
    for result in results:
        if result is None:
            continue
        tasks += getattr(result, "parallel_tasks", 0)
        diagnostics.extend(getattr(result, "parallel_diagnostics", ()))
    return tasks, diagnostics


class DoubleSideCTS:
    """The paper's systematic double-side CTS flow."""

    flow_name = "ours"

    def __init__(
        self,
        pdk: Pdk,
        config: CtsConfig | None = None,
        guard_faults: Iterable[StageFault] = (),
    ) -> None:
        if not pdk.has_backside:
            raise ValueError(
                "DoubleSideCTS needs a back-side enabled PDK; "
                "use SingleSideCTS for front-side-only technologies"
            )
        self.pdk = pdk
        self.config = config if config is not None else CtsConfig()
        # Test-harness fault injectors (repro.guard.faults), applied to the
        # named stage's output before the guard checks it.
        self.guard_faults = tuple(guard_faults)

    # ----------------------------------------------------------------- public
    def run(self, design: Design | ClockNet, design_name: str | None = None) -> CtsRunResult:
        """Synthesise the clock tree of ``design`` and return the run result.

        The flow representation is selected by the resolved backends
        (``CtsConfig.backends.representation`` / ``REPRO_FLOW_REPRESENTATION``):
        ``"object"`` hops between stages on :class:`ClockTree` objects,
        ``"ir"`` threads one persistent :class:`DesignArrays` design through
        the :mod:`repro.ir.stages` pipeline.  The two paths are
        decision-identical (bit-equal tree fingerprints).
        """
        clock_net, name = self._resolve_input(design, design_name)
        backends = self.config.resolved_backends()
        guard = StageGuard(backends.guard, clock_net, faults=self.guard_faults)
        guard.validate_inputs(self.pdk, corners=self.config.corners)
        if backends.representation == "ir":
            return self._run_ir(clock_net, name, guard, backends)
        return self._run_object(clock_net, name, guard, backends)

    def evaluate_design(
        self,
        design: DesignArrays,
        design_name: str = "",
        runtime: float = 0.0,
        timing_engine=None,
    ) -> ClockTreeMetrics:
        """Evaluate a pre-built :class:`DesignArrays` without re-running the flow.

        The session-reusable entry point of the serve tier: a long-lived
        session keeps the design its flow run produced and calls this after
        every what-if edit.  Passing the session's compiled
        :class:`~repro.timing.vectorized.VectorizedElmoreEngine` as
        ``timing_engine`` routes the evaluation through the engine's
        incremental dirty-cone update instead of a fresh compile; with no
        engine the evaluation is a cold one-shot identical to the flow's own
        :class:`~repro.ir.stages.EvaluationStage` arithmetic.
        """
        timing = self.config.resolved_backends().timing
        return evaluate_tree(
            design,
            self.pdk,
            design=design_name,
            flow=self.flow_name,
            runtime=runtime,
            engine=timing,
            corners=self.config.corners,
            timing_engine=timing_engine,
        )

    # -------------------------------------------------------------- IR path
    def _run_ir(
        self,
        clock_net: ClockNet,
        name: str,
        guard: StageGuard,
        backends: ResolvedBackends,
    ) -> CtsRunResult:
        from repro.ir import stages

        ctx = stages.StageContext(
            pdk=self.pdk,
            config=self.config,
            backends=backends,
            guard=guard,
            clock_net=clock_net,
            design_name=name,
            flow_name=self.flow_name,
        )
        start = time.perf_counter()
        design = stages.RoutingStage().run(None, ctx)
        design = stages.InsertionStage().run(design, ctx)
        if self.config.enable_skew_refinement:
            design = stages.RefinementStage().run(design, ctx)
        ctx.runtime = time.perf_counter() - start
        design.validate()
        design = stages.EvaluationStage().run(design, ctx)
        parallel_tasks, parallel_diagnostics = _collect_parallel(
            ctx.routing, ctx.insertion
        )
        return CtsRunResult(
            design_name=name,
            flow_name=self.flow_name,
            routing=ctx.routing,
            insertion=ctx.insertion,
            skew_report=ctx.skew_report,
            metrics=ctx.metrics,
            runtime=ctx.runtime,
            guard_policy=guard.policy,
            guard_diagnostics=guard.diagnostics,
            parallel_tasks=parallel_tasks,
            parallel_diagnostics=parallel_diagnostics,
            design=design,
        )

    # ---------------------------------------------------------- object path
    def _run_object(
        self,
        clock_net: ClockNet,
        name: str,
        guard: StageGuard,
        backends: ResolvedBackends,
    ) -> CtsRunResult:
        start = time.perf_counter()

        routing = self._route(clock_net)
        guard.inject("routing", routing.tree)
        routing_degraded = guard.check("routing", routing.tree)
        if routing_degraded:
            routing = self._route(clock_net, reference=True)
            guard.confirm("routing", routing.tree)
        tree = routing.tree

        # Degrading a mutating stage needs the pristine pre-stage tree back.
        # Rather than defensively copying before every stage (a real cost on
        # every healthy run), the degrade path *replays* the earlier stages:
        # the reference backends are decision-identical to the vectorized
        # ones, so the replay reproduces the pre-stage tree exactly, and
        # injected faults are re-applied unless their stage already degraded
        # past them.
        def replay_routing() -> ClockTree:
            replayed = self._route(clock_net, reference=True)
            if not routing_degraded:
                guard.inject("routing", replayed.tree)
            return replayed.tree

        insertion = self._insert(tree)
        guard.inject("insertion", tree)
        insertion_degraded = guard.check(
            "insertion", tree, extra=lambda: insertion_anomaly(insertion)
        )
        if insertion_degraded:
            tree = replay_routing()
            insertion = self._insert(tree, reference=True)
            guard.confirm(
                "insertion", tree, extra=lambda: insertion_anomaly(insertion)
            )
            routing.tree = tree

        def replay_insertion() -> ClockTree:
            replayed = replay_routing()
            self._insert(replayed, reference=True)
            if not insertion_degraded:
                guard.inject("insertion", replayed)
            return replayed

        skew_report = None
        if self.config.enable_skew_refinement:
            skew_report = self._refine(tree)
            guard.inject("refinement", tree)
            if guard.check("refinement", tree):
                tree = replay_insertion()
                skew_report = self._refine(tree, reference=True)
                guard.confirm("refinement", tree)
                routing.tree = tree

        runtime = time.perf_counter() - start
        tree.validate()
        metrics = self._evaluate(tree, name, runtime)
        # Evaluation does not mutate the tree (the refinement check just
        # probed it), so this check is metrics-only.
        if guard.check("evaluation", None, extra=lambda: metrics_anomaly(metrics)):
            metrics = self._evaluate(tree, name, runtime, reference=True)
            guard.confirm(
                "evaluation", None, extra=lambda: metrics_anomaly(metrics)
            )
        parallel_tasks, parallel_diagnostics = _collect_parallel(
            routing, insertion
        )
        return CtsRunResult(
            design_name=name,
            flow_name=self.flow_name,
            routing=routing,
            insertion=insertion,
            skew_report=skew_report,
            metrics=metrics,
            runtime=runtime,
            guard_policy=guard.policy,
            guard_diagnostics=guard.diagnostics,
            parallel_tasks=parallel_tasks,
            parallel_diagnostics=parallel_diagnostics,
            _tree=tree,
        )

    # ------------------------------------------------------------------ steps
    # Stage engines come from the construction points shared with the
    # IR-native pipeline (repro.ir.stages), so the two paths cannot drift.
    def _route(
        self, clock_net: ClockNet, reference: bool = False
    ) -> HierarchicalRoutingResult:
        from repro.ir.stages import build_router, reference_config

        config = reference_config(self.config) if reference else self.config
        return build_router(self.pdk, config).route(clock_net)

    def _insert(self, tree: ClockTree, reference: bool = False) -> InsertionResult:
        from repro.ir.stages import build_inserter

        backends = self.config.resolved_backends()
        inserter = build_inserter(
            self.pdk,
            self.config,
            timing="reference" if reference else backends.timing,
            dp="reference" if reference else backends.dp,
        )
        return inserter.run(tree, fanout_threshold=self.config.fanout_threshold)

    def _refine(
        self, tree: ClockTree, reference: bool = False
    ) -> SkewRefinementReport:
        from repro.ir.stages import build_refiner

        timing = (
            "reference" if reference else self.config.resolved_backends().timing
        )
        return build_refiner(self.pdk, self.config, timing).refine(tree)

    def _evaluate(
        self, tree: ClockTree, name: str, runtime: float, reference: bool = False
    ) -> ClockTreeMetrics:
        timing = (
            "reference" if reference else self.config.resolved_backends().timing
        )
        return evaluate_tree(
            tree,
            self.pdk,
            design=name,
            flow=self.flow_name,
            runtime=runtime,
            engine=timing,
            corners=self.config.corners,
        )

    # ------------------------------------------------------------------ input
    @staticmethod
    def _resolve_input(
        design: Design | ClockNet, design_name: str | None
    ) -> tuple[ClockNet, str]:
        if isinstance(design, Design):
            return design.require_clock_net(), design_name or design.name
        if isinstance(design, ClockNet):
            return design, design_name or design.name
        raise TypeError(
            f"expected a Design or ClockNet, got {type(design).__name__}"
        )

"""The single-side (front-only) variant of the flow: "Our Buffered Clock Tree".

The paper generates its own single-side comparison point by running the same
three steps — hierarchical clock routing, buffer insertion, skew refinement —
without any back-side resources.  This is also the substrate handed to the
post-CTS baselines [2], [6], [7] in the bottom half of Table III.
"""

from __future__ import annotations

from typing import Iterable

from repro.flow.config import CtsConfig
from repro.flow.cts import CtsRunResult, DoubleSideCTS
from repro.guard.faults import StageFault
from repro.tech.pdk import Pdk


class SingleSideCTS(DoubleSideCTS):
    """Hierarchical routing + buffer-only insertion + skew refinement."""

    flow_name = "our_buffered_tree"

    def __init__(
        self,
        pdk: Pdk,
        config: CtsConfig | None = None,
        guard_faults: Iterable[StageFault] = (),
    ) -> None:
        front_only = pdk.front_side_only() if pdk.has_backside else pdk
        # Bypass the DoubleSideCTS back-side requirement: the whole point of
        # this flow is running the identical machinery without a back side.
        self.pdk = front_only
        self.config = (config if config is not None else CtsConfig()).single_side()
        self.guard_faults = tuple(guard_faults)

    def run(self, design, design_name: str | None = None) -> CtsRunResult:
        result = super().run(design, design_name)
        if result.metrics.ntsvs != 0:  # pragma: no cover - structural guarantee
            raise RuntimeError("single-side CTS produced nTSVs")
        return result

"""Configuration of the end-to-end CTS flows.

This module also owns the one shared definition of *backend resolution*.
Every two-engine subsystem (timing engines, insertion-DP backends, DME
routing backends) exposes the same four surfaces with the same precedence:

    explicit argument > config field (the CLI flags feed this) >
    environment variable > built-in default

:class:`BackendChoice` implements that rule once; the per-subsystem
``resolve_*`` helpers in :mod:`repro.timing.factory`,
:mod:`repro.insertion.frontier`, and :mod:`repro.routing.dme_arrays` all
delegate here so the precedence can never drift between subsystems.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace

from repro.insertion.moes import MoesWeights
from repro.insertion.patterns import InsertionMode
from repro.tech.corners import CornerSet


@dataclass(frozen=True)
class BackendChoice:
    """One two-engine backend knob and its shared resolution rule.

    Attributes:
        kind: human-readable knob name used in error messages
            (e.g. ``"timing engine"``).
        env_var: environment variable consulted when no explicit or config
            value is given (e.g. ``REPRO_TIMING_ENGINE``).
        names: the valid backend names.
        default: the built-in default backend.
    """

    kind: str
    env_var: str
    names: tuple[str, ...]
    default: str

    def default_name(self) -> str:
        """The backend used when nothing was chosen (env override included).

        An empty environment value counts as unset so CI matrix entries can
        pass the variable through unconditionally.
        """
        return os.environ.get(self.env_var) or self.default

    def resolve(self, *candidates: str | None) -> str:
        """Resolve the first non-None candidate, else env var, else default.

        Callers list their candidates in precedence order (explicit argument
        first, then the config field); the environment variable and the
        built-in default are consulted only when every candidate is None.
        The resolved name is validated against :attr:`names`.
        """
        name = next((c for c in candidates if c is not None), None)
        if name is None:
            name = self.default_name()
        if name not in self.names:
            raise ValueError(
                f"unknown {self.kind} {name!r}; expected one of {self.names}"
            )
        return name


#: The three two-engine knobs of the library.  The per-subsystem modules
#: mirror ``names`` / ``default`` as literals (import-cycle free) and their
#: tests assert the literals agree with these definitions.
TIMING_ENGINE_CHOICE = BackendChoice(
    kind="timing engine",
    env_var="REPRO_TIMING_ENGINE",
    names=("reference", "vectorized"),
    default="vectorized",
)
DP_BACKEND_CHOICE = BackendChoice(
    kind="DP backend",
    env_var="REPRO_DP_BACKEND",
    names=("reference", "vectorized"),
    default="vectorized",
)
DME_BACKEND_CHOICE = BackendChoice(
    kind="DME backend",
    env_var="REPRO_DME_BACKEND",
    names=("reference", "vectorized"),
    default="vectorized",
)

#: The guard-policy knob of :mod:`repro.guard` rides the same resolution
#: rule (explicit argument > ``CtsConfig.guard`` > ``REPRO_GUARD`` > default)
#: even though its names select behaviours rather than backends.
GUARD_POLICY_CHOICE = BackendChoice(
    kind="guard policy",
    env_var="REPRO_GUARD",
    names=("strict", "degrade", "off"),
    default="off",
)

#: Which design representation the flow stages run on: ``object`` hops the
#: realised :class:`~repro.clocktree.ClockTree` between stages (the
#: executable spec), ``ir`` keeps one persistent
#: :class:`~repro.ir.DesignArrays` alive across stages and realises object
#: trees only at the boundaries.  Both paths are decision-identical.
FLOW_REPRESENTATION_CHOICE = BackendChoice(
    kind="flow representation",
    env_var="REPRO_FLOW_REPRESENTATION",
    names=("object", "ir"),
    default="object",
)


@dataclass(frozen=True)
class BackendSelection:
    """One consolidated value for every backend knob of the flow.

    Replaces the four loose ``CtsConfig`` fields (``timing_engine``,
    ``dp_backend``, ``dme_backend``, ``guard``) and adds the flow
    ``representation`` knob.  ``None`` fields fall back to the deprecated
    loose field (when set), then the knob's environment variable, then the
    built-in default — the same precedence :class:`BackendChoice` has always
    implemented, now resolved in exactly one place
    (:meth:`CtsConfig.resolved_backends`).
    """

    timing: str | None = None
    dp: str | None = None
    dme: str | None = None
    guard: str | None = None
    representation: str | None = None


@dataclass(frozen=True)
class ResolvedBackends:
    """Every backend knob resolved to a concrete name (no ``None`` left)."""

    timing: str
    dp: str
    dme: str
    guard: str
    representation: str


#: Deprecated surfaces that already warned this process (warn exactly once).
_DEPRECATION_WARNED: set[str] = set()


def warn_deprecated_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` at most once per process."""
    if key in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def _reset_deprecation_warnings() -> None:
    """Testing hook: forget which deprecated surfaces already warned."""
    _DEPRECATION_WARNED.clear()


@dataclass(frozen=True)
class CtsConfig:
    """All tunables of the double-side CTS flow, with the paper's defaults.

    Attributes:
        high_cluster_size: ``Hc`` of the dual-level clustering (3000).
        low_cluster_size: ``Lc`` of the dual-level clustering (30).
        seed: RNG seed for clustering determinism.
        hierarchical_routing: use the hierarchical DME (True) or the flat
            matching DME of Fig. 5(c) (False, for the ablation).
        moes_weights: (alpha, beta, gamma) of Eq. (3); the paper uses (1,10,1).
        selection: root-candidate selection, ``"moes"`` or ``"min_latency"``.
        max_segment_length: maximum trunk edge length (um) before splitting.
        keep_resource_diversity / max_candidates_per_side: DP pruning knobs.
        default_mode: insertion mode of every DP node unless a fanout
            threshold is supplied; the Table III "Ours" rows use full mode.
        fanout_threshold: the DSE knob — nodes with fewer downstream sinks
            than the threshold are full mode, the rest intra-side; ``None``
            leaves every node in ``default_mode``.
        skew_trigger_fraction: ``p%`` of the skew refinement trigger (0.23).
        max_refined_endpoints: ``m`` of the skew refinement (33).
        skew_strategy: ``"pad_fast"`` (Fig. 11 behaviour) or ``"shield_slow"``.
        enable_skew_refinement: disable to reproduce the "w/o SR" bars.
        timing_engine: timing engine used by every flow step (``"vectorized"``
            or ``"reference"``); ``None`` uses the library default.
        dp_backend: insertion-DP backend used by the concurrent inserter
            (``"vectorized"`` — the array-based candidate-frontier engine —
            or ``"reference"`` — the per-candidate object DP, the executable
            spec); ``None`` uses the library default (``vectorized``,
            overridable via ``REPRO_DP_BACKEND``).  Both backends build
            identical trees; the knob exists for differential debugging and
            benchmarking (CLI ``--dp-backend``).
        dme_backend: DME routing backend used by the hierarchical clock
            router (``"vectorized"`` — the level-batched array router —
            or ``"reference"`` — the per-node scalar router, the executable
            spec); ``None`` uses the library default (``vectorized``,
            overridable via ``REPRO_DME_BACKEND``).  Both backends embed
            identical trees; the knob exists for differential debugging and
            benchmarking (CLI ``--dme-backend``).
        corners: PVT corner set for multi-corner sign-off; ``None`` evaluates
            the nominal corner only.  The final metrics (and the DSE scoring)
            report every corner of the set, and the worst-corner skew/latency
            drive the DSE Pareto objectives.
        corner_aware_construction: when True (and ``corners`` is set), the
            construction steps themselves — insertion DP and skew refinement
            — optimise worst-corner objectives over the corner batch instead
            of nominal timing (CLI ``--corner-aware-construction``).
        nominal_skew_budget: how much nominal skew (ps) a corner-aware skew
            refinement may give away while chasing the worst corner; 0 means
            the nominal skew must never regress past its pre-refinement
            value.
        guard: guard policy of the flow (``"strict"``, ``"degrade"``, or
            ``"off"``); ``None`` uses the library default (``off``,
            overridable via ``REPRO_GUARD``).  ``off`` runs the flow exactly
            as before, ``degrade`` validates inputs and stage invariants and
            re-runs an anomalous stage through the reference backends, and
            ``strict`` raises :class:`~repro.guard.GuardError` on the first
            anomaly (CLI ``--guard``).
        backends: the consolidated backend selection
            (:class:`BackendSelection`).  This supersedes the four loose
            fields above (``timing_engine``, ``dp_backend``, ``dme_backend``,
            ``guard``), which are deprecated but keep working with the same
            precedence (and warn once per process); it also carries the flow
            ``representation`` knob (``"object"`` or ``"ir"``).
        workers: process-level parallelism of the construction stages
            (region-parallel DME routing and DP-subtree-parallel insertion
            on the IR path).  ``None`` falls back to ``REPRO_FLOW_WORKERS``,
            then 1 (serial).  Results are bit-identical to serial at every
            worker count (CLI ``--workers``).
        parallel_policy: fault-tolerance policy of the worker pools (a
            :class:`~repro.parallel.ParallelPolicy` or a spec string such as
            ``"attempts=3,timeout_s=30"`` or ``"strict"``).  ``None`` falls
            back to ``REPRO_PARALLEL_POLICY``, then the default policy
            (2 attempts, no timeout, degrade-to-serial on exhaustion).
            Recovery is bit-identical by construction: a failed shard is
            recomputed inline by the same serial spec the differential tests
            pin the parallel tier against (CLI ``--strict-parallel`` flips
            the terminal action to a raised
            :class:`~repro.parallel.ParallelError`).
    """

    high_cluster_size: int = 3000
    low_cluster_size: int = 30
    seed: int = 2025
    hierarchical_routing: bool = True
    moes_weights: MoesWeights = field(default_factory=MoesWeights)
    selection: str = "moes"
    max_segment_length: float | None = 200.0
    keep_resource_diversity: bool = False
    max_candidates_per_side: int | None = 16
    default_mode: InsertionMode = InsertionMode.FULL
    fanout_threshold: int | None = None
    skew_trigger_fraction: float = 0.23
    max_refined_endpoints: int = 33
    skew_strategy: str = "pad_fast"
    enable_skew_refinement: bool = True
    timing_engine: str | None = None
    dp_backend: str | None = None
    dme_backend: str | None = None
    corners: CornerSet | None = None
    corner_aware_construction: bool = False
    nominal_skew_budget: float = 0.0
    guard: str | None = None
    backends: BackendSelection | None = None
    workers: int | None = None
    parallel_policy: object | None = None

    #: The loose per-subsystem fields superseded by :attr:`backends`.
    _DEPRECATED_BACKEND_FIELDS = (
        ("timing_engine", "timing"),
        ("dp_backend", "dp"),
        ("dme_backend", "dme"),
        ("guard", "guard"),
    )

    def __post_init__(self) -> None:
        legacy = [
            old
            for old, _ in self._DEPRECATED_BACKEND_FIELDS
            if getattr(self, old) is not None
        ]
        if legacy:
            warn_deprecated_once(
                "CtsConfig.legacy-backend-fields",
                f"CtsConfig fields {legacy} are deprecated; pass "
                "backends=BackendSelection(...) instead (the loose fields "
                "keep working with the same precedence)",
            )

    def resolved_backends(self) -> ResolvedBackends:
        """Resolve every backend knob to a concrete name, in one place.

        Precedence per knob: ``backends`` field > deprecated loose field >
        environment variable > built-in default (the shared
        :class:`BackendChoice` rule).
        """
        selection = self.backends or BackendSelection()
        return ResolvedBackends(
            timing=TIMING_ENGINE_CHOICE.resolve(selection.timing, self.timing_engine),
            dp=DP_BACKEND_CHOICE.resolve(selection.dp, self.dp_backend),
            dme=DME_BACKEND_CHOICE.resolve(selection.dme, self.dme_backend),
            guard=GUARD_POLICY_CHOICE.resolve(selection.guard, self.guard),
            representation=FLOW_REPRESENTATION_CHOICE.resolve(
                selection.representation
            ),
        )

    def resolved_workers(self) -> int:
        """The construction-stage worker count, resolved to a concrete int.

        Precedence: ``workers`` field > ``REPRO_FLOW_WORKERS`` environment
        variable > 1 (serial) — the same shape as the backend knobs.
        """
        from repro.parallel import resolve_workers

        return resolve_workers(self.workers)

    def resolved_parallel_policy(self):
        """The pool fault-tolerance policy, resolved to a concrete object.

        Precedence: ``parallel_policy`` field > ``REPRO_PARALLEL_POLICY``
        environment variable > :class:`~repro.parallel.ParallelPolicy`
        defaults — the same shape as :meth:`resolved_workers`.
        """
        from repro.parallel import resolve_parallel_policy

        return resolve_parallel_policy(self.parallel_policy)

    def construction_corners(self) -> CornerSet | None:
        """The corner set construction steps optimise against (or None)."""
        if not self.corner_aware_construction:
            return None
        return self.corners

    def with_updates(self, **kwargs) -> "CtsConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def for_session(self) -> "CtsConfig":
        """Configuration for a long-lived serve session (``dscts serve``).

        Forces the IR representation: a session holds the flow's persistent
        :class:`~repro.ir.design.DesignArrays` so what-if edits can ride the
        timing engine's incremental dirty-cone path — an object-hop result
        has no design to keep.  Every other knob is preserved.
        """
        selection = self.backends or BackendSelection()
        return self.with_updates(
            backends=replace(selection, representation="ir")
        )

    def single_side(self) -> "CtsConfig":
        """Configuration for the front-side-only flow (no nTSV patterns)."""
        return self.with_updates(fanout_threshold=None)

"""Baseline [6] (Bethur et al., DAC 2024): criticality-driven flipping.

The original work trains a graph neural network to identify the flip-flops
with the worst timing and flips the nets feeding their leaf buffers to the
back side.  The GNN only acts as a selector, so this reproduction replaces it
with a delay-criticality oracle: end-points (taps / leaf buffers) are ranked
by their worst sink arrival time and the top ``critical_fraction`` of them is
selected (0.5 in Table III, swept 0.2..0.9 in Fig. 12).  Every trunk edge on
the root-to-end-point path of a selected end-point is flipped.
"""

from __future__ import annotations

from repro.baselines.backside import trunk_edges
from repro.baselines.veloso import BacksideOptimizerBase
from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.timing import create_engine


class TimingCriticalBacksideOptimizer(BacksideOptimizerBase):
    """[6]: flip the trunk paths feeding the most critical end-points."""

    flow_name = "bethur_gnn_2024"

    def __init__(self, pdk, critical_fraction: float = 0.5) -> None:
        super().__init__(pdk)
        if not 0 < critical_fraction <= 1:
            raise ValueError("the critical fraction must be in (0, 1]")
        self.critical_fraction = critical_fraction

    # ------------------------------------------------------------------ logic
    def select_edges(self, tree: ClockTree) -> list[ClockTreeNode]:
        endpoints = self._rank_endpoints(tree)
        if not endpoints:
            return []
        count = max(1, int(round(len(endpoints) * self.critical_fraction)))
        critical = endpoints[:count]
        allowed = {id(child) for child in trunk_edges(tree)}
        selected: dict[int, ClockTreeNode] = {}
        for endpoint in critical:
            node = endpoint
            while node is not None and node.parent is not None:
                if id(node) in allowed:
                    selected[id(node)] = node
                node = node.parent
        return list(selected.values())

    def _rank_endpoints(self, tree: ClockTree) -> list[ClockTreeNode]:
        """End-points ordered from most to least timing critical."""
        engine = create_engine(self.pdk)
        timing = engine.analyze(tree, with_slew=False)
        endpoints = [n for n in tree.nodes() if n.kind is NodeKind.TAP]
        if not endpoints:
            endpoints = [
                parent
                for parent in {id(s.parent): s.parent for s in tree.sinks()}.values()
                if parent is not None and parent.kind is not NodeKind.ROOT
            ]
        scored = []
        for endpoint in endpoints:
            arrivals = [
                timing.arrivals[node.name]
                for node in endpoint.iter_subtree()
                if node.is_sink and node.name in timing.arrivals
            ]
            if arrivals:
                scored.append((max(arrivals), endpoint))
        scored.sort(key=lambda item: item[0], reverse=True)
        return [endpoint for _score, endpoint in scored]

"""Baseline [2] (Veloso et al., IEDM 2023): latency-driven trunk flipping.

The method moves *every* trunk-level net of an existing buffered clock tree
to the back side (Fig. 2(b) of the paper), inserting nTSVs around the
front-side buffer pins and at the boundary to the leaf nets.  It maximises
the latency benefit of the low-RC back-side metal at the cost of the largest
nTSV count among the baselines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.backside import BacksideAssignment, assign_backside, trunk_edges
from repro.clocktree import ClockTree, ClockTreeNode
from repro.evaluation.metrics import ClockTreeMetrics, evaluate_tree
from repro.tech.pdk import Pdk


@dataclass
class BacksideOptimizationResult:
    """Result shared by all post-CTS back-side optimizers."""

    design_name: str
    flow_name: str
    tree: ClockTree
    assignment: BacksideAssignment
    metrics: ClockTreeMetrics
    runtime: float


class BacksideOptimizerBase:
    """Shared driver: copy the tree, select edges, assign, evaluate."""

    flow_name = "backside_base"

    def __init__(self, pdk: Pdk) -> None:
        if not pdk.has_backside:
            raise ValueError("back-side optimisation needs a back-side enabled PDK")
        self.pdk = pdk

    def select_edges(self, tree: ClockTree) -> list[ClockTreeNode]:
        """Return the downstream nodes of the edges to flip (overridden)."""
        raise NotImplementedError

    def run(
        self,
        tree: ClockTree,
        design_name: str = "",
        copy: bool = True,
    ) -> BacksideOptimizationResult:
        """Apply the method to ``tree`` (on a copy by default) and evaluate."""
        start = time.perf_counter()
        work_tree = tree.copy() if copy else tree
        selected = self.select_edges(work_tree)
        assignment = assign_backside(work_tree, self.pdk, edges=selected)
        runtime = time.perf_counter() - start
        work_tree.validate()
        metrics = evaluate_tree(
            work_tree, self.pdk, design=design_name, flow=self.flow_name, runtime=runtime
        )
        return BacksideOptimizationResult(
            design_name=design_name,
            flow_name=self.flow_name,
            tree=work_tree,
            assignment=assignment,
            metrics=metrics,
            runtime=runtime,
        )


class VelosoBacksideOptimizer(BacksideOptimizerBase):
    """[2]: flip all trunk nets above the low-level cluster centroids."""

    flow_name = "veloso_2023"

    def select_edges(self, tree: ClockTree) -> list[ClockTreeNode]:
        return trunk_edges(tree)

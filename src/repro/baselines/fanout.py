"""Baseline [7] (Bethur, 2023): fanout-driven back-side assignment.

A trunk net is moved to the back side when the number of sinks it ultimately
drives reaches a threshold (100 in the paper's Table III comparison, swept
from 20 to 1000 in the Fig. 12 DSE comparison).  High-fanout nets are the
upper levels of the tree, so the method is a tunable version of [2].
"""

from __future__ import annotations

from repro.baselines.backside import trunk_edges
from repro.baselines.veloso import BacksideOptimizerBase
from repro.clocktree import ClockTree, ClockTreeNode


class FanoutBacksideOptimizer(BacksideOptimizerBase):
    """[7]: flip trunk nets whose driven-sink fanout meets the threshold."""

    flow_name = "bethur_fanout_2023"

    def __init__(self, pdk, fanout_threshold: int = 100) -> None:
        super().__init__(pdk)
        if fanout_threshold < 1:
            raise ValueError("the fanout threshold must be at least 1")
        self.fanout_threshold = fanout_threshold

    def select_edges(self, tree: ClockTree) -> list[ClockTreeNode]:
        return [
            child
            for child in trunk_edges(tree)
            if child.sink_count() >= self.fanout_threshold
        ]

"""Baseline methods the paper compares against.

* :mod:`repro.baselines.openroad_cts` — an OpenROAD/TritonCTS-style
  single-side buffered CTS (geometric bisection topology, cap-driven
  buffering); the "OpenROAD Buffered Clock Tree" columns of Table III.
* :mod:`repro.baselines.backside` — the shared machinery that flips a chosen
  set of trunk edges of an existing buffered tree to the back side and
  inserts the nTSVs needed to keep buffers and leaf nets on the front side.
* :mod:`repro.baselines.veloso` — [2]: flip *all* trunk nets (latency-driven).
* :mod:`repro.baselines.fanout` — [7]: flip nets whose fanout exceeds a
  threshold (100 in the paper's comparison).
* :mod:`repro.baselines.timing_critical` — [6]: flip the nets feeding the
  most timing-critical end-points (the paper uses a GNN to pick them; here a
  delay-criticality oracle selects the same fraction, see DESIGN.md).
* :mod:`repro.baselines.pdn_aware` — [29]: the criticality-driven flipping of
  [6] under a back-side resource (nTSV) budget reserved for the PDN.
"""

from repro.baselines.openroad_cts import OpenRoadLikeCTS, OpenRoadCtsConfig
from repro.baselines.backside import BacksideAssignment, assign_backside, trunk_edges
from repro.baselines.veloso import VelosoBacksideOptimizer
from repro.baselines.fanout import FanoutBacksideOptimizer
from repro.baselines.timing_critical import TimingCriticalBacksideOptimizer
from repro.baselines.pdn_aware import PdnAwareBacksideOptimizer

__all__ = [
    "OpenRoadLikeCTS",
    "OpenRoadCtsConfig",
    "BacksideAssignment",
    "assign_backside",
    "trunk_edges",
    "VelosoBacksideOptimizer",
    "FanoutBacksideOptimizer",
    "TimingCriticalBacksideOptimizer",
    "PdnAwareBacksideOptimizer",
]

"""Post-CTS back-side assignment: the incremental flow of Fig. 1 (left).

All the baselines [2], [6], [7], [29] share the same mechanics: starting from
a *buffered, single-side* clock tree they choose a subset of trunk edges to
move onto the back-side metal layers and insert nTSVs wherever a back-side
wire meets something that has to stay on the front side (buffer pins, the
clock root, leaf nets).  Only the *selection* of edges differs between the
methods, so this module exposes a generic :func:`assign_backside` driven by
an edge-selector callable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.tech.layers import Side
from repro.tech.pdk import Pdk

#: An edge of the clock tree, identified by its downstream (child) node.
EdgeSelector = Callable[[ClockTreeNode], bool]


@dataclass
class BacksideAssignment:
    """Summary of one back-side assignment pass."""

    flipped_edges: int
    inserted_ntsvs: int
    back_wirelength: float

    def summary(self) -> dict[str, float | int]:
        return {
            "flipped_edges": self.flipped_edges,
            "inserted_ntsvs": self.inserted_ntsvs,
            "back_wirelength_um": round(self.back_wirelength, 1),
        }


def trunk_edges(tree: ClockTree) -> list[ClockTreeNode]:
    """Children of all *trunk* edges: everything above the leaf nets.

    An edge is a trunk edge when its downstream node is a tap (low-level
    cluster centroid), a Steiner point, or any node whose subtree still
    contains a tap or Steiner point (i.e. the edge is above the leaf level).
    Leaf nets (tap/buffer to sinks) and end-point buffers are excluded.
    """
    children = []
    for node in tree.nodes():
        if node.parent is None or node.is_sink:
            continue
        if _is_trunk_node(node):
            children.append(node)
    return children


def _is_trunk_node(node: ClockTreeNode) -> bool:
    if node.kind in (NodeKind.TAP, NodeKind.STEINER):
        return True
    return any(
        descendant.kind in (NodeKind.TAP, NodeKind.STEINER)
        for descendant in node.iter_subtree()
        if descendant is not node
    )


def assign_backside(
    tree: ClockTree,
    pdk: Pdk,
    edge_selector: EdgeSelector | None = None,
    edges: Iterable[ClockTreeNode] | None = None,
) -> BacksideAssignment:
    """Move the selected edges of ``tree`` to the back side (in place).

    Args:
        tree: a buffered, front-side clock tree (modified in place).
        pdk: technology providing the nTSV cell.
        edge_selector: predicate over the downstream node of each trunk edge;
            edges for which it returns True are flipped.  Ignored when
            ``edges`` is given.
        edges: explicit collection of downstream nodes whose parent edges are
            flipped.

    Returns:
        A :class:`BacksideAssignment` with flip and nTSV statistics.
    """
    if not pdk.has_backside or pdk.ntsv is None:
        raise ValueError("back-side assignment needs a back-side enabled PDK")
    if edges is None:
        if edge_selector is None:
            raise ValueError("either an edge selector or an explicit edge list is needed")
        selected = [child for child in trunk_edges(tree) if edge_selector(child)]
    else:
        selected = [child for child in edges if child.parent is not None]

    if not selected:
        return BacksideAssignment(flipped_edges=0, inserted_ntsvs=0, back_wirelength=0.0)

    selected_ids = {id(child) for child in selected}
    node_sides = _solve_node_sides(tree, selected_ids)

    ntsv_cap = pdk.ntsv.capacitance
    inserted = 0
    back_wl = 0.0
    for child in selected:
        parent = child.parent
        parent_side = node_sides[id(parent)]
        child_side = node_sides[id(child)]
        back_wl += child.edge_length()
        inserted += _flip_edge(tree, child, parent_side, child_side, ntsv_cap)

    # Commit the computed sides of non-inserted nodes (Steiner points that
    # ended up entirely on the back side).
    for node in tree.nodes():
        if node.is_ntsv:
            continue
        side = node_sides.get(id(node))
        if side is not None and node.kind is NodeKind.STEINER:
            node.side = side

    return BacksideAssignment(
        flipped_edges=len(selected),
        inserted_ntsvs=inserted,
        back_wirelength=back_wl,
    )


def _solve_node_sides(
    tree: ClockTree, selected_ids: set[int]
) -> dict[int, Side]:
    """Decide which side every existing node ends up on.

    Buffers, sinks, taps (which keep front-side leaf nets) and the clock root
    are pinned to the front side; a Steiner point moves to the back side only
    when *all* of its incident edges are flipped, otherwise it stays on the
    front side and nTSVs are inserted on its flipped edges.
    """
    sides: dict[int, Side] = {}
    for node in tree.nodes():
        if node.kind in (NodeKind.ROOT, NodeKind.BUFFER, NodeKind.SINK, NodeKind.TAP):
            sides[id(node)] = Side.FRONT
            continue
        incident_flipped = []
        if node.parent is not None:
            incident_flipped.append(id(node) in selected_ids)
        incident_flipped.extend(id(child) in selected_ids for child in node.children)
        if incident_flipped and all(incident_flipped):
            sides[id(node)] = Side.BACK
        else:
            sides[id(node)] = Side.FRONT
    return sides


def _flip_edge(
    tree: ClockTree,
    child: ClockTreeNode,
    parent_side: Side,
    child_side: Side,
    ntsv_capacitance: float,
) -> int:
    """Move one edge to the back side, inserting nTSVs at front-side ends.

    Returns the number of nTSVs inserted for this edge.
    """
    parent = child.parent
    assert parent is not None
    if parent_side is Side.BACK and child_side is Side.BACK:
        child.wire_side = Side.BACK
        return 0
    if parent_side is Side.BACK and child_side is Side.FRONT:
        # nTSV at the child (downstream) end only.
        child.wire_side = Side.FRONT
        tree.add_ntsv(child, child.location, ntsv_capacitance, Side.BACK)
        return 1
    if parent_side is Side.FRONT and child_side is Side.BACK:
        # nTSV at the parent (upstream) end only.
        child.wire_side = Side.BACK
        tree.add_ntsv(child, parent.location, ntsv_capacitance, Side.FRONT)
        return 1
    # Both ends stay on the front: via down at the parent end, via up at the
    # child end, back-side wire in between (the paper's Fig. 2(b) situation
    # around buffers).
    child.wire_side = Side.FRONT
    low = tree.add_ntsv(child, child.location, ntsv_capacitance, Side.BACK)
    tree.add_ntsv(low, parent.location, ntsv_capacitance, Side.FRONT)
    return 2

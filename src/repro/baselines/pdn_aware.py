"""Baseline [29] (Vanna-iampikul et al., VLSI 2024): PDN-aware flipping.

The work combines the criticality-driven clock flipping of [6] with a
back-side power delivery network: the PDN occupies most of the back-side
area, so the clock may only use a limited nTSV budget.  The reproduction
models exactly that constraint: end-points are flipped in decreasing
criticality order until the estimated nTSV budget is exhausted.
"""

from __future__ import annotations

from repro.baselines.backside import trunk_edges
from repro.baselines.timing_critical import TimingCriticalBacksideOptimizer
from repro.clocktree import ClockTree, ClockTreeNode


class PdnAwareBacksideOptimizer(TimingCriticalBacksideOptimizer):
    """[29]: criticality-driven flipping under a back-side nTSV budget."""

    flow_name = "vanna_iampikul_2024"

    def __init__(
        self,
        pdk,
        critical_fraction: float = 0.5,
        ntsv_budget: int = 200,
    ) -> None:
        super().__init__(pdk, critical_fraction=critical_fraction)
        if ntsv_budget < 0:
            raise ValueError("the nTSV budget must be non-negative")
        self.ntsv_budget = ntsv_budget

    def select_edges(self, tree: ClockTree) -> list[ClockTreeNode]:
        endpoints = self._rank_endpoints(tree)
        if not endpoints:
            return []
        count = max(1, int(round(len(endpoints) * self.critical_fraction)))
        critical = endpoints[:count]
        allowed = {id(child) for child in trunk_edges(tree)}

        selected: dict[int, ClockTreeNode] = {}
        estimated_ntsvs = 0
        for endpoint in critical:
            path: list[ClockTreeNode] = []
            node = endpoint
            while node is not None and node.parent is not None:
                if id(node) in allowed and id(node) not in selected:
                    path.append(node)
                node = node.parent
            # Rough per-path cost: one via pair where the path meets the
            # front-side root/leaf plus one via pair per buffer on the path.
            buffers_on_path = sum(1 for n in path if n.is_buffer)
            cost = 2 + 2 * buffers_on_path
            if estimated_ntsvs + cost > self.ntsv_budget and selected:
                break
            estimated_ntsvs += cost
            for node in path:
                selected[id(node)] = node
        return list(selected.values())

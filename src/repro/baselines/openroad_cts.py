"""An OpenROAD/TritonCTS-style single-side buffered CTS baseline.

OpenROAD's TritonCTS builds clock trees by (i) grouping sinks into leaf
clusters, (ii) constructing a balanced geometric topology over the cluster
centres, and (iii) inserting buffers level by level so that no driver exceeds
its load limit.  This module reimplements that recipe from scratch (no DME
balancing, no back-side awareness), which is the comparison point used by the
"OpenROAD Buffered Clock Tree" columns of Table III.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.clustering.kmeans import KMeans
from repro.evaluation.metrics import ClockTreeMetrics, evaluate_tree
from repro.geometry import Point
from repro.netlist.clock import ClockNet
from repro.netlist.design import Design
from repro.routing.topology import TopologyNode, balanced_bipartition_topology
from repro.tech.layers import Side
from repro.tech.pdk import Pdk


@dataclass(frozen=True)
class OpenRoadCtsConfig:
    """Tunables of the OpenROAD-like baseline.

    Attributes:
        leaf_cluster_size: sinks per leaf cluster (TritonCTS sink grouping).
        buffer_distance: a buffer is inserted on any trunk edge longer than
            this (um), emulating TritonCTS's fixed buffer distance.
        buffer_every_level: insert a buffer at every branching level of the
            topology (TritonCTS drives every level of its H-tree).
        seed: clustering seed.
    """

    leaf_cluster_size: int = 30
    buffer_distance: float = 110.0
    buffer_every_level: int = 2
    seed: int = 7


@dataclass
class OpenRoadCtsResult:
    """Result of the OpenROAD-like baseline run."""

    design_name: str
    tree: ClockTree
    metrics: ClockTreeMetrics
    runtime: float


class OpenRoadLikeCTS:
    """Cluster + geometric-bisection + per-level buffering CTS."""

    flow_name = "openroad_buffered_tree"

    def __init__(self, pdk: Pdk, config: OpenRoadCtsConfig | None = None) -> None:
        # The baseline is single-side by construction.
        self.pdk = pdk.front_side_only() if pdk.has_backside else pdk
        self.config = config if config is not None else OpenRoadCtsConfig()

    # ----------------------------------------------------------------- public
    def run(self, design: Design | ClockNet, design_name: str | None = None) -> OpenRoadCtsResult:
        """Build the buffered single-side clock tree for ``design``."""
        if isinstance(design, Design):
            clock_net = design.require_clock_net()
            name = design_name or design.name
        else:
            clock_net = design
            name = design_name or design.name
        start = time.perf_counter()
        tree = self._build_tree(clock_net)
        runtime = time.perf_counter() - start
        tree.validate()
        metrics = evaluate_tree(
            tree, self.pdk, design=name, flow=self.flow_name, runtime=runtime
        )
        return OpenRoadCtsResult(design_name=name, tree=tree, metrics=metrics, runtime=runtime)

    # --------------------------------------------------------------- internals
    def _build_tree(self, clock_net: ClockNet) -> ClockTree:
        clusters = self._cluster_sinks(clock_net)
        root = ClockTreeNode(
            name="clkroot",
            kind=NodeKind.ROOT,
            location=clock_net.source.location,
            side=Side.FRONT,
        )
        tree = ClockTree(root, name=clock_net.name)
        centroids = [c[0] for c in clusters]
        topology = balanced_bipartition_topology(centroids)
        top = self._materialise(tree, root, topology, clusters, level=0)
        self._buffer_long_edges(tree)
        self._buffer_taps(tree)
        del top
        return tree

    def _cluster_sinks(self, clock_net: ClockNet):
        from repro.clustering.dual_level import split_by_capacitance

        sinks = clock_net.sinks
        count = max(1, int(np.ceil(len(sinks) / self.config.leaf_cluster_size)))
        if count == 1:
            centroid = Point(
                float(np.mean([s.location.x for s in sinks])),
                float(np.mean([s.location.y for s in sinks])),
            )
            clusters = [(centroid, list(sinks))]
        else:
            points = np.array([[s.location.x, s.location.y] for s in sinks])
            result = KMeans(
                n_clusters=count,
                seed=self.config.seed,
                max_cluster_size=self.config.leaf_cluster_size + 2,
            ).fit(points)
            clusters = []
            for cluster in range(result.cluster_count):
                members_idx = result.members(cluster)
                if len(members_idx) == 0:
                    continue
                members = [sinks[i] for i in members_idx]
                centroid = Point(
                    float(np.mean([m.location.x for m in members])),
                    float(np.mean([m.location.y for m in members])),
                )
                clusters.append((centroid, members))
        # TritonCTS splits sink groups that would overload their driver.
        return split_by_capacitance(
            clusters,
            max_capacitance=0.9 * self.pdk.max_capacitance,
            unit_wire_capacitance=self.pdk.front_layer.unit_capacitance,
            seed=self.config.seed,
        )

    def _materialise(
        self,
        tree: ClockTree,
        parent: ClockTreeNode,
        topology: TopologyNode,
        clusters,
        level: int,
    ) -> ClockTreeNode:
        if topology.is_leaf:
            centroid, members = clusters[topology.terminal_index]
            tap = ClockTreeNode(
                name=tree.new_name("tap"),
                kind=NodeKind.TAP,
                location=centroid,
                side=Side.FRONT,
                wire_side=Side.FRONT,
            )
            parent.add_child(tap)
            for sink in members:
                tap.add_child(
                    ClockTreeNode(
                        name=sink.name,
                        kind=NodeKind.SINK,
                        location=sink.location,
                        capacitance=sink.capacitance,
                        side=Side.FRONT,
                        wire_side=Side.FRONT,
                    )
                )
            return tap
        steiner = ClockTreeNode(
            name=tree.new_name("st"),
            kind=NodeKind.STEINER,
            location=topology.location_hint,
            side=Side.FRONT,
            wire_side=Side.FRONT,
        )
        parent.add_child(steiner)
        for child in topology.children:
            self._materialise(tree, steiner, child, clusters, level + 1)
        # Buffer every N levels of the topology (drives the branch below).
        if self.config.buffer_every_level > 0 and level % self.config.buffer_every_level == 0:
            tree.add_buffer(
                steiner, steiner.location, self.pdk.buffer.input_capacitance
            )
        return steiner

    def _buffer_long_edges(self, tree: ClockTree) -> None:
        """Chain buffers along trunk edges longer than the buffer distance."""
        from repro.geometry.point import point_toward

        distance = self.config.buffer_distance
        trunk_children = [
            node for node in tree.nodes() if node.parent is not None and not node.is_sink
        ]
        for child in trunk_children:
            length = child.edge_length()
            count = int(length // distance)
            if count < 1:
                continue
            parent = child.parent
            for i in range(count, 0, -1):
                location = point_toward(
                    child.location, parent.location, length * i / (count + 1)
                )
                tree.add_buffer(child, location, self.pdk.buffer.input_capacitance)

    def _buffer_taps(self, tree: ClockTree) -> None:
        """Give every leaf cluster its own driving buffer (TritonCTS leaf level)."""
        for tap in [n for n in tree.nodes() if n.kind is NodeKind.TAP]:
            sink_children = [c for c in tap.children if c.is_sink]
            if not sink_children:
                continue
            buffer_node = ClockTreeNode(
                name=tree.new_name("leafbuf"),
                kind=NodeKind.BUFFER,
                location=tap.location,
                side=Side.FRONT,
                capacitance=self.pdk.buffer.input_capacitance,
                wire_side=Side.FRONT,
            )
            tap.add_child(buffer_node)
            for sink in sink_children:
                sink.detach()
                buffer_node.add_child(sink)

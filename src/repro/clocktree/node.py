"""Nodes of the clock tree."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.geometry import Point
from repro.tech.layers import Side


class NodeKind(enum.Enum):
    """What a clock tree node physically is."""

    ROOT = "root"  # the clock source
    STEINER = "steiner"  # a routing merge/branch point
    SINK = "sink"  # a flip-flop clock pin
    BUFFER = "buffer"  # an inserted clock buffer
    NTSV = "ntsv"  # an inserted nano-TSV (side change point)
    TAP = "tap"  # a cluster tap point (low-level centroid)


@dataclass(eq=False)
class ClockTreeNode:
    """A node of the clock tree.

    Attributes:
        name: unique node name within its tree.
        kind: physical node kind.
        location: placement location in micrometres.
        side: which die face the node's pins are on.  Buffers are always on
            the front side; an nTSV spans both sides and stores the side of
            its *upstream* (root-facing) terminal, with the downstream
            terminal implicitly on the opposite side.
        capacitance: pin input capacitance (fF) for sinks and buffers; the
            via capacitance for nTSVs; 0 for Steiner points.
        wire_side: side of the wire connecting this node to its parent
            (meaningless for the root).
        parent / children: tree structure links.
    """

    name: str
    kind: NodeKind
    location: Point
    side: Side = Side.FRONT
    capacitance: float = 0.0
    wire_side: Side = Side.FRONT
    parent: Optional["ClockTreeNode"] = field(default=None, repr=False)
    children: list["ClockTreeNode"] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError(f"node {self.name}: negative capacitance")
        if self.kind is NodeKind.BUFFER and self.side is not Side.FRONT:
            raise ValueError(f"buffer {self.name} must sit on the front side")

    # ------------------------------------------------------------- structure
    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_sink(self) -> bool:
        return self.kind is NodeKind.SINK

    @property
    def is_buffer(self) -> bool:
        return self.kind is NodeKind.BUFFER

    @property
    def is_ntsv(self) -> bool:
        return self.kind is NodeKind.NTSV

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def add_child(self, child: "ClockTreeNode") -> "ClockTreeNode":
        """Attach ``child`` below this node and return it."""
        if child.parent is not None:
            raise ValueError(f"node {child.name} already has a parent")
        if child is self:
            raise ValueError(f"node {self.name} cannot be its own child")
        child.parent = self
        self.children.append(child)
        return child

    def detach(self) -> "ClockTreeNode":
        """Detach this node (and its subtree) from its parent and return it."""
        if self.parent is None:
            raise ValueError(f"node {self.name} has no parent to detach from")
        self.parent.children.remove(self)
        self.parent = None
        return self

    # --------------------------------------------------------------- queries
    def edge_length(self) -> float:
        """Manhattan length (um) of the wire from the parent to this node."""
        if self.parent is None:
            return 0.0
        return self.location.manhattan(self.parent.location)

    def depth(self) -> int:
        """Number of edges between this node and the tree root."""
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def ancestors(self) -> list["ClockTreeNode"]:
        """Return the chain of ancestors from the parent up to the root."""
        chain = []
        node = self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def iter_subtree(self):
        """Yield this node and every descendant (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def sink_count(self) -> int:
        """Number of sinks in the subtree rooted at this node."""
        return sum(1 for node in self.iter_subtree() if node.is_sink)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClockTreeNode({self.name!r}, {self.kind.value}, {self.location}, "
            f"side={self.side.value})"
        )

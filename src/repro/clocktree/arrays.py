"""Flattened struct-of-arrays snapshot of a :class:`ClockTree`.

The pointer-chasing representation of :class:`~repro.clocktree.ClockTree` is
convenient for flows that edit the tree, but terrible for timing analysis:
every Elmore pass walks Python objects and hashes ``id(node)`` keys.
:class:`TreeArrays` compiles the tree once into dense numpy arrays indexed by
*row* — parent row, node kind, edge length, wire side, and capacitance — plus
a breadth-first level structure so that timing engines can run vectorized
topological-order passes (children of level ``d`` are exactly level ``d+1``).

The snapshot is *patchable*: :meth:`apply_splice` and :meth:`apply_rewire`
mirror the edit kinds recorded by :meth:`ClockTree.mark_splice` /
:meth:`ClockTree.mark_rewire`, appending or re-syncing only the affected rows
so that :class:`~repro.timing.VectorizedElmoreEngine` can re-time a dirty
cone instead of recompiling the whole tree.  Rows whose node disappears from
the tree are tombstoned (``alive = False``) and compacted away on the next
full compile.
"""

from __future__ import annotations

import numpy as np

from repro.clocktree.node import ClockTreeNode, NodeKind
from repro.clocktree.tree import ClockTree
from repro.tech.layers import Side

#: Integer codes of :class:`NodeKind` stored in the ``kind`` array.
KIND_ROOT, KIND_STEINER, KIND_SINK, KIND_BUFFER, KIND_NTSV, KIND_TAP = range(6)

KIND_CODE: dict[NodeKind, int] = {
    NodeKind.ROOT: KIND_ROOT,
    NodeKind.STEINER: KIND_STEINER,
    NodeKind.SINK: KIND_SINK,
    NodeKind.BUFFER: KIND_BUFFER,
    NodeKind.NTSV: KIND_NTSV,
    NodeKind.TAP: KIND_TAP,
}


class TreeArrays:
    """A dense, patchable array snapshot of one :class:`ClockTree`.

    Row 0 is always the tree root.  ``size`` counts allocated rows including
    tombstones; use :attr:`alive` (or :meth:`alive_rows`) to filter.
    """

    __slots__ = (
        "tree",
        "size",
        "nodes",
        "parent_row",
        "kind",
        "edge_length",
        "wire_front",
        "cap",
        "alive",
        "row_of",
        "children_rows",
        "dead_count",
        "_levels",
        "_sink_rows",
        "_alive_rows",
    )

    def __init__(self, tree: ClockTree) -> None:
        self.tree = tree
        self.compile()

    # ------------------------------------------------------------- compile
    def compile(self) -> None:
        """(Re)build every array from the current tree structure."""
        order: list[ClockTreeNode] = []
        levels: list[np.ndarray] = []
        frontier = [self.tree.root]
        while frontier:
            start = len(order)
            order.extend(frontier)
            levels.append(np.arange(start, len(order), dtype=np.int64))
            frontier = [c for node in frontier for c in node.children]
        n = len(order)

        self.size = n
        self.nodes = order
        self.parent_row = np.full(n, -1, dtype=np.int64)
        self.kind = np.zeros(n, dtype=np.int8)
        self.edge_length = np.zeros(n, dtype=np.float64)
        self.wire_front = np.ones(n, dtype=bool)
        self.cap = np.zeros(n, dtype=np.float64)
        self.alive = np.ones(n, dtype=bool)
        self.row_of = {id(node): row for row, node in enumerate(order)}
        self.children_rows = [
            [self.row_of[id(c)] for c in node.children] for node in order
        ]
        self.dead_count = 0
        for row, node in enumerate(order):
            self._sync_row(row, node)
        self._levels = levels
        self._sink_rows = None
        self._alive_rows = None

    def _sync_row(self, row: int, node: ClockTreeNode) -> None:
        """Refresh the scalar fields of ``row`` from ``node``."""
        parent = node.parent
        self.parent_row[row] = -1 if parent is None else self.row_of[id(parent)]
        self.kind[row] = KIND_CODE[node.kind]
        self.edge_length[row] = node.edge_length()
        self.wire_front[row] = node.wire_side is Side.FRONT
        self.cap[row] = node.capacitance

    # ------------------------------------------------------------- queries
    @property
    def capacity(self) -> int:
        return int(self.parent_row.shape[0])

    def levels(self) -> list[np.ndarray]:
        """Alive rows grouped by depth, root first (rebuilt after patches)."""
        if self._levels is None:
            levels: list[np.ndarray] = []
            frontier = [0]
            while frontier:
                levels.append(np.asarray(frontier, dtype=np.int64))
                frontier = [c for row in frontier for c in self.children_rows[row]]
            self._levels = levels
        return self._levels

    def sink_rows(self) -> np.ndarray:
        """Rows of every alive sink node."""
        if self._sink_rows is None:
            used = self.kind[: self.size]
            mask = (used == KIND_SINK) & self.alive[: self.size]
            self._sink_rows = np.flatnonzero(mask)
        return self._sink_rows

    def alive_rows(self) -> np.ndarray:
        """Every alive row (any order)."""
        if self._alive_rows is None:
            self._alive_rows = np.flatnonzero(self.alive[: self.size])
        return self._alive_rows

    def kind_rows(self, code: int) -> np.ndarray:
        rows = self.alive_rows()
        return rows[self.kind[rows] == code]

    # ------------------------------------------------------------- patches
    def _invalidate(self) -> None:
        self._levels = None
        self._sink_rows = None
        self._alive_rows = None

    def _append_row(self, node: ClockTreeNode) -> int:
        if self.size == self.capacity:
            grow = max(16, self.capacity)
            self.parent_row = np.concatenate(
                [self.parent_row, np.full(grow, -1, dtype=np.int64)]
            )
            self.kind = np.concatenate([self.kind, np.zeros(grow, dtype=np.int8)])
            self.edge_length = np.concatenate([self.edge_length, np.zeros(grow)])
            self.wire_front = np.concatenate([self.wire_front, np.ones(grow, bool)])
            self.cap = np.concatenate([self.cap, np.zeros(grow)])
            self.alive = np.concatenate([self.alive, np.ones(grow, bool)])
        row = self.size
        self.size += 1
        self.nodes.append(node)
        self.children_rows.append([])
        self.alive[row] = True
        self.row_of[id(node)] = row
        self._sync_row(row, node)
        return row

    def apply_splice(self, node: ClockTreeNode) -> tuple[int, int] | None:
        """Patch in a node freshly spliced onto the edge above its only child.

        Returns ``(new_row, child_row)`` or None when the edit does not match
        the splice shape (the caller should recompile from scratch then).
        """
        parent = node.parent
        if parent is None or len(node.children) != 1 or id(node) in self.row_of:
            return None
        child = node.children[0]
        child_row = self.row_of.get(id(child))
        parent_row = self.row_of.get(id(parent))
        if child_row is None or parent_row is None:
            return None
        row = self._append_row(node)
        self.children_rows[parent_row] = [
            self.row_of[id(c)] for c in parent.children
        ]
        self.children_rows[row] = [child_row]
        self._sync_row(child_row, child)
        self._invalidate()
        return row, child_row

    def apply_rewire(self, node: ClockTreeNode) -> list[np.ndarray] | None:
        """Re-sync every row of the subtree rooted at ``node``.

        Handles arbitrary edits confined to the subtree: attribute changes,
        new nodes, removed nodes, re-parenting.  Returns the subtree rows
        grouped by relative depth (``node`` first), or None when ``node`` is
        unknown (caller recompiles).
        """
        top_row = self.row_of.get(id(node))
        if top_row is None:
            return None
        # Rows that used to belong to the subtree (tombstone what vanishes).
        old_rows: set[int] = set()
        stack = [top_row]
        while stack:
            row = stack.pop()
            old_rows.add(row)
            stack.extend(self.children_rows[row])
        # Breadth-first re-sync of the new subtree.
        levels: list[np.ndarray] = []
        seen: set[int] = set()
        synced: list[tuple[int, ClockTreeNode]] = []
        frontier = [node]
        while frontier:
            rows: list[int] = []
            nxt: list[ClockTreeNode] = []
            for tree_node in frontier:
                row = self.row_of.get(id(tree_node))
                if row is None:
                    row = self._append_row(tree_node)
                rows.append(row)
                seen.add(row)
                synced.append((row, tree_node))
                nxt.extend(tree_node.children)
            levels.append(np.asarray(rows, dtype=np.int64))
            frontier = nxt
        # Children rows can only be filled once every subtree node has a row;
        # parent links are refreshed in the same pass.
        for row, tree_node in synced:
            self._sync_row(row, tree_node)
            self.children_rows[row] = [self.row_of[id(c)] for c in tree_node.children]
        for row in old_rows - seen:
            self.alive[row] = False
            self.dead_count += 1
            self.row_of.pop(id(self.nodes[row]), None)
            self.nodes[row] = None  # release the node object
            self.children_rows[row] = []
        self._invalidate()
        return levels

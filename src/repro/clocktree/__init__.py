"""Clock tree data structures shared by every flow in the library.

A :class:`ClockTree` is a rooted tree of :class:`ClockTreeNode` objects.
Sinks are leaves; Steiner (merge) points, buffers, and nTSVs are internal
nodes.  Every node carries a *side* (front or back) and every edge carries
the side of the wire implementing it, which is how the double-side structure
of the paper (Fig. 2) is represented.
"""

from repro.clocktree.node import ClockTreeNode, NodeKind
from repro.clocktree.tree import ClockTree, ConnectivityError
from repro.clocktree.arrays import TreeArrays

__all__ = ["ClockTreeNode", "NodeKind", "ClockTree", "ConnectivityError", "TreeArrays"]

"""The :class:`ClockTree` container and its structural operations."""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.geometry import Point
from repro.tech.layers import Side
from repro.clocktree.node import ClockTreeNode, NodeKind


class ConnectivityError(RuntimeError):
    """Raised when a tree violates the double-side connectivity constraint."""


class ClockTree:
    """A rooted clock tree with helpers for traversal, metrics, and editing.

    The tree owns a name counter so that flows can create uniquely named
    buffers, nTSVs, and Steiner points without coordinating with each other.
    """

    def __init__(self, root: ClockTreeNode, name: str = "clk") -> None:
        if root.parent is not None:
            raise ValueError("the root of a clock tree must not have a parent")
        if root.kind is not NodeKind.ROOT:
            raise ValueError("the tree root must be a ROOT node")
        self.name = name
        self.root = root
        self._counter = 0

    # ------------------------------------------------------------- traversal
    def nodes(self) -> Iterator[ClockTreeNode]:
        """Yield every node in pre-order (root first)."""
        return self.root.iter_subtree()

    def nodes_bottom_up(self) -> list[ClockTreeNode]:
        """Return every node ordered so children precede their parents."""
        order: list[ClockTreeNode] = []
        queue: deque[ClockTreeNode] = deque([self.root])
        while queue:
            node = queue.popleft()
            order.append(node)
            queue.extend(node.children)
        order.reverse()
        return order

    def sinks(self) -> list[ClockTreeNode]:
        """All sink nodes."""
        return [n for n in self.nodes() if n.is_sink]

    def buffers(self) -> list[ClockTreeNode]:
        """All inserted buffer nodes."""
        return [n for n in self.nodes() if n.is_buffer]

    def ntsvs(self) -> list[ClockTreeNode]:
        """All inserted nTSV nodes."""
        return [n for n in self.nodes() if n.is_ntsv]

    def edges(self) -> list[tuple[ClockTreeNode, ClockTreeNode]]:
        """All (parent, child) edges."""
        return [(n.parent, n) for n in self.nodes() if n.parent is not None]

    def find(self, name: str) -> ClockTreeNode:
        """Find a node by name (raises ``KeyError`` when absent)."""
        for node in self.nodes():
            if node.name == name:
                return node
        raise KeyError(f"clock tree {self.name}: no node named {name!r}")

    # -------------------------------------------------------------- metrics
    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    def buffer_count(self) -> int:
        return len(self.buffers())

    def ntsv_count(self) -> int:
        return len(self.ntsvs())

    def sink_count(self) -> int:
        return len(self.sinks())

    def wirelength(self, side: Side | None = None) -> float:
        """Total Manhattan wirelength (um), optionally restricted to one side."""
        total = 0.0
        for node in self.nodes():
            if node.parent is None:
                continue
            if side is not None and node.wire_side is not side:
                continue
            total += node.edge_length()
        return total

    def max_depth(self) -> int:
        """Longest root-to-leaf path length in edges."""
        best = 0
        for node in self.nodes():
            if node.is_leaf:
                best = max(best, node.depth())
        return best

    # -------------------------------------------------------------- editing
    def new_name(self, prefix: str) -> str:
        """Return a fresh unique node name with the given prefix."""
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def insert_on_edge(
        self,
        child: ClockTreeNode,
        kind: NodeKind,
        location: Point,
        side: Side = Side.FRONT,
        capacitance: float = 0.0,
        wire_side: Side | None = None,
        name: str | None = None,
    ) -> ClockTreeNode:
        """Insert a new node on the edge between ``child`` and its parent.

        The new node becomes the parent of ``child``.  ``wire_side`` sets the
        side of the *upper* wire (new node to old parent); the lower wire
        keeps ``child.wire_side`` unless the caller changes it afterwards.
        """
        parent = child.parent
        if parent is None:
            raise ValueError(f"cannot insert above the root node {child.name!r}")
        node = ClockTreeNode(
            name=name or self.new_name(kind.value),
            kind=kind,
            location=location,
            side=side,
            capacitance=capacitance,
            wire_side=wire_side if wire_side is not None else child.wire_side,
        )
        parent.children.remove(child)
        child.parent = None
        parent.add_child(node)
        node.add_child(child)
        return node

    def add_buffer(
        self,
        child: ClockTreeNode,
        location: Point,
        input_capacitance: float,
        name: str | None = None,
    ) -> ClockTreeNode:
        """Insert a clock buffer on the edge above ``child`` (front side)."""
        return self.insert_on_edge(
            child,
            NodeKind.BUFFER,
            location,
            side=Side.FRONT,
            capacitance=input_capacitance,
            wire_side=Side.FRONT,
            name=name,
        )

    def add_ntsv(
        self,
        child: ClockTreeNode,
        location: Point,
        capacitance: float,
        upstream_side: Side,
        name: str | None = None,
    ) -> ClockTreeNode:
        """Insert an nTSV on the edge above ``child``.

        ``upstream_side`` is the side of the wire toward the root; the wire
        toward ``child`` keeps its existing side.
        """
        return self.insert_on_edge(
            child,
            NodeKind.NTSV,
            location,
            side=upstream_side,
            capacitance=capacitance,
            wire_side=upstream_side,
            name=name,
        )

    # ----------------------------------------------------------- validation
    def validate(self) -> None:
        """Check structural and double-side connectivity invariants.

        Raises :class:`ConnectivityError` when:

        * a non-nTSV node touches a wire on the opposite side (the paper's
          "shared vertex of any two edges must have the same side type"),
        * a buffer sits on the back side,
        * a sink is not on the front side,
        * the parent/child links are inconsistent or contain a cycle.
        """
        seen: set[int] = set()
        for node in self.nodes():
            if id(node) in seen:
                raise ConnectivityError(f"cycle detected at node {node.name!r}")
            seen.add(id(node))
            for child in node.children:
                if child.parent is not node:
                    raise ConnectivityError(
                        f"broken parent link: {child.name!r} does not point to {node.name!r}"
                    )
            if node.is_buffer and node.side is not Side.FRONT:
                raise ConnectivityError(f"buffer {node.name!r} is on the back side")
            if node.is_sink and node.side is not Side.FRONT:
                raise ConnectivityError(f"sink {node.name!r} is on the back side")
            self._check_side_consistency(node)

    def _check_side_consistency(self, node: ClockTreeNode) -> None:
        """Verify every wire touching ``node`` is compatible with its side."""
        incident_sides: list[Side] = []
        if node.parent is not None:
            incident_sides.append(node.wire_side)
        incident_sides.extend(child.wire_side for child in node.children)
        if node.is_ntsv:
            # An nTSV spans both sides: the upstream wire must match the
            # stored (upstream) side and downstream wires the opposite side.
            if node.parent is not None and node.wire_side is not node.side:
                raise ConnectivityError(
                    f"nTSV {node.name!r}: upstream wire on {node.wire_side.value}, "
                    f"expected {node.side.value}"
                )
            for child in node.children:
                if child.wire_side is not node.side.opposite:
                    raise ConnectivityError(
                        f"nTSV {node.name!r}: downstream wire on "
                        f"{child.wire_side.value}, expected {node.side.opposite.value}"
                    )
            return
        for side in incident_sides:
            if side is not node.side:
                raise ConnectivityError(
                    f"node {node.name!r} ({node.kind.value}) on side {node.side.value} "
                    f"touches a wire on side {side.value}"
                )

    # ------------------------------------------------------------------ misc
    def apply(self, visitor: Callable[[ClockTreeNode], None]) -> None:
        """Apply ``visitor`` to every node (pre-order)."""
        for node in self.nodes():
            visitor(node)

    def copy(self) -> "ClockTree":
        """Deep-copy the tree (nodes are duplicated, locations shared)."""
        mapping: dict[int, ClockTreeNode] = {}
        new_root: ClockTreeNode | None = None
        for node in self.nodes():
            clone = ClockTreeNode(
                name=node.name,
                kind=node.kind,
                location=node.location,
                side=node.side,
                capacitance=node.capacitance,
                wire_side=node.wire_side,
            )
            mapping[id(node)] = clone
            if node.parent is None:
                new_root = clone
            else:
                mapping[id(node.parent)].add_child(clone)
        assert new_root is not None
        tree = ClockTree(new_root, name=self.name)
        tree._counter = self._counter
        return tree

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClockTree(name={self.name!r}, nodes={self.node_count()}, "
            f"sinks={self.sink_count()}, buffers={self.buffer_count()}, "
            f"ntsvs={self.ntsv_count()})"
        )

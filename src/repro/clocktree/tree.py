"""The :class:`ClockTree` container and its structural operations."""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.geometry import Point
from repro.tech.layers import Side
from repro.clocktree.node import ClockTreeNode, NodeKind


class ConnectivityError(RuntimeError):
    """Raised when a tree violates the double-side connectivity constraint."""


#: Edit-log length beyond which the log is collapsed into a single full
#: invalidation.  Incremental timers replay the log; past this point a fresh
#: compile is cheaper than replaying hundreds of patches.
_MAX_EDIT_LOG = 256


class ClockTree:
    """A rooted clock tree with helpers for traversal, metrics, and editing.

    The tree owns a name counter so that flows can create uniquely named
    buffers, nTSVs, and Steiner points without coordinating with each other.

    Structural edits performed through the tree API (:meth:`insert_on_edge`,
    :meth:`add_buffer`, :meth:`add_ntsv`) are recorded in a bounded edit log
    so that incremental consumers — most importantly
    :class:`~repro.timing.VectorizedElmoreEngine` — can re-time only the
    affected cone instead of recompiling the whole tree.  Code that mutates
    nodes directly (``node.add_child`` / ``node.detach`` / attribute writes)
    must tell the tree about it with :meth:`mark_rewire` (when the changes are
    confined to one node's subtree) or :meth:`touch` (arbitrary changes).
    """

    def __init__(self, root: ClockTreeNode, name: str = "clk") -> None:
        if root.parent is not None:
            raise ValueError("the root of a clock tree must not have a parent")
        if root.kind is not NodeKind.ROOT:
            raise ValueError("the tree root must be a ROOT node")
        self.name = name
        self.root = root
        self._counter = 0
        self._version = 0
        self._edits: list[tuple[int, str, ClockTreeNode | None]] = []
        self._find_cache: dict[str, ClockTreeNode] | None = None

    # ------------------------------------------------------- edit tracking
    @property
    def version(self) -> int:
        """Monotonic structural version; bumped by every recorded edit."""
        return self._version

    def _record(self, kind: str, node: ClockTreeNode | None) -> None:
        self._version += 1
        self._edits.append((self._version, kind, node))
        if len(self._edits) > _MAX_EDIT_LOG:
            # Collapse: consumers past the first entry see "unknown edits".
            self._edits = [(self._version, "touch", None)]

    def mark_splice(self, node: ClockTreeNode) -> None:
        """Record that ``node`` was spliced onto the edge above its only child.

        ``node`` must be freshly inserted between its parent and exactly one
        pre-existing child (the :meth:`insert_on_edge` shape).
        """
        self._record("splice", node)

    def mark_rewire(self, node: ClockTreeNode) -> None:
        """Record that the subtree rooted at ``node`` changed arbitrarily.

        Covers re-parenting, node insertion/removal, and attribute changes
        (locations, capacitances, wire sides) as long as every affected node
        lies inside ``node``'s subtree and ``node`` itself stays attached.
        """
        self._record("rewire", node)

    def touch(self) -> None:
        """Record an unscoped structural change (forces full re-analysis)."""
        self._record("touch", None)

    @property
    def edit_log(self) -> tuple[tuple[int, str, ClockTreeNode | None], ...]:
        """The recorded ``(version, kind, node)`` edits, oldest first.

        Read-only view for coherence checks (:mod:`repro.guard`); incremental
        consumers should use :meth:`edits_since` instead.
        """
        return tuple(self._edits)

    def edits_since(
        self, version: int
    ) -> list[tuple[int, str, ClockTreeNode | None]] | None:
        """Edits recorded after ``version``, or None when the log was pruned.

        ``None`` means an incremental consumer compiled at ``version`` cannot
        catch up by replaying patches and must recompile from scratch.
        """
        if version == self._version:
            return []
        if not self._edits or self._edits[0][0] > version + 1:
            return None
        return [edit for edit in self._edits if edit[0] > version]

    # ------------------------------------------------------------- traversal
    def nodes(self) -> Iterator[ClockTreeNode]:
        """Yield every node in pre-order (root first)."""
        return self.root.iter_subtree()

    def nodes_bottom_up(self) -> list[ClockTreeNode]:
        """Return every node ordered so children precede their parents."""
        order: list[ClockTreeNode] = []
        queue: deque[ClockTreeNode] = deque([self.root])
        while queue:
            node = queue.popleft()
            order.append(node)
            queue.extend(node.children)
        order.reverse()
        return order

    def sinks(self) -> list[ClockTreeNode]:
        """All sink nodes."""
        return [n for n in self.nodes() if n.is_sink]

    def buffers(self) -> list[ClockTreeNode]:
        """All inserted buffer nodes."""
        return [n for n in self.nodes() if n.is_buffer]

    def ntsvs(self) -> list[ClockTreeNode]:
        """All inserted nTSV nodes."""
        return [n for n in self.nodes() if n.is_ntsv]

    def edges(self) -> list[tuple[ClockTreeNode, ClockTreeNode]]:
        """All (parent, child) edges."""
        return [(n.parent, n) for n in self.nodes() if n.parent is not None]

    def find(self, name: str) -> ClockTreeNode:
        """Find a node by name in O(1) amortised (raises ``KeyError`` when absent).

        A lazily built name index replaces the original O(n) scan.  Because
        trees can also be edited through node-level operations the tree never
        sees, every cache hit is verified (name unchanged and node still
        attached below this root); a stale hit or a miss falls back to one
        full scan that rebuilds the index.
        """
        cache = self._find_cache
        if cache is not None:
            node = cache.get(name)
            if node is not None and node.name == name and self._is_attached(node):
                return node
        # Miss or stale entry: rescan once, keeping first-in-preorder
        # semantics for (pathological) duplicate names.
        cache = {}
        for node in self.nodes():
            cache.setdefault(node.name, node)
        self._find_cache = cache
        if name in cache:
            return cache[name]
        raise KeyError(f"clock tree {self.name}: no node named {name!r}")

    def _is_attached(self, node: ClockTreeNode) -> bool:
        """True when walking parent links from ``node`` reaches this root."""
        while node.parent is not None:
            node = node.parent
        return node is self.root

    # -------------------------------------------------------------- metrics
    def counts(self) -> tuple[int, int, int, int]:
        """(nodes, sinks, buffers, ntsvs) in one pass over the raw links.

        This is the ``nodes()``-free fast path shared by the individual
        ``*_count`` helpers: a tight loop over ``children`` lists without the
        generator and property overhead of :meth:`nodes`.
        """
        nodes = sinks = buffers = ntsvs = 0
        sink_kind, buffer_kind, ntsv_kind = NodeKind.SINK, NodeKind.BUFFER, NodeKind.NTSV
        stack = [self.root]
        pop = stack.pop
        extend = stack.extend
        while stack:
            node = pop()
            nodes += 1
            kind = node.kind
            if kind is sink_kind:
                sinks += 1
            elif kind is buffer_kind:
                buffers += 1
            elif kind is ntsv_kind:
                ntsvs += 1
            extend(node.children)
        return nodes, sinks, buffers, ntsvs

    def node_count(self) -> int:
        return self.counts()[0]

    def buffer_count(self) -> int:
        return self.counts()[2]

    def ntsv_count(self) -> int:
        return self.counts()[3]

    def sink_count(self) -> int:
        return self.counts()[1]

    def wirelength(self, side: Side | None = None) -> float:
        """Total Manhattan wirelength (um), optionally restricted to one side."""
        total = 0.0
        for node in self.nodes():
            if node.parent is None:
                continue
            if side is not None and node.wire_side is not side:
                continue
            total += node.edge_length()
        return total

    def max_depth(self) -> int:
        """Longest root-to-leaf path length in edges."""
        best = 0
        for node in self.nodes():
            if node.is_leaf:
                best = max(best, node.depth())
        return best

    # -------------------------------------------------------------- editing
    def new_name(self, prefix: str) -> str:
        """Return a fresh unique node name with the given prefix."""
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def insert_on_edge(
        self,
        child: ClockTreeNode,
        kind: NodeKind,
        location: Point,
        side: Side = Side.FRONT,
        capacitance: float = 0.0,
        wire_side: Side | None = None,
        name: str | None = None,
    ) -> ClockTreeNode:
        """Insert a new node on the edge between ``child`` and its parent.

        The new node becomes the parent of ``child``.  ``wire_side`` sets the
        side of the *upper* wire (new node to old parent); the lower wire
        keeps ``child.wire_side`` unless the caller changes it afterwards.
        """
        parent = child.parent
        if parent is None:
            raise ValueError(f"cannot insert above the root node {child.name!r}")
        node = ClockTreeNode(
            name=name or self.new_name(kind.value),
            kind=kind,
            location=location,
            side=side,
            capacitance=capacitance,
            wire_side=wire_side if wire_side is not None else child.wire_side,
        )
        parent.children.remove(child)
        child.parent = None
        parent.add_child(node)
        node.add_child(child)
        self.mark_splice(node)
        return node

    def add_buffer(
        self,
        child: ClockTreeNode,
        location: Point,
        input_capacitance: float,
        name: str | None = None,
    ) -> ClockTreeNode:
        """Insert a clock buffer on the edge above ``child`` (front side)."""
        return self.insert_on_edge(
            child,
            NodeKind.BUFFER,
            location,
            side=Side.FRONT,
            capacitance=input_capacitance,
            wire_side=Side.FRONT,
            name=name,
        )

    def add_ntsv(
        self,
        child: ClockTreeNode,
        location: Point,
        capacitance: float,
        upstream_side: Side,
        name: str | None = None,
    ) -> ClockTreeNode:
        """Insert an nTSV on the edge above ``child``.

        ``upstream_side`` is the side of the wire toward the root; the wire
        toward ``child`` keeps its existing side.
        """
        return self.insert_on_edge(
            child,
            NodeKind.NTSV,
            location,
            side=upstream_side,
            capacitance=capacitance,
            wire_side=upstream_side,
            name=name,
        )

    # ----------------------------------------------------------- validation
    def validate(self) -> None:
        """Check structural and double-side connectivity invariants.

        Raises :class:`ConnectivityError` when:

        * a non-nTSV node touches a wire on the opposite side (the paper's
          "shared vertex of any two edges must have the same side type"),
        * a buffer sits on the back side,
        * a sink is not on the front side,
        * the parent/child links are inconsistent or contain a cycle,
        * two nodes share a name,
        * the :meth:`find` name index disagrees with the traversal.
        """
        seen: set[int] = set()
        names: dict[str, ClockTreeNode] = {}
        for node in self.nodes():
            if id(node) in seen:
                raise ConnectivityError(f"cycle detected at node {node.name!r}")
            seen.add(id(node))
            if node.name in names:
                raise ConnectivityError(f"duplicate node name {node.name!r}")
            names[node.name] = node
            for child in node.children:
                if child.parent is not node:
                    raise ConnectivityError(
                        f"broken parent link: {child.name!r} does not point to {node.name!r}"
                    )
            if node.is_buffer and node.side is not Side.FRONT:
                raise ConnectivityError(f"buffer {node.name!r} is on the back side")
            if node.is_sink and node.side is not Side.FRONT:
                raise ConnectivityError(f"sink {node.name!r} is on the back side")
            self._check_side_consistency(node)
        self._check_find_index(names)

    def _check_find_index(self, names: dict[str, ClockTreeNode]) -> None:
        """Verify the lazy :meth:`find` cache is coherent with the traversal.

        Entries for renamed or detached nodes are fine — :meth:`find`
        detects those itself and rescans.  What it cannot detect is an entry
        whose node still carries the looked-up name and still reaches this
        root through parent links but is *not* part of the traversal (its
        parent does not list it as a child): :meth:`find` would keep serving
        a node the tree does not contain.
        """
        cache = self._find_cache
        if cache is None:
            return
        for key, cached in cache.items():
            if cached.name != key or names.get(key) is cached:
                continue
            if self._is_attached(cached):
                raise ConnectivityError(
                    f"find() index incoherent: entry {key!r} resolves to a "
                    "node the traversal does not reach"
                )

    def _check_side_consistency(self, node: ClockTreeNode) -> None:
        """Verify every wire touching ``node`` is compatible with its side."""
        incident_sides: list[Side] = []
        if node.parent is not None:
            incident_sides.append(node.wire_side)
        incident_sides.extend(child.wire_side for child in node.children)
        if node.is_ntsv:
            # An nTSV spans both sides: the upstream wire must match the
            # stored (upstream) side and downstream wires the opposite side.
            if node.parent is not None and node.wire_side is not node.side:
                raise ConnectivityError(
                    f"nTSV {node.name!r}: upstream wire on {node.wire_side.value}, "
                    f"expected {node.side.value}"
                )
            for child in node.children:
                if child.wire_side is not node.side.opposite:
                    raise ConnectivityError(
                        f"nTSV {node.name!r}: downstream wire on "
                        f"{child.wire_side.value}, expected {node.side.opposite.value}"
                    )
            return
        for side in incident_sides:
            if side is not node.side:
                raise ConnectivityError(
                    f"node {node.name!r} ({node.kind.value}) on side {node.side.value} "
                    f"touches a wire on side {side.value}"
                )

    # ------------------------------------------------------------------ misc
    def apply(self, visitor: Callable[[ClockTreeNode], None]) -> None:
        """Apply ``visitor`` to every node (pre-order)."""
        for node in self.nodes():
            visitor(node)

    def copy(self) -> "ClockTree":
        """Deep-copy the tree (nodes are duplicated, locations shared)."""
        mapping: dict[int, ClockTreeNode] = {}
        new_root: ClockTreeNode | None = None
        for node in self.nodes():
            clone = ClockTreeNode(
                name=node.name,
                kind=node.kind,
                location=node.location,
                side=node.side,
                capacitance=node.capacitance,
                wire_side=node.wire_side,
            )
            mapping[id(node)] = clone
            if node.parent is None:
                new_root = clone
            else:
                mapping[id(node.parent)].add_child(clone)
        assert new_root is not None
        tree = ClockTree(new_root, name=self.name)
        tree._counter = self._counter
        return tree

    def __reduce__(self):
        """Pickle as a flat node table instead of the linked node graph.

        Default pickling recurses through the parent/child links and blows
        the recursion limit on deep (chained) trees; the flat form keeps
        process-pool transport (e.g. the parallel DSE grid) depth-safe.  The
        edit log and caches are deliberately dropped: the unpickled tree is
        a fresh structural copy, exactly like :meth:`copy`.
        """
        index: dict[int, int] = {}
        rows = []
        for position, node in enumerate(self.nodes()):
            index[id(node)] = position
            rows.append(
                (
                    node.name,
                    node.kind,
                    node.location,
                    node.side,
                    node.capacitance,
                    node.wire_side,
                    -1 if node.parent is None else index[id(node.parent)],
                )
            )
        return (_rebuild_tree, (self.name, self._counter, rows))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClockTree(name={self.name!r}, nodes={self.node_count()}, "
            f"sinks={self.sink_count()}, buffers={self.buffer_count()}, "
            f"ntsvs={self.ntsv_count()})"
        )


def _rebuild_tree(name, counter, rows) -> ClockTree:
    """Inverse of :meth:`ClockTree.__reduce__` (parents precede children)."""
    nodes: list[ClockTreeNode] = []
    root: ClockTreeNode | None = None
    for node_name, kind, location, side, capacitance, wire_side, parent_index in rows:
        node = ClockTreeNode(
            name=node_name,
            kind=kind,
            location=location,
            side=side,
            capacitance=capacitance,
            wire_side=wire_side,
        )
        if parent_index < 0:
            root = node
        else:
            nodes[parent_index].add_child(node)
        nodes.append(node)
    assert root is not None
    tree = ClockTree(root, name=name)
    tree._counter = counter
    return tree

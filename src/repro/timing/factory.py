"""The shared timing-engine factory.

Every flow component that needs timing (skew refinement, concurrent
insertion, evaluation, DSE, baselines) obtains its engine through
:func:`create_engine` so that the whole library can be switched between the
vectorized production kernel and the reference implementation — per call
site, per flow (``CtsConfig.timing_engine``), from the CLI (``--engine``),
or globally via the ``REPRO_TIMING_ENGINE`` environment variable (useful for
differential debugging of a whole benchmark run).

Multi-corner sign-off goes through the same factory: pass ``corners=`` (a
:class:`~repro.tech.corners.CornerSet`, a single scenario, or a spec string
like ``"tt,ss,ff"``) and the returned engine batches every corner — the
vectorized kernel in one level-synchronous pass sharing a single tree
compile, the reference engine as a per-corner loop.  Never hand-roll
per-corner PDK loops at call sites; the factory keeps both engines on the
same corner semantics.

The construction optimizers follow the same contract: ``ConcurrentInserter``
and ``SkewRefiner`` take ``corners=`` and resolve it through this factory,
so a corner-aware refinement scores every trial edit with one corner-batched
(incremental) pass and a corner-aware DP shares the engine's resolved corner
order for its per-candidate cost tuples.  Construction code must not build
per-corner engines in its loops.
"""

from __future__ import annotations

from repro.tech.corners import CornerSet, Scenario
from repro.tech.pdk import Pdk
from repro.timing.elmore import ElmoreTimingEngine, WireModel
from repro.timing.vectorized import VectorizedElmoreEngine

#: Engine used when neither the caller nor the environment chooses one.
#: Mirrors ``repro.flow.config.TIMING_ENGINE_CHOICE`` (kept as literals here
#: because importing ``repro.flow.config`` at module scope would cycle
#: through ``repro.insertion`` back into this package).
DEFAULT_ENGINE = "vectorized"

ENGINE_NAMES = ("reference", "vectorized")

#: Any timing engine: both classes implement the same public protocol.
TimingEngine = ElmoreTimingEngine | VectorizedElmoreEngine


def default_engine_name() -> str:
    """The engine name used for ``engine=None`` (env override included)."""
    # Deferred import: repro.flow.config transitively imports repro.timing.
    from repro.flow.config import TIMING_ENGINE_CHOICE

    return TIMING_ENGINE_CHOICE.default_name()


def resolve_engine_name(engine: str | None = None) -> str:
    """Resolve an explicit/None engine name against the environment default."""
    from repro.flow.config import TIMING_ENGINE_CHOICE

    return TIMING_ENGINE_CHOICE.resolve(engine)


def create_engine(
    pdk: Pdk,
    engine: str | None = None,
    wire_model: WireModel = WireModel.L,
    use_nldm: bool = False,
    corners: CornerSet | Scenario | str | None = None,
) -> TimingEngine:
    """Build the requested timing engine.

    Args:
        pdk: the technology to time against.
        engine: ``"vectorized"`` (default), ``"reference"``, or None to use
            the library default (overridable via ``REPRO_TIMING_ENGINE``).
        wire_model: L-type lumped (paper) or PI wire reduction.
        use_nldm: look buffer delays up in the NLDM table instead of the
            linear model.
        corners: operating points to evaluate — a
            :class:`~repro.tech.corners.CornerSet`, a single scenario, or a
            spec string such as ``"tt,ss,ff"``; None analyses the nominal
            corner only (the classic single-corner behaviour).
    """
    name = resolve_engine_name(engine)
    if name == "reference":
        return ElmoreTimingEngine(
            pdk, wire_model=wire_model, use_nldm=use_nldm, corners=corners
        )
    return VectorizedElmoreEngine(
        pdk, wire_model=wire_model, use_nldm=use_nldm, corners=corners
    )

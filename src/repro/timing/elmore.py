"""Elmore-based timing engine for double-side clock trees.

The engine evaluates the delay of a :class:`~repro.clocktree.ClockTree`
against a :class:`~repro.tech.Pdk`.  Wires use the L-type lumped Elmore model
of the paper (all wire capacitance lumped at the far end), buffers shield
their downstream load, and nTSVs contribute a series RC without shielding —
exactly matching Eq. (1) and Eq. (2).
"""

from __future__ import annotations

import enum
from typing import Mapping

from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.tech.corners import CornerSet, Scenario
from repro.tech.layers import Side
from repro.tech.pdk import Pdk
from repro.timing.analysis import TimingResult
from repro.timing.slew import SOURCE_SLEW, SlewAnalyzer

#: Drive resistance (kOhm) of the clock source, shared by every engine.
ROOT_DRIVE_RESISTANCE = 0.1


class WireModel(enum.Enum):
    """Wire reduction model.

    ``L``: the paper's model, all wire capacitance lumped at the far end,
    delay = R * (C_wire + C_load).
    ``PI``: the classic pi-model, half the wire capacitance at each end,
    delay = R * (C_wire / 2 + C_load).
    """

    L = "l"
    PI = "pi"


class ElmoreWireModel:
    """The wire-reduction and source-driver model shared by every engine.

    Keeping these in one place (rather than per engine) is what preserves
    the 1e-9 reference/vectorized equivalence contract when the model is
    tuned.  Subclasses set ``pdk`` and ``wire_model``.
    """

    pdk: Pdk
    wire_model: WireModel

    def wire_capacitance(self, length: float, side: Side) -> float:
        """Total capacitance (fF) of a clock wire of ``length`` um on ``side``."""
        return self.pdk.clock_layer(side).wire_capacitance(length)

    def wire_resistance(self, length: float, side: Side) -> float:
        """Total resistance (kOhm) of a clock wire of ``length`` um on ``side``."""
        return self.pdk.clock_layer(side).wire_resistance(length)

    def wire_delay(self, length: float, side: Side, load_capacitance: float) -> float:
        """Elmore delay (ps) of a wire driving ``load_capacitance`` fF."""
        resistance = self.wire_resistance(length, side)
        capacitance = self.wire_capacitance(length, side)
        if self.wire_model is WireModel.PI:
            return resistance * (capacitance / 2.0 + load_capacitance)
        return resistance * (capacitance + load_capacitance)

    def _root_resistance(self) -> float:
        """Drive resistance (kOhm) of the clock source."""
        return ROOT_DRIVE_RESISTANCE


class ElmoreTimingEngine(ElmoreWireModel):
    """Computes per-node loads and per-sink arrival times of a clock tree.

    Multi-corner analysis is a plain per-corner loop: every scenario of the
    resolved :class:`CornerSet` gets its own child engine built against
    ``scenario.apply_to(pdk)``.  This is deliberately naive — it is the
    executable specification the batched vectorized kernel is differentially
    tested against.
    """

    def __init__(
        self,
        pdk: Pdk,
        wire_model: WireModel = WireModel.L,
        use_nldm: bool = False,
        corners: CornerSet | Scenario | str | None = None,
    ) -> None:
        self.pdk = pdk
        self.wire_model = wire_model
        self.use_nldm = use_nldm
        self.corners = CornerSet.resolve(corners).ensure_nominal()
        self._slew = SlewAnalyzer(pdk)
        self._corner_engines: list["ElmoreTimingEngine"] | None = None

    @property
    def corner_pdks(self) -> list[Pdk]:
        """The per-corner ``scenario.apply_to(pdk)`` technologies, corner order.

        Exposed (mirroring the vectorized engine) so corner-aware
        construction code shares the engine's corner resolution instead of
        re-deriving PDKs at call sites.
        """
        return [engine.pdk for engine in self._engines_per_corner()]

    @property
    def primary_index(self) -> int:
        """Index of the primary (nominal) corner in :attr:`corners`."""
        index = self.corners.nominal_index()
        return 0 if index is None else index

    # ------------------------------------------------------------------ loads
    def subtree_capacitances(self, tree: ClockTree) -> dict[int, float]:
        """Capacitance looking into each node from its parent wire.

        Returns a mapping ``id(node) -> capacitance`` (fF).  Buffers shield
        their downstream load and present only their input pin capacitance.
        """
        caps: dict[int, float] = {}
        for node in tree.nodes_bottom_up():
            if node.kind is NodeKind.BUFFER:
                caps[id(node)] = node.capacitance
                continue
            if node.is_leaf:
                caps[id(node)] = node.capacitance
                continue
            total = node.capacitance
            for child in node.children:
                total += self.wire_capacitance(child.edge_length(), child.wire_side)
                total += caps[id(child)]
            caps[id(node)] = total
        return caps

    def driver_loads(self, tree: ClockTree) -> dict[int, float]:
        """Load (fF) seen by each node when driving its children.

        For buffers this is the load the buffer output drives; for the root
        it is the load on the clock source; for nTSVs it is the capacitance
        downstream of the via (excluding the via's own capacitance).
        """
        caps = self.subtree_capacitances(tree)
        loads: dict[int, float] = {}
        for node in tree.nodes():
            load = 0.0
            for child in node.children:
                load += self.wire_capacitance(child.edge_length(), child.wire_side)
                load += caps[id(child)]
            loads[id(node)] = load
        return loads

    def max_capacitance_violations(self, tree: ClockTree) -> list[tuple[str, float]]:
        """Return ``(driver name, load)`` pairs exceeding the PDK max load.

        Checked drivers are the clock root and every buffer (the elements
        with an output stage); Steiner points and nTSVs do not drive.
        """
        loads = self.driver_loads(tree)
        limit = self.pdk.max_capacitance
        violations = []
        for node in tree.nodes():
            if node.kind in (NodeKind.ROOT, NodeKind.BUFFER):
                load = loads[id(node)]
                if load > limit + 1e-9:
                    violations.append((node.name, load))
        return violations

    # --------------------------------------------------------------- arrivals
    def node_arrivals(self, tree: ClockTree) -> dict[int, float]:
        """Arrival time (ps) at every node, measured from the clock root."""
        caps = self.subtree_capacitances(tree)
        arrivals: dict[int, float] = {id(tree.root): 0.0}
        slews: dict[int, float] = {id(tree.root): SOURCE_SLEW}

        for node in tree.nodes():
            node_arrival = arrivals[id(node)]
            extra = self._stage_delay(node, caps, slews)
            for child in node.children:
                length = child.edge_length()
                delay = self.wire_delay(length, child.wire_side, caps[id(child)])
                arrivals[id(child)] = node_arrival + extra + delay
                slews[id(child)] = slews[id(node)]
        return arrivals

    def _stage_delay(
        self,
        node: ClockTreeNode,
        caps: Mapping[int, float],
        slews: Mapping[int, float],
    ) -> float:
        """Delay added *at* a node before its outgoing wires (driver stages)."""
        load = 0.0
        for child in node.children:
            load += self.wire_capacitance(child.edge_length(), child.wire_side)
            load += caps[id(child)]
        if node.kind is NodeKind.BUFFER:
            input_slew = slews.get(id(node)) if self.use_nldm else None
            return self.pdk.buffer.delay(load, input_slew=input_slew)
        if node.kind is NodeKind.NTSV:
            ntsv = self.pdk.ntsv
            if ntsv is None:
                raise ValueError("tree contains nTSVs but the PDK has none")
            return ntsv.resistance * (ntsv.capacitance + load)
        if node.kind is NodeKind.ROOT:
            # The clock source behaves as a driver with a fixed resistance.
            return 0.0 if load == 0 else self._root_resistance() * load
        return 0.0

    # ---------------------------------------------------------------- analyze
    def analyze(self, tree: ClockTree, with_slew: bool = True) -> TimingResult:
        """Run a full analysis and return the :class:`TimingResult`."""
        arrivals = self.node_arrivals(tree)
        sink_arrivals = {
            node.name: arrivals[id(node)] for node in tree.nodes() if node.is_sink
        }
        if not sink_arrivals:
            raise ValueError(f"clock tree {tree.name!r} has no sinks to analyse")
        slews = self._slew.sink_slews(tree, self) if with_slew else {}
        return TimingResult(arrivals=sink_arrivals, slews=slews)

    def latency(self, tree: ClockTree) -> float:
        """Convenience: maximum sink arrival (ps)."""
        return self.analyze(tree, with_slew=False).latency

    def skew(self, tree: ClockTree) -> float:
        """Convenience: global skew (ps)."""
        return self.analyze(tree, with_slew=False).skew

    # ---------------------------------------------------------- corner loop
    def _engines_per_corner(self) -> list["ElmoreTimingEngine"]:
        """One single-corner reference engine per scenario (lazily built)."""
        if self._corner_engines is None:
            self._corner_engines = [
                ElmoreTimingEngine(
                    scenario.apply_to(self.pdk),
                    wire_model=self.wire_model,
                    use_nldm=(
                        self.use_nldm
                        if scenario.use_nldm is None
                        else scenario.use_nldm
                    ),
                )
                for scenario in self.corners
            ]
        return self._corner_engines

    def analyze_corners(
        self, tree: ClockTree, with_slew: bool = True
    ) -> dict[str, TimingResult]:
        """Per-corner loop over fresh single-corner analyses."""
        return {
            scenario.name: engine.analyze(tree, with_slew=with_slew)
            for scenario, engine in zip(self.corners, self._engines_per_corner())
        }

    def skew_per_corner(self, tree: ClockTree) -> dict[str, float]:
        """Global skew (ps) of every corner (one full analysis each)."""
        return {
            scenario.name: engine.skew(tree)
            for scenario, engine in zip(self.corners, self._engines_per_corner())
        }

    def latency_per_corner(self, tree: ClockTree) -> dict[str, float]:
        """Maximum sink arrival (ps) of every corner (one analysis each)."""
        return {
            scenario.name: engine.latency(tree)
            for scenario, engine in zip(self.corners, self._engines_per_corner())
        }

    def worst_skew(self, tree: ClockTree) -> float:
        """The largest skew (ps) across the corner set."""
        return max(self.skew_per_corner(tree).values())

    def worst_latency(self, tree: ClockTree) -> float:
        """The largest latency (ps) across the corner set."""
        return max(self.latency_per_corner(tree).values())

"""Timing analysis results for a synthesised clock tree."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimingResult:
    """Arrival times of every sink plus the derived clock-tree metrics.

    Attributes:
        arrivals: sink name -> arrival time (ps) measured from the clock root.
        latency: maximum sink arrival time (ps).
        skew: difference between the maximum and minimum sink arrivals (ps).
        slews: sink name -> transition time at the sink (ps); empty when slew
            analysis was not requested.
    """

    arrivals: dict[str, float]
    slews: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.arrivals:
            raise ValueError("a timing result needs at least one sink arrival")

    @property
    def latency(self) -> float:
        return max(self.arrivals.values())

    @property
    def min_arrival(self) -> float:
        return min(self.arrivals.values())

    @property
    def skew(self) -> float:
        return self.latency - self.min_arrival

    @property
    def max_slew(self) -> float:
        return max(self.slews.values()) if self.slews else 0.0

    def slowest_sinks(self, count: int) -> list[tuple[str, float]]:
        """Return the ``count`` sinks with the largest arrival times."""
        ranked = sorted(self.arrivals.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:count]

    def fastest_sinks(self, count: int) -> list[tuple[str, float]]:
        """Return the ``count`` sinks with the smallest arrival times."""
        ranked = sorted(self.arrivals.items(), key=lambda kv: kv[1])
        return ranked[:count]

    def skew_violates(self, fraction_of_latency: float) -> bool:
        """True when skew exceeds ``fraction_of_latency`` x latency.

        This is the trigger condition of the paper's skew refinement step
        (Section III-D, p% of the maximum latency).
        """
        if not 0 < fraction_of_latency <= 1:
            raise ValueError("fraction must be in (0, 1]")
        return self.skew > fraction_of_latency * self.latency

    def summary(self) -> dict[str, float]:
        """Return a compact dictionary for logging and reports."""
        return {
            "latency_ps": round(self.latency, 3),
            "skew_ps": round(self.skew, 3),
            "min_arrival_ps": round(self.min_arrival, 3),
            "sinks": float(len(self.arrivals)),
            "max_slew_ps": round(self.max_slew, 3),
        }

"""Vectorized array-based Elmore timing engine with incremental re-timing.

:class:`VectorizedElmoreEngine` is a drop-in replacement for
:class:`~repro.timing.ElmoreTimingEngine` that computes the exact same model
(L or PI wire reduction, buffer shielding, nTSV series RC, NLDM buffer delay,
PERI slew propagation) on a :class:`~repro.clocktree.arrays.TreeArrays`
snapshot instead of per-node Python dicts:

* subtree capacitances and driver loads are one bottom-up sweep over the
  breadth-first levels (one ``bincount`` scatter per level),
* arrivals and slews are one top-down sweep (one gather per level),
* repeated queries on an unchanged tree reuse the cached arrays outright.

On top of the full pass the engine supports **incremental re-timing**: when
the tree records structural edits through its edit log
(:meth:`ClockTree.mark_splice` / :meth:`ClockTree.mark_rewire`), the next
query patches only the affected rows, walks capacitance changes up to the
first shielding buffer (or the root), and re-times just that driver's cone
instead of the whole tree.  A single end-point buffer insertion on a large
tree therefore costs O(cone) instead of O(tree).

**Multi-corner batching**: every numeric array carries a leading scenario
axis of size ``K = len(corners)`` (:class:`~repro.tech.corners.CornerSet`).
One tree compile is shared across the whole corner batch, the
level-synchronous passes evaluate all corners at once, and the dirty-cone
incremental path stays corner-batched — so K-corner sign-off costs far less
than K sequential analyses.  The single-corner API (:meth:`analyze`,
:meth:`skew`, :meth:`latency`, load queries) reports the *primary* (nominal)
corner; :meth:`analyze_corners`, :meth:`skew_per_corner`,
:meth:`worst_skew` and friends cover the batch.

Results match the reference engine to well below 1e-9 ps per corner (the
reference loops over ``scenario.apply_to(pdk)`` PDKs); the only permitted
difference is floating-point summation order.  Use the reference engine for
differential testing (see :mod:`repro.timing.factory`).
"""

from __future__ import annotations

import numpy as np

from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.clocktree.arrays import (
    KIND_BUFFER,
    KIND_NTSV,
    KIND_ROOT,
    KIND_SINK,
    TreeArrays,
)
from repro.ir.design import DesignArrays
from repro.tech.corners import CornerSet, Scenario
from repro.tech.layers import Side
from repro.tech.pdk import Pdk
from repro.timing.analysis import TimingResult
from repro.timing.elmore import ElmoreWireModel, WireModel
from repro.timing.slew import LN9, SOURCE_SLEW

#: Edit batches larger than this are cheaper to recompile than to replay.
_MAX_INCREMENTAL_EDITS = 64


class _EngineState:
    """Cached arrays for one compiled tree.

    Every numeric array has shape ``(corners, capacity)``: axis 0 is the
    scenario batch, axis 1 the TreeArrays row.
    """

    __slots__ = (
        "arrays",
        "version",
        "wire_cap",
        "wire_res",
        "down_cap",
        "load",
        "stage",
        "wire_delay",
        "arrival",
        "slew_at",
        "slew_out",
        "slews_valid",
        "result_version",
        "result_arrivals",
        "result_slews",
        "sink_rows_cache",
        "sink_arrival",
        "sink_col",
    )

    def __init__(self, arrays: TreeArrays, corner_count: int) -> None:
        self.arrays = arrays
        self.version = -1
        self.result_version = -1
        self.result_arrivals: dict[str, float] | None = None
        self.result_slews: dict[str, float] | None = None
        # Contiguous (corners, sinks) gather of the sink arrivals, kept fresh
        # across incremental edits so skew/latency queries skip the per-call
        # fancy-index gather (the dominant cost of the refinement trial loop
        # on large trees).  None until the first query builds it.
        self.sink_rows_cache: np.ndarray | None = None
        self.sink_arrival: np.ndarray | None = None
        self.sink_col: dict[int, int] | None = None
        n = arrays.capacity
        k = corner_count
        self.wire_cap = np.zeros((k, n))
        self.wire_res = np.zeros((k, n))
        self.down_cap = np.zeros((k, n))
        self.load = np.zeros((k, n))
        self.stage = np.zeros((k, n))
        self.wire_delay = np.zeros((k, n))
        self.arrival = np.zeros((k, n))
        self.slew_at = np.zeros((k, n))
        self.slew_out = np.zeros((k, n))
        self.slews_valid = False

    def drop_sink_arrivals(self) -> None:
        self.sink_rows_cache = None
        self.sink_arrival = None
        self.sink_col = None

    def ensure_capacity(self) -> None:
        """Grow the numeric arrays in lockstep with the TreeArrays snapshot."""
        n = self.arrays.capacity
        if self.wire_cap.shape[1] >= n:
            return
        k = self.wire_cap.shape[0]
        for name in (
            "wire_cap",
            "wire_res",
            "down_cap",
            "load",
            "stage",
            "wire_delay",
            "arrival",
            "slew_at",
            "slew_out",
        ):
            old = getattr(self, name)
            grown = np.zeros((k, n))
            grown[:, : old.shape[1]] = old
            setattr(self, name, grown)


class VectorizedElmoreEngine(ElmoreWireModel):
    """Array-based timing engine, API-compatible with the reference engine.

    The wire-reduction and source-driver model comes from the shared
    :class:`ElmoreWireModel` base, so a model tweak cannot drift the two
    engines apart.

    Attributes:
        corners: the resolved :class:`CornerSet` this engine batches over
            (the nominal single-corner set by default).
        full_compiles: number of from-scratch compiles performed (telemetry).
        incremental_updates: number of edit batches applied incrementally.
    """

    def __init__(
        self,
        pdk: Pdk,
        wire_model: WireModel = WireModel.L,
        use_nldm: bool = False,
        corners: CornerSet | Scenario | str | None = None,
    ) -> None:
        self.pdk = pdk
        self.wire_model = wire_model
        self.use_nldm = use_nldm
        self.corners = CornerSet.resolve(corners).ensure_nominal()
        self.full_compiles = 0
        self.incremental_updates = 0
        self._state: _EngineState | None = None
        self._primary = self.corners.nominal_index()
        self._compile_corner_tables()

    @property
    def corner_pdks(self) -> list[Pdk]:
        """The per-corner ``scenario.apply_to(pdk)`` technologies, corner order.

        Exposed so corner-aware construction code shares the engine's corner
        resolution instead of re-deriving PDKs at call sites.
        """
        return list(self._corner_pdks)

    @property
    def primary_index(self) -> int:
        """Index of the primary (nominal) corner in :attr:`corners`."""
        return self._primary

    def _compile_corner_tables(self) -> None:
        """Precompute the per-corner technology vectors the passes consume."""
        pdk = self.pdk
        self._corner_pdks = [scenario.apply_to(pdk) for scenario in self.corners]
        self._buffers = [corner_pdk.buffer for corner_pdk in self._corner_pdks]
        self._buf_intrinsic = np.array([b.intrinsic_delay for b in self._buffers])
        self._buf_drive = np.array([b.drive_resistance for b in self._buffers])
        self._front_c = np.array(
            [p.front_layer.unit_capacitance for p in self._corner_pdks]
        )
        self._front_r = np.array(
            [p.front_layer.unit_resistance for p in self._corner_pdks]
        )
        if pdk.has_backside:
            self._back_c = np.array(
                [p.back_layer.unit_capacitance for p in self._corner_pdks]
            )
            self._back_r = np.array(
                [p.back_layer.unit_resistance for p in self._corner_pdks]
            )
        else:
            self._back_c = self._front_c
            self._back_r = self._front_r
        if pdk.ntsv is not None:
            self._ntsv_r = np.array([p.ntsv.resistance for p in self._corner_pdks])
            self._ntsv_c = np.array([p.ntsv.capacitance for p in self._corner_pdks])
        else:
            self._ntsv_r = None
            self._ntsv_c = None
        nldm_flags = [
            self.use_nldm if scenario.use_nldm is None else scenario.use_nldm
            for scenario in self.corners
        ]
        self._nldm_corners = [k for k, flag in enumerate(nldm_flags) if flag]
        self._linear_corners = np.asarray(
            [k for k, flag in enumerate(nldm_flags) if not flag], dtype=np.int64
        )

    # ------------------------------------------------------------------ sync
    def invalidate(self) -> None:
        """Drop the cached state (next query recompiles from scratch)."""
        self._state = None

    def _sync(
        self, tree: ClockTree | DesignArrays, need_slews: bool
    ) -> _EngineState:
        state = self._state
        if isinstance(tree, DesignArrays):
            # IR-native path: the design *is* the snapshot — no per-stage
            # TreeArrays compile, the passes read its columns directly.
            if state is None or state.arrays is not tree:
                state = self._compile_design(tree)
            else:
                edits = tree.edits_since(state.version)
                if edits is None:
                    state = self._compile_design(tree)
                elif edits and not self._apply_design_edits(state, edits):
                    state = self._compile_design(tree)
        elif state is None or getattr(state.arrays, "tree", None) is not tree:
            state = self._compile(tree)
        else:
            edits = tree.edits_since(state.version)
            if edits is None:
                state = self._compile(tree)
            elif edits and not self._apply_edits(state, edits):
                state = self._compile(tree)
        if need_slews and not state.slews_valid:
            self._full_slews(state)
        return state

    def _compile(self, tree: ClockTree) -> _EngineState:
        arrays = TreeArrays(tree)
        state = _EngineState(arrays, len(self.corners))
        self._refresh_wire(state, arrays.alive_rows())
        self._full_caps(state)
        self._refresh_stage(state, arrays.alive_rows())
        self._refresh_wire_delay(state, arrays.alive_rows())
        self._full_arrivals(state)
        state.slews_valid = False
        state.version = tree.version
        self._state = state
        self.full_compiles += 1
        return state

    def _compile_design(self, design: DesignArrays) -> _EngineState:
        """From-scratch passes over a :class:`DesignArrays` (no snapshot).

        ``design.compact()`` renumbers the rows into the exact breadth-first
        order a fresh :class:`TreeArrays` compile of the equivalent object
        tree would produce, so every level-batched reduction below sums in
        the same order — the IR path stays bit-identical to the object path.
        """
        design.compact()
        state = _EngineState(design, len(self.corners))
        self._refresh_wire(state, design.alive_rows())
        self._full_caps(state)
        self._refresh_stage(state, design.alive_rows())
        self._refresh_wire_delay(state, design.alive_rows())
        self._full_arrivals(state)
        state.slews_valid = False
        state.version = design.version
        self._state = state
        self.full_compiles += 1
        return state

    # ------------------------------------------------------------ full passes
    def _refresh_wire(self, state: _EngineState, rows: np.ndarray) -> None:
        """Recompute the parent-wire R/C of ``rows`` from the snapshot."""
        arrays = state.arrays
        length = arrays.edge_length[rows]
        if self.pdk.has_backside:
            front = arrays.wire_front[rows]
            unit_c = np.where(front[None, :], self._front_c[:, None], self._back_c[:, None])
            unit_r = np.where(front[None, :], self._front_r[:, None], self._back_r[:, None])
        else:
            back_rows = rows[~arrays.wire_front[rows]]
            if back_rows.size and np.any(arrays.parent_row[back_rows] >= 0):
                # Reference parity: timing a back-side wire without back-side
                # resources must raise, on the incremental path too (the
                # root's wire side is meaningless and stays exempt).
                self.pdk.clock_layer(Side.BACK)
            unit_c = self._front_c[:, None]
            unit_r = self._front_r[:, None]
        state.wire_cap[:, rows] = unit_c * length[None, :]
        state.wire_res[:, rows] = unit_r * length[None, :]

    @staticmethod
    def _scatter_add(weights: np.ndarray, parents: np.ndarray, capacity: int) -> np.ndarray:
        """Per-corner ``bincount`` scatter: (K, r) weights into (K, capacity)."""
        k = weights.shape[0]
        if k == 1:  # single-corner fast path: plain 1-D bincount
            return np.bincount(parents, weights=weights[0], minlength=capacity)[None, :]
        flat = (np.arange(k, dtype=np.int64)[:, None] * capacity + parents[None, :]).ravel()
        return np.bincount(
            flat, weights=weights.ravel(), minlength=k * capacity
        ).reshape(k, capacity)

    def _full_caps(self, state: _EngineState) -> None:
        """Bottom-up subtree capacitances and driver loads, level by level."""
        arrays = state.arrays
        capacity = state.load.shape[1]
        state.load[:, arrays.alive_rows()] = 0.0
        for rows in reversed(arrays.levels()):
            down = arrays.cap[rows][None, :] + state.load[:, rows]
            shielded = arrays.kind[rows] == KIND_BUFFER
            if shielded.any():
                down[:, shielded] = arrays.cap[rows][shielded][None, :]
            state.down_cap[:, rows] = down
            parents = arrays.parent_row[rows]
            if parents[0] >= 0:  # every non-root level scatters into its parents
                state.load += self._scatter_add(
                    state.wire_cap[:, rows] + down, parents, capacity
                )

    def _refresh_stage(self, state: _EngineState, rows: np.ndarray) -> None:
        """Recompute the driver-stage delay added at each of ``rows``."""
        if rows.size == 0:
            return
        arrays = state.arrays
        kinds = arrays.kind[rows]
        state.stage[:, rows] = 0.0
        buffer_rows = rows[kinds == KIND_BUFFER]
        if buffer_rows.size:
            linear = self._linear_corners
            if linear.size == len(self._buffers):  # every corner is linear
                state.stage[:, buffer_rows] = (
                    self._buf_intrinsic[:, None]
                    + self._buf_drive[:, None] * state.load[:, buffer_rows]
                )
            elif linear.size:
                state.stage[linear[:, None], buffer_rows[None, :]] = (
                    self._buf_intrinsic[linear][:, None]
                    + self._buf_drive[linear][:, None]
                    * state.load[linear[:, None], buffer_rows[None, :]]
                )
            for k in self._nldm_corners:
                # The reference engine propagates a constant source slew; the
                # batched bilinear lookup is bit-identical to its scalar
                # ``buffer.delay`` calls.
                buffer = self._buffers[k]
                state.stage[k, buffer_rows] = buffer.delay_batch(
                    state.load[k, buffer_rows], input_slews=SOURCE_SLEW
                )
        ntsv_rows = rows[kinds == KIND_NTSV]
        if ntsv_rows.size:
            if self._ntsv_r is None:
                raise ValueError("tree contains nTSVs but the PDK has none")
            state.stage[:, ntsv_rows] = self._ntsv_r[:, None] * (
                self._ntsv_c[:, None] + state.load[:, ntsv_rows]
            )
        root_rows = rows[kinds == KIND_ROOT]
        if root_rows.size:
            # Dispatch by kind like the reference engine (a ROOT-kind node
            # grafted as an internal node still drives with the source R).
            loads = state.load[:, root_rows]
            state.stage[:, root_rows] = np.where(
                loads == 0, 0.0, self._root_resistance() * loads
            )

    def _refresh_wire_delay(self, state: _EngineState, rows: np.ndarray) -> None:
        """Recompute the Elmore delay of the parent wire of each of ``rows``."""
        wire_cap = state.wire_cap[:, rows]
        if self.wire_model is WireModel.PI:
            wire_cap = wire_cap / 2.0
        state.wire_delay[:, rows] = state.wire_res[:, rows] * (
            wire_cap + state.down_cap[:, rows]
        )

    def _full_arrivals(self, state: _EngineState) -> None:
        state.arrival[:, 0] = 0.0
        for rows in state.arrays.levels()[1:]:
            parents = state.arrays.parent_row[rows]
            state.arrival[:, rows] = (
                state.arrival[:, parents]
                + state.stage[:, parents]
                + state.wire_delay[:, rows]
            )

    def _full_slews(self, state: _EngineState) -> None:
        arrays = state.arrays
        state.slew_at[:, 0] = SOURCE_SLEW
        state.slew_out[:, 0] = SOURCE_SLEW
        for rows in arrays.levels()[1:]:
            parents = arrays.parent_row[rows]
            state.slew_at[:, rows] = np.sqrt(
                state.slew_out[:, parents] ** 2
                + (LN9 * state.wire_delay[:, rows]) ** 2
            )
            self._regenerate_slews(state, rows)
        state.slews_valid = True

    def _regenerate_slews(self, state: _EngineState, rows: np.ndarray) -> None:
        """Compute the post-node slew of ``rows`` from their arriving slew."""
        arrays = state.arrays
        kinds = arrays.kind[rows]
        state.slew_out[:, rows] = state.slew_at[:, rows]
        buffer_rows = rows[kinds == KIND_BUFFER]
        if buffer_rows.size:
            for k, buffer in enumerate(self._buffers):
                state.slew_out[k, buffer_rows] = buffer.slew_batch(
                    state.load[k, buffer_rows],
                    input_slews=state.slew_at[k, buffer_rows],
                )
        ntsv_rows = rows[kinds == KIND_NTSV]
        if ntsv_rows.size and self._ntsv_r is not None:
            step = LN9 * (
                self._ntsv_r[:, None]
                * (self._ntsv_c[:, None] + state.load[:, ntsv_rows])
            )
            state.slew_out[:, ntsv_rows] = np.sqrt(
                state.slew_at[:, ntsv_rows] ** 2 + step**2
            )

    # ------------------------------------------------------------ incremental
    def _apply_edits(self, state: _EngineState, edits: list) -> bool:
        """Replay recorded edits onto the cached state; False => recompile."""
        if len(edits) > _MAX_INCREMENTAL_EDITS:
            return False
        arrays = state.arrays
        if arrays.dead_count * 2 > arrays.size:
            return False  # mostly tombstones: recompile to compact the rows
        root = arrays.tree.root
        changed: set[int] = set()
        tops: list[int] = []
        for _version, edit_kind, node in edits:
            if node is None or edit_kind == "touch":
                return False
            if not _attached(node, root):
                return False
            if edit_kind == "splice":
                patch = arrays.apply_splice(node)
                if patch is None:
                    return False
                state.ensure_capacity()
                new_row, child_row = patch
                self._refresh_wire(
                    state, np.asarray([new_row, child_row], dtype=np.int64)
                )
                state.load[:, new_row] = (
                    state.wire_cap[:, child_row] + state.down_cap[:, child_row]
                )
                if arrays.kind[new_row] == KIND_BUFFER:
                    state.down_cap[:, new_row] = arrays.cap[new_row]
                else:
                    state.down_cap[:, new_row] = (
                        arrays.cap[new_row] + state.load[:, new_row]
                    )
                changed.update((int(new_row), int(child_row)))
            elif edit_kind == "rewire":
                sub_levels = arrays.apply_rewire(node)
                if sub_levels is None:
                    return False
                state.ensure_capacity()
                flat = np.concatenate(sub_levels)
                self._refresh_wire(state, flat)
                state.load[:, flat] = 0.0
                for rows in reversed(sub_levels):
                    down = arrays.cap[rows][None, :] + state.load[:, rows]
                    shielded = arrays.kind[rows] == KIND_BUFFER
                    if shielded.any():
                        down[:, shielded] = arrays.cap[rows][shielded][None, :]
                    state.down_cap[:, rows] = down
                    if rows is sub_levels[0]:
                        continue  # the subtree root's parent lies outside
                    # The scatter targets only the (few) subtree parents, so
                    # it stays O(subtree) instead of O(capacity) per level —
                    # what keeps the dirty-cone path cone-local on big trees.
                    contribution = state.wire_cap[:, rows] + down
                    parents = arrays.parent_row[rows]
                    for k in range(contribution.shape[0]):
                        np.add.at(state.load[k], parents, contribution[k])
                changed.update(int(r) for r in flat)
            else:  # pragma: no cover - defensive against future edit kinds
                return False
            tops.append(self._propagate_caps_up(state, node, changed))
        rows = np.fromiter(changed, dtype=np.int64, count=len(changed))
        self._refresh_stage(state, rows)
        self._refresh_wire_delay(state, rows)
        retimed: list[int] = []
        for top in self._merge_tops(state, tops):
            self._retime_cone(state, top, retimed)
        self._patch_sink_arrivals(state, retimed)
        state.version = arrays.tree.version
        self.incremental_updates += 1
        return True

    def _propagate_caps_up(
        self, state: _EngineState, node: ClockTreeNode, changed: set[int]
    ) -> int:
        """Walk capacitance changes from ``node`` toward the root.

        Stops at the first shielding buffer (whose load changed but whose
        upstream capacitance did not) or at the root.  Returns the row of the
        highest driver whose stage delay changed — the dirty-cone top.
        """
        arrays = state.arrays
        walk = node.parent
        if walk is None:
            return int(arrays.row_of[id(node)])
        while True:
            row = arrays.row_of[id(walk)]
            child_rows = np.asarray(arrays.children_rows[row], dtype=np.int64)
            state.load[:, row] = np.sum(
                state.wire_cap[:, child_rows] + state.down_cap[:, child_rows],
                axis=1,
            )
            changed.add(int(row))
            if arrays.kind[row] == KIND_BUFFER:
                return int(row)  # shielded: upstream sees the pin cap only
            state.down_cap[:, row] = arrays.cap[row] + state.load[:, row]
            if walk.parent is None:
                return int(row)
            walk = walk.parent

    def _apply_design_edits(self, state: _EngineState, edits: list) -> bool:
        """Replay :class:`DesignArrays` row edits onto the cached state.

        The numeric patch sequence mirrors :meth:`_apply_edits` operation for
        operation (same wire refreshes, same per-level scatters, same upward
        capacitance walk), so an incremental IR replay lands on bit-identical
        arrays to the object-path replay of the same logical edit.  Unlike
        the object path the design's structure is already up to date (edits
        are applied eagerly at op time); the log only tells the engine
        *where* to patch.  Returns False to request a recompile.
        """
        if len(edits) > _MAX_INCREMENTAL_EDITS:
            return False
        design = state.arrays
        if design.dead_count * 2 > design.size:
            return False  # mostly tombstones: recompile to compact the rows
        changed: set[int] = set()
        tops: list[int] = []
        for _version, edit_kind, row in edits:
            if row is None or edit_kind == "touch":
                return False
            row = int(row)
            if not _row_attached(design, row):
                return False
            if edit_kind == "splice":
                children = design.children_rows[row]
                if len(children) != 1 or design.parent_row[row] < 0:
                    return False  # a later edit reshaped the splice: recompile
                state.ensure_capacity()
                child_row = int(children[0])
                self._refresh_wire(
                    state, np.asarray([row, child_row], dtype=np.int64)
                )
                state.load[:, row] = (
                    state.wire_cap[:, child_row] + state.down_cap[:, child_row]
                )
                if design.kind[row] == KIND_BUFFER:
                    state.down_cap[:, row] = design.cap[row]
                else:
                    state.down_cap[:, row] = (
                        design.cap[row] + state.load[:, row]
                    )
                changed.update((row, child_row))
            elif edit_kind == "rewire":
                sub_levels = _design_sub_levels(design, row)
                state.ensure_capacity()
                flat = np.concatenate(sub_levels)
                self._refresh_wire(state, flat)
                state.load[:, flat] = 0.0
                for rows in reversed(sub_levels):
                    down = design.cap[rows][None, :] + state.load[:, rows]
                    shielded = design.kind[rows] == KIND_BUFFER
                    if shielded.any():
                        down[:, shielded] = design.cap[rows][shielded][None, :]
                    state.down_cap[:, rows] = down
                    if rows is sub_levels[0]:
                        continue  # the subtree root's parent lies outside
                    contribution = state.wire_cap[:, rows] + down
                    parents = design.parent_row[rows]
                    for k in range(contribution.shape[0]):
                        np.add.at(state.load[k], parents, contribution[k])
                changed.update(int(r) for r in flat)
            else:  # pragma: no cover - defensive against future edit kinds
                return False
            tops.append(self._propagate_caps_up_rows(state, row, changed))
        rows = np.fromiter(changed, dtype=np.int64, count=len(changed))
        self._refresh_stage(state, rows)
        self._refresh_wire_delay(state, rows)
        retimed: list[int] = []
        for top in self._merge_tops(state, tops):
            self._retime_cone(state, top, retimed)
        self._patch_sink_arrivals(state, retimed)
        state.version = design.version
        self.incremental_updates += 1
        return True

    def _propagate_caps_up_rows(
        self, state: _EngineState, row: int, changed: set[int]
    ) -> int:
        """Row-walking twin of :meth:`_propagate_caps_up` (same numerics)."""
        design = state.arrays
        walk = int(design.parent_row[row])
        if walk < 0:
            return row
        while True:
            child_rows = np.asarray(design.children_rows[walk], dtype=np.int64)
            state.load[:, walk] = np.sum(
                state.wire_cap[:, child_rows] + state.down_cap[:, child_rows],
                axis=1,
            )
            changed.add(walk)
            if design.kind[walk] == KIND_BUFFER:
                return walk  # shielded: upstream sees the pin cap only
            state.down_cap[:, walk] = design.cap[walk] + state.load[:, walk]
            parent = int(design.parent_row[walk])
            if parent < 0:
                return walk
            walk = parent

    def _merge_tops(self, state: _EngineState, tops: list[int]) -> list[int]:
        """Drop cone tops nested inside another top's subtree."""
        top_set = set(tops)
        merged = []
        for top in sorted(top_set):
            parent = state.arrays.parent_row[top]
            while parent >= 0 and parent not in top_set:
                parent = state.arrays.parent_row[parent]
            if parent < 0:
                merged.append(top)
        return merged

    def _retime_cone(
        self, state: _EngineState, top: int, retimed: list[int] | None = None
    ) -> None:
        """Recompute arrivals (and slews when valid) strictly below ``top``.

        ``retimed`` (when given) collects every row whose arrival was
        rewritten, so the cached sink-arrival gather can be patched in place.
        """
        arrays = state.arrays
        if state.slews_valid and arrays.kind[top] == KIND_BUFFER:
            # The top buffer's output slew tracks its (changed) load.
            for k, buffer in enumerate(self._buffers):
                state.slew_out[k, top] = buffer.slew(
                    float(state.load[k, top]),
                    input_slew=float(state.slew_at[k, top]),
                )
        frontier = list(arrays.children_rows[top])
        while frontier:
            if retimed is not None:
                retimed.extend(frontier)
            rows = np.asarray(frontier, dtype=np.int64)
            parents = arrays.parent_row[rows]
            state.arrival[:, rows] = (
                state.arrival[:, parents]
                + state.stage[:, parents]
                + state.wire_delay[:, rows]
            )
            if state.slews_valid:
                state.slew_at[:, rows] = np.sqrt(
                    state.slew_out[:, parents] ** 2
                    + (LN9 * state.wire_delay[:, rows]) ** 2
                )
                self._regenerate_slews(state, rows)
            frontier = [c for row in frontier for c in arrays.children_rows[row]]

    # ------------------------------------------------------ sink arrival cache
    @staticmethod
    def _sink_rows_current(
        cache: np.ndarray | None, sink_rows: np.ndarray
    ) -> bool:
        """True when the cached sink-row vector matches the current one.

        A ``None`` cache never matches: a partially dropped state (rows gone,
        arrivals kept) must rebuild rather than serve stale sink arrivals —
        long-lived serve sessions hit this constantly.
        """
        if cache is None:
            return False
        return cache is sink_rows or bool(np.array_equal(cache, sink_rows))

    def _sink_arrival_matrix(self, state: _EngineState) -> np.ndarray:
        """The (corners, sinks) sink-arrival gather, cached across edits.

        Built lazily from the current arrival array; incremental updates keep
        it fresh via :meth:`_patch_sink_arrivals`, so repeated skew/latency
        queries in an edit loop avoid re-gathering every sink each time.
        """
        sink_rows = state.arrays.sink_rows()
        if (
            state.sink_arrival is None
            or state.sink_col is None
            or not self._sink_rows_current(state.sink_rows_cache, sink_rows)
        ):
            state.sink_rows_cache = sink_rows
            state.sink_arrival = state.arrival[:, sink_rows].copy()
            state.sink_col = {int(row): col for col, row in enumerate(sink_rows)}
        else:
            state.sink_rows_cache = sink_rows
        return state.sink_arrival

    def _patch_sink_arrivals(self, state: _EngineState, retimed: list[int]) -> None:
        """Refresh the cached sink-arrival columns touched by an edit batch.

        When the edit changed the sink *set* itself (a retimed row is not a
        known column, or sinks vanished) — or the cached row vector is gone —
        the cache is dropped and rebuilt on the next query.
        """
        if state.sink_arrival is None or state.sink_col is None:
            return
        sink_rows = state.arrays.sink_rows()
        if not self._sink_rows_current(state.sink_rows_cache, sink_rows):
            state.drop_sink_arrivals()
            return
        state.sink_rows_cache = sink_rows
        kind = state.arrays.kind
        cols = []
        rows = []
        for row in retimed:
            if kind[row] != KIND_SINK:
                continue
            col = state.sink_col.get(int(row))
            if col is None:  # pragma: no cover - caught by the set check above
                state.drop_sink_arrivals()
                return
            cols.append(col)
            rows.append(row)
        if cols:
            state.sink_arrival[:, cols] = state.arrival[:, rows]

    # ---------------------------------------------------------------- analyze
    def analyze(
        self, tree: ClockTree | DesignArrays, with_slew: bool = True
    ) -> TimingResult:
        """Run a full (or incremental) analysis; reports the primary corner."""
        state = self._sync(tree, need_slews=with_slew)
        arrays = state.arrays
        sink_rows = self._checked_sink_rows(tree, arrays)
        if state.result_version != state.version:
            state.result_version = state.version
            state.result_arrivals = None
            state.result_slews = None
        if state.result_arrivals is None:
            names = self._sink_names(arrays, sink_rows)
            state.result_arrivals = dict(
                zip(
                    names,
                    self._sink_arrival_matrix(state)[self._primary].tolist(),
                )
            )
        slews: dict[str, float] = {}
        if with_slew:
            if state.result_slews is None:
                names = list(state.result_arrivals)
                state.result_slews = dict(
                    zip(names, state.slew_at[self._primary][sink_rows].tolist())
                )
            slews = dict(state.result_slews)
        # Hand out copies so callers mutating a TimingResult (the reference
        # engine builds fresh dicts per call) cannot corrupt the cache.
        return TimingResult(arrivals=dict(state.result_arrivals), slews=slews)

    def analyze_corners(
        self, tree: ClockTree | DesignArrays, with_slew: bool = True
    ) -> dict[str, TimingResult]:
        """One batched pass, one :class:`TimingResult` per corner name."""
        state = self._sync(tree, need_slews=with_slew)
        arrays = state.arrays
        sink_rows = self._checked_sink_rows(tree, arrays)
        names = self._sink_names(arrays, sink_rows)
        sink_arrival = self._sink_arrival_matrix(state)
        results: dict[str, TimingResult] = {}
        for k, scenario in enumerate(self.corners):
            arrivals = dict(zip(names, sink_arrival[k].tolist()))
            slews = (
                dict(zip(names, state.slew_at[k, sink_rows].tolist()))
                if with_slew
                else {}
            )
            results[scenario.name] = TimingResult(arrivals=arrivals, slews=slews)
        return results

    @staticmethod
    def _sink_names(
        arrays: TreeArrays | DesignArrays, sink_rows: np.ndarray
    ) -> list[str]:
        """Sink names, from the design's name column or the snapshot nodes."""
        names = getattr(arrays, "names", None)
        if names is not None:
            return [names[int(row)] for row in sink_rows]
        return [arrays.nodes[row].name for row in sink_rows]

    @staticmethod
    def _checked_sink_rows(
        tree: ClockTree | DesignArrays, arrays: TreeArrays | DesignArrays
    ) -> np.ndarray:
        sink_rows = arrays.sink_rows()
        if sink_rows.size == 0:
            raise ValueError(f"clock tree {tree.name!r} has no sinks to analyse")
        return sink_rows

    def latency(self, tree: ClockTree | DesignArrays) -> float:
        """Convenience: maximum sink arrival (ps) at the primary corner."""
        state = self._sync(tree, need_slews=False)
        self._checked_sink_rows(tree, state.arrays)
        return float(self._sink_arrival_matrix(state)[self._primary].max())

    def skew(self, tree: ClockTree | DesignArrays) -> float:
        """Convenience: global skew (ps) at the primary corner."""
        state = self._sync(tree, need_slews=False)
        self._checked_sink_rows(tree, state.arrays)
        arrivals = self._sink_arrival_matrix(state)[self._primary]
        return float(arrivals.max() - arrivals.min())

    # ---------------------------------------------------------- corner batch
    def skew_per_corner(self, tree: ClockTree | DesignArrays) -> dict[str, float]:
        """Global skew (ps) of every corner, from one batched pass."""
        state = self._sync(tree, need_slews=False)
        self._checked_sink_rows(tree, state.arrays)
        arrivals = self._sink_arrival_matrix(state)
        skews = arrivals.max(axis=1) - arrivals.min(axis=1)
        return dict(zip(self.corners.names, skews.tolist()))

    def latency_per_corner(
        self, tree: ClockTree | DesignArrays
    ) -> dict[str, float]:
        """Maximum sink arrival (ps) of every corner, from one batched pass."""
        state = self._sync(tree, need_slews=False)
        self._checked_sink_rows(tree, state.arrays)
        latencies = self._sink_arrival_matrix(state).max(axis=1)
        return dict(zip(self.corners.names, latencies.tolist()))

    def worst_skew(self, tree: ClockTree | DesignArrays) -> float:
        """The largest skew (ps) across the corner batch."""
        return max(self.skew_per_corner(tree).values())

    def worst_latency(self, tree: ClockTree | DesignArrays) -> float:
        """The largest latency (ps) across the corner batch."""
        return max(self.latency_per_corner(tree).values())

    # ------------------------------------------------------------------ loads
    def subtree_capacitances(self, tree: ClockTree) -> dict[int, float]:
        """Capacitance looking into each node (``id(node) -> fF``)."""
        state = self._sync(tree, need_slews=False)
        down_cap = state.down_cap[self._primary]
        return {
            node_id: float(down_cap[row])
            for node_id, row in state.arrays.row_of.items()
        }

    def driver_loads(self, tree: ClockTree) -> dict[int, float]:
        """Load (fF) seen by each node when driving its children."""
        state = self._sync(tree, need_slews=False)
        loads = state.load[self._primary]
        return {
            node_id: float(loads[row])
            for node_id, row in state.arrays.row_of.items()
        }

    def max_capacitance_violations(
        self, tree: ClockTree | DesignArrays
    ) -> list[tuple[str, float]]:
        """``(driver name, load)`` pairs exceeding the PDK max load."""
        limit = self.pdk.max_capacitance
        if isinstance(tree, DesignArrays):
            state = self._sync(tree, need_slews=False)
            loads = state.load[self._primary]
            violations = []
            for row in tree.rows_preorder():
                if tree.kind[row] in (KIND_ROOT, KIND_BUFFER):
                    load = float(loads[row])
                    if load > limit + 1e-9:
                        violations.append((tree.names[row], load))
            return violations
        node_loads = self.driver_loads(tree)
        violations = []
        for node in tree.nodes():
            if node.kind in (NodeKind.ROOT, NodeKind.BUFFER):
                load = node_loads[id(node)]
                if load > limit + 1e-9:
                    violations.append((node.name, load))
        return violations


def _attached(node: ClockTreeNode, root: ClockTreeNode) -> bool:
    while node.parent is not None:
        node = node.parent
    return node is root


def _row_attached(design: DesignArrays, row: int) -> bool:
    """True when ``row`` is alive and reachable from the design root."""
    if row >= design.size or not design.alive[row]:
        return False
    while design.parent_row[row] >= 0:
        row = int(design.parent_row[row])
    return row == 0


def _design_sub_levels(design: DesignArrays, row: int) -> list[np.ndarray]:
    """The subtree below ``row`` grouped by relative depth (row first).

    The IR twin of the level grouping :meth:`TreeArrays.apply_rewire`
    returns: breadth-first over ``children_rows``, so each level lists the
    rows in the same per-parent children order as the object path.
    """
    sub_levels: list[np.ndarray] = []
    frontier = [row]
    while frontier:
        sub_levels.append(np.asarray(frontier, dtype=np.int64))
        frontier = [c for r in frontier for c in design.children_rows[r]]
    return sub_levels

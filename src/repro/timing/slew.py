"""Slew (transition time) propagation along the clock tree.

Follows the slew model of Sitik et al. referenced by the paper: the output
slew of a stage is combined with the slew degradation of the interconnect via
the PERI rule

    slew_out = sqrt(slew_step^2 + slew_in^2)

where ``slew_step`` of a wire is approximated by ``ln(9) * Elmore`` of that
wire stage, and the slew at a buffer output comes from the buffer model
(NLDM table when available, linear otherwise).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.clocktree import ClockTree, NodeKind
from repro.tech.pdk import Pdk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.timing.elmore import ElmoreTimingEngine

#: ln(9): converts an Elmore delay into a 10%-90% ramp transition time.
LN9 = math.log(9.0)

#: Transition time (ps) assumed at the clock source, shared by every engine.
SOURCE_SLEW = 10.0


def ramp_slew(elmore_delay: float) -> float:
    """Transition time (ps) of an RC stage with the given Elmore delay."""
    if elmore_delay < 0:
        raise ValueError("Elmore delay must be non-negative")
    return LN9 * elmore_delay


def peri_combine(slew_in: float, slew_step: float) -> float:
    """Combine an input slew with a stage slew using the PERI rule."""
    return math.sqrt(slew_in * slew_in + slew_step * slew_step)


class SlewAnalyzer:
    """Propagates slews from the clock root to every sink."""

    def __init__(self, pdk: Pdk) -> None:
        self.pdk = pdk

    def sink_slews(self, tree: ClockTree, engine: "ElmoreTimingEngine") -> dict[str, float]:
        """Return ``sink name -> slew (ps)`` for every sink of the tree."""
        caps = engine.subtree_capacitances(tree)
        slews: dict[int, float] = {id(tree.root): SOURCE_SLEW}
        result: dict[str, float] = {}

        for node in tree.nodes():
            slew_here = slews[id(node)]
            # Driver stages regenerate or degrade the slew at the node itself.
            if node.kind is NodeKind.BUFFER:
                load = sum(
                    engine.wire_capacitance(c.edge_length(), c.wire_side) + caps[id(c)]
                    for c in node.children
                )
                slew_here = self.pdk.buffer.slew(load, input_slew=slew_here)
            elif node.kind is NodeKind.NTSV:
                ntsv = self.pdk.ntsv
                if ntsv is not None:
                    load = sum(
                        engine.wire_capacitance(c.edge_length(), c.wire_side) + caps[id(c)]
                        for c in node.children
                    )
                    slew_here = peri_combine(
                        slew_here, ramp_slew(ntsv.resistance * (ntsv.capacitance + load))
                    )
            for child in node.children:
                stage = engine.wire_delay(
                    child.edge_length(), child.wire_side, caps[id(child)]
                )
                slews[id(child)] = peri_combine(slew_here, ramp_slew(stage))
                if child.is_sink:
                    result[child.name] = slews[id(child)]
        # A degenerate tree whose root is directly a sink has no edges.
        for node in tree.nodes():
            if node.is_sink and node.name not in result:
                result[node.name] = slews.get(id(node), SOURCE_SLEW)
        return result

    def max_slew_violations(
        self, tree: ClockTree, engine: "ElmoreTimingEngine"
    ) -> list[tuple[str, float]]:
        """Return ``(sink name, slew)`` pairs exceeding the PDK max slew."""
        limit = self.pdk.max_slew
        return [
            (name, slew)
            for name, slew in self.sink_slews(tree, engine).items()
            if slew > limit + 1e-9
        ]

"""Clock tree timing analysis.

Implements the delay models of Section II-B of the paper:

* L-type lumped Elmore delay for wires (front- and back-side unit RC),
* buffer delay with load shielding (linear or NLDM),
* nTSV delay as a series RC element without shielding (Eq. (2)),
* PERI-style slew propagation,
* latency / skew / per-sink arrival reporting.

Two interchangeable engines implement these models:

* :class:`VectorizedElmoreEngine` — the production kernel.  It compiles the
  tree into a struct-of-arrays snapshot (:mod:`repro.clocktree.arrays`) and
  runs vectorized level-synchronous passes; repeated queries on an unchanged
  tree are served from cache, and structural edits recorded through the
  tree's edit log re-time only the dirty cone.  Use it everywhere
  performance matters — it is the default of :func:`create_engine`.
* :class:`ElmoreTimingEngine` — the straightforward per-node reference
  implementation.  Use it for differential testing, for debugging suspected
  kernel bugs (set ``REPRO_TIMING_ENGINE=reference`` to switch the whole
  library), and as the executable specification of the timing model.

Both engines produce identical results to well below 1e-9 ps (only the
floating-point summation order differs); the equivalence is enforced by the
randomized differential tests in ``tests/test_timing_vectorized.py``.

Both engines also speak **multi-corner**: pass ``corners=`` to
:func:`create_engine` (or to either constructor) to evaluate a whole
:class:`~repro.tech.corners.CornerSet` — batched along a leading scenario
axis in the vectorized kernel, as a per-corner loop in the reference engine.
``tests/test_timing_corners.py`` enforces the per-corner 1e-9 equivalence.
"""

from repro.tech.corners import CornerSet, Scenario
from repro.timing.elmore import ElmoreTimingEngine, WireModel
from repro.timing.analysis import TimingResult
from repro.timing.factory import (
    DEFAULT_ENGINE,
    ENGINE_NAMES,
    TimingEngine,
    create_engine,
    default_engine_name,
)
from repro.timing.slew import SlewAnalyzer, ramp_slew
from repro.timing.vectorized import VectorizedElmoreEngine

__all__ = [
    "CornerSet",
    "Scenario",
    "ElmoreTimingEngine",
    "VectorizedElmoreEngine",
    "TimingEngine",
    "create_engine",
    "default_engine_name",
    "DEFAULT_ENGINE",
    "ENGINE_NAMES",
    "WireModel",
    "TimingResult",
    "SlewAnalyzer",
    "ramp_slew",
]

"""Clock tree timing analysis.

Implements the delay models of Section II-B of the paper:

* L-type lumped Elmore delay for wires (front- and back-side unit RC),
* buffer delay with load shielding (linear or NLDM),
* nTSV delay as a series RC element without shielding (Eq. (2)),
* PERI-style slew propagation,
* latency / skew / per-sink arrival reporting.
"""

from repro.timing.elmore import ElmoreTimingEngine, WireModel
from repro.timing.analysis import TimingResult
from repro.timing.slew import SlewAnalyzer, ramp_slew

__all__ = [
    "ElmoreTimingEngine",
    "WireModel",
    "TimingResult",
    "SlewAnalyzer",
    "ramp_slew",
]

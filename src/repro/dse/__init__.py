"""Design space exploration of double-side CTS (Section III-E, Fig. 9/12).

The explorer sweeps the fanout threshold that controls the per-node insertion
modes of the DP tree, producing a family of clock trees that trade latency
and skew against buffer and nTSV count.  Equivalent sweeps of the baseline
knobs ([7]'s fanout threshold, [6]'s critical fraction) are provided so that
the Fig. 12 comparison can be regenerated.
"""

from repro.dse.pareto import pareto_front, is_dominated
from repro.dse.explorer import DesignSpaceExplorer, DsePoint, DseResult

__all__ = [
    "pareto_front",
    "is_dominated",
    "DesignSpaceExplorer",
    "DsePoint",
    "DseResult",
]

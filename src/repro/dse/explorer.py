"""The DSE flow: sweeping insertion modes to trace the Pareto frontier.

The clock routing does not depend on the insertion modes, so the explorer
routes the design once and then replays the concurrent insertion (plus skew
refinement) on a fresh copy of the routed tree for every configuration.

The sweep points are independent of each other, so the grid can be evaluated
in parallel: pass ``workers > 1`` to :meth:`DesignSpaceExplorer.explore` to
fan the configurations out over a :class:`concurrent.futures`
process pool (each worker re-times its own tree copy with its own vectorized
engine).  Results are returned in threshold order regardless of completion
order, so serial and parallel sweeps are identical.

When the configuration carries a :class:`~repro.tech.corners.CornerSet`
(``CtsConfig.corners``), every sweep point is additionally signed off across
the corner batch and the Pareto objectives switch from nominal to
worst-corner latency/skew — the DSE then optimises what a production flow
actually tapes out against.  With ``CtsConfig.corner_aware_construction``
the sweep points are additionally *built* corner-aware: every configuration's
insertion DP and skew refinement optimise worst-corner objectives, so the
frontier traced is over trees constructed for sign-off, not merely scored
against it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.baselines.fanout import FanoutBacksideOptimizer
from repro.baselines.timing_critical import TimingCriticalBacksideOptimizer
from repro.baselines.veloso import VelosoBacksideOptimizer
from repro.clocktree import ClockTree
from repro.dse.pareto import pareto_front
from repro.evaluation.metrics import ClockTreeMetrics, evaluate_tree
from repro.flow.config import CtsConfig
from repro.flow.cts import DoubleSideCTS
from repro.insertion.concurrent import ConcurrentInserter, InsertionConfig
from repro.netlist.clock import ClockNet
from repro.netlist.design import Design
from repro.refinement.skew_refinement import SkewRefiner
from repro.routing.hierarchical import HierarchicalClockRouter
from repro.tech.pdk import Pdk


@dataclass
class DsePoint:
    """One explored configuration and the clock tree quality it reached."""

    configuration: str
    parameter: float
    metrics: ClockTreeMetrics
    #: True when the first attempt crashed and the point was recovered by a
    #: retry on the all-reference backends.
    retried: bool = False

    @property
    def objectives(self) -> tuple[float, float, float]:
        """(latency, skew, buffers + nTSVs) — the axes of Fig. 12.

        When the sweep ran with a multi-corner configuration the latency and
        skew axes are the *worst-corner* values, so the Pareto front (and
        ``best_*`` selections over these objectives) sign off across the
        whole corner set instead of the nominal point only.
        """
        return (
            self.metrics.worst_latency,
            self.metrics.worst_skew,
            float(self.metrics.resource_count),
        )

    def as_row(self) -> dict[str, float | int | str]:
        row = self.metrics.as_row()
        row["configuration"] = self.configuration
        row["parameter"] = self.parameter
        row["resources"] = self.metrics.resource_count
        return row


@dataclass(frozen=True)
class DseFailure:
    """One sweep point that crashed even after the reference-backend retry."""

    configuration: str
    parameter: float
    error: str


@dataclass
class DseResult:
    """All explored points of one sweep.

    A crashing sweep point never takes the rest of the sweep down with it:
    every point is attempted independently, retried once on the all-reference
    backends, and recorded in :attr:`failures` if both attempts raise.  Serial
    and parallel sweeps produce identical points *and* identical failures.

    Worker-level failures (a crashed process, an unpicklable result, a hung
    task) are handled one level below by the fault-tolerant pool tier
    (:func:`repro.parallel.run_tasks`): the point is retried on the pool and,
    as a last resort, recomputed inline on the main process — each recovery
    recorded in :attr:`parallel_diagnostics`.
    """

    design_name: str
    points: list[DsePoint] = field(default_factory=list)
    failures: list[DseFailure] = field(default_factory=list)
    parallel_diagnostics: list = field(default_factory=list)

    def pareto(self) -> list[DsePoint]:
        """The non-dominated points over (latency, skew, resources)."""
        return pareto_front(self.points, lambda p: p.objectives)

    def best_latency(self) -> DsePoint:
        """Point with the lowest latency objective (worst-corner when swept
        with corners, nominal otherwise — same axis as :meth:`pareto`)."""
        return min(self.points, key=lambda p: p.metrics.worst_latency)

    def best_skew(self) -> DsePoint:
        """Point with the lowest skew objective (worst-corner when swept
        with corners, nominal otherwise — same axis as :meth:`pareto`)."""
        return min(self.points, key=lambda p: p.metrics.worst_skew)

    def rows(self) -> list[dict[str, float | int | str]]:
        return [p.as_row() for p in self.points]


class DesignSpaceExplorer:
    """Sweeps the DSE knobs of our flow and of the baselines."""

    def __init__(self, pdk: Pdk, config: CtsConfig | None = None) -> None:
        self.pdk = pdk
        self.config = config if config is not None else CtsConfig()

    # --------------------------------------------------------------- our flow
    def explore(
        self,
        design: Design | ClockNet,
        fanout_thresholds: Iterable[int],
        design_name: str | None = None,
        workers: int = 1,
        point_hook: Callable[[CtsConfig, int], None] | None = None,
    ) -> DseResult:
        """Sweep the fanout threshold of the heterogeneous DP tree.

        Small thresholds force most DP nodes into intra-side mode (few
        nTSVs); large thresholds approach the all-full-mode Table III
        configuration.  ``workers > 1`` evaluates the grid on a process
        pool; the result order and content are identical to a serial sweep.

        ``point_hook`` is a picklable callable invoked with
        ``(config, threshold)`` before each point is evaluated; the fault
        harness (:class:`~repro.guard.faults.SweepCrash`) uses it to crash
        chosen points and prove the sweep's failure isolation.
        """
        clock_net, name = DoubleSideCTS._resolve_input(design, design_name)
        router = HierarchicalClockRouter(
            self.pdk,
            high_cluster_size=self.config.high_cluster_size,
            low_cluster_size=self.config.low_cluster_size,
            seed=self.config.seed,
            hierarchical=self.config.hierarchical_routing,
            dme_backend=self.config.dme_backend,
        )
        routing = router.route(clock_net)
        thresholds = [int(t) for t in fanout_thresholds]
        result = DseResult(design_name=name)
        # One task per threshold on the fault-tolerant pool tier: a crashed
        # or hung worker is retried and, at worst, recomputed inline, so one
        # broken process never discards the completed points.
        from repro.parallel import run_tasks

        payloads = [
            (self.pdk, self.config, routing.tree, t, name, point_hook)
            for t in thresholds
        ]
        outcomes = run_tasks(
            "dse",
            _explore_point_task,
            payloads,
            min(workers, len(thresholds)),
            policy=self.config.resolved_parallel_policy(),
            diagnostics=result.parallel_diagnostics,
            label=lambda i, payload: f"threshold {payload[3]}",
        )
        for outcome in outcomes:
            if isinstance(outcome, DseFailure):
                result.failures.append(outcome)
            else:
                result.points.append(outcome)
        return result

    def _insert_and_refine(self, tree: ClockTree, fanout_threshold: int | None) -> None:
        _insert_and_refine(self.pdk, self.config, tree, fanout_threshold)

    # -------------------------------------------------------------- baselines
    def sweep_fanout_baseline(
        self,
        buffered_tree: ClockTree,
        thresholds: Iterable[int],
        design_name: str = "",
    ) -> DseResult:
        """Sweep [7]'s fanout threshold on a fixed buffered clock tree."""
        result = DseResult(design_name=design_name)
        for threshold in thresholds:
            optimizer = FanoutBacksideOptimizer(self.pdk, fanout_threshold=int(threshold))
            run = optimizer.run(buffered_tree, design_name=design_name, copy=True)
            result.points.append(
                DsePoint(
                    configuration="bethur_fanout_2023",
                    parameter=float(threshold),
                    metrics=run.metrics,
                )
            )
        return result

    def sweep_critical_baseline(
        self,
        buffered_tree: ClockTree,
        fractions: Iterable[float],
        design_name: str = "",
    ) -> DseResult:
        """Sweep [6]'s critical-path fraction on a fixed buffered clock tree."""
        result = DseResult(design_name=design_name)
        for fraction in fractions:
            optimizer = TimingCriticalBacksideOptimizer(
                self.pdk, critical_fraction=float(fraction)
            )
            run = optimizer.run(buffered_tree, design_name=design_name, copy=True)
            result.points.append(
                DsePoint(
                    configuration="bethur_gnn_2024",
                    parameter=float(fraction),
                    metrics=run.metrics,
                )
            )
        return result

    def veloso_point(self, buffered_tree: ClockTree, design_name: str = "") -> DsePoint:
        """The single configuration of [2] on a fixed buffered clock tree."""
        run = VelosoBacksideOptimizer(self.pdk).run(
            buffered_tree, design_name=design_name, copy=True
        )
        return DsePoint(configuration="veloso_2023", parameter=0.0, metrics=run.metrics)


# Module-level so a ProcessPoolExecutor can pickle the sweep work items.
def _insert_and_refine(
    pdk: Pdk, config: CtsConfig, tree: ClockTree, fanout_threshold: int | None
) -> None:
    inserter = ConcurrentInserter(
        pdk,
        InsertionConfig(
            weights=config.moes_weights,
            selection=config.selection,
            max_segment_length=config.max_segment_length,
            keep_resource_diversity=config.keep_resource_diversity,
            max_candidates_per_side=config.max_candidates_per_side,
            default_mode=config.default_mode,
            dp_backend=config.dp_backend,
        ),
        engine=config.timing_engine,
        corners=config.construction_corners(),
    )
    inserter.run(tree, fanout_threshold=fanout_threshold)
    if config.enable_skew_refinement:
        SkewRefiner(
            pdk,
            skew_trigger_fraction=config.skew_trigger_fraction,
            max_endpoints=config.max_refined_endpoints,
            strategy=config.skew_strategy,
            engine=config.timing_engine,
            corners=config.construction_corners(),
            nominal_skew_budget=config.nominal_skew_budget,
        ).refine(tree)


def _attempt_point(
    pdk: Pdk,
    config: CtsConfig,
    routed_tree: ClockTree,
    threshold: int,
    name: str,
    point_hook: Callable[[CtsConfig, int], None] | None,
) -> DsePoint:
    """Evaluate one fanout-threshold configuration on a fresh tree copy."""
    if point_hook is not None:
        point_hook(config, threshold)
    start = time.perf_counter()
    tree = routed_tree.copy()
    _insert_and_refine(pdk, config, tree, fanout_threshold=threshold)
    runtime = time.perf_counter() - start
    metrics = evaluate_tree(
        tree,
        pdk,
        design=name,
        flow=f"ours_dse_fo{threshold}",
        runtime=runtime,
        engine=config.timing_engine,
        corners=config.corners,
    )
    return DsePoint(
        configuration="ours_dse", parameter=float(threshold), metrics=metrics
    )


def _explore_point(
    pdk: Pdk,
    config: CtsConfig,
    routed_tree: ClockTree,
    threshold: int,
    name: str,
    point_hook: Callable[[CtsConfig, int], None] | None = None,
) -> DsePoint | DseFailure:
    """Attempt one sweep point; retry once on the reference backends.

    A crash on the vectorized backends gets one retry through the executable
    spec (the same degradation the guarded flow applies); a point that fails
    both ways is reported as a :class:`DseFailure` instead of raising, so the
    rest of the sweep survives.
    """
    try:
        return _attempt_point(pdk, config, routed_tree, threshold, name, point_hook)
    except Exception as first:  # noqa: BLE001 - isolate sweep points
        fallback = config.with_updates(
            timing_engine="reference",
            dp_backend="reference",
            dme_backend="reference",
        )
        try:
            point = _attempt_point(
                pdk, fallback, routed_tree, threshold, name, point_hook
            )
        except Exception as second:  # noqa: BLE001 - both attempts failed
            return DseFailure(
                configuration="ours_dse",
                parameter=float(threshold),
                error=(
                    f"{type(first).__name__}: {first}; reference retry failed: "
                    f"{type(second).__name__}: {second}"
                ),
            )
        point.retried = True
        return point


def _explore_point_task(payload: tuple) -> DsePoint | DseFailure:
    """Single-argument adapter of :func:`_explore_point` for the pool tier."""
    return _explore_point(*payload)

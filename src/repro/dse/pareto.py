"""Generic Pareto-front utilities for multi-objective comparison."""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def is_dominated(
    candidate: Sequence[float], others: Sequence[Sequence[float]], tol: float = 1e-12
) -> bool:
    """True when some other objective vector dominates ``candidate``.

    All objectives are minimised.  A vector dominates another when it is no
    worse in every objective and strictly better in at least one.
    """
    for other in others:
        if other is candidate:
            continue
        if len(other) != len(candidate):
            raise ValueError("objective vectors must have equal length")
        no_worse = all(o <= c + tol for o, c in zip(other, candidate))
        strictly_better = any(o < c - tol for o, c in zip(other, candidate))
        if no_worse and strictly_better:
            return True
    return False


def pareto_front(
    items: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
) -> list[T]:
    """Return the items whose objective vectors are not dominated.

    Args:
        items: the candidate solutions (e.g. DSE points).
        objectives: maps an item to its objective vector (all minimised).
    """
    vectors = [tuple(objectives(item)) for item in items]
    front = []
    for item, vector in zip(items, vectors):
        if not is_dominated(vector, vectors):
            front.append(item)
    return front

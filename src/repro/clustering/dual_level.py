"""Dual-level (high/low) sink clustering of Section III-B.

High-level clustering groups the sinks into a handful of large clusters of
target size ``Hc`` (3000 in the paper); low-level clustering subdivides each
high cluster into clusters of target size ``Lc`` (30).  The centroids of both
levels are recorded because they later become, respectively, the roots and
the leaves of the hierarchical DME routing, and the low-level centroids are
also the end-points used by skew refinement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import Point
from repro.netlist.clock import ClockSink
from repro.clustering.kmeans import KMeans


@dataclass
class Cluster:
    """A group of sinks with its centroid.

    Attributes:
        index: cluster index within its level.
        centroid: arithmetic centroid of the member sink locations.
        sinks: the member sinks.
        parent_index: index of the enclosing high-level cluster (for
            low-level clusters), or None for high-level clusters.
    """

    index: int
    centroid: Point
    sinks: list[ClockSink] = field(default_factory=list)
    parent_index: int | None = None
    _columns: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def size(self) -> int:
        return len(self.sinks)

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached (x, y, pin-cap) member columns, in member order.

        Shared by every per-cluster vectorized pass (tap-terminal lumping,
        leaf-net estimates) so the sink objects are walked at most once per
        cluster.  Treat the arrays as read-only.
        """
        if self._columns is None:
            self._columns = (
                np.asarray([s.location.x for s in self.sinks]),
                np.asarray([s.location.y for s in self.sinks]),
                np.asarray([s.capacitance for s in self.sinks]),
            )
        return self._columns

    @property
    def total_capacitance(self) -> float:
        """Sum of the member sink pin capacitances (fF)."""
        return sum(s.capacitance for s in self.sinks)

    def intra_cluster_wirelength(self) -> float:
        """Star wirelength from the centroid to every member sink (um)."""
        return sum(self.centroid.manhattan(s.location) for s in self.sinks)


@dataclass
class DualLevelClustering:
    """The result of dual-level clustering."""

    high_clusters: list[Cluster]
    low_clusters: list[Cluster]
    high_size_target: int
    low_size_target: int

    def low_clusters_of(self, high_index: int) -> list[Cluster]:
        """Low-level clusters belonging to the given high-level cluster."""
        return [c for c in self.low_clusters if c.parent_index == high_index]

    @property
    def sink_count(self) -> int:
        return sum(c.size for c in self.low_clusters)

    def total_leaf_wirelength(self) -> float:
        """Total star wirelength of all low-level (leaf) nets (um)."""
        return sum(c.intra_cluster_wirelength() for c in self.low_clusters)

    def validate(self) -> None:
        """Check the partition covers every sink exactly once per level."""
        high_total = sum(c.size for c in self.high_clusters)
        low_total = sum(c.size for c in self.low_clusters)
        if high_total != low_total:
            raise ValueError(
                f"inconsistent clustering: {high_total} sinks in high clusters "
                f"vs {low_total} in low clusters"
            )
        for low in self.low_clusters:
            if low.parent_index is None:
                raise ValueError(f"low cluster {low.index} has no parent high cluster")
            if low.size == 0:
                raise ValueError(f"low cluster {low.index} is empty")


def estimate_leaf_load(
    centroid: Point, sinks: list[ClockSink], unit_wire_capacitance: float
) -> float:
    """Estimate the load (fF) of a star leaf net driven from ``centroid``."""
    wire = sum(centroid.manhattan(s.location) for s in sinks) * unit_wire_capacitance
    return wire + sum(s.capacitance for s in sinks)


def split_by_capacitance(
    groups: list[tuple[Point, list[ClockSink]]],
    max_capacitance: float,
    unit_wire_capacitance: float,
    seed: int = 2025,
) -> list[tuple[Point, list[ClockSink]]]:
    """Recursively split clusters whose estimated leaf-net load is too large.

    The driver of a leaf net (an end-point buffer or the trunk wire above the
    tap) must respect the maximum driven-capacitance constraint, so clusters
    whose star-net load exceeds ``max_capacitance`` are bisected with K-means
    until every piece fits (or is a single sink).
    """
    if max_capacitance <= 0:
        raise ValueError("max capacitance must be positive")
    result: list[tuple[Point, list[ClockSink]]] = []
    # Each queue entry carries (x, y, cap) columns alongside the member
    # list: splits gather sub-columns instead of re-walking sink objects.
    queue = []
    for centroid, members in groups:
        xs = np.asarray([s.location.x for s in members])
        ys = np.asarray([s.location.y for s in members])
        caps = np.asarray([s.capacitance for s in members])
        queue.append((centroid, members, xs, ys, caps))
    while queue:
        centroid, members, xs, ys, caps = queue.pop()
        # Bit-equal twin of ``estimate_leaf_load``: per-element |dx| + |dy|
        # matches ``Point.manhattan`` and the Python sums run in member
        # order, so the load compare sees the identical float.
        dists = np.abs(centroid.x - xs) + np.abs(centroid.y - ys)
        load = sum(dists.tolist()) * unit_wire_capacitance + sum(caps.tolist())
        if load <= max_capacitance or len(members) <= 1:
            result.append((centroid, members))
            continue
        points = np.column_stack((xs, ys))
        labels = KMeans(n_clusters=2, seed=seed).fit(points).labels
        idx_halves = [np.flatnonzero(labels == part) for part in (0, 1)]
        if any(idx.size == 0 for idx in idx_halves):
            # K-means failed to separate identical points: split arbitrarily.
            idx_halves = [
                np.arange(0, len(members), 2),
                np.arange(1, len(members), 2),
            ]
        for idx in idx_halves:
            if idx.size == 0:
                continue
            half_x, half_y = xs[idx], ys[idx]
            new_centroid = Point(float(np.mean(half_x)), float(np.mean(half_y)))
            queue.append(
                (new_centroid, [members[i] for i in idx], half_x, half_y, caps[idx])
            )
    return result


def _cluster_sinks(
    sinks: list[ClockSink],
    target_size: int,
    seed: int,
    balanced: bool,
) -> list[tuple[Point, list[ClockSink]]]:
    """Cluster ``sinks`` into groups of roughly ``target_size`` members."""
    if not sinks:
        return []
    count = max(1, math.ceil(len(sinks) / target_size))
    if count == 1:
        pts = [s.location for s in sinks]
        centroid = Point(
            sum(p.x for p in pts) / len(pts), sum(p.y for p in pts) / len(pts)
        )
        return [(centroid, list(sinks))]
    points = np.array([[s.location.x, s.location.y] for s in sinks])
    max_size = None
    if balanced:
        # Allow some slack above the target so balancing stays feasible.
        max_size = max(target_size, math.ceil(len(sinks) / count) + 1)
    result = KMeans(
        n_clusters=count, seed=seed, max_cluster_size=max_size
    ).fit(points)
    groups: list[tuple[Point, list[ClockSink]]] = []
    for cluster in range(result.cluster_count):
        member_idx = result.members(cluster)
        if len(member_idx) == 0:
            continue
        members = [sinks[i] for i in member_idx]
        # Means over gathered coordinate columns — the same values in the
        # same order as the per-member list comprehensions (bit-equal).
        centroid = Point(
            float(np.mean(points[member_idx, 0])),
            float(np.mean(points[member_idx, 1])),
        )
        groups.append((centroid, members))
    return groups


def low_clusters_for_high(
    members: list[ClockSink],
    low_size: int,
    seed: int,
    high_index: int,
    balanced: bool = True,
    max_leaf_capacitance: float | None = None,
    unit_wire_capacitance: float = 0.0,
) -> list[tuple[Point, list[ClockSink]]]:
    """Low-level groups of one high cluster — the per-region unit of work.

    Factored out of :func:`dual_level_clustering` so the region-parallel
    routing tier can run exactly this per high cluster in a worker process:
    both call sites derive the per-region seed the same way
    (``seed + high_index + 1``), so a worker's low clusters are bit-identical
    to the serial loop's.
    """
    low_groups = _cluster_sinks(members, low_size, seed + high_index + 1, balanced)
    if max_leaf_capacitance is not None:
        low_groups = split_by_capacitance(
            low_groups,
            max_capacitance=max_leaf_capacitance,
            unit_wire_capacitance=unit_wire_capacitance,
            seed=seed + high_index + 1,
        )
    return low_groups


def dual_level_clustering(
    sinks: list[ClockSink],
    high_size: int = 3000,
    low_size: int = 30,
    seed: int = 2025,
    balanced: bool = True,
    max_leaf_capacitance: float | None = None,
    unit_wire_capacitance: float = 0.0,
) -> DualLevelClustering:
    """Run the paper's dual-level clustering.

    Args:
        sinks: all clock sinks of the design.
        high_size: target high-level cluster size (``Hc``, default 3000).
        low_size: target low-level cluster size (``Lc``, default 30).
        seed: RNG seed for K-means determinism.
        balanced: cap cluster sizes near the target (keeps leaf-net loads and
            therefore buffer fanouts predictable).
        max_leaf_capacitance: when given, low-level clusters whose estimated
            star-net load (sink pins + leaf wire at ``unit_wire_capacitance``)
            exceeds this budget are split further, so that leaf nets never
            violate the maximum driven-capacitance constraint.
        unit_wire_capacitance: fF/um of the leaf-net routing layer, used by
            the capacity check.

    Returns:
        A :class:`DualLevelClustering` with high- and low-level clusters.
    """
    if not sinks:
        raise ValueError("dual-level clustering needs at least one sink")
    if low_size < 1 or high_size < 1:
        raise ValueError("cluster size targets must be positive")
    if low_size > high_size:
        raise ValueError("low-level cluster size cannot exceed the high-level size")

    high_groups = _cluster_sinks(sinks, high_size, seed, balanced)
    high_clusters: list[Cluster] = []
    low_clusters: list[Cluster] = []
    for high_index, (high_centroid, members) in enumerate(high_groups):
        high_clusters.append(
            Cluster(index=high_index, centroid=high_centroid, sinks=members)
        )
        low_groups = low_clusters_for_high(
            members,
            low_size,
            seed,
            high_index,
            balanced=balanced,
            max_leaf_capacitance=max_leaf_capacitance,
            unit_wire_capacitance=unit_wire_capacitance,
        )
        for low_centroid, low_members in low_groups:
            low_clusters.append(
                Cluster(
                    index=len(low_clusters),
                    centroid=low_centroid,
                    sinks=low_members,
                    parent_index=high_index,
                )
            )

    clustering = DualLevelClustering(
        high_clusters=high_clusters,
        low_clusters=low_clusters,
        high_size_target=high_size,
        low_size_target=low_size,
    )
    clustering.validate()
    return clustering

"""A small, deterministic K-means implementation on top of numpy.

The clustering quality requirements of clock routing are modest (the paper
uses vanilla K-means), but determinism matters for reproducible benchmarks,
so the implementation seeds its own random generator and uses K-means++
initialisation.  An optional capacity balancing pass caps the maximum cluster
size, which keeps low-level clusters close to the target size ``Lc``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KMeansResult:
    """Result of a K-means run.

    Attributes:
        labels: array of shape (n,) with the cluster index of every point.
        centroids: array of shape (k, 2) with the final cluster centroids.
        inertia: sum of squared distances of points to their centroid.
        iterations: number of Lloyd iterations executed.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int

    @property
    def cluster_count(self) -> int:
        return int(self.centroids.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Return the number of points assigned to each cluster."""
        return np.bincount(self.labels, minlength=self.cluster_count)

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the points assigned to ``cluster``."""
        return np.flatnonzero(self.labels == cluster)


class KMeans:
    """Lloyd's algorithm with K-means++ seeding and optional size capping."""

    def __init__(
        self,
        n_clusters: int,
        max_iterations: int = 50,
        seed: int = 2025,
        max_cluster_size: int | None = None,
        tolerance: float = 1e-4,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.seed = seed
        self.max_cluster_size = max_cluster_size
        self.tolerance = tolerance

    # ------------------------------------------------------------------ fit
    def fit(self, points: np.ndarray) -> KMeansResult:
        """Cluster ``points`` of shape (n, 2) and return a :class:`KMeansResult`."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
        n = pts.shape[0]
        if n == 0:
            raise ValueError("cannot cluster an empty point set")
        k = min(self.n_clusters, n)

        rng = np.random.default_rng(self.seed)
        centroids = self._kmeanspp_init(pts, k, rng)

        # The point-norm term of the distance expansion is loop-invariant.
        point_norms = np.einsum("ij,ij->i", pts, pts)
        labels = np.zeros(n, dtype=int)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            centroid_norms = np.einsum("ij,ij->i", centroids, centroids)
            distances = point_norms[:, None] + centroid_norms[None, :]
            distances -= 2.0 * (pts @ centroids.T)
            np.maximum(distances, 0.0, out=distances)
            labels = np.argmin(distances, axis=1)
            new_centroids = centroids.copy()
            # One stable grouping pass replaces the per-cluster boolean
            # masks; each contiguous slice holds exactly the rows
            # ``pts[labels == cluster]`` in original order, so the means
            # reduce over identical arrays (bit-equal centroids).
            order = np.argsort(labels, kind="stable")
            grouped = pts[order]
            counts = np.bincount(labels, minlength=k)
            stops = np.cumsum(counts)
            for cluster in range(k):
                stop = stops[cluster]
                if counts[cluster] > 0:
                    new_centroids[cluster] = grouped[
                        stop - counts[cluster]:stop
                    ].mean(axis=0)
                else:
                    # Re-seed empty clusters at the point farthest from its centroid.
                    farthest = int(np.argmax(np.min(distances, axis=1)))
                    new_centroids[cluster] = pts[farthest]
            shift = float(np.max(np.abs(new_centroids - centroids)))
            centroids = new_centroids
            if shift < self.tolerance:
                break

        if self.max_cluster_size is not None:
            labels = self._balance(pts, centroids, labels, self.max_cluster_size)
            centroids = self._recompute_centroids(pts, labels, k, centroids)

        inertia = float(
            np.sum((pts - centroids[labels]) ** 2)
        )
        return KMeansResult(
            labels=labels, centroids=centroids, inertia=inertia, iterations=iterations
        )

    # ------------------------------------------------------------- internals
    @staticmethod
    def _distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Squared Euclidean distances, shape (n, k).

        Uses the ``|x|^2 + |c|^2 - 2 x.c`` expansion instead of broadcasting
        an (n, k, 2) difference tensor: peak memory drops from O(n*k*2) to
        O(n*k) and the inner product runs through BLAS, which is the
        difference between seconds and minutes on large clustering runs.
        Values are clamped at zero because cancellation can produce tiny
        negative distances for points that coincide with a centroid.
        """
        point_norms = np.einsum("ij,ij->i", points, points)
        centroid_norms = np.einsum("ij,ij->i", centroids, centroids)
        distances = point_norms[:, None] + centroid_norms[None, :]
        distances -= 2.0 * (points @ centroids.T)
        np.maximum(distances, 0.0, out=distances)
        return distances

    @staticmethod
    def _kmeanspp_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        """K-means++ initial centroid selection."""
        n = points.shape[0]
        centroids = np.empty((k, 2), dtype=float)
        first = int(rng.integers(n))
        centroids[0] = points[first]
        closest = np.sum((points - centroids[0]) ** 2, axis=1)
        for i in range(1, k):
            total = float(closest.sum())
            if total <= 0:
                centroids[i:] = points[int(rng.integers(n))]
                break
            probs = closest / total
            choice = int(rng.choice(n, p=probs))
            centroids[i] = points[choice]
            closest = np.minimum(closest, np.sum((points - centroids[i]) ** 2, axis=1))
        return centroids

    @staticmethod
    def _recompute_centroids(
        points: np.ndarray, labels: np.ndarray, k: int, fallback: np.ndarray
    ) -> np.ndarray:
        centroids = fallback.copy()
        for cluster in range(k):
            members = points[labels == cluster]
            if len(members) > 0:
                centroids[cluster] = members.mean(axis=0)
        return centroids

    @staticmethod
    def _balance(
        points: np.ndarray,
        centroids: np.ndarray,
        labels: np.ndarray,
        max_size: int,
    ) -> np.ndarray:
        """Greedy reassignment so that no cluster exceeds ``max_size`` points.

        Overfull clusters evict their farthest members, which move to the
        nearest cluster that still has room.  Guaranteed to terminate because
        ``max_size * k >= n`` is enforced by the caller.
        """
        k = centroids.shape[0]
        n = points.shape[0]
        if max_size * k < n:
            raise ValueError(
                f"cannot balance {n} points into {k} clusters of at most {max_size}"
            )
        labels = labels.copy()
        sizes = np.bincount(labels, minlength=k)
        distances = KMeans._distances(points, centroids)
        order = np.argsort(distances[np.arange(n), labels])[::-1]
        for idx in order:
            cluster = labels[idx]
            if sizes[cluster] <= max_size:
                continue
            # Move to the nearest non-full cluster.
            for candidate in np.argsort(distances[idx]):
                if candidate == cluster:
                    continue
                if sizes[candidate] < max_size:
                    labels[idx] = candidate
                    sizes[cluster] -= 1
                    sizes[candidate] += 1
                    break
        return labels

"""Sink clustering for hierarchical clock routing (Section III-B).

The paper clusters sinks at two levels with K-means: high-level clusters of
target size ``Hc = 3000`` and, within each of them, low-level clusters of
target size ``Lc = 30``.  The centroids of both levels become the skeleton of
the hierarchical DME routing.
"""

from repro.clustering.kmeans import KMeans, KMeansResult
from repro.clustering.dual_level import (
    Cluster,
    DualLevelClustering,
    dual_level_clustering,
    estimate_leaf_load,
    low_clusters_for_high,
    split_by_capacitance,
)

__all__ = [
    "KMeans",
    "KMeansResult",
    "Cluster",
    "DualLevelClustering",
    "dual_level_clustering",
    "estimate_leaf_load",
    "low_clusters_for_high",
    "split_by_capacitance",
]

"""Command line interface: run flows and comparisons from a shell.

Examples::

    dscts run C4 --scale 0.25                 # our flow on a scaled riscv32i
    dscts compare C4 C5 --scale 0.2           # Table III style comparison
    dscts dse C4 --scale 0.25 --fanout 20 100 400 --workers 4
    dscts run C4 --corners tt,ss,ff           # multi-corner sign-off columns
    dscts dse C4 --corners signoff            # Pareto on worst-corner skew
    dscts table2                              # print the benchmark statistics
    dscts serve --port 9000                   # long-lived cross-design service

``dscts serve`` keeps built designs warm in a fingerprint-keyed session
cache and answers ``what_if`` requests (buffer inserts, retargets, corner
swaps) over newline-delimited JSON through the timing engine's incremental
path — see :mod:`repro.serve.protocol` for the wire format.

Every flow command accepts ``--engine {reference,vectorized}`` to pick the
timing engine: ``vectorized`` (the default) runs the array-based incremental
kernel, ``reference`` the per-node Elmore implementation — useful to
cross-check results or debug suspected kernel issues.  The analogous
``--dp-backend {reference,vectorized}`` switches the insertion DP between
the array-based candidate-frontier engine (default) and the per-candidate
object DP (the executable spec); both build identical trees.  The same
pattern covers clock routing: ``--dme-backend {reference,vectorized}``
switches the DME router between the level-batched array backend (default)
and the per-node scalar router; both embed identical trees.
``--representation {object,ir}`` selects the flow representation: ``ir``
threads one persistent struct-of-arrays design through every stage instead
of hopping on realised clock trees — same decisions, fewer conversions.
``dse --workers N`` evaluates the sweep grid on ``N`` parallel processes.

``--corners SPEC`` evaluates every flow result across a PVT corner set —
preset names (``tt``, ``ss``, ``ff``, ``hot``, ``cold``), the ``signoff``
shorthand for all five, or inline custom corners
(``name:rscale:cscale:derate``).  The vectorized engine batches all corners
in one pass; with corners active the DSE scores sweep points on worst-corner
skew/latency instead of nominal.  Adding ``--corner-aware-construction``
moves the corner batch into the optimisation loops themselves: the insertion
DP and the skew refinement then optimise worst-corner objectives
(``dscts run C4 --corners signoff --corner-aware-construction``).

``--guard {strict,degrade,off}`` selects the guarded-flow policy of
:mod:`repro.guard` (validation, anomaly detection, graceful degradation to
the reference backends); ``--debug`` turns the one-line ``error:`` summaries
back into full tracebacks.

Worker pools (``--workers`` and ``dse --workers``) run on the fault-tolerant
tier of :mod:`repro.parallel`: failed tasks are retried with backoff and, as
a last resort, recomputed inline on the main process (bit-identical by
construction).  ``dscts run`` reports these recoveries as a one-line
``parallel:`` summary; ``--strict-parallel`` raises a typed
:class:`~repro.parallel.ParallelError` instead of degrading to serial.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.baselines import OpenRoadLikeCTS, VelosoBacksideOptimizer
from repro.designs import load_design, table_ii_rows
from repro.dse import DesignSpaceExplorer
from repro.evaluation import ComparisonTable, format_table
from repro.evaluation.reporting import format_metrics, format_ratio_summary
from repro.evaluation.reporting import format_corner_table
from repro.flow import BackendSelection, CtsConfig, DoubleSideCTS, SingleSideCTS
from repro.flow.config import FLOW_REPRESENTATION_CHOICE
from repro.guard import GUARD_POLICY_NAMES
from repro.insertion.frontier import DP_BACKEND_NAMES
from repro.routing.dme_arrays import DME_BACKEND_NAMES
from repro.tech import CornerSet, asap7_backside
from repro.timing import ENGINE_NAMES


class CliError(ValueError):
    """A pre-flight argument-combination error of the ``dscts`` CLI.

    Raised (not printed) so every error travels the same path through
    :func:`main`'s handler: one ``error: ...`` line on stderr, exit code 1,
    and a full traceback under ``--debug`` — the same contract as every
    other flow error.
    """


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="scale factor applied to the benchmark size (default: full size)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=None,
        help="timing engine: 'vectorized' (fast array kernel, default) or "
        "'reference' (per-node Elmore, for differential checks)",
    )
    parser.add_argument(
        "--dp-backend",
        choices=DP_BACKEND_NAMES,
        default=None,
        help="insertion-DP backend: 'vectorized' (array-based candidate "
        "frontiers, default) or 'reference' (per-candidate object DP, for "
        "differential checks)",
    )
    parser.add_argument(
        "--dme-backend",
        choices=DME_BACKEND_NAMES,
        default=None,
        help="DME routing backend: 'vectorized' (level-batched array "
        "router, default) or 'reference' (per-node scalar router, for "
        "differential checks)",
    )
    parser.add_argument(
        "--corners",
        default=None,
        metavar="SPEC",
        help="comma-separated PVT corner set for multi-corner sign-off: "
        "preset names (tt,ss,ff,hot,cold), 'signoff' for all five, or "
        "custom name:rscale:cscale:derate[:ntsvscale] entries (ntsvscale "
        "defaults to rscale)",
    )
    parser.add_argument(
        "--corner-aware-construction",
        action="store_true",
        help="optimise the construction steps (insertion DP, skew "
        "refinement) against worst-corner objectives over the --corners "
        "batch instead of nominal timing (requires --corners)",
    )
    parser.add_argument(
        "--nominal-skew-budget",
        type=float,
        default=0.0,
        metavar="PS",
        help="nominal skew (ps) a corner-aware skew refinement may give "
        "away while improving the worst corner (default: 0)",
    )
    parser.add_argument(
        "--guard",
        choices=GUARD_POLICY_NAMES,
        default=None,
        help="guarded-flow policy: 'off' (default, no checks), 'degrade' "
        "(validate inputs, re-run anomalous stages on the reference "
        "backends and continue), or 'strict' (fail fast on the first "
        "anomaly)",
    )
    parser.add_argument(
        "--strict-parallel",
        action="store_true",
        help="raise ParallelError when a worker-pool task exhausts its "
        "retries instead of recomputing it inline (degrade-to-serial, "
        "the default)",
    )
    parser.add_argument(
        "--representation",
        choices=FLOW_REPRESENTATION_CHOICE.names,
        default=None,
        help="flow representation: 'object' (default; stages hop on "
        "realised clock trees) or 'ir' (one persistent struct-of-arrays "
        "design threads through every stage); both paths build "
        "bit-identical trees",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="print full tracebacks instead of one-line error summaries",
    )


def _add_construction_workers(parser: argparse.ArgumentParser) -> None:
    # ``dse`` keeps its own --workers (sweep-grid parallelism); this one is
    # the construction-stage knob, so it lives on run/compare only.
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        dest="construction_workers",
        help="process-parallel construction: route and buffer independent "
        "top-level regions on this many workers (IR representation; "
        "bit-identical to serial; default: REPRO_FLOW_WORKERS or 1)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dscts", description="Multi-objective double-side clock tree synthesis"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the double-side CTS flow on one benchmark")
    run.add_argument("design", help="benchmark id (C1..C5) or name (jpeg, aes, ...)")
    _add_common(run)
    _add_construction_workers(run)

    compare = sub.add_parser("compare", help="compare flows on one or more benchmarks")
    compare.add_argument("designs", nargs="+", help="benchmark ids or names")
    _add_common(compare)
    _add_construction_workers(compare)

    dse = sub.add_parser("dse", help="sweep the DSE fanout threshold")
    dse.add_argument("design", help="benchmark id or name")
    dse.add_argument(
        "--fanout", type=int, nargs="+", default=[20, 50, 100, 200, 400, 1000]
    )
    dse.add_argument(
        "--workers",
        type=int,
        default=1,
        help="evaluate the sweep grid on this many parallel processes",
    )
    _add_common(dse)

    serve = sub.add_parser(
        "serve", help="long-lived CTS service with a cross-design session cache"
    )
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks an ephemeral one)"
    )
    serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve newline-delimited JSON over stdin/stdout instead of TCP",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=8,
        help="session cache capacity (least-recently-used designs evicted)",
    )
    serve.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        help="bounded worker pool size bridging requests into the flow",
    )
    _add_common(serve)
    _add_construction_workers(serve)

    sub.add_parser("table2", help="print the Table II benchmark statistics")
    return parser


def _config_for(args: argparse.Namespace) -> CtsConfig:
    corners = None
    if getattr(args, "corners", None):
        corners = CornerSet.parse(args.corners)
    corner_aware = bool(getattr(args, "corner_aware_construction", False))
    if corner_aware and corners is None:
        raise CliError("--corner-aware-construction requires --corners")
    budget = float(getattr(args, "nominal_skew_budget", 0.0))
    if budget < 0:
        raise CliError("--nominal-skew-budget must be non-negative")
    if budget and not corner_aware:
        raise CliError(
            "--nominal-skew-budget only applies with "
            "--corner-aware-construction"
        )
    parallel_policy = None
    if getattr(args, "strict_parallel", False):
        from repro.parallel import resolve_parallel_policy

        parallel_policy = resolve_parallel_policy().with_updates(mode="strict")
    return CtsConfig(
        corners=corners,
        corner_aware_construction=corner_aware,
        nominal_skew_budget=budget,
        workers=getattr(args, "construction_workers", None),
        parallel_policy=parallel_policy,
        backends=BackendSelection(
            timing=args.engine,
            dp=getattr(args, "dp_backend", None),
            dme=getattr(args, "dme_backend", None),
            guard=getattr(args, "guard", None),
            representation=getattr(args, "representation", None),
        ),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    pdk = asap7_backside()
    # Pre-flight the argument combination before the (expensive) design load.
    config = _config_for(args)
    design = load_design(args.design, scale=args.scale, include_combinational=False)
    result = DoubleSideCTS(pdk, config).run(design)
    print(format_metrics(result.metrics))
    if result.parallel_tasks:
        print(result.parallel_summary())
    if result.metrics.corner_skews:
        print(format_corner_table(result.metrics))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    pdk = asap7_backside()
    config = _config_for(args)
    table = ComparisonTable(reference_flow="ours")
    for identifier in args.designs:
        design = load_design(identifier, scale=args.scale, include_combinational=False)
        ours = DoubleSideCTS(pdk, config).run(design)
        openroad = OpenRoadLikeCTS(pdk).run(design)
        veloso = VelosoBacksideOptimizer(pdk).run(
            openroad.tree, design_name=design.name
        )
        single = SingleSideCTS(pdk, config).run(design)
        for metrics in (ours.metrics, openroad.metrics, veloso.metrics, single.metrics):
            table.add(metrics)
    print(format_table(table.rows()))
    print()
    print(format_ratio_summary(table.summary()))
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    pdk = asap7_backside()
    config = _config_for(args)
    design = load_design(args.design, scale=args.scale, include_combinational=False)
    explorer = DesignSpaceExplorer(pdk, config)
    result = explorer.explore(
        design, fanout_thresholds=args.fanout, workers=args.workers
    )
    print(format_table(result.rows()))
    pareto = result.pareto()
    print(f"\nPareto-optimal configurations: {[p.parameter for p in pareto]}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import CtsServer

    if args.max_sessions < 1:
        raise CliError("--max-sessions must be at least 1")
    if args.serve_workers < 1:
        raise CliError("--serve-workers must be at least 1")
    server = CtsServer(
        asap7_backside(),
        _config_for(args),
        max_sessions=args.max_sessions,
        workers=args.serve_workers,
    )
    if args.stdio:
        return server.run_stdio()
    asyncio.run(server.serve_tcp(args.host, args.port))
    return 0


def _cmd_table2(_args: argparse.Namespace) -> int:
    print(format_table(table_ii_rows()))
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected command with the CLI backend choices as process defaults.

    The environment overrides make the engine / backend / guard choices the
    process-wide defaults for the duration of the command so baseline flows
    (which have no knobs of their own) honour them too.
    """
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "dse": _cmd_dse,
        "serve": _cmd_serve,
        "table2": _cmd_table2,
    }
    overrides = {}
    if getattr(args, "engine", None):
        overrides["REPRO_TIMING_ENGINE"] = args.engine
    if getattr(args, "dp_backend", None):
        overrides["REPRO_DP_BACKEND"] = args.dp_backend
    if getattr(args, "dme_backend", None):
        overrides["REPRO_DME_BACKEND"] = args.dme_backend
    if getattr(args, "guard", None):
        overrides["REPRO_GUARD"] = args.guard
    if getattr(args, "representation", None):
        overrides["REPRO_FLOW_REPRESENTATION"] = args.representation
    if not overrides:
        return handlers[args.command](args)
    previous = {name: os.environ.get(name) for name in overrides}
    os.environ.update(overrides)
    try:
        return handlers[args.command](args)
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``dscts`` console script.

    Errors surface as a one-line ``error: ...`` on stderr with exit code 1;
    pass ``--debug`` to re-raise and get the full traceback.  ``SystemExit``
    (argparse usage errors) and ``KeyboardInterrupt`` pass through untouched.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except Exception as exc:  # noqa: BLE001 - the CLI boundary
        if getattr(args, "debug", False):
            raise
        # KeyError reprs its argument; unwrap it for a readable message.
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Guard policies: how the flow reacts to validation and anomaly findings.

The guarded flow supports three policies, resolved through the shared
:class:`~repro.flow.config.BackendChoice` rule (explicit argument >
``CtsConfig.guard`` > ``REPRO_GUARD`` > built-in default):

``off``
    No validation, no checks, no copies — the flow behaves exactly as it
    did before the guard existed.  This is the default.
``degrade``
    Inputs are validated once at flow entry and stage invariants are checked
    after every construction stage.  When a stage's output is anomalous the
    stage is re-run through the reference backend (the executable spec the
    two-engine pattern already maintains), a :class:`GuardDiagnostic` is
    recorded on the flow result, and the flow continues.
``strict``
    Same checks, but the first anomaly raises a typed :class:`GuardError`
    naming the stage, the design fingerprint, and the offending values.

:class:`StageGuard` carries the per-run guard state — the resolved policy,
the injected faults of the test harness, and the recorded diagnostics — and
implements the check / degrade / confirm protocol the flow stages call.

Never catch :class:`GuardError` at a call site: under ``degrade`` the flow
already recovered everything recoverable, so a raised ``GuardError`` means
either a ``strict`` run doing its job or an anomaly that persists on the
reference backends — both must surface to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.clocktree import ClockTree
    from repro.guard.faults import StageFault
    from repro.ir.design import DesignArrays
    from repro.netlist.clock import ClockNet

#: Mirrors :data:`repro.flow.config.GUARD_POLICY_CHOICE` as literals
#: (import-cycle free); ``tests/test_backend_resolution.py`` asserts the
#: mirrors agree with the shared definition.
GUARD_POLICY_NAMES: tuple[str, ...] = ("strict", "degrade", "off")
GUARD_POLICY_DEFAULT = "off"


class GuardError(RuntimeError):
    """A guarded flow found an anomaly it must not silently continue past.

    Attributes:
        stage: flow stage the anomaly was detected at (``"inputs"``,
            ``"routing"``, ``"insertion"``, ``"refinement"``,
            ``"evaluation"``).
        anomaly: human-readable description of the offending values.
        fingerprint: short design fingerprint
            (:func:`repro.guard.validation.design_fingerprint`), so failures
            from long-running services can be traced back to their input.
    """

    def __init__(self, stage: str, anomaly: str, fingerprint: str = "") -> None:
        self.stage = stage
        self.anomaly = anomaly
        self.fingerprint = fingerprint
        message = f"guarded flow: {stage}: {anomaly}"
        if fingerprint:
            message = f"{message} [design {fingerprint}]"
        super().__init__(message)


@dataclass(frozen=True)
class GuardDiagnostic:
    """One recorded guard intervention on a flow result.

    Attributes:
        stage: the flow stage that was found anomalous.
        anomaly: what the guard detected in the stage's original output.
        action: what the guard did about it (currently ``"degraded"``).
        backend: backend name the stage was re-run on.
        fingerprint: the design fingerprint of the run.
    """

    stage: str
    anomaly: str
    action: str
    backend: str
    fingerprint: str


def resolve_guard_policy(*candidates: str | None) -> str:
    """Resolve the guard policy by the shared backend-resolution rule.

    Candidates are listed in precedence order (explicit argument first, then
    the ``CtsConfig.guard`` field); the ``REPRO_GUARD`` environment variable
    and the built-in default apply when every candidate is None.
    """
    from repro.flow.config import GUARD_POLICY_CHOICE

    return GUARD_POLICY_CHOICE.resolve(*candidates)


class StageGuard:
    """Per-run guard state and the check / degrade / confirm protocol.

    The flow calls, per stage:

    1. :meth:`inject` — apply the test harness's injected faults (all
       policies, including ``off``: faults simulate backend bugs, and an
       unguarded flow must exhibit them);
    2. :meth:`check` — ``False`` when the stage output is healthy or the
       guard is off; ``True`` when the stage must be degraded; raises
       :class:`GuardError` under ``strict``;
    3. after re-running the stage on the reference backend,
       :meth:`confirm` — verifies the anomaly is gone (raising when it
       persists: a reference-backend anomaly is never recoverable) and
       records the :class:`GuardDiagnostic`.
    """

    def __init__(
        self,
        policy: str,
        clock_net: "ClockNet",
        faults: Iterable["StageFault"] = (),
    ) -> None:
        if policy not in GUARD_POLICY_NAMES:
            raise ValueError(
                f"unknown guard policy {policy!r}; expected one of {GUARD_POLICY_NAMES}"
            )
        self.policy = policy
        self.clock_net = clock_net
        self.faults = tuple(faults)
        self.diagnostics: list[GuardDiagnostic] = []
        self._fingerprint: str | None = None
        self._pending: str = ""

    # ------------------------------------------------------------- queries
    @property
    def active(self) -> bool:
        """True when any checking happens at all (policy is not ``off``)."""
        return self.policy != "off"

    @property
    def degrading(self) -> bool:
        """True when anomalous stages re-run on the reference backends."""
        return self.policy == "degrade"

    @property
    def fingerprint(self) -> str:
        """The design fingerprint, computed lazily on first use."""
        if self._fingerprint is None:
            from repro.guard.validation import design_fingerprint

            self._fingerprint = design_fingerprint(self.clock_net)
        return self._fingerprint

    # ------------------------------------------------------------ protocol
    def validate_inputs(self, pdk, corners=None) -> None:
        """Validate the flow inputs once at entry (no-op when off)."""
        if not self.active:
            return
        from repro.guard.validation import validate_flow_inputs

        validate_flow_inputs(self.clock_net, pdk, corners=corners)

    def inject(self, stage: str, tree: "ClockTree | DesignArrays") -> None:
        """Apply the injected faults registered for ``stage`` (all policies)."""
        if not self.faults:
            return
        from repro.guard.faults import apply_faults

        apply_faults(self.faults, stage, tree)

    def check(
        self,
        stage: str,
        tree: "ClockTree | DesignArrays | None",
        extra: Callable[[], str | None] | None = None,
    ) -> bool:
        """Check the stage output; True when the stage must be degraded.

        ``extra`` supplies a stage-specific anomaly probe (timing results,
        metrics) evaluated after the shared tree checks; pass ``tree=None``
        for result-only stages (evaluation does not mutate the tree, so
        re-probing it there would just duplicate the refinement check).
        Under ``strict`` an anomaly raises :class:`GuardError` instead of
        returning.
        """
        if not self.active:
            return False
        anomaly = self._anomaly(tree, extra)
        if anomaly is None:
            return False
        if not self.degrading:
            raise GuardError(stage, anomaly, self.fingerprint)
        self._pending = anomaly
        return True

    def confirm(
        self,
        stage: str,
        tree: "ClockTree | DesignArrays | None",
        extra: Callable[[], str | None] | None = None,
        backend: str = "reference",
    ) -> None:
        """Verify a degraded stage healed and record the diagnostic.

        An anomaly that survives the reference backend is not a kernel bug
        the degrade path can route around — it raises even under ``degrade``.
        """
        anomaly = self._anomaly(tree, extra)
        if anomaly is not None:
            raise GuardError(
                stage,
                f"anomaly persists on the {backend} backend: {anomaly}",
                self.fingerprint,
            )
        self.diagnostics.append(
            GuardDiagnostic(
                stage=stage,
                anomaly=self._pending,
                action="degraded",
                backend=backend,
                fingerprint=self.fingerprint,
            )
        )
        self._pending = ""

    def _anomaly(
        self,
        tree: "ClockTree | DesignArrays | None",
        extra: Callable[[], str | None] | None,
    ) -> str | None:
        from repro.guard.validation import stage_anomaly

        anomaly = stage_anomaly(tree, self.clock_net) if tree is not None else None
        if anomaly is None and extra is not None:
            anomaly = extra()
        return anomaly

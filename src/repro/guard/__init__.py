"""Flow-wide robustness: validation, anomaly detection, graceful degradation.

The two-engine pattern gives every construction stage a fast vectorized
backend *and* a scalar executable spec.  This package turns that redundancy
into a runtime safety net:

* :mod:`repro.guard.validation` — input validation at flow entry and the
  stage-invariant probes run after routing, insertion, and refinement;
* :mod:`repro.guard.policy` — the ``strict`` / ``degrade`` / ``off``
  policies, the typed :class:`GuardError`, the structured
  :class:`GuardDiagnostic` recorded on flow results, and the
  :class:`StageGuard` runner the flow drives;
* :mod:`repro.guard.faults` — fault injectors that corrupt live state so
  tests can prove every guard fires and every degrade recovers.

Policy rules (see ROADMAP "Guarded flow"): new flow stages must register
their invariant checks here, and :class:`GuardError` is never caught at a
call site.
"""

from repro.guard.faults import (
    WORKER_FAULT_KINDS,
    WORKER_FAULTS_ENV_VAR,
    StageFault,
    SweepCrash,
    WorkerFault,
    apply_faults,
    arm_worker_faults,
    break_pool,
    corrupt_worker_result,
    parse_worker_faults,
)
from repro.guard.policy import (
    GUARD_POLICY_DEFAULT,
    GUARD_POLICY_NAMES,
    GuardDiagnostic,
    GuardError,
    StageGuard,
    resolve_guard_policy,
)
from repro.guard.validation import (
    clock_net_problems,
    corner_problems,
    design_fingerprint,
    edit_log_anomaly,
    insertion_anomaly,
    metrics_anomaly,
    pdk_problems,
    stage_anomaly,
    timing_anomaly,
    validate_clock_net,
    validate_corners,
    validate_flow_inputs,
    validate_pdk,
)

__all__ = [
    "GUARD_POLICY_DEFAULT",
    "GUARD_POLICY_NAMES",
    "GuardDiagnostic",
    "GuardError",
    "StageFault",
    "StageGuard",
    "SweepCrash",
    "WORKER_FAULT_KINDS",
    "WORKER_FAULTS_ENV_VAR",
    "WorkerFault",
    "apply_faults",
    "arm_worker_faults",
    "break_pool",
    "corrupt_worker_result",
    "parse_worker_faults",
    "clock_net_problems",
    "corner_problems",
    "design_fingerprint",
    "edit_log_anomaly",
    "insertion_anomaly",
    "metrics_anomaly",
    "pdk_problems",
    "resolve_guard_policy",
    "stage_anomaly",
    "timing_anomaly",
    "validate_clock_net",
    "validate_corners",
    "validate_flow_inputs",
    "validate_pdk",
]

"""Input validation and stage-invariant checks of the guarded flow.

Two layers live here:

* **Input validation** — run once at flow entry on the design
  (:func:`clock_net_problems`), the technology
  (:func:`pdk_problems`, including NLDM table finiteness that the table
  constructor deliberately does not enforce), and the corner set
  (:func:`corner_problems`).  :func:`validate_flow_inputs` bundles all
  three and raises a :class:`~repro.guard.policy.GuardError` with every
  problem listed.
* **Stage invariants** — :func:`stage_anomaly` is the shared post-stage
  probe: the structural invariants of :meth:`ClockTree.validate`, edit-log
  coherence, finite/non-negative capacitance and edge-length columns, and
  sink preservation against the input clock net (the PR-5 silent-sink-drop
  bug class, made a permanent check) — all fused into a single traversal,
  because the probe runs after every guarded stage and the healthy path
  must stay cheap.  The per-result probes (:func:`timing_anomaly`,
  :func:`insertion_anomaly`, :func:`metrics_anomaly`) cover the numeric
  outputs a corrupted kernel would poison first.

Every probe returns ``None`` when healthy or a human-readable summary of the
offending values (counts plus example names, never full array dumps), which
is what :class:`~repro.guard.policy.GuardError` and
:class:`~repro.guard.policy.GuardDiagnostic` carry.
"""

from __future__ import annotations

import hashlib
import math
from typing import TYPE_CHECKING

import numpy as np

from repro.clocktree.node import ClockTreeNode, NodeKind
from repro.clocktree.tree import ClockTree, ConnectivityError
from repro.ir.design import DesignArrays
from repro.tech.layers import Side
from repro.guard.policy import GuardError
from repro.netlist.clock import ClockNet
from repro.tech.corners import CornerSet
from repro.tech.nldm import NldmTable
from repro.tech.pdk import Pdk

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.metrics import ClockTreeMetrics
    from repro.insertion.concurrent import InsertionResult
    from repro.timing.analysis import TimingResult

#: Edit kinds :meth:`ClockTree._record` may legally log.
_EDIT_KINDS = ("splice", "rewire", "touch")


def design_fingerprint(clock_net: ClockNet) -> str:
    """A short stable fingerprint of a clock net (name, source, sinks).

    Attached to guard errors and diagnostics so anomalies reported from
    long-running sweeps or services can be traced back to their input.
    """
    hasher = hashlib.sha1()
    source = clock_net.source
    hasher.update(
        f"{clock_net.name}|{source.name}:{source.location.x}:{source.location.y}"
        f":{source.drive_resistance}:{source.output_slew}".encode()
    )
    for sink in clock_net.sinks:
        hasher.update(
            f"|{sink.name}:{sink.location.x}:{sink.location.y}:{sink.capacitance}".encode()
        )
    return hasher.hexdigest()[:12]


def design_cache_key(
    design: "ClockNet | DesignArrays",
    pdk: Pdk | None = None,
    corners: CornerSet | None = None,
) -> str:
    """:func:`design_fingerprint` extended into a stable cache key.

    Keys the serve tier's :class:`~repro.serve.session.SessionCache`: the sha
    of the design's identity — the full-precision clock-net columns for a
    pre-build lookup, or the canonicalised :class:`DesignArrays` columns of a
    built tree — plus the PDK and corner identity, so two requests share a
    session exactly when they would build the same tree and time it the same
    way.  Floats hash by ``float.hex()`` (exact, no repr rounding) and built
    designs hash their *alive* rows in name order with parent *names*, so
    tombstones, row renumbering, and compaction never change the key.
    """
    hasher = hashlib.sha256()
    if isinstance(design, DesignArrays):
        hasher.update(b"design-arrays")
        rows = sorted(
            (int(row) for row in design.alive_rows()),
            key=lambda row: design.names[row],
        )
        for row in rows:
            parent = int(design.parent_row[row])
            parent_name = design.names[parent] if parent >= 0 else ""
            hasher.update(
                f"|{design.names[row]}:{int(design.kind[row])}:{parent_name}"
                f":{float(design.x[row]).hex()}:{float(design.y[row]).hex()}"
                f":{float(design.cap[row]).hex()}:{int(design.side_front[row])}"
                f":{int(design.wire_front[row])}".encode()
            )
    else:
        source = design.source
        hasher.update(
            f"clock-net|{design.name}|{source.name}"
            f":{float(source.location.x).hex()}:{float(source.location.y).hex()}"
            f":{float(source.drive_resistance).hex()}"
            f":{float(source.output_slew).hex()}".encode()
        )
        for sink in design.sinks:
            hasher.update(
                f"|{sink.name}:{float(sink.location.x).hex()}"
                f":{float(sink.location.y).hex()}"
                f":{float(sink.capacitance).hex()}".encode()
            )
    if pdk is not None:
        buffer = pdk.buffer
        hasher.update(
            f"|pdk:{pdk.name}:{int(pdk.has_backside)}"
            f":{float(pdk.max_capacitance).hex()}:{float(pdk.max_slew).hex()}"
            f"|buf:{buffer.name}:{float(buffer.input_capacitance).hex()}"
            f":{float(buffer.intrinsic_delay).hex()}"
            f":{float(buffer.drive_resistance).hex()}"
            f":{float(buffer.output_slew).hex()}".encode()
        )
        for layer in (pdk.front_layer, pdk.back_layer if pdk.has_backside else None):
            if layer is not None:
                hasher.update(
                    f"|layer:{layer.name}:{float(layer.unit_resistance).hex()}"
                    f":{float(layer.unit_capacitance).hex()}".encode()
                )
        if pdk.ntsv is not None:
            hasher.update(
                f"|ntsv:{pdk.ntsv.name}:{float(pdk.ntsv.resistance).hex()}"
                f":{float(pdk.ntsv.capacitance).hex()}".encode()
            )
    if corners is not None:
        for scenario in corners:
            hasher.update(
                f"|corner:{scenario.name}"
                f":{float(scenario.wire_res_scale).hex()}"
                f":{float(scenario.wire_cap_scale).hex()}"
                f":{float(scenario.buffer_derate).hex()}"
                f":{float(scenario.ntsv_res_scale).hex()}"
                f":{scenario.use_nldm}".encode()
            )
    return hasher.hexdigest()


# ------------------------------------------------------------------- inputs
def _positive(value: float) -> bool:
    return math.isfinite(value) and value > 0


def clock_net_problems(clock_net: ClockNet) -> list[str]:
    """Every validation problem of a design's clock net (empty when clean)."""
    problems: list[str] = []
    if not clock_net.sinks:
        problems.append(f"clock net {clock_net.name!r} has no sinks")
    source = clock_net.source
    if not (math.isfinite(source.location.x) and math.isfinite(source.location.y)):
        problems.append(f"source {source.name!r}: location is not finite")
    if not _positive(source.drive_resistance):
        problems.append(
            f"source {source.name!r}: drive resistance "
            f"{source.drive_resistance!r} is not positive and finite"
        )
    if not (math.isfinite(source.output_slew) and source.output_slew >= 0):
        problems.append(
            f"source {source.name!r}: output slew {source.output_slew!r} "
            "is not non-negative and finite"
        )
    seen: set[str] = set()
    for sink in clock_net.sinks:
        if sink.name in seen:
            problems.append(f"duplicate sink name {sink.name!r}")
        seen.add(sink.name)
        if not (math.isfinite(sink.location.x) and math.isfinite(sink.location.y)):
            problems.append(f"sink {sink.name!r}: location is not finite")
        if not _positive(sink.capacitance):
            problems.append(
                f"sink {sink.name!r}: capacitance {sink.capacitance!r} "
                "is not positive and finite"
            )
    return problems


def _nldm_problems(table: NldmTable | None, label: str) -> list[str]:
    if table is None:
        return []
    problems: list[str] = []
    slews = np.asarray(table.slew_axis, dtype=float)
    caps = np.asarray(table.cap_axis, dtype=float)
    for name, axis in (("slew", slews), ("cap", caps)):
        if not np.isfinite(axis).all():
            problems.append(f"{label}: {name} axis has non-finite entries")
        elif np.any(np.diff(axis) <= 0):
            problems.append(f"{label}: {name} axis is not strictly increasing")
    values = np.asarray(table.values, dtype=float)
    bad = int(np.count_nonzero(~np.isfinite(values)))
    if bad:
        problems.append(f"{label}: {bad}/{values.size} table entries are not finite")
    return problems


def pdk_problems(pdk: Pdk) -> list[str]:
    """Every validation problem of a PDK (empty when clean)."""
    problems: list[str] = []
    for layer in pdk.stack:
        for attr in ("unit_resistance", "unit_capacitance"):
            value = getattr(layer, attr)
            if not _positive(value):
                problems.append(
                    f"layer {layer.name!r}: {attr} {value!r} is not positive and finite"
                )
    buffer = pdk.buffer
    for attr in ("input_capacitance", "max_capacitance"):
        if not _positive(getattr(buffer, attr)):
            problems.append(
                f"buffer {buffer.name!r}: {attr} "
                f"{getattr(buffer, attr)!r} is not positive and finite"
            )
    for attr in ("intrinsic_delay", "drive_resistance", "output_slew"):
        value = getattr(buffer, attr)
        if not (math.isfinite(value) and value >= 0):
            problems.append(
                f"buffer {buffer.name!r}: {attr} {value!r} "
                "is not non-negative and finite"
            )
    problems += _nldm_problems(buffer.nldm_delay, f"buffer {buffer.name!r} delay table")
    problems += _nldm_problems(buffer.nldm_slew, f"buffer {buffer.name!r} slew table")
    if pdk.ntsv is not None:
        for attr in ("resistance", "capacitance"):
            value = getattr(pdk.ntsv, attr)
            if not (math.isfinite(value) and value >= 0):
                problems.append(
                    f"nTSV {pdk.ntsv.name!r}: {attr} {value!r} "
                    "is not non-negative and finite"
                )
    for attr in ("max_capacitance", "max_slew"):
        if not _positive(getattr(pdk, attr)):
            problems.append(
                f"PDK {pdk.name!r}: {attr} {getattr(pdk, attr)!r} "
                "is not positive and finite"
            )
    return problems


def corner_problems(corners: CornerSet | None) -> list[str]:
    """Every validation problem of a corner set (empty when clean or None)."""
    if corners is None:
        return []
    problems: list[str] = []
    for scenario in corners:
        for attr in (
            "wire_res_scale",
            "wire_cap_scale",
            "buffer_derate",
            "ntsv_res_scale",
        ):
            value = getattr(scenario, attr)
            if not _positive(value):
                problems.append(
                    f"corner {scenario.name!r}: {attr} {value!r} "
                    "is not positive and finite"
                )
    try:
        # Engines report the first nominal member as the primary corner;
        # a set that cannot gain one (both fallback names squatted by
        # non-nominal scenarios) has no well-defined nominal point.
        corners.ensure_nominal()
    except ValueError as exc:
        problems.append(str(exc))
    return problems


def validate_clock_net(clock_net: ClockNet) -> None:
    """Raise :class:`GuardError` when the clock net is invalid."""
    _raise_on_problems(clock_net_problems(clock_net), design_fingerprint(clock_net))


def validate_pdk(pdk: Pdk) -> None:
    """Raise :class:`GuardError` when the PDK is invalid."""
    _raise_on_problems(pdk_problems(pdk), "")


def validate_corners(corners: CornerSet | None) -> None:
    """Raise :class:`GuardError` when the corner set is invalid."""
    _raise_on_problems(corner_problems(corners), "")


def _clock_net_clean(clock_net: ClockNet) -> bool:
    """Fast screen of the per-sink checks (no problem messages).

    True means :func:`clock_net_problems` would return an empty list, so
    the detailed Python loop — and the design fingerprint — only run when a
    problem actually exists.  This keeps flow-entry validation nearly free
    on clean multi-thousand-sink designs.
    """
    sinks = clock_net.sinks
    if not sinks:
        return False
    source = clock_net.source
    if not (math.isfinite(source.location.x) and math.isfinite(source.location.y)):
        return False
    if not _positive(source.drive_resistance):
        return False
    if not (math.isfinite(source.output_slew) and source.output_slew >= 0):
        return False
    if len({sink.name for sink in sinks}) != len(sinks):
        return False
    data = np.array([(s.location.x, s.location.y, s.capacitance) for s in sinks])
    return bool(np.isfinite(data).all()) and bool((data[:, 2] > 0).all())


def validate_flow_inputs(
    clock_net: ClockNet, pdk: Pdk, corners: CornerSet | None = None
) -> None:
    """Validate design, PDK, and corners together (flow-entry check)."""
    problems = [] if _clock_net_clean(clock_net) else clock_net_problems(clock_net)
    problems += pdk_problems(pdk) + corner_problems(corners)
    if problems:
        _raise_on_problems(problems, design_fingerprint(clock_net))


def _raise_on_problems(problems: list[str], fingerprint: str) -> None:
    if problems:
        raise GuardError("inputs", "; ".join(problems), fingerprint)


# ------------------------------------------------------------------- stages
def stage_anomaly(
    tree: ClockTree | DesignArrays, clock_net: ClockNet | None = None
) -> str | None:
    """The shared post-stage probe: None when healthy, else a summary.

    Semantically this is :meth:`ClockTree.validate` (cycles, parent links,
    duplicate names, side constraints, name-index coherence) plus edit-log
    coherence, finite/non-negative capacitance and edge-length screens,
    and — when the input net is supplied — sink preservation.  All of it is
    fused into one iterative traversal with numpy doing the numeric
    screens: the probe runs after every guarded stage, so the healthy path
    must cost a couple of milliseconds, not a handful of full-tree passes
    (``tests/test_guard.py`` proves each corruption class is still caught,
    and the ``guarded_flow`` bench row gates the overhead in CI).

    :class:`~repro.ir.design.DesignArrays` designs take a fully vectorized
    variant of the same probe (column screens instead of a node traversal).
    """
    if isinstance(tree, DesignArrays):
        return _stage_anomaly_design(tree, clock_net)
    sink_kind, buffer_kind, ntsv_kind = NodeKind.SINK, NodeKind.BUFFER, NodeKind.NTSV
    front = Side.FRONT
    seen: set[int] = set()
    names: dict[str, ClockTreeNode] = {}
    order: list[ClockTreeNode] = []
    caps: list[float] = []
    lengths: list[float] = []
    sink_names: list[str] = []
    stack = [tree.root]
    pop = stack.pop
    extend = stack.extend
    while stack:
        node = pop()
        if id(node) in seen:
            return f"invariant violation: cycle detected at node {node.name!r}"
        seen.add(id(node))
        name = node.name
        if name in names:
            return f"invariant violation: duplicate node name {name!r}"
        names[name] = node
        order.append(node)
        parent = node.parent
        kind = node.kind
        node_side = node.side
        children = node.children
        caps.append(node.capacitance)
        if parent is None:
            lengths.append(0.0)
        else:
            # Inlined node.edge_length(): this loop visits every node after
            # every stage, so the method + Point.manhattan call overhead is
            # measurable.
            loc, ploc = node.location, parent.location
            lengths.append(abs(loc.x - ploc.x) + abs(loc.y - ploc.y))
        for child in children:
            if child.parent is not node:
                return (
                    "invariant violation: broken parent link: "
                    f"{child.name!r} does not point to {name!r}"
                )
        if kind is sink_kind:
            sink_names.append(name)
            if node_side is not front:
                return f"invariant violation: sink {name!r} is on the back side"
        elif kind is buffer_kind and node_side is not front:
            return f"invariant violation: buffer {name!r} is on the back side"
        if kind is ntsv_kind:
            # An nTSV spans both sides: upstream wire on the stored
            # (upstream) side, downstream wires on the opposite side.
            if parent is not None and node.wire_side is not node_side:
                return (
                    f"invariant violation: nTSV {name!r}: upstream wire on "
                    f"{node.wire_side.value}, expected {node_side.value}"
                )
            opposite = node_side.opposite
            for child in children:
                if child.wire_side is not opposite:
                    return (
                        f"invariant violation: nTSV {name!r}: downstream wire "
                        f"on {child.wire_side.value}, expected {opposite.value}"
                    )
        else:
            # The paper's shared-vertex constraint: every wire touching a
            # non-nTSV node lies on that node's side.
            if parent is not None and node.wire_side is not node_side:
                return (
                    f"invariant violation: node {name!r} ({kind.value}) on side "
                    f"{node_side.value} touches a wire on side {node.wire_side.value}"
                )
            for child in children:
                if child.wire_side is not node_side:
                    return (
                        f"invariant violation: node {name!r} ({kind.value}) on side "
                        f"{node_side.value} touches a wire on side "
                        f"{child.wire_side.value}"
                    )
        extend(children)
    try:
        # Private on purpose: the probe reuses the tree's own index check so
        # the two stay coherent.
        tree._check_find_index(names)
    except ConnectivityError as exc:
        return f"invariant violation: {exc}"
    anomaly = edit_log_anomaly(tree)
    if anomaly is None:
        anomaly = _column_anomaly(order, caps, "node capacitance")
    if anomaly is None:
        anomaly = _column_anomaly(order, lengths, "edge length")
    if anomaly is None and clock_net is not None:
        anomaly = _sink_preservation_anomaly(sink_names, clock_net)
    return anomaly


def _stage_anomaly_design(
    design: DesignArrays, clock_net: ClockNet | None
) -> str | None:
    """The IR twin of the shared probe, reduced over the design's rows.

    Structure (cycles, reachability, duplicate names, side constraints)
    reuses :meth:`DesignArrays.validate` after a bounded reachability walk —
    the walk must come first because a corrupted ``children_rows`` cycle
    would spin ``validate``'s level grouping forever.  The numeric screens
    recompute edge lengths from the coordinate columns (mirroring the object
    probe, which derives lengths from node locations), so a NaN poked into
    either the geometry or the capacitance column is caught.
    """
    rows = design.alive_rows()
    total = int(rows.size)
    if not total or not design.alive[0]:
        return "invariant violation: design has no alive root row"
    reached = 0
    frontier = [0]
    while frontier:
        reached += len(frontier)
        if reached > total:
            return "invariant violation: cycle detected in the design rows"
        frontier = [c for row in frontier for c in design.children_rows[row]]
    try:
        design.validate()
    except ConnectivityError as exc:
        return f"invariant violation: {exc}"
    anomaly = edit_log_anomaly(design)
    if anomaly is None:
        anomaly = _design_column_anomaly(
            design, rows, design.cap[rows], "node capacitance"
        )
    if anomaly is None:
        parents = design.parent_row[rows]
        edge_rows = rows[parents >= 0]
        edge_parents = parents[parents >= 0]
        lengths = np.abs(design.x[edge_rows] - design.x[edge_parents]) + np.abs(
            design.y[edge_rows] - design.y[edge_parents]
        )
        anomaly = _design_column_anomaly(design, edge_rows, lengths, "edge length")
    if anomaly is None and clock_net is not None:
        sink_names = [design.names[int(row)] for row in design.sink_rows()]
        anomaly = _sink_preservation_anomaly(sink_names, clock_net)
    return anomaly


def _design_column_anomaly(
    design: DesignArrays, rows: np.ndarray, values: np.ndarray, label: str
) -> str | None:
    """Non-finite or negative entries in one per-row numeric column."""
    finite = np.isfinite(values)
    if not finite.all():
        bad = rows[~finite]
        names = [design.names[int(row)] for row in bad[:3]]
        return f"{label}: {bad.size}/{values.size} non-finite entries (e.g. {names})"
    negative = values < 0
    if negative.any():
        bad = rows[negative]
        names = [design.names[int(row)] for row in bad[:3]]
        return f"{label}: {bad.size}/{values.size} negative entries (e.g. {names})"
    return None


def _column_anomaly(
    order: list[ClockTreeNode], values: list[float], label: str
) -> str | None:
    """Non-finite or negative entries in one per-node numeric column."""
    column = np.asarray(values)
    finite = np.isfinite(column)
    if not finite.all():
        rows = np.flatnonzero(~finite)
        names = [order[row].name for row in rows[:3]]
        return (
            f"{label}: {rows.size}/{column.size} non-finite entries (e.g. {names})"
        )
    negative = column < 0
    if negative.any():
        rows = np.flatnonzero(negative)
        names = [order[row].name for row in rows[:3]]
        return f"{label}: {rows.size}/{column.size} negative entries (e.g. {names})"
    return None


def _sink_preservation_anomaly(
    sink_names: list[str], clock_net: ClockNet
) -> str | None:
    """Every input sink must survive every stage, and no sink may appear."""
    expected = {sink.name for sink in clock_net.sinks}
    actual = set(sink_names)
    if actual == expected:
        return None
    missing = expected - actual
    extra = actual - expected
    parts = []
    if missing:
        parts.append(f"{len(missing)} input sinks lost (e.g. {sorted(missing)[:3]})")
    if extra:
        parts.append(f"{len(extra)} unexpected sinks (e.g. {sorted(extra)[:3]})")
    return "sink preservation violated: " + ", ".join(parts)


def edit_log_anomaly(tree: ClockTree | DesignArrays) -> str | None:
    """Coherence of the edit log incremental timers replay.

    The log must carry known edit kinds with strictly increasing versions,
    splice/rewire entries must name their node, and the newest entry must
    match the tree version (an edited tree with a pruned or stale log would
    silently desync every incremental consumer).  Designs share the log
    shape (including ``compact()``'s collapsed single-touch log), so the
    same checks apply to both representations.
    """
    edits = tree.edit_log
    if not edits:
        if tree.version != 0:
            return (
                f"edit log incoherent: empty log on a tree at version {tree.version}"
            )
        return None
    last = 0
    for version, kind, node in edits:
        if kind not in _EDIT_KINDS:
            return f"edit log incoherent: unknown edit kind {kind!r}"
        if version <= last:
            return (
                "edit log incoherent: versions not strictly increasing "
                f"({version} after {last})"
            )
        last = version
        if kind != "touch" and node is None:
            return f"edit log incoherent: {kind} entry at {version} names no node"
    if last != tree.version:
        return (
            f"edit log incoherent: newest entry {last} != tree version {tree.version}"
        )
    return None


# ------------------------------------------------------------------ results
def timing_anomaly(timing: "TimingResult | None") -> str | None:
    """Non-finite or negative sink arrivals in a timing result."""
    if timing is None:
        return None
    arrivals = timing.arrivals
    values = np.fromiter(arrivals.values(), dtype=float, count=len(arrivals))
    # Fast screen first; names are only materialized on an actual anomaly.
    if np.isfinite(values).all() and not (values < 0).any():
        return None
    bad = [name for name, value in arrivals.items() if not math.isfinite(value)]
    if bad:
        return f"timing: {len(bad)} non-finite sink arrivals (e.g. {sorted(bad)[:3]})"
    negative = [name for name, value in arrivals.items() if value < 0]
    return (
        f"timing: {len(negative)} negative sink arrivals "
        f"(e.g. {sorted(negative)[:3]})"
    )


def insertion_anomaly(result: "InsertionResult") -> str | None:
    """Anomalies in an insertion result (nominal and per-corner timing)."""
    anomaly = timing_anomaly(result.timing)
    if anomaly is not None:
        return anomaly
    if result.timing_per_corner:
        for corner, timing in result.timing_per_corner.items():
            anomaly = timing_anomaly(timing)
            if anomaly is not None:
                return f"corner {corner}: {anomaly}"
    if result.inserted_buffers < 0 or result.inserted_ntsvs < 0:
        return (
            "insertion: negative resource counts "
            f"(buffers={result.inserted_buffers}, ntsvs={result.inserted_ntsvs})"
        )
    return None


def metrics_anomaly(metrics: "ClockTreeMetrics") -> str | None:
    """Non-finite or negative values in the final evaluation metrics."""
    for label in (
        "latency",
        "skew",
        "wirelength",
        "front_wirelength",
        "back_wirelength",
    ):
        value = getattr(metrics, label)
        if not (math.isfinite(value) and value >= 0):
            return f"metrics: {label} = {value!r}"
    for mapping, what in (
        (metrics.corner_skews, "skew"),
        (metrics.corner_latencies, "latency"),
    ):
        for corner, value in mapping.items():
            if not (math.isfinite(value) and value >= 0):
                return f"metrics: corner {corner} {what} = {value!r}"
    return None

"""Fault injection: deliberately corrupt live flow state to prove guards fire.

The guard's value rests on a falsifiable claim: *every* anomaly class it
advertises is actually detected, and the degrade path actually recovers.
The injectors here corrupt a clock tree the way a buggy kernel would —
NaN escaping into a :class:`~repro.clocktree.arrays.TreeArrays` column,
a silently dropped sink subtree, a lost edit-log entry, an off-side wire
(the observable effect of a DME backend returning a node on the wrong
side), a duplicated node name — so the test suite can run the full flow
with a fault armed at a chosen stage and assert:

* ``strict`` raises :class:`~repro.guard.GuardError` naming that stage,
* ``degrade`` completes with a recorded diagnostic and a final tree
  bit-identical to an all-reference-backend run,
* ``off`` reproduces today's unguarded behaviour, corruption included.

Faults are applied to the *output* of a stage (after the backend ran, before
the guard checks), which models backend bugs without patching backend
internals; a degraded re-run on the reference backend starts from a replayed
pristine pre-stage tree, and the degraded stage itself is never re-faulted.

Everything here is module-level and pickle-friendly so faults can cross
process pools (the DSE crash hook :class:`SweepCrash` must reach
``ProcessPoolExecutor`` workers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.clocktree.node import NodeKind
from repro.clocktree.tree import ClockTree
from repro.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flow.config import CtsConfig


@dataclass(frozen=True)
class StageFault:
    """Corrupt the tree right after the flow stage named ``stage``.

    ``stage`` is one of the guarded stage names (``"routing"``,
    ``"insertion"``, ``"refinement"``); ``inject`` is a module-level callable
    taking the live :class:`ClockTree`.
    """

    stage: str
    inject: Callable[[ClockTree], None]

    @property
    def name(self) -> str:
        return getattr(self.inject, "__name__", repr(self.inject))


def apply_faults(
    faults: Iterable[StageFault], stage: str, tree: ClockTree
) -> None:
    """Apply every fault registered for ``stage`` to ``tree``."""
    for fault in faults:
        if fault.stage == stage:
            fault.inject(tree)


# ---------------------------------------------------------------- injectors
def poke_nan_capacitance(tree: ClockTree) -> None:
    """NaN escaping a numpy kernel into a pin capacitance (``cap`` column)."""
    tree.sinks()[0].capacitance = float("nan")
    tree.touch()


def poke_nan_location(tree: ClockTree) -> None:
    """NaN coordinates on a node (poisons the ``edge_length`` column)."""
    tree.sinks()[-1].location = Point(float("nan"), float("nan"))
    tree.touch()


def poke_negative_capacitance(tree: ClockTree) -> None:
    """A negative capacitance (an underflowing subtraction in a kernel)."""
    tree.sinks()[0].capacitance = -1.0
    tree.touch()


def drop_sink(tree: ClockTree) -> None:
    """Silently lose one sink subtree (the PR-5 silent-sink-drop bug class)."""
    tree.sinks()[0].detach()
    tree.touch()


def flip_wire_side(tree: ClockTree) -> None:
    """Move one wire to the opposite die side without an nTSV.

    This is the observable effect of a routing backend returning an
    off-side node: a non-nTSV vertex now touches wires on both sides,
    violating the paper's shared-vertex side constraint.
    """
    for node in tree.nodes():
        if node.parent is None or node.is_ntsv or node.parent.is_ntsv:
            continue
        node.wire_side = node.wire_side.opposite
        tree.touch()
        return
    raise AssertionError("no flippable wire found")  # pragma: no cover


def duplicate_node_name(tree: ClockTree) -> None:
    """Give an internal node the name of an existing sink."""
    sink_name = tree.sinks()[0].name
    for node in tree.nodes():
        if node.kind in (NodeKind.STEINER, NodeKind.TAP):
            node.name = sink_name
            tree.touch()
            return
    raise AssertionError("no internal node to rename")  # pragma: no cover


def drop_edit_log_entry(tree: ClockTree) -> None:
    """Lose one recorded edit (incremental timers would silently desync).

    Reaches into the private log on purpose: that is the corruption being
    simulated.  The tree structure is untouched; only the log lies.
    """
    if not tree._edits:
        tree.touch()
    del tree._edits[-1]


# ----------------------------------------------------------------- DSE hook
@dataclass(frozen=True)
class SweepCrash:
    """Picklable DSE point hook that raises at one sweep threshold.

    Passed as ``point_hook`` to
    :meth:`~repro.dse.DesignSpaceExplorer.explore`; the hook is invoked with
    the point's configuration before the point is evaluated.  With
    ``only_fast`` the crash spares all-reference configurations, so the
    sweep's one reference retry succeeds — exercising the recovery path
    end-to-end instead of only the failure bookkeeping.
    """

    threshold: int
    only_fast: bool = False

    def __call__(self, config: "CtsConfig", threshold: int) -> None:
        if threshold != self.threshold:
            return
        if self.only_fast and (
            config.timing_engine == "reference"
            and config.dp_backend == "reference"
            and config.dme_backend == "reference"
        ):
            return
        raise RuntimeError(f"injected sweep crash at threshold {threshold}")

"""Fault injection: deliberately corrupt live flow state to prove guards fire.

The guard's value rests on a falsifiable claim: *every* anomaly class it
advertises is actually detected, and the degrade path actually recovers.
The injectors here corrupt a clock tree the way a buggy kernel would —
NaN escaping into a :class:`~repro.clocktree.arrays.TreeArrays` column,
a silently dropped sink subtree, a lost edit-log entry, an off-side wire
(the observable effect of a DME backend returning a node on the wrong
side), a duplicated node name — so the test suite can run the full flow
with a fault armed at a chosen stage and assert:

* ``strict`` raises :class:`~repro.guard.GuardError` naming that stage,
* ``degrade`` completes with a recorded diagnostic and a final tree
  bit-identical to an all-reference-backend run,
* ``off`` reproduces today's unguarded behaviour, corruption included.

Faults are applied to the *output* of a stage (after the backend ran, before
the guard checks), which models backend bugs without patching backend
internals; a degraded re-run on the reference backend starts from a replayed
pristine pre-stage tree, and the degraded stage itself is never re-faulted.

Everything here is module-level and pickle-friendly so faults can cross
process pools (the DSE crash hook :class:`SweepCrash` must reach
``ProcessPoolExecutor`` workers).

Beyond the stage-output injectors, this module also owns the **worker-level**
injectors of the fault-tolerant parallel tier (:class:`WorkerFault`): crash,
sleep-past-timeout, corrupt-result, crash-on-pickle, exit-mid-task, and
broken-pool failures applied inside (or against) pool workers, so the test
matrix in ``tests/test_parallel_faults.py`` can prove that
:func:`repro.parallel.run_tasks` recovers every failure mode byte-identical
to an all-serial run.  Arm them programmatically
(:func:`arm_worker_faults`) or via the ``REPRO_PARALLEL_FAULTS``
environment variable (:func:`parse_worker_faults`) so a whole CI job can
run with, say, every first worker attempt crashing.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.clocktree.node import NodeKind
from repro.clocktree.tree import ClockTree
from repro.geometry import Point
from repro.ir.design import KIND_NTSV, KIND_TAP, DesignArrays
from repro.clocktree.arrays import KIND_STEINER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flow.config import CtsConfig

#: Either live flow representation a fault may be asked to corrupt.
FlowState = ClockTree | DesignArrays


@dataclass(frozen=True)
class StageFault:
    """Corrupt the tree right after the flow stage named ``stage``.

    ``stage`` is one of the guarded stage names (``"routing"``,
    ``"insertion"``, ``"refinement"``); ``inject`` is a module-level callable
    taking the live :class:`ClockTree` or :class:`DesignArrays`.  Every
    injector here handles both representations, so the same fault matrix
    exercises the object-hop and the IR-native flow paths.
    """

    stage: str
    inject: Callable[[FlowState], None]

    @property
    def name(self) -> str:
        return getattr(self.inject, "__name__", repr(self.inject))


def apply_faults(
    faults: Iterable[StageFault], stage: str, tree: FlowState
) -> None:
    """Apply every fault registered for ``stage`` to ``tree``."""
    for fault in faults:
        if fault.stage == stage:
            fault.inject(tree)


# ---------------------------------------------------------------- injectors
def poke_nan_capacitance(tree: FlowState) -> None:
    """NaN escaping a numpy kernel into a pin capacitance (``cap`` column)."""
    if isinstance(tree, DesignArrays):
        tree.cap[int(tree.sink_rows()[0])] = float("nan")
    else:
        tree.sinks()[0].capacitance = float("nan")
    tree.touch()


def poke_nan_location(tree: FlowState) -> None:
    """NaN coordinates on a node (poisons the ``edge_length`` column)."""
    if isinstance(tree, DesignArrays):
        row = int(tree.sink_rows()[-1])
        tree.x[row] = tree.y[row] = float("nan")
        tree.edge_length[row] = tree._edge(row, int(tree.parent_row[row]))
    else:
        tree.sinks()[-1].location = Point(float("nan"), float("nan"))
    tree.touch()


def poke_negative_capacitance(tree: FlowState) -> None:
    """A negative capacitance (an underflowing subtraction in a kernel)."""
    if isinstance(tree, DesignArrays):
        tree.cap[int(tree.sink_rows()[0])] = -1.0
    else:
        tree.sinks()[0].capacitance = -1.0
    tree.touch()


def drop_sink(tree: FlowState) -> None:
    """Silently lose one sink subtree (the PR-5 silent-sink-drop bug class)."""
    if isinstance(tree, DesignArrays):
        tree.detach_subtree(int(tree.sink_rows()[0]))
    else:
        tree.sinks()[0].detach()
    tree.touch()


def flip_wire_side(tree: FlowState) -> None:
    """Move one wire to the opposite die side without an nTSV.

    This is the observable effect of a routing backend returning an
    off-side node: a non-nTSV vertex now touches wires on both sides,
    violating the paper's shared-vertex side constraint.
    """
    if isinstance(tree, DesignArrays):
        for row in tree.rows_preorder():
            parent = int(tree.parent_row[row])
            if parent < 0:
                continue
            if tree.kind[row] == KIND_NTSV or tree.kind[parent] == KIND_NTSV:
                continue
            tree.wire_front[row] = not tree.wire_front[row]
            tree.touch()
            return
        raise AssertionError("no flippable wire found")  # pragma: no cover
    for node in tree.nodes():
        if node.parent is None or node.is_ntsv or node.parent.is_ntsv:
            continue
        node.wire_side = node.wire_side.opposite
        tree.touch()
        return
    raise AssertionError("no flippable wire found")  # pragma: no cover


def duplicate_node_name(tree: FlowState) -> None:
    """Give an internal node the name of an existing sink."""
    if isinstance(tree, DesignArrays):
        sink_name = tree.names[int(tree.sink_rows()[0])]
        for row in tree.rows_preorder():
            if tree.kind[row] in (KIND_STEINER, KIND_TAP):
                # Bypass rename(): the simulated bug corrupts the name
                # column without maintaining the lookup index.
                tree.names[row] = sink_name
                tree.touch()
                return
        raise AssertionError("no internal node to rename")  # pragma: no cover
    sink_name = tree.sinks()[0].name
    for node in tree.nodes():
        if node.kind in (NodeKind.STEINER, NodeKind.TAP):
            node.name = sink_name
            tree.touch()
            return
    raise AssertionError("no internal node to rename")  # pragma: no cover


def drop_edit_log_entry(tree: FlowState) -> None:
    """Lose one recorded edit (incremental timers would silently desync).

    Reaches into the private log on purpose: that is the corruption being
    simulated.  The tree structure is untouched; only the log lies.  Both
    representations keep the same private log shape.
    """
    if not tree._edits:
        tree.touch()
    del tree._edits[-1]


# ------------------------------------------------------------ worker faults
#: Environment variable arming worker faults process-wide.  Comma- or
#: semicolon-separated ``stage:kind[:fail_attempts[:task_index]]`` entries;
#: ``stage`` may be ``*`` (every pool consumer), e.g. ``*:crash:1`` crashes
#: the first attempt of every parallel task.
WORKER_FAULTS_ENV_VAR = "REPRO_PARALLEL_FAULTS"

#: The worker failure modes :class:`WorkerFault` can inject.
WORKER_FAULT_KINDS = (
    "crash",  # raise inside the worker (the task fails cleanly)
    "hang",  # sleep past the policy timeout inside the worker
    "corrupt",  # return structurally corrupt rows (caught by validate)
    "unpicklable",  # crash-on-pickle: the result cannot travel back
    "exit",  # os._exit mid-task: kills the worker, breaks the pool
    "broken_pool",  # main-side: terminate the pool's workers pre-submit
)


class _Unpicklable:
    """A worker return value whose pickling fails (crash-on-pickle)."""

    def __init__(self, wrapped: object = None) -> None:
        self.wrapped = wrapped

    def __reduce__(self):
        raise RuntimeError("injected crash-on-pickle fault")


def corrupt_worker_result(result: object) -> object:
    """Structurally corrupt a pool-task result the way a buggy worker would.

    Duck-typed over the pool consumers' result shapes: a routing
    ``_RegionShard`` loses one sink subtree (tombstoned rows — caught by the
    shard probe), a frontier dict gets NaN capacitances poked into one
    frontier (caught by the finiteness probe).  Unknown result shapes pass
    through unchanged (nothing meaningful to corrupt).
    """
    shard = getattr(result, "shard", None)
    if shard is not None and hasattr(shard, "detach_subtree"):
        shard.detach_subtree(int(shard.sink_rows()[0]))
        return result
    if isinstance(result, dict) and result:
        frontier = result[min(result)]
        cap = getattr(frontier, "cap", None)
        if cap is not None:
            cap[...] = float("nan")
        return result
    return result


@dataclass(frozen=True)
class WorkerFault:
    """One injected worker-level failure of the fault-tolerant parallel tier.

    Frozen and built from primitives so instances travel to pool workers
    inside every task payload (no worker-side arming needed — the injector
    works under any multiprocessing start method).

    Attributes:
        stage: pool consumer the fault targets (``"routing"``,
            ``"insertion"``, ``"dse"``, ``"flow_cache"``, or ``"*"`` for
            all).
        kind: one of :data:`WORKER_FAULT_KINDS`.
        fail_attempts: the fault fires while ``attempt <= fail_attempts``
            — ``1`` (default) fails only the first attempt so a retry
            recovers; set it at or above ``ParallelPolicy.attempts`` to
            force degrade-to-serial (or a strict failure).
        task_index: restrict the fault to one task position (``None`` hits
            every task of the stage).
        hang_s: sleep duration of the ``hang`` kind.
    """

    stage: str = "*"
    kind: str = "crash"
    fail_attempts: int = 1
    task_index: int | None = None
    hang_s: float = 1.5

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"unknown worker-fault kind {self.kind!r}; expected one of "
                f"{WORKER_FAULT_KINDS}"
            )
        if self.fail_attempts < 1:
            raise ValueError(
                f"fail_attempts must be at least 1, got {self.fail_attempts}"
            )

    def applies_to(self, stage: str) -> bool:
        return self.stage in ("*", stage)

    def fires(self, stage: str, index: int, attempt: int) -> bool:
        if not self.applies_to(stage):
            return False
        if self.task_index is not None and index != self.task_index:
            return False
        return attempt <= self.fail_attempts

    # Called by repro.parallel._policed_call inside the worker process.
    def worker_before(self, stage: str, index: int, attempt: int) -> None:
        """Pre-task injection: crash, hang, or kill the worker outright."""
        if not self.fires(stage, index, attempt):
            return
        if self.kind == "crash":
            raise RuntimeError(
                f"injected worker crash ({stage} task {index}, "
                f"attempt {attempt})"
            )
        if self.kind == "hang":
            time.sleep(self.hang_s)
        elif self.kind == "exit":
            os._exit(23)

    def worker_after(
        self, stage: str, index: int, attempt: int, result: object
    ) -> object:
        """Post-task injection: corrupt or un-picklable results."""
        if not self.fires(stage, index, attempt):
            return result
        if self.kind == "corrupt":
            return corrupt_worker_result(result)
        if self.kind == "unpicklable":
            return _Unpicklable(result)
        return result


def break_pool(pool) -> None:
    """Terminate a pool's worker processes (the ``broken_pool`` injector).

    Models a worker killed from outside (OOM killer, a node draining): the
    executor notices the lost worker and marks itself broken, so pending
    futures raise :class:`~concurrent.futures.process.BrokenProcessPool`.
    A pool that has not spawned workers yet is forced to first — otherwise
    there would be nothing to kill and the fault would silently no-op.
    """
    if not getattr(pool, "_processes", None):
        pool.submit(_noop).result()
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()
    for process in list(processes.values()):
        process.join(timeout=5)


def _noop() -> None:
    """Trivial pool task used to force worker spawn before breaking it."""


def parse_worker_faults(spec: str) -> tuple[WorkerFault, ...]:
    """Parse a ``REPRO_PARALLEL_FAULTS`` spec into :class:`WorkerFault` rows.

    Format: comma- or semicolon-separated
    ``stage:kind[:fail_attempts[:task_index]]`` entries, e.g. ``*:crash:1``
    or ``routing:corrupt:99;insertion:hang:1:0``.
    """
    faults: list[WorkerFault] = []
    for entry in spec.replace(";", ",").split(","):
        entry = entry.strip()
        if not entry:
            continue
        fields = entry.split(":")
        if len(fields) < 2 or len(fields) > 4:
            raise ValueError(
                f"bad worker-fault entry {entry!r}; expected "
                "stage:kind[:fail_attempts[:task_index]]"
            )
        kwargs: dict = {"stage": fields[0], "kind": fields[1]}
        if len(fields) > 2 and fields[2]:
            kwargs["fail_attempts"] = int(fields[2])
        if len(fields) > 3 and fields[3]:
            kwargs["task_index"] = int(fields[3])
        faults.append(WorkerFault(**kwargs))
    return tuple(faults)


#: Faults armed programmatically for the current process (see
#: :func:`arm_worker_faults`).
_ARMED_WORKER_FAULTS: list[WorkerFault] = []


@contextmanager
def arm_worker_faults(*faults: WorkerFault):
    """Arm worker faults for the duration of a ``with`` block (tests)."""
    _ARMED_WORKER_FAULTS.extend(faults)
    try:
        yield
    finally:
        for fault in faults:
            _ARMED_WORKER_FAULTS.remove(fault)


def active_worker_faults() -> tuple[WorkerFault, ...]:
    """Armed faults plus any ``REPRO_PARALLEL_FAULTS`` environment spec."""
    faults = tuple(_ARMED_WORKER_FAULTS)
    env = (os.environ.get(WORKER_FAULTS_ENV_VAR) or "").strip()
    if env:
        faults += parse_worker_faults(env)
    return faults


# ----------------------------------------------------------------- DSE hook
@dataclass(frozen=True)
class SweepCrash:
    """Picklable DSE point hook that raises at one sweep threshold.

    Passed as ``point_hook`` to
    :meth:`~repro.dse.DesignSpaceExplorer.explore`; the hook is invoked with
    the point's configuration before the point is evaluated.  With
    ``only_fast`` the crash spares all-reference configurations, so the
    sweep's one reference retry succeeds — exercising the recovery path
    end-to-end instead of only the failure bookkeeping.
    """

    threshold: int
    only_fast: bool = False

    def __call__(self, config: "CtsConfig", threshold: int) -> None:
        if threshold != self.threshold:
            return
        if self.only_fast and (
            config.timing_engine == "reference"
            and config.dp_backend == "reference"
            and config.dme_backend == "reference"
        ):
            return
        raise RuntimeError(f"injected sweep crash at threshold {threshold}")

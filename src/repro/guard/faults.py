"""Fault injection: deliberately corrupt live flow state to prove guards fire.

The guard's value rests on a falsifiable claim: *every* anomaly class it
advertises is actually detected, and the degrade path actually recovers.
The injectors here corrupt a clock tree the way a buggy kernel would —
NaN escaping into a :class:`~repro.clocktree.arrays.TreeArrays` column,
a silently dropped sink subtree, a lost edit-log entry, an off-side wire
(the observable effect of a DME backend returning a node on the wrong
side), a duplicated node name — so the test suite can run the full flow
with a fault armed at a chosen stage and assert:

* ``strict`` raises :class:`~repro.guard.GuardError` naming that stage,
* ``degrade`` completes with a recorded diagnostic and a final tree
  bit-identical to an all-reference-backend run,
* ``off`` reproduces today's unguarded behaviour, corruption included.

Faults are applied to the *output* of a stage (after the backend ran, before
the guard checks), which models backend bugs without patching backend
internals; a degraded re-run on the reference backend starts from a replayed
pristine pre-stage tree, and the degraded stage itself is never re-faulted.

Everything here is module-level and pickle-friendly so faults can cross
process pools (the DSE crash hook :class:`SweepCrash` must reach
``ProcessPoolExecutor`` workers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.clocktree.node import NodeKind
from repro.clocktree.tree import ClockTree
from repro.geometry import Point
from repro.ir.design import KIND_NTSV, KIND_TAP, DesignArrays
from repro.clocktree.arrays import KIND_STEINER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flow.config import CtsConfig

#: Either live flow representation a fault may be asked to corrupt.
FlowState = ClockTree | DesignArrays


@dataclass(frozen=True)
class StageFault:
    """Corrupt the tree right after the flow stage named ``stage``.

    ``stage`` is one of the guarded stage names (``"routing"``,
    ``"insertion"``, ``"refinement"``); ``inject`` is a module-level callable
    taking the live :class:`ClockTree` or :class:`DesignArrays`.  Every
    injector here handles both representations, so the same fault matrix
    exercises the object-hop and the IR-native flow paths.
    """

    stage: str
    inject: Callable[[FlowState], None]

    @property
    def name(self) -> str:
        return getattr(self.inject, "__name__", repr(self.inject))


def apply_faults(
    faults: Iterable[StageFault], stage: str, tree: FlowState
) -> None:
    """Apply every fault registered for ``stage`` to ``tree``."""
    for fault in faults:
        if fault.stage == stage:
            fault.inject(tree)


# ---------------------------------------------------------------- injectors
def poke_nan_capacitance(tree: FlowState) -> None:
    """NaN escaping a numpy kernel into a pin capacitance (``cap`` column)."""
    if isinstance(tree, DesignArrays):
        tree.cap[int(tree.sink_rows()[0])] = float("nan")
    else:
        tree.sinks()[0].capacitance = float("nan")
    tree.touch()


def poke_nan_location(tree: FlowState) -> None:
    """NaN coordinates on a node (poisons the ``edge_length`` column)."""
    if isinstance(tree, DesignArrays):
        row = int(tree.sink_rows()[-1])
        tree.x[row] = tree.y[row] = float("nan")
        tree.edge_length[row] = tree._edge(row, int(tree.parent_row[row]))
    else:
        tree.sinks()[-1].location = Point(float("nan"), float("nan"))
    tree.touch()


def poke_negative_capacitance(tree: FlowState) -> None:
    """A negative capacitance (an underflowing subtraction in a kernel)."""
    if isinstance(tree, DesignArrays):
        tree.cap[int(tree.sink_rows()[0])] = -1.0
    else:
        tree.sinks()[0].capacitance = -1.0
    tree.touch()


def drop_sink(tree: FlowState) -> None:
    """Silently lose one sink subtree (the PR-5 silent-sink-drop bug class)."""
    if isinstance(tree, DesignArrays):
        tree.detach_subtree(int(tree.sink_rows()[0]))
    else:
        tree.sinks()[0].detach()
    tree.touch()


def flip_wire_side(tree: FlowState) -> None:
    """Move one wire to the opposite die side without an nTSV.

    This is the observable effect of a routing backend returning an
    off-side node: a non-nTSV vertex now touches wires on both sides,
    violating the paper's shared-vertex side constraint.
    """
    if isinstance(tree, DesignArrays):
        for row in tree.rows_preorder():
            parent = int(tree.parent_row[row])
            if parent < 0:
                continue
            if tree.kind[row] == KIND_NTSV or tree.kind[parent] == KIND_NTSV:
                continue
            tree.wire_front[row] = not tree.wire_front[row]
            tree.touch()
            return
        raise AssertionError("no flippable wire found")  # pragma: no cover
    for node in tree.nodes():
        if node.parent is None or node.is_ntsv or node.parent.is_ntsv:
            continue
        node.wire_side = node.wire_side.opposite
        tree.touch()
        return
    raise AssertionError("no flippable wire found")  # pragma: no cover


def duplicate_node_name(tree: FlowState) -> None:
    """Give an internal node the name of an existing sink."""
    if isinstance(tree, DesignArrays):
        sink_name = tree.names[int(tree.sink_rows()[0])]
        for row in tree.rows_preorder():
            if tree.kind[row] in (KIND_STEINER, KIND_TAP):
                # Bypass rename(): the simulated bug corrupts the name
                # column without maintaining the lookup index.
                tree.names[row] = sink_name
                tree.touch()
                return
        raise AssertionError("no internal node to rename")  # pragma: no cover
    sink_name = tree.sinks()[0].name
    for node in tree.nodes():
        if node.kind in (NodeKind.STEINER, NodeKind.TAP):
            node.name = sink_name
            tree.touch()
            return
    raise AssertionError("no internal node to rename")  # pragma: no cover


def drop_edit_log_entry(tree: FlowState) -> None:
    """Lose one recorded edit (incremental timers would silently desync).

    Reaches into the private log on purpose: that is the corruption being
    simulated.  The tree structure is untouched; only the log lies.  Both
    representations keep the same private log shape.
    """
    if not tree._edits:
        tree.touch()
    del tree._edits[-1]


# ----------------------------------------------------------------- DSE hook
@dataclass(frozen=True)
class SweepCrash:
    """Picklable DSE point hook that raises at one sweep threshold.

    Passed as ``point_hook`` to
    :meth:`~repro.dse.DesignSpaceExplorer.explore`; the hook is invoked with
    the point's configuration before the point is evaluated.  With
    ``only_fast`` the crash spares all-reference configurations, so the
    sweep's one reference retry succeeds — exercising the recovery path
    end-to-end instead of only the failure bookkeeping.
    """

    threshold: int
    only_fast: bool = False

    def __call__(self, config: "CtsConfig", threshold: int) -> None:
        if threshold != self.threshold:
            return
        if self.only_fast and (
            config.timing_engine == "reference"
            and config.dp_backend == "reference"
            and config.dme_backend == "reference"
        ):
            return
        raise RuntimeError(f"injected sweep crash at threshold {threshold}")

"""Resource-aware end-point buffer insertion for skew refinement.

The refinement is triggered when the tree's skew exceeds ``p%`` of its
maximum latency (``p = 23`` in the paper).  It then refines
``n = min(N * t, m)`` end-points — low-level cluster centroids (tap nodes) —
by inserting one buffer at each centroid, which shifts the arrival times of
that cluster's sinks without touching the trunk.

Two orderings are provided (see DESIGN.md, "Interpretation notes"):

* ``pad_fast`` (default): refine the end-points whose sinks arrive earliest.
  The inserted buffer delays the whole cluster, closing the gap to the
  slowest sink and reducing skew while leaving latency untouched — this is
  the behaviour shown in Fig. 11.
* ``shield_slow``: refine the end-points whose sinks arrive latest.  The
  buffer decouples the leaf-net load from the trunk, which can reduce the
  slow paths when the shielding gain exceeds the buffer delay.

**Corner-aware refinement.**  Pass ``corners=`` to optimise the worst corner
of a PVT batch instead of the nominal point: end-points are ranked by the
arrivals of the *worst-skew corner*, and an edit is accepted only when it
improves the worst-corner skew without degrading the worst-corner latency
or regressing the nominal skew beyond ``nominal_skew_budget``.  Every trial
is scored by one corner-batched (incremental) engine pass — the engine is
created once and never re-instantiated in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.ir.design import (
    KIND_BUFFER,
    KIND_ROOT,
    KIND_SINK,
    KIND_TAP,
    DesignArrays,
)
from repro.refinement.adaptive import refined_endpoint_count
from repro.tech.corners import CornerSet, Scenario
from repro.tech.layers import Side
from repro.tech.pdk import Pdk
from repro.timing import TimingResult, create_engine


@dataclass
class _TimingSnapshot:
    """One measurement of the tree: per-corner skew/latency scalars.

    The trial loop only ever needs these scalars (one batched
    ``skew_per_corner``/``latency_per_corner`` pass each, served from the
    engine's cached sink-arrival matrix); the full per-sink ``nominal`` and
    ``ranking`` results are attached — by :meth:`SkewRefiner._attach_arrivals`
    while the tree is in this snapshot's state — only where arrivals are
    actually consulted: the initial measurement, accepted trials, and the
    report.  Nominal-only refinement carries a single (primary) corner.
    """

    corner_skews: dict[str, float]
    corner_latencies: dict[str, float]
    primary: str
    nominal: TimingResult | None = None
    ranking: TimingResult | None = None

    @property
    def nominal_skew(self) -> float:
        return self.corner_skews[self.primary]

    @property
    def nominal_latency(self) -> float:
        return self.corner_latencies[self.primary]

    @property
    def worst_skew(self) -> float:
        return max(self.corner_skews.values())

    @property
    def worst_latency(self) -> float:
        return max(self.corner_latencies.values())

    @property
    def worst_corner(self) -> str:
        """Name of the worst-skew corner (the primary when nominal-only)."""
        return max(self.corner_skews, key=self.corner_skews.__getitem__)

    def violates(self, fraction: float) -> bool:
        """Skew-trigger check: any corner exceeding ``fraction`` x latency."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        return any(
            self.corner_skews[name] > fraction * self.corner_latencies[name]
            for name in self.corner_skews
        )


@dataclass
class SkewRefinementReport:
    """Before/after record of one skew refinement run.

    ``before``/``after`` always report the nominal (primary) corner; the
    ``corner_skews_*`` dicts carry the whole batch for corner-aware runs
    (and stay empty for nominal-only refinement).
    """

    triggered: bool
    refined_endpoints: int
    added_buffers: int
    before: TimingResult
    after: TimingResult
    corner_skews_before: dict[str, float] = field(default_factory=dict)
    corner_skews_after: dict[str, float] = field(default_factory=dict)

    @property
    def skew_reduction(self) -> float:
        """Absolute skew improvement (ps); positive when skew decreased."""
        return self.before.skew - self.after.skew

    @property
    def latency_increase(self) -> float:
        """Latency change (ps); small positive values are expected."""
        return self.after.latency - self.before.latency

    @property
    def worst_skew_before(self) -> float:
        """Worst-corner skew before refinement (nominal when no corners)."""
        if not self.corner_skews_before:
            return self.before.skew
        return max(self.corner_skews_before.values())

    @property
    def worst_skew_after(self) -> float:
        """Worst-corner skew after refinement (nominal when no corners)."""
        if not self.corner_skews_after:
            return self.after.skew
        return max(self.corner_skews_after.values())

    @property
    def worst_skew_reduction(self) -> float:
        """Worst-corner skew improvement (ps); positive when it decreased."""
        return self.worst_skew_before - self.worst_skew_after

    def summary(self) -> dict[str, float | int | bool]:
        summary: dict[str, float | int | bool] = {
            "triggered": self.triggered,
            "refined_endpoints": self.refined_endpoints,
            "added_buffers": self.added_buffers,
            "skew_before_ps": round(self.before.skew, 3),
            "skew_after_ps": round(self.after.skew, 3),
            "latency_before_ps": round(self.before.latency, 3),
            "latency_after_ps": round(self.after.latency, 3),
        }
        if self.corner_skews_before:
            summary["worst_skew_before_ps"] = round(self.worst_skew_before, 3)
            summary["worst_skew_after_ps"] = round(self.worst_skew_after, 3)
        return summary


class SkewRefiner:
    """Implements the paper's Section III-D post-processing step."""

    def __init__(
        self,
        pdk: Pdk,
        skew_trigger_fraction: float = 0.23,
        max_endpoints: int = 33,
        strategy: str = "pad_fast",
        force: bool = False,
        engine: str | None = None,
        corners: CornerSet | Scenario | str | None = None,
        nominal_skew_budget: float = 0.0,
    ) -> None:
        if not 0 < skew_trigger_fraction <= 1:
            raise ValueError("the skew trigger fraction must be in (0, 1]")
        if strategy not in ("pad_fast", "shield_slow"):
            raise ValueError(f"unknown refinement strategy {strategy!r}")
        if nominal_skew_budget < 0:
            raise ValueError("the nominal skew budget must be non-negative")
        self.pdk = pdk
        self.skew_trigger_fraction = skew_trigger_fraction
        self.max_endpoints = max_endpoints
        self.strategy = strategy
        self.force = force
        self.nominal_skew_budget = nominal_skew_budget
        # The refiner's trial loop re-times the tree after every endpoint
        # edit; the (default) vectorized engine serves those queries from its
        # incremental re-timing path because every edit below is recorded
        # with ``tree.mark_rewire`` — corner-batched when corners are given,
        # so one pass scores all K corners of a trial.
        self._engine = create_engine(pdk, engine, corners=corners)
        self._corner_aware = corners is not None and len(self._engine.corners) > 1
        self._primary_name = self._engine.corners[self._engine.primary_index].name
        self._corner_pdks = (
            dict(zip(self._engine.corners.names, self._engine.corner_pdks))
            if self._corner_aware
            else {}
        )

    # ----------------------------------------------------------------- public
    @property
    def corners(self) -> CornerSet:
        """The resolved corner set the refiner optimises against."""
        return self._engine.corners

    def refine(self, tree: ClockTree | DesignArrays) -> SkewRefinementReport:
        """Refine ``tree`` in place and return the before/after report.

        Accepts either representation; the design path makes the same ranked
        endpoint choices and the same accept/reject decisions (endpoints and
        trial buffers are tracked by *name* because the incremental engine
        compacts the design, renumbering rows).
        """
        if isinstance(tree, DesignArrays):
            return self._refine_design(tree)
        before = self._measure(tree, with_arrivals=True)
        if not self.force and not before.violates(self.skew_trigger_fraction):
            return self._report(False, 0, 0, before, before)

        endpoints = self._end_points(tree)
        sink_count = tree.sink_count()
        budget = refined_endpoint_count(sink_count, self.max_endpoints)
        ranked = self._rank_endpoints(tree, endpoints, before.ranking)[:budget]

        added, after = self._refine_batch(tree, ranked, before)
        if added == 0:
            added, after = self._refine_greedy(tree, ranked, before)
        return self._report(True, len(ranked), added, before, after)

    def _refine_batch(
        self,
        tree: ClockTree,
        ranked: list[ClockTreeNode],
        before: _TimingSnapshot,
    ) -> tuple[int, _TimingSnapshot]:
        """Refine all budgeted end-points at once.

        The end-point buffers interact through the shared trunk (shielding a
        leaf net speeds up every sibling path), so refining them together
        lets those interactions cancel; the batch is accepted only when it
        improves skew without degrading latency (worst-corner skew/latency
        when the refiner runs corner-aware).
        """
        inserted: list[tuple[ClockTreeNode, ClockTreeNode]] = []
        for endpoint in ranked:
            buffer_node = self._insert_endpoint_buffer(tree, endpoint, before)
            if buffer_node is not None:
                inserted.append((endpoint, buffer_node))
        if not inserted:
            return 0, before
        after = self._measure(tree)
        if not self._improves(after, before, before):
            for endpoint, buffer_node in inserted:
                self._remove_endpoint_buffer(tree, endpoint, buffer_node)
            return 0, before
        self._attach_arrivals(after, tree)
        return len(inserted), after

    def _refine_greedy(
        self,
        tree: ClockTree,
        ranked: list[ClockTreeNode],
        before: _TimingSnapshot,
    ) -> tuple[int, _TimingSnapshot]:
        """Refine end-points one at a time, keeping only improving insertions."""
        added = 0
        current = before
        for endpoint in ranked:
            if not self.force and not current.violates(self.skew_trigger_fraction):
                break
            buffer_node = self._insert_endpoint_buffer(tree, endpoint, current)
            if buffer_node is None:
                continue
            trial = self._measure(tree)
            if self._improves(trial, current, before):
                # The accepted trial becomes the snapshot later padded-sink
                # selections consult, so it needs arrivals (the tree is in
                # exactly this trial's state here).
                self._attach_arrivals(trial, tree)
                current = trial
                added += 1
            else:
                self._remove_endpoint_buffer(tree, endpoint, buffer_node)
        return added, current

    # ------------------------------------------------- IR (DesignArrays) path
    def _refine_design(self, design: DesignArrays) -> SkewRefinementReport:
        """Row twin of :meth:`refine` over the array IR."""
        before = self._measure(design, with_arrivals=True)
        if not self.force and not before.violates(self.skew_trigger_fraction):
            return self._report(False, 0, 0, before, before)

        endpoint_names = self._end_point_names(design)
        sink_count = int(design.sink_rows().size)
        budget = refined_endpoint_count(sink_count, self.max_endpoints)
        ranked = self._rank_endpoint_names(design, endpoint_names, before.ranking)
        ranked = ranked[:budget]

        added, after = self._refine_batch_design(design, ranked, before)
        if added == 0:
            added, after = self._refine_greedy_design(design, ranked, before)
        return self._report(True, len(ranked), added, before, after)

    def _refine_batch_design(
        self,
        design: DesignArrays,
        ranked: list[str],
        before: _TimingSnapshot,
    ) -> tuple[int, _TimingSnapshot]:
        """Design twin of :meth:`_refine_batch` (same accept/reject rule)."""
        inserted: list[tuple[str, str]] = []
        for endpoint_name in ranked:
            buffer_name = self._insert_endpoint_buffer_design(
                design, endpoint_name, before
            )
            if buffer_name is not None:
                inserted.append((endpoint_name, buffer_name))
        if not inserted:
            return 0, before
        after = self._measure(design)
        if not self._improves(after, before, before):
            for endpoint_name, buffer_name in inserted:
                self._remove_endpoint_buffer_design(
                    design, endpoint_name, buffer_name
                )
            return 0, before
        self._attach_arrivals(after, design)
        return len(inserted), after

    def _refine_greedy_design(
        self,
        design: DesignArrays,
        ranked: list[str],
        before: _TimingSnapshot,
    ) -> tuple[int, _TimingSnapshot]:
        """Design twin of :meth:`_refine_greedy`."""
        added = 0
        current = before
        for endpoint_name in ranked:
            if not self.force and not current.violates(self.skew_trigger_fraction):
                break
            buffer_name = self._insert_endpoint_buffer_design(
                design, endpoint_name, current
            )
            if buffer_name is None:
                continue
            trial = self._measure(design)
            if self._improves(trial, current, before):
                self._attach_arrivals(trial, design)
                current = trial
                added += 1
            else:
                self._remove_endpoint_buffer_design(
                    design, endpoint_name, buffer_name
                )
        return added, current

    @staticmethod
    def _end_point_names(design: DesignArrays) -> list[str]:
        """Design twin of :meth:`_end_points` (same pre-order discovery)."""
        taps = [
            design.names[row]
            for row in design.rows_preorder()
            if design.kind[row] == KIND_TAP
        ]
        if taps:
            return taps
        parent_rows: dict[int, None] = {}
        for row in design.rows_preorder():
            if design.kind[row] != KIND_SINK:
                continue
            parent = int(design.parent_row[row])
            if parent >= 0:
                parent_rows.setdefault(parent, None)
        return [
            design.names[parent]
            for parent in parent_rows
            if design.kind[parent] != KIND_ROOT
        ]

    def _rank_endpoint_names(
        self,
        design: DesignArrays,
        endpoint_names: list[str],
        timing: TimingResult,
    ) -> list[str]:
        """Design twin of :meth:`_rank_endpoints` (same scores, stable sort)."""
        scored: list[tuple[float, str]] = []
        for name in endpoint_names:
            arrivals = self._sink_arrivals_design(
                design, design.name_to_row[name], timing
            )
            if not arrivals:
                continue
            key = min(arrivals) if self.strategy == "pad_fast" else max(arrivals)
            scored.append((key, name))
        reverse = self.strategy == "shield_slow"
        scored.sort(key=lambda item: item[0], reverse=reverse)
        return [name for _score, name in scored]

    @staticmethod
    def _sink_arrivals_design(
        design: DesignArrays, row: int, timing: TimingResult
    ) -> list[float]:
        arrivals: list[float] = []
        stack = [row]
        while stack:
            current = stack.pop()
            stack.extend(design.children_rows[current])
            if design.kind[current] == KIND_SINK:
                name = design.names[current]
                if name in timing.arrivals:
                    arrivals.append(timing.arrivals[name])
        return arrivals

    def _padded_sink_rows(
        self,
        design: DesignArrays,
        endpoint_row: int,
        snapshot: _TimingSnapshot,
    ) -> list[int]:
        """Design twin of :meth:`_padded_sinks` (same loads, same cut)."""
        sink_children = [
            child
            for child in design.children_rows[endpoint_row]
            if design.kind[child] == KIND_SINK
        ]
        if not sink_children:
            return []
        if self.strategy == "shield_slow":
            return sink_children
        timing = snapshot.ranking
        if timing is None:  # pragma: no cover - internal misuse guard
            raise RuntimeError("padded-sink selection needs an arrivals snapshot")
        est_pdk = self._estimation_pdk(snapshot)
        latency = timing.latency
        layer = est_pdk.front_layer
        endpoint_location = design.location_of(endpoint_row)
        selected = sink_children
        for _ in range(2):
            load = sum(
                layer.wire_capacitance(
                    endpoint_location.manhattan(design.location_of(child))
                )
                + float(design.cap[child])
                for child in selected
            )
            added_delay = est_pdk.buffer.delay(load)
            selected = [
                child
                for child in sink_children
                if timing.arrivals.get(design.names[child], latency) + added_delay
                <= latency + 1e-9
            ]
            if not selected:
                return []
        return selected

    def _insert_endpoint_buffer_design(
        self, design: DesignArrays, endpoint_name: str, snapshot: _TimingSnapshot
    ) -> str | None:
        """Design twin of :meth:`_insert_endpoint_buffer`; returns the name."""
        endpoint_row = design.name_to_row[endpoint_name]
        padded = self._padded_sink_rows(design, endpoint_row, snapshot)
        if not padded:
            return None
        buffer_name = design.new_name("sr_buf")
        location = design.location_of(endpoint_row)
        buffer_row = design.add_child(
            endpoint_row,
            buffer_name,
            KIND_BUFFER,
            location.x,
            location.y,
            side_front=True,
            capacitance=self.pdk.buffer.input_capacitance,
            wire_front=True,
        )
        for sink in padded:
            design.move_child(sink, buffer_row)
        design.mark_rewire(endpoint_row)
        return buffer_name

    @staticmethod
    def _remove_endpoint_buffer_design(
        design: DesignArrays, endpoint_name: str, buffer_name: str
    ) -> None:
        """Design twin of :meth:`_remove_endpoint_buffer` (name lookups are
        fresh: the measuring engine may have compacted the design)."""
        buffer_row = design.name_to_row[buffer_name]
        endpoint_row = design.name_to_row[endpoint_name]
        for sink in list(design.children_rows[buffer_row]):
            design.move_child(sink, endpoint_row)
        design.remove_leaf(buffer_row)
        design.mark_rewire(endpoint_row)

    # --------------------------------------------------------------- internals
    def _measure(
        self, tree: ClockTree | DesignArrays, with_arrivals: bool = False
    ) -> _TimingSnapshot:
        """One engine pass over the tree (corner-batched when corner-aware).

        The corner-aware per-trial hot path reads only per-corner
        skew/latency scalars — both batched calls sync the same cached
        engine state (the vectorized engine serves them from its cached
        sink-arrival matrix), so a trial never builds K per-sink
        dictionaries.  The nominal path keeps the classic single
        ``analyze`` per trial (one full traversal on the reference engine),
        which also makes its arrivals free to attach.  Slews are skipped
        throughout: nothing in the refiner reads them.
        """
        if not self._corner_aware:
            nominal = self._engine.analyze(tree, with_slew=False)
            return _TimingSnapshot(
                corner_skews={self._primary_name: nominal.skew},
                corner_latencies={self._primary_name: nominal.latency},
                primary=self._primary_name,
                nominal=nominal,
                ranking=nominal,
            )
        snapshot = _TimingSnapshot(
            corner_skews=self._engine.skew_per_corner(tree),
            corner_latencies=self._engine.latency_per_corner(tree),
            primary=self._primary_name,
        )
        if with_arrivals:
            self._attach_arrivals(snapshot, tree)
        return snapshot

    def _attach_arrivals(self, snapshot: _TimingSnapshot, tree: ClockTree) -> None:
        """Materialise the per-sink results arrivals consumers need.

        Must be called while ``tree`` is in exactly the state ``snapshot``
        measured — i.e. on the initial snapshot, on an accepted trial, or on
        the final state — never on a rejected (reverted) trial.
        """
        if snapshot.nominal is not None:
            return  # nominal-path snapshots are born with arrivals
        per_corner = self._engine.analyze_corners(tree, with_slew=False)
        snapshot.nominal = per_corner[snapshot.primary]
        snapshot.ranking = per_corner[snapshot.worst_corner]

    def _improves(
        self,
        trial: _TimingSnapshot,
        current: _TimingSnapshot,
        initial: _TimingSnapshot,
    ) -> bool:
        """Accept/reject rule for one trial edit (or the whole batch).

        Nominal runs keep the classic rule: skew strictly improves, latency
        does not degrade.  Corner-aware runs apply the same rule to the
        worst-corner skew/latency, plus a guard that the *nominal* skew never
        regresses more than ``nominal_skew_budget`` past its initial value.
        """
        if not self._corner_aware:
            return (
                trial.nominal_skew < current.nominal_skew - 1e-9
                and trial.nominal_latency <= current.nominal_latency + 1e-6
            )
        return (
            trial.worst_skew < current.worst_skew - 1e-9
            and trial.worst_latency <= current.worst_latency + 1e-6
            and trial.nominal_skew
            <= initial.nominal_skew + self.nominal_skew_budget + 1e-9
        )

    def _report(
        self,
        triggered: bool,
        refined_endpoints: int,
        added_buffers: int,
        before: _TimingSnapshot,
        after: _TimingSnapshot,
    ) -> SkewRefinementReport:
        corner_aware = self._corner_aware
        return SkewRefinementReport(
            triggered=triggered,
            refined_endpoints=refined_endpoints,
            added_buffers=added_buffers,
            before=before.nominal,
            after=after.nominal,
            corner_skews_before=dict(before.corner_skews) if corner_aware else {},
            corner_skews_after=dict(after.corner_skews) if corner_aware else {},
        )

    @staticmethod
    def _end_points(tree: ClockTree) -> list[ClockTreeNode]:
        """End-points eligible for refinement: tap nodes (low centroids).

        Trees built without dual-level clustering (e.g. the flat DME
        ablation) have no taps; the parents of sinks act as end-points then.
        """
        taps = [n for n in tree.nodes() if n.kind is NodeKind.TAP]
        if taps:
            return taps
        parents = {id(n.parent): n.parent for n in tree.sinks() if n.parent is not None}
        return [p for p in parents.values() if p.kind is not NodeKind.ROOT]

    def _rank_endpoints(
        self,
        tree: ClockTree,
        endpoints: list[ClockTreeNode],
        timing: TimingResult,
    ) -> list[ClockTreeNode]:
        """Order end-points by refinement priority according to the strategy.

        ``pad_fast`` processes the clusters whose sinks arrive earliest (they
        define the minimum arrival and therefore the skew); ``shield_slow``
        processes the clusters whose sinks arrive latest.  Corner-aware runs
        rank by the worst-skew corner's arrivals (``timing`` is that
        corner's result then).
        """
        scored: list[tuple[float, ClockTreeNode]] = []
        for endpoint in endpoints:
            arrivals = self._sink_arrivals(endpoint, timing)
            if not arrivals:
                continue
            key = min(arrivals) if self.strategy == "pad_fast" else max(arrivals)
            scored.append((key, endpoint))
        reverse = self.strategy == "shield_slow"
        scored.sort(key=lambda item: item[0], reverse=reverse)
        return [endpoint for _score, endpoint in scored]

    @staticmethod
    def _sink_arrivals(
        endpoint: ClockTreeNode, timing: TimingResult
    ) -> list[float]:
        return [
            timing.arrivals[node.name]
            for node in endpoint.iter_subtree()
            if node.is_sink and node.name in timing.arrivals
        ]

    def _estimation_pdk(self, snapshot: _TimingSnapshot) -> Pdk:
        """Technology used to estimate the padded-sink buffer delay.

        Corner-aware runs estimate at the worst-skew corner — the operating
        point the accept/reject rule is trying to improve.
        """
        if not self._corner_aware:
            return self.pdk
        return self._corner_pdks[snapshot.worst_corner]

    def _padded_sinks(
        self,
        endpoint: ClockTreeNode,
        snapshot: _TimingSnapshot,
    ) -> list[ClockTreeNode]:
        """Select the sinks of the cluster that the end-point buffer will drive.

        ``pad_fast`` must not increase latency (Fig. 11), so only the sinks
        that remain below the tree latency after gaining the buffer delay are
        moved behind the new buffer; slower sinks stay directly on the tap.
        ``shield_slow`` moves the whole leaf net behind the buffer so the
        trunk is shielded from its load.
        """
        sink_children = [c for c in endpoint.children if c.is_sink]
        if not sink_children:
            return []
        if self.strategy == "shield_slow":
            return sink_children
        timing = snapshot.ranking
        if timing is None:  # pragma: no cover - internal misuse guard
            raise RuntimeError("padded-sink selection needs an arrivals snapshot")
        est_pdk = self._estimation_pdk(snapshot)
        latency = timing.latency
        layer = est_pdk.front_layer
        selected = sink_children
        # Two fixed-point passes: the buffer delay depends on the selected load.
        for _ in range(2):
            load = sum(
                layer.wire_capacitance(endpoint.location.manhattan(c.location))
                + c.capacitance
                for c in selected
            )
            added_delay = est_pdk.buffer.delay(load)
            selected = [
                c
                for c in sink_children
                if timing.arrivals.get(c.name, latency) + added_delay <= latency + 1e-9
            ]
            if not selected:
                return []
        return selected

    def _insert_endpoint_buffer(
        self, tree: ClockTree, endpoint: ClockTreeNode, snapshot: _TimingSnapshot
    ) -> ClockTreeNode | None:
        """Insert one buffer at the end-point, re-parenting (part of) its leaf net.

        Returns the inserted buffer node, or None when no sink of the cluster
        can profit from the buffer.
        """
        padded = self._padded_sinks(endpoint, snapshot)
        if not padded:
            return None
        buffer_node = ClockTreeNode(
            name=tree.new_name("sr_buf"),
            kind=NodeKind.BUFFER,
            location=endpoint.location,
            side=Side.FRONT,
            capacitance=self.pdk.buffer.input_capacitance,
            wire_side=Side.FRONT,
        )
        endpoint.add_child(buffer_node)
        for sink in padded:
            sink.detach()
            buffer_node.add_child(sink)
        tree.mark_rewire(endpoint)
        return buffer_node

    @staticmethod
    def _remove_endpoint_buffer(
        tree: ClockTree, endpoint: ClockTreeNode, buffer_node: ClockTreeNode
    ) -> None:
        """Undo :meth:`_insert_endpoint_buffer` (used when a trial is rejected)."""
        for sink in list(buffer_node.children):
            sink.detach()
            endpoint.add_child(sink)
        buffer_node.detach()
        tree.mark_rewire(endpoint)

"""Resource-aware end-point buffer insertion for skew refinement.

The refinement is triggered when the tree's skew exceeds ``p%`` of its
maximum latency (``p = 23`` in the paper).  It then refines
``n = min(N * t, m)`` end-points — low-level cluster centroids (tap nodes) —
by inserting one buffer at each centroid, which shifts the arrival times of
that cluster's sinks without touching the trunk.

Two orderings are provided (see DESIGN.md, "Interpretation notes"):

* ``pad_fast`` (default): refine the end-points whose sinks arrive earliest.
  The inserted buffer delays the whole cluster, closing the gap to the
  slowest sink and reducing skew while leaving latency untouched — this is
  the behaviour shown in Fig. 11.
* ``shield_slow``: refine the end-points whose sinks arrive latest.  The
  buffer decouples the leaf-net load from the trunk, which can reduce the
  slow paths when the shielding gain exceeds the buffer delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.refinement.adaptive import refined_endpoint_count
from repro.tech.layers import Side
from repro.tech.pdk import Pdk
from repro.timing import TimingResult, create_engine


@dataclass
class SkewRefinementReport:
    """Before/after record of one skew refinement run."""

    triggered: bool
    refined_endpoints: int
    added_buffers: int
    before: TimingResult
    after: TimingResult

    @property
    def skew_reduction(self) -> float:
        """Absolute skew improvement (ps); positive when skew decreased."""
        return self.before.skew - self.after.skew

    @property
    def latency_increase(self) -> float:
        """Latency change (ps); small positive values are expected."""
        return self.after.latency - self.before.latency

    def summary(self) -> dict[str, float | int | bool]:
        return {
            "triggered": self.triggered,
            "refined_endpoints": self.refined_endpoints,
            "added_buffers": self.added_buffers,
            "skew_before_ps": round(self.before.skew, 3),
            "skew_after_ps": round(self.after.skew, 3),
            "latency_before_ps": round(self.before.latency, 3),
            "latency_after_ps": round(self.after.latency, 3),
        }


class SkewRefiner:
    """Implements the paper's Section III-D post-processing step."""

    def __init__(
        self,
        pdk: Pdk,
        skew_trigger_fraction: float = 0.23,
        max_endpoints: int = 33,
        strategy: str = "pad_fast",
        force: bool = False,
        engine: str | None = None,
    ) -> None:
        if not 0 < skew_trigger_fraction <= 1:
            raise ValueError("the skew trigger fraction must be in (0, 1]")
        if strategy not in ("pad_fast", "shield_slow"):
            raise ValueError(f"unknown refinement strategy {strategy!r}")
        self.pdk = pdk
        self.skew_trigger_fraction = skew_trigger_fraction
        self.max_endpoints = max_endpoints
        self.strategy = strategy
        self.force = force
        # The refiner's trial loop re-times the tree after every endpoint
        # edit; the (default) vectorized engine serves those queries from its
        # incremental re-timing path because every edit below is recorded
        # with ``tree.mark_rewire``.
        self._engine = create_engine(pdk, engine)

    # ----------------------------------------------------------------- public
    def refine(self, tree: ClockTree) -> SkewRefinementReport:
        """Refine ``tree`` in place and return the before/after report."""
        before = self._engine.analyze(tree)
        if not self.force and not before.skew_violates(self.skew_trigger_fraction):
            return SkewRefinementReport(
                triggered=False,
                refined_endpoints=0,
                added_buffers=0,
                before=before,
                after=before,
            )

        endpoints = self._end_points(tree)
        sink_count = tree.sink_count()
        budget = refined_endpoint_count(sink_count, self.max_endpoints)
        ranked = self._rank_endpoints(tree, endpoints, before)[:budget]

        added, after = self._refine_batch(tree, ranked, before)
        if added == 0:
            added, after = self._refine_greedy(tree, ranked, before)
        return SkewRefinementReport(
            triggered=True,
            refined_endpoints=len(ranked),
            added_buffers=added,
            before=before,
            after=after,
        )

    def _refine_batch(
        self,
        tree: ClockTree,
        ranked: list[ClockTreeNode],
        before: TimingResult,
    ) -> tuple[int, TimingResult]:
        """Refine all budgeted end-points at once.

        The end-point buffers interact through the shared trunk (shielding a
        leaf net speeds up every sibling path), so refining them together
        lets those interactions cancel; the batch is accepted only when it
        improves skew without degrading latency.
        """
        inserted: list[tuple[ClockTreeNode, ClockTreeNode]] = []
        for endpoint in ranked:
            buffer_node = self._insert_endpoint_buffer(tree, endpoint, before)
            if buffer_node is not None:
                inserted.append((endpoint, buffer_node))
        if not inserted:
            return 0, before
        after = self._engine.analyze(tree)
        accepted = (
            after.skew < before.skew - 1e-9
            and after.latency <= before.latency + 1e-6
        )
        if not accepted:
            for endpoint, buffer_node in inserted:
                self._remove_endpoint_buffer(tree, endpoint, buffer_node)
            return 0, before
        return len(inserted), after

    def _refine_greedy(
        self,
        tree: ClockTree,
        ranked: list[ClockTreeNode],
        before: TimingResult,
    ) -> tuple[int, TimingResult]:
        """Refine end-points one at a time, keeping only improving insertions."""
        added = 0
        current = before
        for endpoint in ranked:
            if not self.force and not current.skew_violates(self.skew_trigger_fraction):
                break
            buffer_node = self._insert_endpoint_buffer(tree, endpoint, current)
            if buffer_node is None:
                continue
            trial = self._engine.analyze(tree)
            improves = (
                trial.skew < current.skew - 1e-9
                and trial.latency <= current.latency + 1e-6
            )
            if improves:
                current = trial
                added += 1
            else:
                self._remove_endpoint_buffer(tree, endpoint, buffer_node)
        return added, current

    # --------------------------------------------------------------- internals
    @staticmethod
    def _end_points(tree: ClockTree) -> list[ClockTreeNode]:
        """End-points eligible for refinement: tap nodes (low centroids).

        Trees built without dual-level clustering (e.g. the flat DME
        ablation) have no taps; the parents of sinks act as end-points then.
        """
        taps = [n for n in tree.nodes() if n.kind is NodeKind.TAP]
        if taps:
            return taps
        parents = {id(n.parent): n.parent for n in tree.sinks() if n.parent is not None}
        return [p for p in parents.values() if p.kind is not NodeKind.ROOT]

    def _rank_endpoints(
        self,
        tree: ClockTree,
        endpoints: list[ClockTreeNode],
        timing: TimingResult,
    ) -> list[ClockTreeNode]:
        """Order end-points by refinement priority according to the strategy.

        ``pad_fast`` processes the clusters whose sinks arrive earliest (they
        define the minimum arrival and therefore the skew); ``shield_slow``
        processes the clusters whose sinks arrive latest.
        """
        scored: list[tuple[float, ClockTreeNode]] = []
        for endpoint in endpoints:
            arrivals = self._sink_arrivals(endpoint, timing)
            if not arrivals:
                continue
            key = min(arrivals) if self.strategy == "pad_fast" else max(arrivals)
            scored.append((key, endpoint))
        reverse = self.strategy == "shield_slow"
        scored.sort(key=lambda item: item[0], reverse=reverse)
        return [endpoint for _score, endpoint in scored]

    @staticmethod
    def _sink_arrivals(
        endpoint: ClockTreeNode, timing: TimingResult
    ) -> list[float]:
        return [
            timing.arrivals[node.name]
            for node in endpoint.iter_subtree()
            if node.is_sink and node.name in timing.arrivals
        ]

    def _padded_sinks(
        self, endpoint: ClockTreeNode, timing: TimingResult
    ) -> list[ClockTreeNode]:
        """Select the sinks of the cluster that the end-point buffer will drive.

        ``pad_fast`` must not increase latency (Fig. 11), so only the sinks
        that remain below the tree latency after gaining the buffer delay are
        moved behind the new buffer; slower sinks stay directly on the tap.
        ``shield_slow`` moves the whole leaf net behind the buffer so the
        trunk is shielded from its load.
        """
        sink_children = [c for c in endpoint.children if c.is_sink]
        if not sink_children:
            return []
        if self.strategy == "shield_slow":
            return sink_children
        latency = timing.latency
        layer = self.pdk.front_layer
        selected = sink_children
        # Two fixed-point passes: the buffer delay depends on the selected load.
        for _ in range(2):
            load = sum(
                layer.wire_capacitance(endpoint.location.manhattan(c.location))
                + c.capacitance
                for c in selected
            )
            added_delay = self.pdk.buffer.delay(load)
            selected = [
                c
                for c in sink_children
                if timing.arrivals.get(c.name, latency) + added_delay <= latency + 1e-9
            ]
            if not selected:
                return []
        return selected

    def _insert_endpoint_buffer(
        self, tree: ClockTree, endpoint: ClockTreeNode, timing: TimingResult
    ) -> ClockTreeNode | None:
        """Insert one buffer at the end-point, re-parenting (part of) its leaf net.

        Returns the inserted buffer node, or None when no sink of the cluster
        can profit from the buffer.
        """
        padded = self._padded_sinks(endpoint, timing)
        if not padded:
            return None
        buffer_node = ClockTreeNode(
            name=tree.new_name("sr_buf"),
            kind=NodeKind.BUFFER,
            location=endpoint.location,
            side=Side.FRONT,
            capacitance=self.pdk.buffer.input_capacitance,
            wire_side=Side.FRONT,
        )
        endpoint.add_child(buffer_node)
        for sink in padded:
            sink.detach()
            buffer_node.add_child(sink)
        tree.mark_rewire(endpoint)
        return buffer_node

    @staticmethod
    def _remove_endpoint_buffer(
        tree: ClockTree, endpoint: ClockTreeNode, buffer_node: ClockTreeNode
    ) -> None:
        """Undo :meth:`_insert_endpoint_buffer` (used when a trial is rejected)."""
        for sink in list(buffer_node.children):
            sink.detach()
            endpoint.add_child(sink)
        buffer_node.detach()
        tree.mark_rewire(endpoint)

"""The adaptive scale factor of Fig. 8 and the refined end-point budget.

The number of end-points refined by skew refinement is

    n = min(N * t, m)

where ``N`` is the sink count, ``m`` the hard cap (33 in the paper), and
``t`` the adaptive factor plotted in Fig. 8: ``t = 0.1`` for small designs
(``N / 10000 <= 0.6``), decreasing linearly to ``t = 0.06`` at
``N / 10000 >= 1.0``.  Larger designs therefore refine a smaller *fraction*
of their sinks, keeping the refinement cost bounded.

The budget is deliberately independent of the PVT corner count: a
corner-aware refinement run (``SkewRefiner(..., corners=...)``) scores each
of the same ``n`` trial edits with one corner-batched engine pass, so adding
corners changes the per-trial cost model, not how many end-points are
touched — which keeps nominal and corner-aware runs directly comparable.
"""

from __future__ import annotations

#: Fig. 8 break-points: (N / 10000, t).
_LOW_X = 0.6
_HIGH_X = 1.0
_HIGH_T = 0.1
_LOW_T = 0.06


def adaptive_scale_factor(sink_count: int) -> float:
    """Return the adaptive factor ``t`` for a design with ``sink_count`` sinks.

    Piecewise-linear reproduction of Fig. 8: constant 0.1 below
    ``N = 6000``, constant 0.06 above ``N = 10000``, linear in between.
    """
    if sink_count < 0:
        raise ValueError("sink count must be non-negative")
    x = sink_count / 10_000.0
    if x <= _LOW_X:
        return _HIGH_T
    if x >= _HIGH_X:
        return _LOW_T
    fraction = (x - _LOW_X) / (_HIGH_X - _LOW_X)
    return _HIGH_T + fraction * (_LOW_T - _HIGH_T)


def refined_endpoint_count(sink_count: int, max_endpoints: int = 33) -> int:
    """Number of end-points to refine: ``n = min(N * t, m)`` (at least 1)."""
    if max_endpoints < 1:
        raise ValueError("the maximum end-point count must be at least 1")
    if sink_count <= 0:
        return 0
    budget = int(sink_count * adaptive_scale_factor(sink_count))
    return max(1, min(budget, max_endpoints))

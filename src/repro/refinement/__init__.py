"""Skew refinement (Section III-D of the paper).

After the latency-driven DP, skew may degrade.  The resource-aware end-point
buffer insertion picks a small number of end-points (low-level cluster
centroids) and inserts one buffer at each, which equalises sink arrivals with
negligible latency and buffer cost (Fig. 11).
"""

from repro.refinement.adaptive import adaptive_scale_factor, refined_endpoint_count
from repro.refinement.skew_refinement import SkewRefiner, SkewRefinementReport

__all__ = [
    "adaptive_scale_factor",
    "refined_endpoint_count",
    "SkewRefiner",
    "SkewRefinementReport",
]

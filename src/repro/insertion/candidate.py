"""DP candidate solutions.

A candidate describes one way of implementing the *whole subtree* hanging
below (and including) a DP node's edge.  It records everything the DP needs
to keep going upward (side at the upstream end, effective capacitance, path
delays) and everything the multi-objective selection needs (buffer and nTSV
counts), together with back-pointers for the top-down decision step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.tech.layers import Side

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.insertion.patterns import EdgePattern


@dataclass
class CandidateSolution:
    """One candidate implementation of a DP subtree.

    Attributes:
        up_side: side type of the edge's upstream (root-facing) end-point.
        capacitance: effective capacitance (fF) seen looking down into the
            edge from the upstream end-point.
        max_delay: worst path delay (ps) from the upstream end-point to any
            sink in the subtree.
        min_delay: best (smallest) such path delay; tracked so that skew can
            be estimated for every candidate.
        buffer_count: buffers used by the whole subtree under this candidate.
        ntsv_count: nTSVs used by the whole subtree under this candidate.
        pattern: pattern chosen for this DP node's edge (None for the virtual
            base solution of a leaf DP node before its first insertion).
        children: the predecessor-node candidates this one was merged from;
            recorded dependencies for the top-down decision (Step 4).
    """

    up_side: Side
    capacitance: float
    max_delay: float
    min_delay: float
    buffer_count: int = 0
    ntsv_count: int = 0
    pattern: Optional["EdgePattern"] = None
    children: tuple["CandidateSolution", ...] = field(default=(), repr=False)

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError("candidate capacitance must be non-negative")
        if self.min_delay > self.max_delay + 1e-9:
            raise ValueError("candidate min delay exceeds max delay")
        if self.buffer_count < 0 or self.ntsv_count < 0:
            raise ValueError("candidate resource counts must be non-negative")

    @property
    def skew(self) -> float:
        """Skew (ps) within the subtree covered by this candidate."""
        return self.max_delay - self.min_delay

    @property
    def resource_count(self) -> int:
        """Total inserted cells (buffers + nTSVs)."""
        return self.buffer_count + self.ntsv_count

    def dominates(self, other: "CandidateSolution", tol: float = 1e-9) -> bool:
        """Van Ginneken dominance on (capacitance, max delay).

        A candidate dominates another when it is no worse in both effective
        capacitance and worst path delay (and the two share the same upstream
        side, which the caller is responsible for grouping by).
        """
        return (
            self.capacitance <= other.capacitance + tol
            and self.max_delay <= other.max_delay + tol
        )

    def strictly_dominates(self, other: "CandidateSolution", tol: float = 1e-9) -> bool:
        """Dominates *and* is strictly better in at least one dimension."""
        return self.dominates(other, tol) and (
            self.capacitance < other.capacitance - tol
            or self.max_delay < other.max_delay - tol
        )

    def with_pattern(
        self,
        pattern: "EdgePattern",
        capacitance: float,
        max_delay: float,
        min_delay: float,
        added_buffers: int,
        added_ntsvs: int,
    ) -> "CandidateSolution":
        """Return a new candidate obtained by applying ``pattern`` above this one."""
        return CandidateSolution(
            up_side=pattern.up_side,
            capacitance=capacitance,
            max_delay=max_delay,
            min_delay=min_delay,
            buffer_count=self.buffer_count + added_buffers,
            ntsv_count=self.ntsv_count + added_ntsvs,
            pattern=pattern,
            children=(self,),
        )

    @staticmethod
    def merge(a: "CandidateSolution", b: "CandidateSolution") -> "CandidateSolution":
        """Merge two predecessor candidates at a shared vertex.

        The merge is only legal when both upstream sides agree (the paper's
        connectivity constraint); the caller must enforce that before calling.
        """
        if a.up_side is not b.up_side:
            raise ValueError(
                "cannot merge candidates with different upstream sides "
                f"({a.up_side.value} vs {b.up_side.value})"
            )
        return CandidateSolution(
            up_side=a.up_side,
            capacitance=a.capacitance + b.capacitance,
            max_delay=max(a.max_delay, b.max_delay),
            min_delay=min(a.min_delay, b.min_delay),
            buffer_count=a.buffer_count + b.buffer_count,
            ntsv_count=a.ntsv_count + b.ntsv_count,
            pattern=None,
            children=(a, b),
        )

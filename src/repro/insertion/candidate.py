"""DP candidate solutions.

A candidate describes one way of implementing the *whole subtree* hanging
below (and including) a DP node's edge.  It records everything the DP needs
to keep going upward (side at the upstream end, effective capacitance, path
delays) and everything the multi-objective selection needs (buffer and nTSV
counts), together with back-pointers for the top-down decision step.

**Multi-corner candidates.**  When the insertion DP runs corner-aware
(``ConcurrentInserter(..., corners=...)``), every candidate additionally
carries per-corner tuples of (capacitance, max delay, min delay) — one entry
per scenario of the resolved :class:`~repro.tech.corners.CornerSet`, in
corner order.  The scalar fields then mirror the *primary* (nominal) corner,
so nominal-only consumers keep working unchanged, while dominance pruning
and the multi-objective selection switch to the ``worst_*`` properties
(worst corner across the batch).  Candidates without corner tuples behave
exactly as before: the worst values degenerate to the scalar fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.tech.layers import Side

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.insertion.patterns import EdgePattern

#: The three per-corner tuples of a candidate (cap, max delay, min delay).
CornerTuples = tuple[
    "tuple[float, ...] | None",
    "tuple[float, ...] | None",
    "tuple[float, ...] | None",
]


def merged_corner_tuples(
    a: "CandidateSolution", b: "CandidateSolution"
) -> CornerTuples:
    """Element-wise merge of two candidates' corner tuples at a shared vertex.

    Capacitances add, the worst path delay is the per-corner max, the best
    the per-corner min — the multi-corner form of the classic merge rule.
    Returns ``(None, None, None)`` when either side is nominal-only.
    """
    if a.corner_capacitance is None or b.corner_capacitance is None:
        return None, None, None
    return (
        tuple(x + y for x, y in zip(a.corner_capacitance, b.corner_capacitance)),
        tuple(max(x, y) for x, y in zip(a.corner_max_delay, b.corner_max_delay)),
        tuple(min(x, y) for x, y in zip(a.corner_min_delay, b.corner_min_delay)),
    )


@dataclass
class CandidateSolution:
    """One candidate implementation of a DP subtree.

    Attributes:
        up_side: side type of the edge's upstream (root-facing) end-point.
        capacitance: effective capacitance (fF) seen looking down into the
            edge from the upstream end-point (primary corner).
        max_delay: worst path delay (ps) from the upstream end-point to any
            sink in the subtree (primary corner).
        min_delay: best (smallest) such path delay; tracked so that skew can
            be estimated for every candidate (primary corner).
        buffer_count: buffers used by the whole subtree under this candidate.
        ntsv_count: nTSVs used by the whole subtree under this candidate.
        pattern: pattern chosen for this DP node's edge (None for the virtual
            base solution of a leaf DP node before its first insertion).
        children: the predecessor-node candidates this one was merged from;
            recorded dependencies for the top-down decision (Step 4).
        corner_capacitance / corner_max_delay / corner_min_delay: optional
            per-corner tuples (one entry per scenario, corner order) carried
            by corner-aware DP runs; ``None`` for nominal-only candidates.
    """

    up_side: Side
    capacitance: float
    max_delay: float
    min_delay: float
    buffer_count: int = 0
    ntsv_count: int = 0
    pattern: Optional["EdgePattern"] = None
    children: tuple["CandidateSolution", ...] = field(default=(), repr=False)
    corner_capacitance: tuple[float, ...] | None = None
    corner_max_delay: tuple[float, ...] | None = None
    corner_min_delay: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError("candidate capacitance must be non-negative")
        if self.min_delay > self.max_delay + 1e-9:
            raise ValueError("candidate min delay exceeds max delay")
        if self.buffer_count < 0 or self.ntsv_count < 0:
            raise ValueError("candidate resource counts must be non-negative")
        corner_fields = (
            self.corner_capacitance,
            self.corner_max_delay,
            self.corner_min_delay,
        )
        present = [f for f in corner_fields if f is not None]
        if present and (
            len(present) != 3 or len({len(f) for f in present}) != 1
        ):
            raise ValueError(
                "corner tuples must be given together and share one length"
            )

    @property
    def skew(self) -> float:
        """Skew (ps) within the subtree covered by this candidate."""
        return self.max_delay - self.min_delay

    @property
    def resource_count(self) -> int:
        """Total inserted cells (buffers + nTSVs)."""
        return self.buffer_count + self.ntsv_count

    # -------------------------------------------------- worst-corner views
    @property
    def worst_capacitance(self) -> float:
        """Largest effective capacitance across the corner batch (fF)."""
        if self.corner_capacitance is None:
            return self.capacitance
        return max(self.corner_capacitance)

    @property
    def worst_max_delay(self) -> float:
        """Largest worst-path delay across the corner batch (ps)."""
        if self.corner_max_delay is None:
            return self.max_delay
        return max(self.corner_max_delay)

    @property
    def worst_skew(self) -> float:
        """Largest per-corner subtree skew across the corner batch (ps)."""
        if self.corner_max_delay is None or self.corner_min_delay is None:
            return self.skew
        return max(
            hi - lo
            for hi, lo in zip(self.corner_max_delay, self.corner_min_delay)
        )

    def dominates(self, other: "CandidateSolution", tol: float = 1e-9) -> bool:
        """Van Ginneken dominance on (capacitance, max delay).

        A candidate dominates another when it is no worse in both effective
        capacitance and worst path delay (and the two share the same upstream
        side, which the caller is responsible for grouping by).  Corner-aware
        candidates compare *per corner*: dominance requires being no worse in
        both dimensions at every corner of the batch.  This vector rule is
        the sound one — downstream pattern/merge deltas are per-corner
        monotone, so a per-corner dominator stays at least as good at every
        corner, whereas comparing only worst-corner scalars could discard a
        candidate that a corner-skewed downstream edge would have made the
        better sign-off tree.
        """
        if self.corner_capacitance is not None and other.corner_capacitance is not None:
            return all(
                a <= b + tol
                for a, b in zip(self.corner_capacitance, other.corner_capacitance)
            ) and all(
                a <= b + tol
                for a, b in zip(self.corner_max_delay, other.corner_max_delay)
            )
        return (
            self.capacitance <= other.capacitance + tol
            and self.max_delay <= other.max_delay + tol
        )

    def strictly_dominates(self, other: "CandidateSolution", tol: float = 1e-9) -> bool:
        """Dominates *and* is strictly better in at least one dimension."""
        if not self.dominates(other, tol):
            return False
        if self.corner_capacitance is not None and other.corner_capacitance is not None:
            return any(
                a < b - tol
                for a, b in zip(self.corner_capacitance, other.corner_capacitance)
            ) or any(
                a < b - tol
                for a, b in zip(self.corner_max_delay, other.corner_max_delay)
            )
        return (
            self.capacitance < other.capacitance - tol
            or self.max_delay < other.max_delay - tol
        )

    def with_pattern(
        self,
        pattern: "EdgePattern",
        capacitance: float,
        max_delay: float,
        min_delay: float,
        added_buffers: int,
        added_ntsvs: int,
        corner_capacitance: tuple[float, ...] | None = None,
        corner_max_delay: tuple[float, ...] | None = None,
        corner_min_delay: tuple[float, ...] | None = None,
    ) -> "CandidateSolution":
        """Return a new candidate obtained by applying ``pattern`` above this one."""
        return CandidateSolution(
            up_side=pattern.up_side,
            capacitance=capacitance,
            max_delay=max_delay,
            min_delay=min_delay,
            buffer_count=self.buffer_count + added_buffers,
            ntsv_count=self.ntsv_count + added_ntsvs,
            pattern=pattern,
            children=(self,),
            corner_capacitance=corner_capacitance,
            corner_max_delay=corner_max_delay,
            corner_min_delay=corner_min_delay,
        )

    @staticmethod
    def merge(a: "CandidateSolution", b: "CandidateSolution") -> "CandidateSolution":
        """Merge two predecessor candidates at a shared vertex.

        The merge is only legal when both upstream sides agree (the paper's
        connectivity constraint); the caller must enforce that before calling.
        Corner tuples, when present on both, merge element-wise (sum of
        capacitances, max/min of the path delays per corner).
        """
        if a.up_side is not b.up_side:
            raise ValueError(
                "cannot merge candidates with different upstream sides "
                f"({a.up_side.value} vs {b.up_side.value})"
            )
        corner_cap, corner_max, corner_min = merged_corner_tuples(a, b)
        return CandidateSolution(
            up_side=a.up_side,
            capacitance=a.capacitance + b.capacitance,
            max_delay=max(a.max_delay, b.max_delay),
            min_delay=min(a.min_delay, b.min_delay),
            buffer_count=a.buffer_count + b.buffer_count,
            ntsv_count=a.ntsv_count + b.ntsv_count,
            pattern=None,
            children=(a, b),
            corner_capacitance=corner_cap,
            corner_max_delay=corner_max,
            corner_min_delay=corner_min,
        )

"""The multi-objective dynamic program for concurrent buffer and nTSV insertion.

Implements the four steps of Section III-C.2 and Fig. 7:

1. **Build heterogeneous DP tree** — delegated to
   :func:`repro.insertion.dp_tree.build_dp_tree`; per-node insertion modes
   make the tree heterogeneous.
2. **Bottom-up generation** — leaf DP nodes start from the lumped leaf-net
   load with the sink-facing end forced to the front side; every node merges
   the candidate sets of its predecessors (only combinations whose shared
   vertex has a consistent side are legal) and then applies every allowed
   edge pattern, with per-side inferior-solution pruning and the maximum
   driven-capacitance filter.
3. **Multi-objective selection** — the root candidate set is scored with the
   MOES (Eq. (3)) or, optionally, by pure minimum latency.
4. **Top-down decision** — the recorded dependencies are retraced and the
   chosen pattern of every DP node is realised on the clock tree (buffer and
   nTSV nodes are inserted, wire sides assigned), producing a legal
   double-side clock tree without any extra legalisation step.

**Corner-aware construction.**  Pass ``corners=`` (a
:class:`~repro.tech.corners.CornerSet`, a scenario, or a spec string) to run
the whole DP against a PVT corner batch: every candidate carries per-corner
(capacitance, max delay, min delay) tuples evaluated against the
``scenario.apply_to(pdk)`` corner PDKs, pruning switches to worst-corner
dominance, and the MOES / min-latency selection scores the worst-corner
delay — so the selected tree optimises what multi-corner sign-off actually
measures.  The scalar candidate fields keep mirroring the primary (nominal)
corner, and a nominal-only run (``corners=None``) is bit-identical to the
classic single-corner DP.

**Two DP backends.**  The per-candidate object DP implemented in this module
is the executable spec; :mod:`repro.insertion.frontier` provides the
production ``vectorized`` backend (struct-of-arrays candidate frontiers,
broadcast merges, batched pattern costs, vectorized pruning) which builds an
identical tree several-fold faster — close to corner-count-independent for
corner-aware runs.  Select per inserter (``dp_backend=``), per config
(``InsertionConfig.dp_backend`` / ``CtsConfig.dp_backend``), from the CLI
(``dscts --dp-backend``), or globally via ``REPRO_DP_BACKEND``; the default
is ``vectorized``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.clocktree import ClockTree
from repro.geometry.point import point_toward
from repro.insertion.candidate import CandidateSolution, merged_corner_tuples
from repro.insertion.dp_tree import (
    DpNode,
    DpTree,
    attach_corner_bases,
    build_dp_tree,
)
from repro.insertion.frontier import (
    DP_BACKEND_NAMES,
    VectorizedInsertionDp,
    resolve_dp_backend,
)
from repro.insertion.moes import MoesWeights, select_by_moes, select_min_latency
from repro.insertion.patterns import EdgePattern, InsertionMode, patterns_for
from repro.insertion.pruning import prune_per_side
from repro.ir.design import KIND_NTSV, DesignArrays
from repro.tech.corners import CornerSet, Scenario
from repro.tech.layers import Side
from repro.tech.pdk import Pdk
from repro.timing import TimingResult, create_engine


@dataclass
class InsertionConfig:
    """Tuning knobs of the concurrent insertion DP.

    Attributes:
        weights: MOES weights (alpha, beta, gamma); the paper uses (1, 10, 1).
        selection: ``"moes"`` (default) or ``"min_latency"``; the latter is
            the "w/o MOES" variant compared in Fig. 10.
        max_segment_length: trunk edges longer than this (um) are subdivided
            before the DP; ``None`` keeps the routed edges untouched.
        keep_resource_diversity: keep cheaper-but-slower candidates alongside
            the (cap, delay) Pareto staircase so the root set stays diverse.
        max_candidates_per_side: beam width per side and DP node; bounds the
            quadratic merge cost.
        default_mode: insertion mode applied to every DP node unless a
            mode assignment callable or fanout threshold overrides it.
        root_resistance: drive resistance (kOhm) of the clock source, used to
            translate root candidates into latency estimates.
        corners: PVT corner batch the DP optimises against (a
            :class:`~repro.tech.corners.CornerSet`, a scenario, or a spec
            string); ``None`` keeps the classic nominal-only cost model.  An
            explicit ``corners=`` argument to :class:`ConcurrentInserter`
            takes precedence.
        dp_backend: ``"vectorized"`` (the array-based
            :class:`~repro.insertion.frontier.VectorizedInsertionDp` fast
            engine) or ``"reference"`` (the per-candidate object DP, the
            executable spec); ``None`` uses the library default, overridable
            via the ``REPRO_DP_BACKEND`` environment variable.  Both backends
            produce identical selected trees (enforced differentially).
    """

    weights: MoesWeights = field(default_factory=MoesWeights)
    selection: str = "moes"
    max_segment_length: float | None = 200.0
    keep_resource_diversity: bool = False
    max_candidates_per_side: int | None = 16
    default_mode: InsertionMode = InsertionMode.FULL
    root_resistance: float = 0.1
    corners: CornerSet | Scenario | str | None = None
    dp_backend: str | None = None

    def __post_init__(self) -> None:
        if self.selection not in ("moes", "min_latency"):
            raise ValueError(f"unknown selection strategy {self.selection!r}")
        if self.dp_backend is not None and self.dp_backend not in DP_BACKEND_NAMES:
            raise ValueError(
                f"unknown DP backend {self.dp_backend!r}; "
                f"expected one of {DP_BACKEND_NAMES}"
            )


@dataclass
class InsertionResult:
    """Outcome of the concurrent buffer and nTSV insertion.

    ``timing`` always reports the primary (nominal) corner;
    ``timing_per_corner`` carries one result per scenario when the DP ran
    corner-aware (and is ``None`` for nominal-only runs).
    """

    tree: ClockTree | DesignArrays
    dp_tree: DpTree
    selected: CandidateSolution
    root_candidates: list[CandidateSolution]
    timing: TimingResult
    inserted_buffers: int
    inserted_ntsvs: int
    timing_per_corner: dict[str, TimingResult] | None = None
    #: DP subtrees the parallel path shipped to the pool (0 when serial)
    #: and the recovery events (retries, degrade-to-serial) recorded for
    #: them by :func:`repro.parallel.run_tasks`.
    parallel_tasks: int = 0
    parallel_diagnostics: list = field(default_factory=list)

    @property
    def latency(self) -> float:
        return self.timing.latency

    @property
    def skew(self) -> float:
        return self.timing.skew

    @property
    def worst_latency(self) -> float:
        """Largest latency across the corner batch (nominal when no corners)."""
        if not self.timing_per_corner:
            return self.latency
        return max(r.latency for r in self.timing_per_corner.values())

    @property
    def worst_skew(self) -> float:
        """Largest skew across the corner batch (nominal when no corners)."""
        if not self.timing_per_corner:
            return self.skew
        return max(r.skew for r in self.timing_per_corner.values())

    def summary(self) -> dict[str, float | int]:
        summary: dict[str, float | int] = {
            "latency_ps": round(self.timing.latency, 3),
            "skew_ps": round(self.timing.skew, 3),
            "buffers": self.inserted_buffers,
            "ntsvs": self.inserted_ntsvs,
            "root_candidates": len(self.root_candidates),
        }
        if self.timing_per_corner:
            summary["worst_latency_ps"] = round(self.worst_latency, 3)
            summary["worst_skew_ps"] = round(self.worst_skew, 3)
        return summary


class ConcurrentInserter:
    """Concurrent buffer and nTSV insertion by multi-objective DP."""

    def __init__(
        self,
        pdk: Pdk,
        config: InsertionConfig | None = None,
        engine: str | None = None,
        corners: CornerSet | Scenario | str | None = None,
        dp_backend: str | None = None,
        workers: int | None = None,
        parallel_policy=None,
    ) -> None:
        self.pdk = pdk
        self.config = config if config is not None else InsertionConfig()
        # Deferred import: repro.parallel is dependency-free but the explicit
        # resolution rule (argument > env > 1) lives there.
        from repro.parallel import resolve_workers

        self.workers = resolve_workers(workers)
        # Fault-tolerance knob of the subtree-parallel DP path; ``None``
        # resolves the usual precedence (env var, then defaults) inside
        # run_tasks.
        self.parallel_policy = parallel_policy
        if dp_backend is None:
            dp_backend = self.config.dp_backend
        self.dp_backend = resolve_dp_backend(dp_backend)
        if corners is None:
            corners = self.config.corners
        self._engine = create_engine(pdk, engine, corners=corners)
        # The engine resolves the corner set (nominal prepended when absent)
        # and derives the per-corner PDKs, so DP candidate tuples and engine
        # corner batches share one order and one technology.
        self.corners = self._engine.corners
        self._corner_aware = corners is not None and len(self.corners) > 1
        self._primary = self._engine.primary_index
        self._corner_pdks = (
            self._engine.corner_pdks if self._corner_aware else [pdk]
        )

    # ----------------------------------------------------------------- public
    def run(
        self,
        tree: ClockTree | DesignArrays,
        dp_tree: DpTree | None = None,
        mode_of: Callable[[DpNode], InsertionMode] | None = None,
        fanout_threshold: int | None = None,
    ) -> InsertionResult:
        """Insert buffers and nTSVs into ``tree`` (modified in place).

        Args:
            tree: the routed, unbuffered clock tree — :class:`ClockTree` or
                its array IR, :class:`~repro.ir.design.DesignArrays` (the
                ``vectorized`` DP backend only; the per-object reference DP
                consumes object trees, bridge via ``to_clock_tree()``).
            dp_tree: a pre-built DP tree; built from ``tree`` when omitted.
            mode_of: optional per-node mode assignment (overrides the default).
            fanout_threshold: the DSE heuristic — nodes with fewer downstream
                sinks than the threshold use full mode, others intra-side.
        """
        is_design = isinstance(tree, DesignArrays)
        if is_design and self.dp_backend != "vectorized":
            raise ValueError(
                "the reference DP backend runs on object trees; realise the "
                "design via to_clock_tree() before running it"
            )
        if dp_tree is None:
            dp_tree = build_dp_tree(
                tree,
                self.pdk,
                max_segment_length=self.config.max_segment_length,
                default_mode=self.config.default_mode,
                corner_pdks=self._corner_pdks if self._corner_aware else None,
            )
        elif self._corner_aware:
            # A pre-built DP tree may lack (or carry stale) corner bases.
            attach_corner_bases(dp_tree, self._corner_pdks)
        if mode_of is not None:
            dp_tree.configure_modes(mode_of)
        if fanout_threshold is not None:
            dp_tree.configure_fanout_threshold(fanout_threshold)

        self._last_parallel: tuple[int, list] = (0, [])
        if self.dp_backend == "vectorized":
            root_candidates, selected = self._run_vectorized(dp_tree)
        else:
            candidates = self._bottom_up(dp_tree)
            root_candidates = self._root_candidates(dp_tree, candidates)
            selected = self._select(root_candidates)
            self._top_down(dp_tree, candidates, selected)

        timing = self._engine.analyze(tree)
        timing_per_corner = (
            self._engine.analyze_corners(tree, with_slew=False)
            if self._corner_aware
            else None
        )
        if is_design:
            _nodes, _sinks, buffers, ntsvs = tree.counts()
        else:
            buffers = tree.buffer_count()
            ntsvs = tree.ntsv_count()
        parallel_tasks, parallel_diagnostics = self._last_parallel
        return InsertionResult(
            tree=tree,
            dp_tree=dp_tree,
            selected=selected,
            root_candidates=root_candidates,
            timing=timing,
            inserted_buffers=buffers,
            inserted_ntsvs=ntsvs,
            timing_per_corner=timing_per_corner,
            parallel_tasks=parallel_tasks,
            parallel_diagnostics=parallel_diagnostics,
        )

    # --------------------------------------------------- vectorized backend
    def _run_vectorized(
        self, dp_tree: DpTree
    ) -> tuple[list[CandidateSolution], CandidateSolution]:
        """Steps 2-4 on the array-based fast engine (``dp_backend``).

        The frontier DP produces the same root candidate set (materialised
        back into :class:`CandidateSolution` objects so Step 3 reuses the
        exact MOES / min-latency selectors) and realises the chosen patterns
        from the recorded back-pointer arrays in the same stack order as the
        object backend, so both backends build bit-identical trees.
        """
        dp = VectorizedInsertionDp(
            self.pdk,
            self.config,
            self._corner_pdks,
            primary_index=self._primary if self._corner_aware else 0,
            corner_aware=self._corner_aware,
        )
        frontiers, root = dp.run(
            dp_tree, workers=self.workers, parallel_policy=self.parallel_policy
        )
        self._last_parallel = (dp.parallel_tasks, dp.parallel_diagnostics)
        root_candidates = dp.materialize_root(root)
        selected = self._select(root_candidates)
        chosen = next(i for i, c in enumerate(root_candidates) if c is selected)
        realize = (
            self._realize_pattern_design
            if isinstance(dp_tree.clock_tree, DesignArrays)
            else self._realize_pattern
        )
        dp.realize(dp_tree, frontiers, root.choice[chosen], realize)
        return root_candidates, selected

    # ------------------------------------------------------- step 2: bottom-up
    def _bottom_up(self, dp_tree: DpTree) -> dict[int, list[CandidateSolution]]:
        """Generate pruned candidate sets for every DP node, bottom-up."""
        candidates: dict[int, list[CandidateSolution]] = {}
        for dp_node in dp_tree.nodes:
            merged = self._merge(dp_node, candidates)
            inserted = self._insert(dp_node, merged)
            pruned = prune_per_side(
                inserted,
                max_capacitance=self.pdk.max_capacitance,
                keep_resource_diversity=self.config.keep_resource_diversity,
                max_candidates_per_side=self.config.max_candidates_per_side,
            )
            if not pruned:
                # Every candidate violates the maximum load (e.g. an oversized
                # leaf net that even a buffer cannot legalise).  Keep the DP
                # total by retaining the unchecked candidates; the violation
                # then shows up in the evaluation instead of aborting the run.
                relaxed = self._insert(dp_node, merged, enforce_driver_load=False)
                pruned = prune_per_side(
                    relaxed,
                    max_capacitance=None,
                    keep_resource_diversity=self.config.keep_resource_diversity,
                    max_candidates_per_side=self.config.max_candidates_per_side,
                )
            if not pruned:  # pragma: no cover - relaxed insertion is always non-empty
                raise RuntimeError(
                    f"DP node {dp_node.name} has no feasible candidate solutions"
                )
            candidates[dp_node.index] = pruned
        return candidates

    def _merge(
        self,
        dp_node: DpNode,
        candidates: dict[int, list[CandidateSolution]],
    ) -> list[CandidateSolution]:
        """Merge predecessor candidates at the downstream vertex of ``dp_node``.

        Leaf DP nodes start from the lumped leaf-net load with the vertex
        forced to the front side.  The merged candidate's ``children`` tuple
        lists one candidate per predecessor, in predecessor order, which is
        what the top-down decision retraces.
        """
        corner_aware = self._corner_aware
        if dp_node.is_leaf:
            return [
                CandidateSolution(
                    up_side=Side.FRONT,
                    capacitance=dp_node.base_capacitance,
                    max_delay=dp_node.base_max_delay,
                    min_delay=dp_node.base_min_delay,
                    corner_capacitance=(
                        dp_node.corner_base_capacitance if corner_aware else None
                    ),
                    corner_max_delay=(
                        dp_node.corner_base_max_delay if corner_aware else None
                    ),
                    corner_min_delay=(
                        dp_node.corner_base_min_delay if corner_aware else None
                    ),
                )
            ]

        combos: list[CandidateSolution] = []
        first = True
        for pred in dp_node.predecessors:
            pred_cands = candidates[pred.index]
            if first:
                combos = [
                    CandidateSolution(
                        up_side=c.up_side,
                        capacitance=c.capacitance,
                        max_delay=c.max_delay,
                        min_delay=c.min_delay,
                        buffer_count=c.buffer_count,
                        ntsv_count=c.ntsv_count,
                        children=(c,),
                        corner_capacitance=c.corner_capacitance,
                        corner_max_delay=c.corner_max_delay,
                        corner_min_delay=c.corner_min_delay,
                    )
                    for c in pred_cands
                ]
                first = False
                continue
            next_combos: list[CandidateSolution] = []
            for combo in combos:
                for cand in pred_cands:
                    if cand.up_side is not combo.up_side:
                        continue  # connectivity constraint at the shared vertex
                    corner_cap, corner_max, corner_min = merged_corner_tuples(
                        combo, cand
                    )
                    next_combos.append(
                        CandidateSolution(
                            up_side=combo.up_side,
                            capacitance=combo.capacitance + cand.capacitance,
                            max_delay=max(combo.max_delay, cand.max_delay),
                            min_delay=min(combo.min_delay, cand.min_delay),
                            buffer_count=combo.buffer_count + cand.buffer_count,
                            ntsv_count=combo.ntsv_count + cand.ntsv_count,
                            children=combo.children + (cand,),
                            corner_capacitance=corner_cap,
                            corner_max_delay=corner_max,
                            corner_min_delay=corner_min,
                        )
                    )
            combos = next_combos
            if not combos:
                raise RuntimeError(
                    f"DP node {dp_node.name}: predecessors have no side-compatible "
                    "candidate combination"
                )

        # Add the static load at the vertex (pin cap + direct leaf net).
        finalized: list[CandidateSolution] = []
        for combo in combos:
            max_delay = combo.max_delay
            min_delay = combo.min_delay
            corner_max = combo.corner_max_delay
            corner_min = combo.corner_min_delay
            if dp_node.has_direct_sinks:
                if combo.up_side is not Side.FRONT:
                    continue  # leaf nets are front-side: the vertex must be front
                max_delay = max(max_delay, dp_node.base_max_delay)
                min_delay = min(min_delay, dp_node.base_min_delay)
                if corner_aware:
                    corner_max = tuple(
                        max(a, b)
                        for a, b in zip(corner_max, dp_node.corner_base_max_delay)
                    )
                    corner_min = tuple(
                        min(a, b)
                        for a, b in zip(corner_min, dp_node.corner_base_min_delay)
                    )
            finalized.append(
                CandidateSolution(
                    up_side=combo.up_side,
                    capacitance=combo.capacitance + dp_node.base_capacitance,
                    max_delay=max_delay,
                    min_delay=min_delay,
                    buffer_count=combo.buffer_count,
                    ntsv_count=combo.ntsv_count,
                    children=combo.children,
                    corner_capacitance=(
                        tuple(
                            cap + base
                            for cap, base in zip(
                                combo.corner_capacitance,
                                dp_node.corner_base_capacitance,
                            )
                        )
                        if corner_aware
                        else None
                    ),
                    corner_max_delay=corner_max,
                    corner_min_delay=corner_min,
                )
            )
        if not finalized:
            raise RuntimeError(
                f"DP node {dp_node.name}: no merged candidate satisfies the "
                "front-side leaf-net constraint"
            )
        return prune_per_side(
            finalized,
            max_capacitance=None,
            keep_resource_diversity=self.config.keep_resource_diversity,
            max_candidates_per_side=self.config.max_candidates_per_side,
        )

    def _insert(
        self,
        dp_node: DpNode,
        merged: Sequence[CandidateSolution],
        enforce_driver_load: bool = True,
    ) -> list[CandidateSolution]:
        """Apply every allowed pattern of ``dp_node`` to every merged candidate."""
        results: list[CandidateSolution] = []
        for base in merged:
            allowed = patterns_for(
                dp_node.mode,
                self.pdk.has_backside,
                required_down_side=base.up_side,
            )
            for pattern in allowed:
                candidate = self._apply_pattern(
                    pattern,
                    dp_node.length,
                    base,
                    enforce_driver_load=enforce_driver_load,
                )
                if candidate is not None:
                    results.append(candidate)
        return results

    def _pattern_cost(
        self,
        pattern: EdgePattern,
        length: float,
        cap: float,
        corner_pdk: Pdk,
        enforce_driver_load: bool,
    ) -> tuple[float, float] | None:
        """(added delay, new upstream cap) of one pattern at one corner.

        Matches the realisation in :meth:`_realize_pattern` and therefore the
        Elmore engine exactly (Eq. (1) / Eq. (2) of the paper) — per corner,
        because ``corner_pdk`` is the ``scenario.apply_to(pdk)`` technology of
        one operating point.  Returns None when the pattern would make an
        inserted buffer drive more than the PDK's maximum load (and
        ``enforce_driver_load`` is set).
        """
        front = corner_pdk.front_layer
        back = corner_pdk.back_layer if corner_pdk.has_backside else None
        buffer = corner_pdk.buffer
        delay = 0.0

        if pattern.name == "P2_Wiring_F":
            delay += front.wire_delay(length, cap)
            cap += front.wire_capacitance(length)
        elif pattern.name == "P3_Wiring_B":
            assert back is not None
            delay += back.wire_delay(length, cap)
            cap += back.wire_capacitance(length)
        elif pattern.name == "P1_Buffer":
            half = length / 2.0
            delay += front.wire_delay(half, cap)
            cap += front.wire_capacitance(half)
            if enforce_driver_load and cap > corner_pdk.max_capacitance + 1e-9:
                return None
            delay += buffer.delay(cap)
            cap = buffer.input_capacitance
            delay += front.wire_delay(half, cap)
            cap += front.wire_capacitance(half)
        elif pattern.name == "P4_nTSV1":
            assert back is not None and corner_pdk.ntsv is not None
            ntsv = corner_pdk.ntsv
            delay += ntsv.delay(cap)
            cap += ntsv.capacitance
            delay += back.wire_delay(length, cap)
            cap += back.wire_capacitance(length)
            delay += ntsv.delay(cap)
            cap += ntsv.capacitance
        elif pattern.name == "P5_nTSV2":
            assert back is not None and corner_pdk.ntsv is not None
            ntsv = corner_pdk.ntsv
            delay += ntsv.delay(cap)
            cap += ntsv.capacitance
            delay += back.wire_delay(length, cap)
            cap += back.wire_capacitance(length)
        elif pattern.name == "P6_nTSV3":
            assert back is not None and corner_pdk.ntsv is not None
            ntsv = corner_pdk.ntsv
            delay += back.wire_delay(length, cap)
            cap += back.wire_capacitance(length)
            delay += ntsv.delay(cap)
            cap += ntsv.capacitance
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown pattern {pattern.name!r}")
        return delay, cap

    def _apply_pattern(
        self,
        pattern: EdgePattern,
        length: float,
        base: CandidateSolution,
        enforce_driver_load: bool = True,
    ) -> CandidateSolution | None:
        """Electrical effect of implementing one edge with ``pattern``.

        Nominal runs evaluate the single-corner cost; corner-aware runs
        evaluate the per-corner loop over the corner PDKs (the executable
        spec of the corner cost model) and keep the scalar fields mirroring
        the primary corner.  A pattern illegal at *any* corner (buffer
        overload) is rejected outright — the constraint is physical.
        """
        if not self._corner_aware:
            cost = self._pattern_cost(
                pattern, length, base.capacitance, self.pdk, enforce_driver_load
            )
            if cost is None:
                return None
            delay, cap = cost
            return base.with_pattern(
                pattern,
                capacitance=cap,
                max_delay=base.max_delay + delay,
                min_delay=base.min_delay + delay,
                added_buffers=pattern.buffer_count,
                added_ntsvs=pattern.ntsv_count,
            )

        caps: list[float] = []
        max_delays: list[float] = []
        min_delays: list[float] = []
        for k, corner_pdk in enumerate(self._corner_pdks):
            cost = self._pattern_cost(
                pattern,
                length,
                base.corner_capacitance[k],
                corner_pdk,
                enforce_driver_load,
            )
            if cost is None:
                return None
            delay, cap = cost
            caps.append(cap)
            max_delays.append(base.corner_max_delay[k] + delay)
            min_delays.append(base.corner_min_delay[k] + delay)
        primary = self._primary
        return base.with_pattern(
            pattern,
            capacitance=caps[primary],
            max_delay=max_delays[primary],
            min_delay=min_delays[primary],
            added_buffers=pattern.buffer_count,
            added_ntsvs=pattern.ntsv_count,
            corner_capacitance=tuple(caps),
            corner_max_delay=tuple(max_delays),
            corner_min_delay=tuple(min_delays),
        )

    # -------------------------------------------------------- step 3: selection
    def _root_candidates(
        self,
        dp_tree: DpTree,
        candidates: dict[int, list[CandidateSolution]],
    ) -> list[CandidateSolution]:
        """Combine the root DP nodes at the clock source (front side only)."""
        corner_aware = self._corner_aware
        combos: list[CandidateSolution] = []
        first = True
        for root_dp in dp_tree.root_nodes:
            cands = [
                c for c in candidates[root_dp.index] if c.up_side is Side.FRONT
            ]
            if not cands:
                raise RuntimeError(
                    f"root DP node {root_dp.name} has no front-side candidate"
                )
            if first:
                combos = [
                    CandidateSolution(
                        up_side=Side.FRONT,
                        capacitance=c.capacitance,
                        max_delay=c.max_delay,
                        min_delay=c.min_delay,
                        buffer_count=c.buffer_count,
                        ntsv_count=c.ntsv_count,
                        children=(c,),
                        corner_capacitance=c.corner_capacitance,
                        corner_max_delay=c.corner_max_delay,
                        corner_min_delay=c.corner_min_delay,
                    )
                    for c in cands
                ]
                first = False
                continue
            next_combos = []
            for combo in combos:
                for cand in cands:
                    corner_cap, corner_max, corner_min = merged_corner_tuples(
                        combo, cand
                    )
                    next_combos.append(
                        CandidateSolution(
                            up_side=Side.FRONT,
                            capacitance=combo.capacitance + cand.capacitance,
                            max_delay=max(combo.max_delay, cand.max_delay),
                            min_delay=min(combo.min_delay, cand.min_delay),
                            buffer_count=combo.buffer_count + cand.buffer_count,
                            ntsv_count=combo.ntsv_count + cand.ntsv_count,
                            children=combo.children + (cand,),
                            corner_capacitance=corner_cap,
                            corner_max_delay=corner_max,
                            corner_min_delay=corner_min,
                        )
                    )
            combos = next_combos
        # Account for the clock source driving the root load.  The source
        # drive resistance is corner-independent, but the driven load is not,
        # so each corner gets its own source delay.
        final = []
        for combo in combos:
            source_delay = self.config.root_resistance * combo.capacitance
            final.append(
                CandidateSolution(
                    up_side=Side.FRONT,
                    capacitance=combo.capacitance,
                    max_delay=combo.max_delay + source_delay,
                    min_delay=combo.min_delay + source_delay,
                    buffer_count=combo.buffer_count,
                    ntsv_count=combo.ntsv_count,
                    children=combo.children,
                    corner_capacitance=combo.corner_capacitance,
                    corner_max_delay=(
                        tuple(
                            d + self.config.root_resistance * cap
                            for d, cap in zip(
                                combo.corner_max_delay, combo.corner_capacitance
                            )
                        )
                        if corner_aware
                        else None
                    ),
                    corner_min_delay=(
                        tuple(
                            d + self.config.root_resistance * cap
                            for d, cap in zip(
                                combo.corner_min_delay, combo.corner_capacitance
                            )
                        )
                        if corner_aware
                        else None
                    ),
                )
            )
        return final

    def _select(self, root_candidates: list[CandidateSolution]) -> CandidateSolution:
        if self.config.selection == "min_latency":
            return select_min_latency(root_candidates)
        return select_by_moes(root_candidates, self.config.weights)

    # -------------------------------------------------------- step 4: top-down
    def _top_down(
        self,
        dp_tree: DpTree,
        candidates: dict[int, list[CandidateSolution]],
        selected: CandidateSolution,
    ) -> None:
        """Retrace the recorded dependencies and realise the chosen patterns."""
        stack: list[tuple[DpNode, CandidateSolution]] = list(
            zip(dp_tree.root_nodes, selected.children)
        )
        while stack:
            dp_node, cand = stack.pop()
            if cand.pattern is None:
                raise RuntimeError(
                    f"top-down decision reached {dp_node.name} without a pattern"
                )
            self._realize_pattern(dp_tree.clock_tree, dp_node, cand.pattern)
            merged = cand.children[0]
            stack.extend(zip(dp_node.predecessors, merged.children))
        # Pattern realisation rewrites wire sides directly on the nodes, which
        # the tree's edit log cannot see — record an unscoped change so that
        # incremental timing engines recompile instead of serving stale data.
        dp_tree.clock_tree.touch()

    def _realize_pattern(
        self, tree: ClockTree, dp_node: DpNode, pattern: EdgePattern
    ) -> None:
        """Insert the devices and assign wire sides for one decided edge."""
        child = dp_node.tree_child
        parent = child.parent
        if parent is None:  # pragma: no cover - root edges always have a parent
            raise RuntimeError(f"DP node {dp_node.name} has no parent edge")
        ntsv = self.pdk.ntsv
        length = dp_node.length

        if pattern.name == "P2_Wiring_F":
            child.wire_side = Side.FRONT
            child.side = Side.FRONT if not child.is_ntsv else child.side
        elif pattern.name == "P3_Wiring_B":
            child.wire_side = Side.BACK
            child.side = Side.BACK
        elif pattern.name == "P1_Buffer":
            child.wire_side = Side.FRONT
            child.side = Side.FRONT
            midpoint = point_toward(child.location, parent.location, length / 2.0)
            tree.add_buffer(child, midpoint, self.pdk.buffer.input_capacitance)
        elif pattern.name == "P4_nTSV1":
            assert ntsv is not None
            child.wire_side = Side.FRONT
            child.side = Side.FRONT
            low = tree.add_ntsv(child, child.location, ntsv.capacitance, Side.BACK)
            tree.add_ntsv(low, parent.location, ntsv.capacitance, Side.FRONT)
        elif pattern.name == "P5_nTSV2":
            assert ntsv is not None
            child.wire_side = Side.FRONT
            child.side = Side.FRONT
            tree.add_ntsv(child, child.location, ntsv.capacitance, Side.BACK)
        elif pattern.name == "P6_nTSV3":
            assert ntsv is not None
            child.wire_side = Side.BACK
            child.side = Side.BACK
            tree.add_ntsv(child, parent.location, ntsv.capacitance, Side.FRONT)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown pattern {pattern.name!r}")

    def _realize_pattern_design(
        self, design: DesignArrays, dp_node: DpNode, pattern: EdgePattern
    ) -> None:
        """Row twin of :meth:`_realize_pattern` (same devices, names, order)."""
        child = dp_node.tree_row
        parent = int(design.parent_row[child])
        if parent < 0:  # pragma: no cover - root edges always have a parent
            raise RuntimeError(f"DP node {dp_node.name} has no parent edge")
        ntsv = self.pdk.ntsv
        length = dp_node.length

        if pattern.name == "P2_Wiring_F":
            design.wire_front[child] = True
            if design.kind[child] != KIND_NTSV:
                design.side_front[child] = True
        elif pattern.name == "P3_Wiring_B":
            design.wire_front[child] = False
            design.side_front[child] = False
        elif pattern.name == "P1_Buffer":
            design.wire_front[child] = True
            design.side_front[child] = True
            midpoint = point_toward(
                design.location_of(child), design.location_of(parent), length / 2.0
            )
            design.add_buffer(
                child, midpoint.x, midpoint.y, self.pdk.buffer.input_capacitance
            )
        elif pattern.name == "P4_nTSV1":
            assert ntsv is not None
            design.wire_front[child] = True
            design.side_front[child] = True
            child_location = design.location_of(child)
            parent_location = design.location_of(parent)
            low = design.add_ntsv(
                child,
                child_location.x,
                child_location.y,
                ntsv.capacitance,
                upstream_front=False,
            )
            design.add_ntsv(
                low,
                parent_location.x,
                parent_location.y,
                ntsv.capacitance,
                upstream_front=True,
            )
        elif pattern.name == "P5_nTSV2":
            assert ntsv is not None
            design.wire_front[child] = True
            design.side_front[child] = True
            child_location = design.location_of(child)
            design.add_ntsv(
                child,
                child_location.x,
                child_location.y,
                ntsv.capacitance,
                upstream_front=False,
            )
        elif pattern.name == "P6_nTSV3":
            assert ntsv is not None
            design.wire_front[child] = False
            design.side_front[child] = False
            parent_location = design.location_of(parent)
            design.add_ntsv(
                child,
                parent_location.x,
                parent_location.y,
                ntsv.capacitance,
                upstream_front=True,
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown pattern {pattern.name!r}")

"""The multi-objective dynamic program for concurrent buffer and nTSV insertion.

Implements the four steps of Section III-C.2 and Fig. 7:

1. **Build heterogeneous DP tree** — delegated to
   :func:`repro.insertion.dp_tree.build_dp_tree`; per-node insertion modes
   make the tree heterogeneous.
2. **Bottom-up generation** — leaf DP nodes start from the lumped leaf-net
   load with the sink-facing end forced to the front side; every node merges
   the candidate sets of its predecessors (only combinations whose shared
   vertex has a consistent side are legal) and then applies every allowed
   edge pattern, with per-side inferior-solution pruning and the maximum
   driven-capacitance filter.
3. **Multi-objective selection** — the root candidate set is scored with the
   MOES (Eq. (3)) or, optionally, by pure minimum latency.
4. **Top-down decision** — the recorded dependencies are retraced and the
   chosen pattern of every DP node is realised on the clock tree (buffer and
   nTSV nodes are inserted, wire sides assigned), producing a legal
   double-side clock tree without any extra legalisation step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.clocktree import ClockTree
from repro.geometry.point import point_toward
from repro.insertion.candidate import CandidateSolution
from repro.insertion.dp_tree import DpNode, DpTree, build_dp_tree
from repro.insertion.moes import MoesWeights, select_by_moes, select_min_latency
from repro.insertion.patterns import EdgePattern, InsertionMode, patterns_for
from repro.insertion.pruning import prune_per_side
from repro.tech.layers import Side
from repro.tech.pdk import Pdk
from repro.timing import TimingResult, create_engine


@dataclass
class InsertionConfig:
    """Tuning knobs of the concurrent insertion DP.

    Attributes:
        weights: MOES weights (alpha, beta, gamma); the paper uses (1, 10, 1).
        selection: ``"moes"`` (default) or ``"min_latency"``; the latter is
            the "w/o MOES" variant compared in Fig. 10.
        max_segment_length: trunk edges longer than this (um) are subdivided
            before the DP; ``None`` keeps the routed edges untouched.
        keep_resource_diversity: keep cheaper-but-slower candidates alongside
            the (cap, delay) Pareto staircase so the root set stays diverse.
        max_candidates_per_side: beam width per side and DP node; bounds the
            quadratic merge cost.
        default_mode: insertion mode applied to every DP node unless a
            mode assignment callable or fanout threshold overrides it.
        root_resistance: drive resistance (kOhm) of the clock source, used to
            translate root candidates into latency estimates.
    """

    weights: MoesWeights = field(default_factory=MoesWeights)
    selection: str = "moes"
    max_segment_length: float | None = 200.0
    keep_resource_diversity: bool = False
    max_candidates_per_side: int | None = 16
    default_mode: InsertionMode = InsertionMode.FULL
    root_resistance: float = 0.1

    def __post_init__(self) -> None:
        if self.selection not in ("moes", "min_latency"):
            raise ValueError(f"unknown selection strategy {self.selection!r}")


@dataclass
class InsertionResult:
    """Outcome of the concurrent buffer and nTSV insertion."""

    tree: ClockTree
    dp_tree: DpTree
    selected: CandidateSolution
    root_candidates: list[CandidateSolution]
    timing: TimingResult
    inserted_buffers: int
    inserted_ntsvs: int

    @property
    def latency(self) -> float:
        return self.timing.latency

    @property
    def skew(self) -> float:
        return self.timing.skew

    def summary(self) -> dict[str, float | int]:
        return {
            "latency_ps": round(self.timing.latency, 3),
            "skew_ps": round(self.timing.skew, 3),
            "buffers": self.inserted_buffers,
            "ntsvs": self.inserted_ntsvs,
            "root_candidates": len(self.root_candidates),
        }


class ConcurrentInserter:
    """Concurrent buffer and nTSV insertion by multi-objective DP."""

    def __init__(
        self,
        pdk: Pdk,
        config: InsertionConfig | None = None,
        engine: str | None = None,
    ) -> None:
        self.pdk = pdk
        self.config = config if config is not None else InsertionConfig()
        self._engine = create_engine(pdk, engine)

    # ----------------------------------------------------------------- public
    def run(
        self,
        tree: ClockTree,
        dp_tree: DpTree | None = None,
        mode_of: Callable[[DpNode], InsertionMode] | None = None,
        fanout_threshold: int | None = None,
    ) -> InsertionResult:
        """Insert buffers and nTSVs into ``tree`` (modified in place).

        Args:
            tree: the routed, unbuffered clock tree.
            dp_tree: a pre-built DP tree; built from ``tree`` when omitted.
            mode_of: optional per-node mode assignment (overrides the default).
            fanout_threshold: the DSE heuristic — nodes with fewer downstream
                sinks than the threshold use full mode, others intra-side.
        """
        if dp_tree is None:
            dp_tree = build_dp_tree(
                tree,
                self.pdk,
                max_segment_length=self.config.max_segment_length,
                default_mode=self.config.default_mode,
            )
        if mode_of is not None:
            dp_tree.configure_modes(mode_of)
        if fanout_threshold is not None:
            dp_tree.configure_fanout_threshold(fanout_threshold)

        candidates = self._bottom_up(dp_tree)
        root_candidates = self._root_candidates(dp_tree, candidates)
        selected = self._select(root_candidates)
        self._top_down(dp_tree, candidates, selected)

        timing = self._engine.analyze(tree)
        return InsertionResult(
            tree=tree,
            dp_tree=dp_tree,
            selected=selected,
            root_candidates=root_candidates,
            timing=timing,
            inserted_buffers=tree.buffer_count(),
            inserted_ntsvs=tree.ntsv_count(),
        )

    # ------------------------------------------------------- step 2: bottom-up
    def _bottom_up(self, dp_tree: DpTree) -> dict[int, list[CandidateSolution]]:
        """Generate pruned candidate sets for every DP node, bottom-up."""
        candidates: dict[int, list[CandidateSolution]] = {}
        for dp_node in dp_tree.nodes:
            merged = self._merge(dp_node, candidates)
            inserted = self._insert(dp_node, merged)
            pruned = prune_per_side(
                inserted,
                max_capacitance=self.pdk.max_capacitance,
                keep_resource_diversity=self.config.keep_resource_diversity,
                max_candidates_per_side=self.config.max_candidates_per_side,
            )
            if not pruned:
                # Every candidate violates the maximum load (e.g. an oversized
                # leaf net that even a buffer cannot legalise).  Keep the DP
                # total by retaining the unchecked candidates; the violation
                # then shows up in the evaluation instead of aborting the run.
                relaxed = self._insert(dp_node, merged, enforce_driver_load=False)
                pruned = prune_per_side(
                    relaxed,
                    max_capacitance=None,
                    keep_resource_diversity=self.config.keep_resource_diversity,
                    max_candidates_per_side=self.config.max_candidates_per_side,
                )
            if not pruned:  # pragma: no cover - relaxed insertion is always non-empty
                raise RuntimeError(
                    f"DP node {dp_node.name} has no feasible candidate solutions"
                )
            candidates[dp_node.index] = pruned
        return candidates

    def _merge(
        self,
        dp_node: DpNode,
        candidates: dict[int, list[CandidateSolution]],
    ) -> list[CandidateSolution]:
        """Merge predecessor candidates at the downstream vertex of ``dp_node``.

        Leaf DP nodes start from the lumped leaf-net load with the vertex
        forced to the front side.  The merged candidate's ``children`` tuple
        lists one candidate per predecessor, in predecessor order, which is
        what the top-down decision retraces.
        """
        if dp_node.is_leaf:
            return [
                CandidateSolution(
                    up_side=Side.FRONT,
                    capacitance=dp_node.base_capacitance,
                    max_delay=dp_node.base_max_delay,
                    min_delay=dp_node.base_min_delay,
                )
            ]

        combos: list[CandidateSolution] = []
        first = True
        for pred in dp_node.predecessors:
            pred_cands = candidates[pred.index]
            if first:
                combos = [
                    CandidateSolution(
                        up_side=c.up_side,
                        capacitance=c.capacitance,
                        max_delay=c.max_delay,
                        min_delay=c.min_delay,
                        buffer_count=c.buffer_count,
                        ntsv_count=c.ntsv_count,
                        children=(c,),
                    )
                    for c in pred_cands
                ]
                first = False
                continue
            next_combos: list[CandidateSolution] = []
            for combo in combos:
                for cand in pred_cands:
                    if cand.up_side is not combo.up_side:
                        continue  # connectivity constraint at the shared vertex
                    next_combos.append(
                        CandidateSolution(
                            up_side=combo.up_side,
                            capacitance=combo.capacitance + cand.capacitance,
                            max_delay=max(combo.max_delay, cand.max_delay),
                            min_delay=min(combo.min_delay, cand.min_delay),
                            buffer_count=combo.buffer_count + cand.buffer_count,
                            ntsv_count=combo.ntsv_count + cand.ntsv_count,
                            children=combo.children + (cand,),
                        )
                    )
            combos = next_combos
            if not combos:
                raise RuntimeError(
                    f"DP node {dp_node.name}: predecessors have no side-compatible "
                    "candidate combination"
                )

        # Add the static load at the vertex (pin cap + direct leaf net).
        finalized: list[CandidateSolution] = []
        for combo in combos:
            max_delay = combo.max_delay
            min_delay = combo.min_delay
            if dp_node.has_direct_sinks:
                if combo.up_side is not Side.FRONT:
                    continue  # leaf nets are front-side: the vertex must be front
                max_delay = max(max_delay, dp_node.base_max_delay)
                min_delay = min(min_delay, dp_node.base_min_delay)
            finalized.append(
                CandidateSolution(
                    up_side=combo.up_side,
                    capacitance=combo.capacitance + dp_node.base_capacitance,
                    max_delay=max_delay,
                    min_delay=min_delay,
                    buffer_count=combo.buffer_count,
                    ntsv_count=combo.ntsv_count,
                    children=combo.children,
                )
            )
        if not finalized:
            raise RuntimeError(
                f"DP node {dp_node.name}: no merged candidate satisfies the "
                "front-side leaf-net constraint"
            )
        return prune_per_side(
            finalized,
            max_capacitance=None,
            keep_resource_diversity=self.config.keep_resource_diversity,
            max_candidates_per_side=self.config.max_candidates_per_side,
        )

    def _insert(
        self,
        dp_node: DpNode,
        merged: Sequence[CandidateSolution],
        enforce_driver_load: bool = True,
    ) -> list[CandidateSolution]:
        """Apply every allowed pattern of ``dp_node`` to every merged candidate."""
        results: list[CandidateSolution] = []
        for base in merged:
            allowed = patterns_for(
                dp_node.mode,
                self.pdk.has_backside,
                required_down_side=base.up_side,
            )
            for pattern in allowed:
                candidate = self._apply_pattern(
                    pattern,
                    dp_node.length,
                    base,
                    enforce_driver_load=enforce_driver_load,
                )
                if candidate is not None:
                    results.append(candidate)
        return results

    def _apply_pattern(
        self,
        pattern: EdgePattern,
        length: float,
        base: CandidateSolution,
        enforce_driver_load: bool = True,
    ) -> CandidateSolution | None:
        """Electrical effect of implementing one edge with ``pattern``.

        Matches the realisation in :meth:`_realize_pattern` and therefore the
        Elmore engine exactly (Eq. (1) / Eq. (2) of the paper).  Returns None
        when the pattern would make an inserted buffer drive more than the
        PDK's maximum load (and ``enforce_driver_load`` is set).
        """
        front = self.pdk.front_layer
        back = self.pdk.back_layer if self.pdk.has_backside else None
        buffer = self.pdk.buffer
        cap = base.capacitance
        delay = 0.0

        if pattern.name == "P2_Wiring_F":
            delay += front.wire_delay(length, cap)
            cap += front.wire_capacitance(length)
        elif pattern.name == "P3_Wiring_B":
            assert back is not None
            delay += back.wire_delay(length, cap)
            cap += back.wire_capacitance(length)
        elif pattern.name == "P1_Buffer":
            half = length / 2.0
            delay += front.wire_delay(half, cap)
            cap += front.wire_capacitance(half)
            if enforce_driver_load and cap > self.pdk.max_capacitance + 1e-9:
                return None
            delay += buffer.delay(cap)
            cap = buffer.input_capacitance
            delay += front.wire_delay(half, cap)
            cap += front.wire_capacitance(half)
        elif pattern.name == "P4_nTSV1":
            assert back is not None and self.pdk.ntsv is not None
            ntsv = self.pdk.ntsv
            delay += ntsv.delay(cap)
            cap += ntsv.capacitance
            delay += back.wire_delay(length, cap)
            cap += back.wire_capacitance(length)
            delay += ntsv.delay(cap)
            cap += ntsv.capacitance
        elif pattern.name == "P5_nTSV2":
            assert back is not None and self.pdk.ntsv is not None
            ntsv = self.pdk.ntsv
            delay += ntsv.delay(cap)
            cap += ntsv.capacitance
            delay += back.wire_delay(length, cap)
            cap += back.wire_capacitance(length)
        elif pattern.name == "P6_nTSV3":
            assert back is not None and self.pdk.ntsv is not None
            ntsv = self.pdk.ntsv
            delay += back.wire_delay(length, cap)
            cap += back.wire_capacitance(length)
            delay += ntsv.delay(cap)
            cap += ntsv.capacitance
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown pattern {pattern.name!r}")

        return base.with_pattern(
            pattern,
            capacitance=cap,
            max_delay=base.max_delay + delay,
            min_delay=base.min_delay + delay,
            added_buffers=pattern.buffer_count,
            added_ntsvs=pattern.ntsv_count,
        )

    # -------------------------------------------------------- step 3: selection
    def _root_candidates(
        self,
        dp_tree: DpTree,
        candidates: dict[int, list[CandidateSolution]],
    ) -> list[CandidateSolution]:
        """Combine the root DP nodes at the clock source (front side only)."""
        combos: list[CandidateSolution] = []
        first = True
        for root_dp in dp_tree.root_nodes:
            cands = [
                c for c in candidates[root_dp.index] if c.up_side is Side.FRONT
            ]
            if not cands:
                raise RuntimeError(
                    f"root DP node {root_dp.name} has no front-side candidate"
                )
            if first:
                combos = [
                    CandidateSolution(
                        up_side=Side.FRONT,
                        capacitance=c.capacitance,
                        max_delay=c.max_delay,
                        min_delay=c.min_delay,
                        buffer_count=c.buffer_count,
                        ntsv_count=c.ntsv_count,
                        children=(c,),
                    )
                    for c in cands
                ]
                first = False
                continue
            combos = [
                CandidateSolution(
                    up_side=Side.FRONT,
                    capacitance=combo.capacitance + cand.capacitance,
                    max_delay=max(combo.max_delay, cand.max_delay),
                    min_delay=min(combo.min_delay, cand.min_delay),
                    buffer_count=combo.buffer_count + cand.buffer_count,
                    ntsv_count=combo.ntsv_count + cand.ntsv_count,
                    children=combo.children + (cand,),
                )
                for combo in combos
                for cand in cands
            ]
        # Account for the clock source driving the root load.
        final = []
        for combo in combos:
            source_delay = self.config.root_resistance * combo.capacitance
            final.append(
                CandidateSolution(
                    up_side=Side.FRONT,
                    capacitance=combo.capacitance,
                    max_delay=combo.max_delay + source_delay,
                    min_delay=combo.min_delay + source_delay,
                    buffer_count=combo.buffer_count,
                    ntsv_count=combo.ntsv_count,
                    children=combo.children,
                )
            )
        return final

    def _select(self, root_candidates: list[CandidateSolution]) -> CandidateSolution:
        if self.config.selection == "min_latency":
            return select_min_latency(root_candidates)
        return select_by_moes(root_candidates, self.config.weights)

    # -------------------------------------------------------- step 4: top-down
    def _top_down(
        self,
        dp_tree: DpTree,
        candidates: dict[int, list[CandidateSolution]],
        selected: CandidateSolution,
    ) -> None:
        """Retrace the recorded dependencies and realise the chosen patterns."""
        stack: list[tuple[DpNode, CandidateSolution]] = list(
            zip(dp_tree.root_nodes, selected.children)
        )
        while stack:
            dp_node, cand = stack.pop()
            if cand.pattern is None:
                raise RuntimeError(
                    f"top-down decision reached {dp_node.name} without a pattern"
                )
            self._realize_pattern(dp_tree.clock_tree, dp_node, cand.pattern)
            merged = cand.children[0]
            stack.extend(zip(dp_node.predecessors, merged.children))
        # Pattern realisation rewrites wire sides directly on the nodes, which
        # the tree's edit log cannot see — record an unscoped change so that
        # incremental timing engines recompile instead of serving stale data.
        dp_tree.clock_tree.touch()

    def _realize_pattern(
        self, tree: ClockTree, dp_node: DpNode, pattern: EdgePattern
    ) -> None:
        """Insert the devices and assign wire sides for one decided edge."""
        child = dp_node.tree_child
        parent = child.parent
        if parent is None:  # pragma: no cover - root edges always have a parent
            raise RuntimeError(f"DP node {dp_node.name} has no parent edge")
        ntsv = self.pdk.ntsv
        length = dp_node.length

        if pattern.name == "P2_Wiring_F":
            child.wire_side = Side.FRONT
            child.side = Side.FRONT if not child.is_ntsv else child.side
        elif pattern.name == "P3_Wiring_B":
            child.wire_side = Side.BACK
            child.side = Side.BACK
        elif pattern.name == "P1_Buffer":
            child.wire_side = Side.FRONT
            child.side = Side.FRONT
            midpoint = point_toward(child.location, parent.location, length / 2.0)
            tree.add_buffer(child, midpoint, self.pdk.buffer.input_capacitance)
        elif pattern.name == "P4_nTSV1":
            assert ntsv is not None
            child.wire_side = Side.FRONT
            child.side = Side.FRONT
            low = tree.add_ntsv(child, child.location, ntsv.capacitance, Side.BACK)
            tree.add_ntsv(low, parent.location, ntsv.capacitance, Side.FRONT)
        elif pattern.name == "P5_nTSV2":
            assert ntsv is not None
            child.wire_side = Side.FRONT
            child.side = Side.FRONT
            tree.add_ntsv(child, child.location, ntsv.capacitance, Side.BACK)
        elif pattern.name == "P6_nTSV3":
            assert ntsv is not None
            child.wire_side = Side.BACK
            child.side = Side.BACK
            tree.add_ntsv(child, parent.location, ntsv.capacitance, Side.FRONT)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown pattern {pattern.name!r}")

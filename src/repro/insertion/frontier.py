"""Array-based DP backend for the concurrent insertion (the fast engine).

Mirrors the two-engine pattern of :mod:`repro.timing`: the object DP in
:mod:`repro.insertion.concurrent` (per-candidate
:class:`~repro.insertion.candidate.CandidateSolution` objects) is the
executable spec, and this module is the production backend.  Every DP node's
candidate set lives in a :class:`CandidateFrontier` struct-of-arrays, so

* ``_merge`` becomes a broadcast cross-product over two frontiers (outer-sum
  capacitance grids, element-wise max/min delay grids),
* pattern application evaluates all (candidate x pattern x corner) costs in
  one shot through the batched cell models
  (:meth:`~repro.tech.cells.BufferCell.delay_batch`, which routes through the
  batched NLDM path when a table and slew are available),
* the maximum driven-capacitance filter is a boolean mask, and
* dominance pruning is a vectorized staircase sweep (sort + cummin for the
  scalar case, an ``(n, n, K)`` broadcast — blocked for very large sets —
  vector-dominance test for corner batches).

Backends are selected through ``InsertionConfig.dp_backend`` /
``CtsConfig.dp_backend`` / ``dscts --dp-backend`` / the ``REPRO_DP_BACKEND``
environment variable, defaulting to ``vectorized``.

Both backends are kept *decision-identical*: candidate values are computed
with the same operation order (bit-identical floats), candidate ordering
follows the same stable sort keys, pruning implements the single rule
documented in :mod:`repro.insertion.pruning`, and the top-down realisation
walks the recorded back-pointers in the same stack order, so inserted nodes
receive identical names.  ``tests/test_insertion_vectorized.py`` enforces
identical selected trees and 1e-9-equal root candidate fronts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.clocktree import ClockTree
from repro.insertion.candidate import CandidateSolution
from repro.insertion.dp_tree import DpNode, DpTree
from repro.insertion.patterns import PATTERNS, EdgePattern, patterns_for
from repro.tech.layers import Side
from repro.tech.pdk import Pdk

#: Backend used when neither the caller, the config, nor the environment
#: chooses one.  Mirrors ``repro.flow.config.DP_BACKEND_CHOICE`` (kept as
#: literals here because importing ``repro.flow.config`` at module scope
#: would cycle back into this package through ``repro.insertion.moes``).
DEFAULT_DP_BACKEND = "vectorized"

DP_BACKEND_NAMES = ("reference", "vectorized")

#: Compact side codes used by the frontier arrays.
SIDE_FRONT = 0
SIDE_BACK = 1
_SIDE_CODES = {Side.FRONT: SIDE_FRONT, Side.BACK: SIDE_BACK}

#: Pattern name -> compact pattern id (index into ``PATTERNS``).
_PATTERN_INDEX = {pattern.name: i for i, pattern in enumerate(PATTERNS)}

#: Tolerance shared with the object backend's dominance and load checks.
_TOL = 1e-9

#: Above this candidate count the pairwise dominance test runs in column
#: blocks (bounding the (n, n, K) broadcast memory).
_PAIRWISE_LIMIT = 512


def default_dp_backend() -> str:
    """The DP backend used for ``dp_backend=None`` (env override included)."""
    # Deferred import: repro.flow.config imports this package at module scope.
    from repro.flow.config import DP_BACKEND_CHOICE

    return DP_BACKEND_CHOICE.default_name()


def resolve_dp_backend(name: str | None) -> str:
    """Resolve an explicit/None backend name against the environment default."""
    from repro.flow.config import DP_BACKEND_CHOICE

    return DP_BACKEND_CHOICE.resolve(name)


@dataclass
class CandidateFrontier:
    """One DP node's candidate set as struct-of-arrays.

    The arrays mirror :class:`CandidateSolution` fields, with the per-corner
    tuples widened to a leading scenario axis: ``cap`` / ``max_delay`` /
    ``min_delay`` are ``(K, n)`` matrices (``K = 1`` for nominal runs; the
    primary row mirrors the object backend's scalar fields).

    Attributes:
        side: ``(n,)`` upstream-side codes (``SIDE_FRONT`` / ``SIDE_BACK``).
        cap: ``(K, n)`` effective capacitance (fF) per corner.
        max_delay: ``(K, n)`` worst path delay (ps) per corner.
        min_delay: ``(K, n)`` best path delay (ps) per corner.
        buffers: ``(n,)`` buffers used by the subtree under each candidate.
        ntsvs: ``(n,)`` nTSVs used by the subtree under each candidate.
        pattern: ``(n,)`` compact pattern ids (``-1`` before insertion).
        choice: ``(n, P)`` back-pointers — the candidate index chosen in each
            of the node's ``P`` predecessor frontiers (the recorded
            dependencies the top-down decision retraces).

    Frontier arrays may alias other frontiers (views / shared constants) and
    must therefore never be mutated in place; every DP step builds new arrays.
    """

    side: np.ndarray
    cap: np.ndarray
    max_delay: np.ndarray
    min_delay: np.ndarray
    buffers: np.ndarray
    ntsvs: np.ndarray
    pattern: np.ndarray
    choice: np.ndarray

    @property
    def size(self) -> int:
        return int(self.side.size)

    def take(self, idx: np.ndarray) -> "CandidateFrontier":
        """Gather a sub-frontier (preserving the order of ``idx``)."""
        return CandidateFrontier(
            side=self.side[idx],
            cap=self.cap[:, idx],
            max_delay=self.max_delay[:, idx],
            min_delay=self.min_delay[:, idx],
            buffers=self.buffers[idx],
            ntsvs=self.ntsvs[idx],
            pattern=self.pattern[idx],
            choice=self.choice[idx],
        )

    @staticmethod
    def concatenate(parts: Sequence["CandidateFrontier"]) -> "CandidateFrontier":
        """Concatenate frontiers with identical K and back-pointer width."""
        if len(parts) == 1:
            return parts[0]
        return CandidateFrontier(
            side=np.concatenate([p.side for p in parts]),
            cap=np.concatenate([p.cap for p in parts], axis=1),
            max_delay=np.concatenate([p.max_delay for p in parts], axis=1),
            min_delay=np.concatenate([p.min_delay for p in parts], axis=1),
            buffers=np.concatenate([p.buffers for p in parts]),
            ntsvs=np.concatenate([p.ntsvs for p in parts]),
            pattern=np.concatenate([p.pattern for p in parts]),
            choice=np.concatenate([p.choice for p in parts], axis=0),
        )


class VectorizedInsertionDp:
    """The array-based insertion DP: batched costs, masked filters, sweeps.

    Instantiated by :class:`~repro.insertion.concurrent.ConcurrentInserter`
    with the engine-resolved corner PDK list (``[pdk]`` for nominal runs), so
    both DP backends share one corner order and one technology.
    """

    def __init__(
        self,
        pdk: Pdk,
        config,
        corner_pdks: Sequence[Pdk],
        primary_index: int = 0,
        corner_aware: bool = False,
    ) -> None:
        self.pdk = pdk
        self.config = config
        self.corner_aware = corner_aware
        self.primary = primary_index
        self._buffers = [corner_pdk.buffer for corner_pdk in corner_pdks]
        self._k = len(corner_pdks)
        # Kept for the subtree-parallel path: workers rebuild an equivalent
        # DP instance from (pdk, config, corner pdks) in their own process.
        self._corner_pdks = list(corner_pdks)
        # Filled by run(): pool tasks shipped and recovery events recorded
        # for them (the inserter surfaces these on its result).
        self.parallel_tasks = 0
        self.parallel_diagnostics: list = []

        def column(values: list[float]) -> np.ndarray:
            return np.asarray(values, dtype=float)[:, None]

        front = [corner_pdk.front_layer for corner_pdk in corner_pdks]
        self.f_ur = column([layer.unit_resistance for layer in front])
        self.f_uc = column([layer.unit_capacitance for layer in front])
        self.buf_incap = column([buf.input_capacitance for buf in self._buffers])
        self.buf_intr = column([buf.intrinsic_delay for buf in self._buffers])
        self.buf_drive = column([buf.drive_resistance for buf in self._buffers])
        self.max_cap = column([p.max_capacitance for p in corner_pdks])
        if pdk.has_backside:
            back = [corner_pdk.back_layer for corner_pdk in corner_pdks]
            self.b_ur = column([layer.unit_resistance for layer in back])
            self.b_uc = column([layer.unit_capacitance for layer in back])
            ntsvs = [corner_pdk.ntsv for corner_pdk in corner_pdks]
            self.ntsv_r = column([ntsv.resistance for ntsv in ntsvs])
            self.ntsv_c = column([ntsv.capacitance for ntsv in ntsvs])
        else:
            self.b_ur = self.b_uc = self.ntsv_r = self.ntsv_c = None

        # Shared small constants (never mutated): leaf frontier scaffolding,
        # identity back-pointer ranges, per-pattern-set constant rows.
        self._leaf_side = np.zeros(1, np.int8)
        self._leaf_zeros = np.zeros(1, np.int64)
        self._leaf_pattern = np.full(1, -1, np.int16)
        self._leaf_choice = np.empty((1, 0), np.int64)
        self._arange_cache: dict[int, np.ndarray] = {}
        self._no_pattern_cache: dict[int, np.ndarray] = {}
        self._triu_cache: dict[int, np.ndarray] = {}
        self._tiled_cache: dict[
            tuple[tuple[EdgePattern, ...], int],
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        ] = {}
        self._pattern_consts: dict[
            tuple[EdgePattern, ...],
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        ] = {}

    def _arange(self, n: int) -> np.ndarray:
        cached = self._arange_cache.get(n)
        if cached is None:
            cached = np.arange(n, dtype=np.int64)
            self._arange_cache[n] = cached
        return cached

    def _no_pattern(self, n: int) -> np.ndarray:
        """Shared ``(n,)`` array of -1 pattern ids (merged frontiers)."""
        cached = self._no_pattern_cache.get(n)
        if cached is None:
            cached = np.full(n, -1, np.int16)
            self._no_pattern_cache[n] = cached
        return cached

    def _triu(self, n: int) -> np.ndarray:
        """Shared strict upper-triangle mask (earlier-candidate pairs)."""
        cached = self._triu_cache.get(n)
        if cached is None:
            rows = np.arange(n)
            cached = rows[:, None] < rows[None, :]
            self._triu_cache[n] = cached
        return cached

    def _tiled_rows(
        self, allowed: tuple[EdgePattern, ...], n_base: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cached per-(pattern set, base count) constant rows, pre-tiled:
        (pattern ids, up-side codes, added buffers, added nTSVs, base rows
        for an identity selection)."""
        key = (allowed, n_base)
        cached = self._tiled_cache.get(key)
        if cached is None:
            ids_row, sides_row, bufs_row, ntsvs_row = self._pattern_rows(allowed)
            cached = (
                np.tile(ids_row, n_base),
                np.tile(sides_row, n_base),
                np.tile(bufs_row, n_base),
                np.tile(ntsvs_row, n_base),
                np.repeat(self._arange(n_base), len(allowed)),
            )
            self._tiled_cache[key] = cached
        return cached

    def _pattern_rows(
        self, allowed: tuple[EdgePattern, ...]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cached (ids, up-side codes, buffer counts, nTSV counts) rows."""
        cached = self._pattern_consts.get(allowed)
        if cached is None:
            cached = (
                np.asarray([_PATTERN_INDEX[p.name] for p in allowed], np.int16),
                np.asarray([_SIDE_CODES[p.up_side] for p in allowed], np.int8),
                np.asarray([p.buffer_count for p in allowed], np.int64),
                np.asarray([p.ntsv_count for p in allowed], np.int64),
            )
            self._pattern_consts[allowed] = cached
        return cached

    # ------------------------------------------------------------------ driver
    def run(
        self,
        dp_tree: DpTree,
        workers: int = 1,
        parallel_policy=None,
    ) -> tuple[dict[int, CandidateFrontier], CandidateFrontier]:
        """Bottom-up generation: the pruned frontier of every DP node plus
        the combined root frontier (Steps 2 and the root part of Step 3).

        With ``workers > 1`` the DP ships disjoint bottom subtrees to a
        process pool first (each node's frontier depends only on its
        predecessors' frontiers, so a whole subtree evaluates without any
        cross-subtree data) and finishes the remaining spine serially.  The
        per-node arithmetic is byte-for-byte the serial code, so the result
        is bit-identical at every worker count.

        The pool hops go through the fault-tolerant
        :func:`~repro.parallel.run_tasks` map under ``parallel_policy``
        (``None`` resolves the usual knob precedence); recovery events and
        the shipped-task count are exposed as :attr:`parallel_diagnostics`
        and :attr:`parallel_tasks` after the call, so the inserter can
        surface them on its result.
        """
        self.parallel_tasks = 0
        self.parallel_diagnostics = []
        frontiers: dict[int, CandidateFrontier] = {}
        remaining = dp_tree.nodes
        if workers > 1:
            subtrees = self._partition_dp_subtrees(dp_tree, workers)
            if len(subtrees) >= 2:
                frontiers.update(
                    self._run_subtrees_parallel(
                        subtrees,
                        workers,
                        policy=parallel_policy,
                        diagnostics=self.parallel_diagnostics,
                    )
                )
                self.parallel_tasks = len(subtrees)
                remaining = [n for n in dp_tree.nodes if n.index not in frontiers]
        for dp_node in remaining:
            frontiers[dp_node.index] = self._generate(dp_node, frontiers)
        return frontiers, self._root_frontier(dp_tree, frontiers)

    def _generate(
        self, dp_node: DpNode, frontiers: dict[int, CandidateFrontier]
    ) -> CandidateFrontier:
        """One DP node's pruned frontier (merge, insert, prune, relax)."""
        merged = self._merge(dp_node, frontiers)
        inserted = self._insert(dp_node, merged)
        pruned = self._prune(inserted, max_capacitance=self.pdk.max_capacitance)
        if pruned.size == 0:
            # Mirror the object backend: retain unchecked candidates when
            # even a buffer cannot legalise the load.
            relaxed = self._insert(dp_node, merged, enforce_driver_load=False)
            pruned = self._prune(relaxed)
        if pruned.size == 0:  # pragma: no cover - relaxed set is non-empty
            raise RuntimeError(
                f"DP node {dp_node.name} has no feasible candidate solutions"
            )
        return pruned

    # ------------------------------------------------------ subtree parallelism
    @staticmethod
    def _partition_dp_subtrees(dp_tree: DpTree, workers: int) -> list[list[DpNode]]:
        """Disjoint bottom subtrees big enough to amortise a process hop.

        A node roots a shipped subtree iff its subtree holds at least
        ``target`` DP nodes while every predecessor's subtree is still below
        the target.  No strict descendant of such a root reaches the target
        (so no nested root below) and every ancestor has a >= target
        predecessor on the path down (so no nested root above): the selected
        subtrees are provably disjoint.  Each returned list is in the global
        bottom-up order, so a worker can evaluate it front to back.
        """
        nodes = dp_tree.nodes
        target = max(32, len(nodes) // (workers * 4))
        size: dict[int, int] = {}
        for node in nodes:
            size[node.index] = 1 + sum(size[p.index] for p in node.predecessors)
        position = {node.index: i for i, node in enumerate(nodes)}
        subtrees: list[list[DpNode]] = []
        for root in nodes:
            if size[root.index] < target:
                continue
            if any(size[p.index] >= target for p in root.predecessors):
                continue
            members = []
            stack = [root]
            while stack:
                node = stack.pop()
                members.append(node)
                stack.extend(node.predecessors)
            members.sort(key=lambda n: position[n.index])
            subtrees.append(members)
        return subtrees

    @staticmethod
    def _subtree_tables(nodes: list[DpNode]) -> list[tuple]:
        """Flatten a subtree into primitive rows for the process boundary.

        Recursive :class:`DpNode` graphs and live clock-tree references never
        cross into a worker: each row carries the node's own scalars, the
        resolved direct-sink flag, and predecessor links as positions into
        this same table.
        """
        local = {node.index: i for i, node in enumerate(nodes)}
        return [
            (
                node.index,
                node.length,
                node.mode,
                node.fanout,
                node.base_capacitance,
                node.base_max_delay,
                node.base_min_delay,
                node.corner_base_capacitance,
                node.corner_base_max_delay,
                node.corner_base_min_delay,
                node.tree_row,
                bool(node.has_direct_sinks),
                [local[p.index] for p in node.predecessors],
            )
            for node in nodes
        ]

    @staticmethod
    def _nodes_from_tables(tables: list[tuple]) -> list[DpNode]:
        """Rebuild worker-side :class:`DpNode` objects from flat rows."""
        nodes: list[DpNode] = []
        for (
            index,
            length,
            mode,
            fanout,
            base_cap,
            base_max,
            base_min,
            corner_cap,
            corner_max,
            corner_min,
            tree_row,
            direct_sinks,
            preds,
        ) in tables:
            nodes.append(
                DpNode(
                    index=index,
                    tree_child=None,
                    length=length,
                    predecessors=[nodes[p] for p in preds],
                    mode=mode,
                    fanout=fanout,
                    base_capacitance=base_cap,
                    base_max_delay=base_max,
                    base_min_delay=base_min,
                    corner_base_capacitance=corner_cap,
                    corner_base_max_delay=corner_max,
                    corner_base_min_delay=corner_min,
                    tree_row=tree_row,
                    direct_sinks=direct_sinks,
                )
            )
        return nodes

    def _run_subtrees_parallel(
        self,
        subtrees: list[list[DpNode]],
        workers: int,
        policy=None,
        diagnostics: list | None = None,
    ) -> dict[int, CandidateFrontier]:
        """Evaluate shipped subtrees on the shared pool, frontiers keyed by
        the original DP node indices (the serial spine reads them directly).

        Each subtree is one fault-tolerant :func:`~repro.parallel.run_tasks`
        task: a failed worker is retried and finally recomputed inline by
        the very same :func:`_dp_subtree_worker` (bit-identical by
        construction) under the ``degrade`` policy, or raises a typed
        :class:`~repro.parallel.ParallelError` under ``strict``.
        """
        from repro.parallel import run_tasks

        payloads = [
            (
                self.pdk,
                self.config,
                self._corner_pdks,
                self.primary,
                self.corner_aware,
                self._subtree_tables(nodes),
            )
            for nodes in subtrees
        ]
        results = run_tasks(
            "insertion",
            _dp_subtree_worker,
            payloads,
            min(workers, len(payloads)),
            policy=policy,
            validate=_validate_subtree_frontiers,
            diagnostics=diagnostics,
            label=lambda i, payload: f"subtree {i} ({len(payload[5])} nodes)",
        )
        merged: dict[int, CandidateFrontier] = {}
        for result in results:
            merged.update(result)
        return merged

    def materialize_root(self, root: CandidateFrontier) -> list[CandidateSolution]:
        """Root frontier rows as :class:`CandidateSolution` objects.

        The objects carry no children (the vectorized top-down walks the
        back-pointer arrays instead); scalar fields mirror the primary corner
        exactly as in the object backend.
        """
        out: list[CandidateSolution] = []
        primary = self.primary
        for i in range(root.size):
            corner_cap = corner_max = corner_min = None
            if self.corner_aware:
                corner_cap = tuple(float(v) for v in root.cap[:, i])
                corner_max = tuple(float(v) for v in root.max_delay[:, i])
                corner_min = tuple(float(v) for v in root.min_delay[:, i])
            out.append(
                CandidateSolution(
                    up_side=Side.FRONT,
                    capacitance=float(root.cap[primary, i]),
                    max_delay=float(root.max_delay[primary, i]),
                    min_delay=float(root.min_delay[primary, i]),
                    buffer_count=int(root.buffers[i]),
                    ntsv_count=int(root.ntsvs[i]),
                    corner_capacitance=corner_cap,
                    corner_max_delay=corner_max,
                    corner_min_delay=corner_min,
                )
            )
        return out

    def realize(
        self,
        dp_tree: DpTree,
        frontiers: dict[int, CandidateFrontier],
        root_choice: np.ndarray,
        realize_pattern: Callable[[ClockTree, DpNode, EdgePattern], None],
    ) -> None:
        """Top-down decision (Step 4): retrace back-pointers, realise patterns.

        The stack order matches the object backend's ``_top_down`` exactly, so
        inserted buffers/nTSVs receive identical generated names.
        """
        stack: list[tuple[DpNode, int]] = [
            (root_dp, int(idx))
            for root_dp, idx in zip(dp_tree.root_nodes, root_choice)
        ]
        while stack:
            dp_node, i = stack.pop()
            frontier = frontiers[dp_node.index]
            pattern_id = int(frontier.pattern[i])
            if pattern_id < 0:
                raise RuntimeError(
                    f"top-down decision reached {dp_node.name} without a pattern"
                )
            realize_pattern(dp_tree.clock_tree, dp_node, PATTERNS[pattern_id])
            stack.extend(
                (pred, int(c))
                for pred, c in zip(dp_node.predecessors, frontier.choice[i])
            )
        # Pattern realisation rewrites wire sides directly on the nodes, which
        # the tree's edit log cannot see — record an unscoped change so that
        # incremental timing engines recompile instead of serving stale data.
        dp_tree.clock_tree.touch()

    # --------------------------------------------------------------- DP steps
    def _leaf_base_columns(
        self, dp_node: DpNode
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(K, 1) columns of the node's static leaf-net base quantities."""
        if self.corner_aware:
            return (
                np.asarray(dp_node.corner_base_capacitance, float)[:, None],
                np.asarray(dp_node.corner_base_max_delay, float)[:, None],
                np.asarray(dp_node.corner_base_min_delay, float)[:, None],
            )
        return (
            np.asarray([[dp_node.base_capacitance]], float),
            np.asarray([[dp_node.base_max_delay]], float),
            np.asarray([[dp_node.base_min_delay]], float),
        )

    def _merge(
        self, dp_node: DpNode, frontiers: dict[int, CandidateFrontier]
    ) -> CandidateFrontier:
        """Broadcast cross-product merge at the node's downstream vertex."""
        if dp_node.is_leaf:
            base_cap, base_max, base_min = self._leaf_base_columns(dp_node)
            return CandidateFrontier(
                side=self._leaf_side,
                cap=base_cap,
                max_delay=base_max,
                min_delay=base_min,
                buffers=self._leaf_zeros,
                ntsvs=self._leaf_zeros,
                pattern=self._leaf_pattern,
                choice=self._leaf_choice,
            )

        predecessors = dp_node.predecessors
        first = frontiers[predecessors[0].index]
        combo = CandidateFrontier(
            side=first.side,
            cap=first.cap,
            max_delay=first.max_delay,
            min_delay=first.min_delay,
            buffers=first.buffers,
            ntsvs=first.ntsvs,
            pattern=self._no_pattern(first.size),
            choice=self._arange(first.size)[:, None],
        )
        if (
            len(predecessors) == 1
            and dp_node.base_capacitance == 0.0
            and not dp_node.has_direct_sinks
        ):
            # Chain node (a segmentation Steiner): the merged frontier IS the
            # predecessor's pruned frontier, value for value, and pruning is
            # idempotent on an already-pruned, already-sorted set — skip it.
            return combo
        for pred in predecessors[1:]:
            frontier = frontiers[pred.index]
            # Row-major pair enumeration matches the object backend's nested
            # loop (combo-major, candidate-minor, side mismatches skipped).
            ia, ib = np.nonzero(combo.side[:, None] == frontier.side[None, :])
            if ia.size == 0:
                raise RuntimeError(
                    f"DP node {dp_node.name}: predecessors have no "
                    "side-compatible candidate combination"
                )
            combo = CandidateFrontier(
                side=combo.side[ia],
                cap=combo.cap[:, ia] + frontier.cap[:, ib],
                max_delay=np.maximum(combo.max_delay[:, ia], frontier.max_delay[:, ib]),
                min_delay=np.minimum(combo.min_delay[:, ia], frontier.min_delay[:, ib]),
                buffers=combo.buffers[ia] + frontier.buffers[ib],
                ntsvs=combo.ntsvs[ia] + frontier.ntsvs[ib],
                pattern=self._no_pattern(ia.size),
                choice=np.concatenate(
                    [combo.choice[ia], ib[:, None].astype(np.int64)], axis=1
                ),
            )

        # Add the static load at the vertex (pin cap + direct leaf net).
        # Chain nodes (no pin cap, no direct sinks) skip the arithmetic
        # entirely: adding a zero base is the identity on positive floats.
        side = combo.side
        cap = combo.cap
        max_delay = combo.max_delay
        min_delay = combo.min_delay
        buffers, ntsvs, choice = combo.buffers, combo.ntsvs, combo.choice
        if dp_node.base_capacitance != 0.0 or dp_node.has_direct_sinks:
            base_cap, base_max, base_min = self._leaf_base_columns(dp_node)
            cap = cap + base_cap
            if dp_node.has_direct_sinks:
                keep = np.nonzero(side == SIDE_FRONT)[0]
                if keep.size == 0:
                    raise RuntimeError(
                        f"DP node {dp_node.name}: no merged candidate satisfies "
                        "the front-side leaf-net constraint"
                    )
                if keep.size != side.size:
                    side = side[keep]
                    cap = cap[:, keep]
                    max_delay = max_delay[:, keep]
                    min_delay = min_delay[:, keep]
                    buffers, ntsvs = buffers[keep], ntsvs[keep]
                    choice = choice[keep]
                max_delay = np.maximum(max_delay, base_max)
                min_delay = np.minimum(min_delay, base_min)
        merged = CandidateFrontier(
            side=side,
            cap=cap,
            max_delay=max_delay,
            min_delay=min_delay,
            buffers=buffers,
            ntsvs=ntsvs,
            pattern=self._no_pattern(side.size),
            choice=choice,
        )
        return self._prune(merged)

    def _insert(
        self,
        dp_node: DpNode,
        merged: CandidateFrontier,
        enforce_driver_load: bool = True,
    ) -> CandidateFrontier:
        """Apply every allowed pattern to every merged candidate, batched.

        A pruned frontier groups front-side candidates before back-side ones,
        so processing the two side blocks in that order reproduces the object
        backend's base-major / pattern-minor result order.
        """
        side = merged.side
        any_back = bool(side.any())
        all_back = any_back and bool(side.all())
        parts: list[CandidateFrontier] = []
        has_backside = self.pdk.has_backside
        for side_enum, code in ((Side.FRONT, SIDE_FRONT), (Side.BACK, SIDE_BACK)):
            if code == SIDE_FRONT and all_back:
                continue
            if code == SIDE_BACK and not any_back:
                continue
            allowed = patterns_for(
                dp_node.mode, has_backside, required_down_side=side_enum
            )
            if not allowed:  # pragma: no cover - every reachable side has one
                continue
            if all_back or not any_back:  # single-side frontier (common case)
                sel = self._arange(merged.size)
                base_cap = merged.cap
                base_max = merged.max_delay
                base_min = merged.min_delay
            else:
                sel = np.nonzero(side == code)[0]
                base_cap = merged.cap[:, sel]
                base_max = merged.max_delay[:, sel]
                base_min = merged.min_delay[:, sel]
            parts.append(
                self._insert_block(
                    dp_node,
                    merged,
                    sel,
                    base_cap,
                    base_max,
                    base_min,
                    allowed,
                    enforce_driver_load,
                )
            )
        if not parts:  # pragma: no cover - defensive: merged is never empty
            return merged.take(np.empty(0, np.int64))
        return CandidateFrontier.concatenate(parts)

    def _insert_block(
        self,
        dp_node: DpNode,
        merged: CandidateFrontier,
        sel: np.ndarray,
        base_cap: np.ndarray,
        base_max: np.ndarray,
        base_min: np.ndarray,
        allowed: tuple[EdgePattern, ...],
        enforce_driver_load: bool,
    ) -> CandidateFrontier:
        """Batched pattern application for one side block of ``merged``."""
        length = dp_node.length
        delays, caps = [], []
        valid: np.ndarray | None = None
        for pattern in allowed:
            delay, cap, pattern_valid = self._pattern_cost_batch(
                pattern, length, base_cap, enforce_driver_load
            )
            delays.append(delay)
            caps.append(cap)
            if pattern_valid is not None:
                if valid is None:
                    valid = np.ones((sel.size, len(allowed)), bool)
                valid[:, len(delays) - 1] = pattern_valid
        n_base, n_pat = sel.size, len(allowed)
        delay_grid = np.stack(delays, axis=2)  # (K, B, P)
        new_cap = np.stack(caps, axis=2).reshape(self._k, n_base * n_pat)
        new_max = (base_max[:, :, None] + delay_grid).reshape(self._k, n_base * n_pat)
        new_min = (base_min[:, :, None] + delay_grid).reshape(self._k, n_base * n_pat)
        tiled = self._tiled_rows(allowed, n_base)
        pattern_ids, up_sides, add_buffers, add_ntsvs, identity_rows = tiled
        if sel is self._arange_cache.get(n_base):
            base_rows = identity_rows
        else:
            base_rows = np.repeat(sel, n_pat)
        buffers = merged.buffers[base_rows] + add_buffers
        ntsvs = merged.ntsvs[base_rows] + add_ntsvs
        choice = merged.choice[base_rows]
        if valid is not None:
            mask = valid.reshape(n_base * n_pat)  # (B, P) flat: base-major
            if not mask.all():
                return CandidateFrontier(
                    side=up_sides[mask],
                    cap=new_cap[:, mask],
                    max_delay=new_max[:, mask],
                    min_delay=new_min[:, mask],
                    buffers=buffers[mask],
                    ntsvs=ntsvs[mask],
                    pattern=pattern_ids[mask],
                    choice=choice[mask],
                )
        return CandidateFrontier(
            side=up_sides,
            cap=new_cap,
            max_delay=new_max,
            min_delay=new_min,
            buffers=buffers,
            ntsvs=ntsvs,
            pattern=pattern_ids,
            choice=choice,
        )

    def _pattern_cost_batch(
        self,
        pattern: EdgePattern,
        length: float,
        cap: np.ndarray,
        enforce_driver_load: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """(added delay, new upstream cap, validity) of one pattern, batched.

        Mirrors ``ConcurrentInserter._pattern_cost`` operation for operation
        (bit-identical element-wise arithmetic) with the candidate axis
        vectorized and the corner axis broadcast.  The returned validity mask
        is ``None`` unless the pattern can reject candidates (P1's maximum
        driven-capacitance check, enforced at every corner).
        """
        name = pattern.name
        if name == "P2_Wiring_F":
            delay = self._wire_delay(self.f_ur, self.f_uc, length, cap)
            return delay, cap + self.f_uc * length, None
        if name == "P3_Wiring_B":
            delay = self._wire_delay(self.b_ur, self.b_uc, length, cap)
            return delay, cap + self.b_uc * length, None
        if name == "P1_Buffer":
            half = length / 2.0
            delay = self._wire_delay(self.f_ur, self.f_uc, half, cap)
            cap = cap + self.f_uc * half
            valid = None
            if enforce_driver_load:
                violating = (cap > self.max_cap + _TOL).any(axis=0)
                if violating.any():
                    valid = ~violating
            delay = delay + self._buffer_delay(cap)
            cap = np.broadcast_to(self.buf_incap, cap.shape)
            delay = delay + self._wire_delay(self.f_ur, self.f_uc, half, cap)
            return delay, cap + self.f_uc * half, valid
        if name == "P4_nTSV1":
            delay = self.ntsv_r * (self.ntsv_c + cap)
            cap = cap + self.ntsv_c
            delay = delay + self._wire_delay(self.b_ur, self.b_uc, length, cap)
            cap = cap + self.b_uc * length
            delay = delay + self.ntsv_r * (self.ntsv_c + cap)
            return delay, cap + self.ntsv_c, None
        if name == "P5_nTSV2":
            delay = self.ntsv_r * (self.ntsv_c + cap)
            cap = cap + self.ntsv_c
            delay = delay + self._wire_delay(self.b_ur, self.b_uc, length, cap)
            return delay, cap + self.b_uc * length, None
        if name == "P6_nTSV3":
            delay = self._wire_delay(self.b_ur, self.b_uc, length, cap)
            cap = cap + self.b_uc * length
            delay = delay + self.ntsv_r * (self.ntsv_c + cap)
            return delay, cap + self.ntsv_c, None
        raise ValueError(f"unknown pattern {name!r}")  # pragma: no cover

    @staticmethod
    def _wire_delay(
        unit_r: np.ndarray, unit_c: np.ndarray, length: float, load: np.ndarray
    ) -> np.ndarray:
        """Batched ``LayerRC.wire_delay`` (same operation order)."""
        resistance = unit_r * length
        capacitance = unit_c * length
        return resistance * (capacitance + load)

    def _buffer_delay(self, caps: np.ndarray) -> np.ndarray:
        """Per-corner batched buffer delay (the DP uses no slew input, so the
        batched cell model resolves to the linear model, exactly like the
        object backend's ``buffer.delay(cap)`` calls)."""
        if self._k == 1:
            return self._buffers[0].delay_batch(caps[0])[None, :]
        # Corner batches broadcast the per-corner linear coefficients in one
        # shot — element-wise identical to per-corner ``delay_batch`` calls.
        return self.buf_intr + self.buf_drive * caps

    # ---------------------------------------------------------------- pruning
    def _prune(
        self,
        frontier: CandidateFrontier,
        max_capacitance: float | None = None,
    ) -> CandidateFrontier:
        """Vectorized ``prune_per_side``: mask filter, per-side sweep, beam."""
        n = frontier.size
        if n == 0:
            return frontier
        scalar = self._k == 1
        worst_cap = frontier.cap[0] if scalar else frontier.cap.max(axis=0)
        if max_capacitance is not None:
            legal = worst_cap <= max_capacitance + _TOL
            if not legal.all():
                keep = np.nonzero(legal)[0]
                frontier = frontier.take(keep)
                worst_cap = worst_cap[keep]
                n = frontier.size
                if n == 0:
                    return frontier
        if n == 1:
            return frontier
        side = frontier.side
        any_back = bool(side.any())
        all_back = any_back and bool(side.all())
        worst_delay = (
            frontier.max_delay[0] if scalar else frontier.max_delay.max(axis=0)
        )
        resources = frontier.buffers + frontier.ntsvs
        beam = self.config.max_candidates_per_side
        parts: list[np.ndarray] = []
        for code in (SIDE_FRONT, SIDE_BACK):
            if code == SIDE_FRONT and all_back:
                continue
            if code == SIDE_BACK and not any_back:
                continue
            if all_back or not any_back:
                side_idx = self._arange(n)
            else:
                side_idx = np.nonzero(side == code)[0]
            if side_idx.size == 1:
                parts.append(side_idx)
                continue
            order = side_idx[
                np.lexsort(
                    (
                        resources[side_idx],
                        worst_delay[side_idx],
                        worst_cap[side_idx],
                    )
                )
            ]
            kept_pos = self._dominance_sweep(
                frontier.cap[:, order],
                frontier.max_delay[:, order],
                resources[order],
                self.config.keep_resource_diversity,
            )
            kept = order[kept_pos]
            if beam is not None and kept.size > beam:
                kept = self._beam_select(kept, worst_delay, beam)
            parts.append(kept)
        if len(parts) == 1 and parts[0].size == n:
            # Everything survived on a single side: still gather, because
            # the object backend returns candidates in sorted order.
            return frontier.take(parts[0])
        return frontier.take(np.concatenate(parts))

    def _dominance_sweep(
        self,
        caps: np.ndarray,
        delays: np.ndarray,
        resources: np.ndarray,
        keep_resource_diversity: bool,
    ) -> np.ndarray:
        """Positions kept by the dominance sweep over one sorted side block.

        Implements exactly the rule of
        :func:`repro.insertion.pruning.prune_dominated` (including the
        dominator-relative resource-diversity exception) on ``(K, n)`` arrays
        already gathered in sorted order.
        """
        if keep_resource_diversity:
            return self._diversity_sweep(caps, delays, resources)
        if caps.shape[0] == 1:
            # Scalar staircase: every true keeper is a strict running-min
            # record of the delay sequence (a dropped candidate's delay is
            # always >= some earlier delay), so a cummin prefilter reduces
            # the exact tolerance sweep to the record positions.
            d = delays[0]
            running = np.minimum.accumulate(d)
            record = np.empty(d.size, dtype=bool)
            record[0] = True
            record[1:] = d[1:] < running[:-1]
            positions = np.nonzero(record)[0]
            kept: list[int] = []
            best = float("inf")
            for pos, value in zip(positions.tolist(), d[positions].tolist()):
                if value < best - _TOL:
                    kept.append(pos)
                    best = value
            return np.asarray(kept, np.int64)
        return self._corner_sweep(caps, delays)

    def _corner_sweep(self, caps: np.ndarray, delays: np.ndarray) -> np.ndarray:
        """Vector-dominance sweep over a sorted corner-aware side block.

        The pairwise broadcast decides almost every candidate in O(1) numpy
        calls: a candidate with an earlier tolerance-free dominator is
        provably dropped by the kept-set rule (the dominator is either kept,
        or its own kept dominator absorbs the single tolerance hop), and a
        candidate with no earlier within-tolerance dominator at all is
        trivially kept.  Only candidates between the two bounds (near-ties
        within the 1e-9 band) fall back to the exact sequential scan.
        """
        n = caps.shape[1]
        if n > _PAIRWISE_LIMIT:
            survivors = self._blocked_prefilter(caps, delays)
            if survivors.size == n:  # pragma: no cover - degenerate fallback
                return self._scan_sweep(caps, delays)
            return survivors[self._corner_sweep(caps[:, survivors], delays[:, survivors])]
        cap_t = caps[:, None, :]
        del_t = delays[:, None, :]
        dom0 = np.logical_and(
            (caps[:, :, None] <= cap_t).all(axis=0),
            (delays[:, :, None] <= del_t).all(axis=0),
        )
        domt = np.logical_and(
            (caps[:, :, None] <= cap_t + _TOL).all(axis=0),
            (delays[:, :, None] <= del_t + _TOL).all(axis=0),
        )
        triu = self._triu(n)
        flag0 = (dom0 & triu).any(axis=0)
        flagt = (domt & triu).any(axis=0)
        if not (flagt & ~flag0).any():
            return np.nonzero(~flagt)[0]
        # Exact kept-set scan on the precomputed tolerance matrix.
        rows = domt.tolist()
        kept: list[int] = []
        for j in range(n):
            if any(rows[i][j] for i in kept):
                continue
            kept.append(j)
        return np.asarray(kept, np.int64)

    def _blocked_prefilter(self, caps: np.ndarray, delays: np.ndarray) -> np.ndarray:
        """Column-blocked tolerance-free prefilter for very large blocks."""
        n = caps.shape[1]
        earlier = np.zeros(n, dtype=bool)
        rows = np.arange(n)[:, None]
        block = max(1, int(4_000_000 // max(1, n * caps.shape[0])))
        for start in range(0, n, block):
            stop = min(start + block, n)
            dominated = np.all(caps[:, :, None] <= caps[:, None, start:stop], axis=0)
            dominated &= np.all(
                delays[:, :, None] <= delays[:, None, start:stop], axis=0
            )
            dominated &= rows < np.arange(start, stop)[None, :]
            earlier[start:stop] = dominated.any(axis=0)
        return np.nonzero(~earlier)[0]

    def _scan_sweep(
        self, caps: np.ndarray, delays: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - degenerate fallback
        """Per-candidate kept-set scan (no pairwise matrix)."""
        kept: list[int] = []
        for pos in range(caps.shape[1]):
            if kept:
                cols = np.asarray(kept)
                dominated = np.all(
                    caps[:, cols] <= caps[:, pos : pos + 1] + _TOL, axis=0
                )
                dominated &= np.all(
                    delays[:, cols] <= delays[:, pos : pos + 1] + _TOL, axis=0
                )
                if dominated.any():
                    continue
            kept.append(pos)
        return np.asarray(kept, np.int64)

    def _diversity_sweep(
        self, caps: np.ndarray, delays: np.ndarray, resources: np.ndarray
    ) -> np.ndarray:
        """The dominator-relative resource-diversity sweep (both K regimes).

        Precomputes the pairwise within-tolerance dominance matrix, then runs
        the exact sequential rule over plain Python lists — the kept set and
        the dominator resource floors depend on scan order, but every
        comparison is a precomputed boolean.
        """
        n = delays.shape[1]
        if n > _PAIRWISE_LIMIT:
            return self._diversity_scan(caps, delays, resources)
        cap_t = caps[:, None, :]
        del_t = delays[:, None, :]
        domt = np.logical_and(
            (caps[:, :, None] <= cap_t + _TOL).all(axis=0),
            (delays[:, :, None] <= del_t + _TOL).all(axis=0),
        )
        rows = domt.tolist()
        res = resources.tolist()
        kept: list[int] = []
        for j in range(n):
            dominators = [i for i in kept if rows[i][j]]
            if dominators:
                floor = min(res[i] for i in dominators)
                if res[j] >= floor:
                    continue
            kept.append(j)
        return np.asarray(kept, np.int64)

    def _diversity_scan(
        self, caps: np.ndarray, delays: np.ndarray, resources: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - very large diversity blocks
        """Per-candidate diversity scan for blocks past the pairwise limit."""
        kept: list[int] = []
        for pos in range(delays.shape[1]):
            if kept:
                cols = np.asarray(kept)
                dominated = np.all(
                    caps[:, cols] <= caps[:, pos : pos + 1] + _TOL, axis=0
                )
                dominated &= np.all(
                    delays[:, cols] <= delays[:, pos : pos + 1] + _TOL, axis=0
                )
                if dominated.any():
                    floor = int(resources[cols[dominated]].min())
                    if int(resources[pos]) >= floor:
                        continue
            kept.append(pos)
        return np.asarray(kept, np.int64)

    @staticmethod
    def _beam_select(
        kept: np.ndarray, worst_delay: np.ndarray, beam_width: int
    ) -> np.ndarray:
        """Vectorized ``_beam_select``: sample the staircase evenly.

        ``kept`` is already sorted by (worst cap, worst delay, resources),
        which the object backend's stable re-sort by (worst cap, worst delay)
        leaves unchanged.
        """
        if beam_width <= 1:
            first_min = int(np.argmin(worst_delay[kept]))
            return kept[first_min : first_min + 1]
        last = kept.size - 1
        indices = sorted(
            {round(i * last / (beam_width - 1)) for i in range(beam_width)}
        )
        return kept[np.asarray(indices, np.int64)]

    # ------------------------------------------------------------------- root
    def _root_frontier(
        self, dp_tree: DpTree, frontiers: dict[int, CandidateFrontier]
    ) -> CandidateFrontier:
        """Cross-combine the root DP nodes at the clock source (front only)."""
        combo: CandidateFrontier | None = None
        for root_dp in dp_tree.root_nodes:
            frontier = frontiers[root_dp.index]
            sel = np.nonzero(frontier.side == SIDE_FRONT)[0]
            if sel.size == 0:
                raise RuntimeError(
                    f"root DP node {root_dp.name} has no front-side candidate"
                )
            if combo is None:
                combo = CandidateFrontier(
                    side=frontier.side[sel],
                    cap=frontier.cap[:, sel],
                    max_delay=frontier.max_delay[:, sel],
                    min_delay=frontier.min_delay[:, sel],
                    buffers=frontier.buffers[sel],
                    ntsvs=frontier.ntsvs[sel],
                    pattern=frontier.pattern[sel],
                    choice=sel[:, None].astype(np.int64),
                )
                continue
            m, n = combo.size, sel.size
            ia = np.repeat(np.arange(m), n)
            ib = np.tile(np.arange(n), m)
            combo = CandidateFrontier(
                side=np.zeros(ia.size, np.int8),
                cap=combo.cap[:, ia] + frontier.cap[:, sel][:, ib],
                max_delay=np.maximum(
                    combo.max_delay[:, ia], frontier.max_delay[:, sel][:, ib]
                ),
                min_delay=np.minimum(
                    combo.min_delay[:, ia], frontier.min_delay[:, sel][:, ib]
                ),
                buffers=combo.buffers[ia] + frontier.buffers[sel][ib],
                ntsvs=combo.ntsvs[ia] + frontier.ntsvs[sel][ib],
                pattern=np.full(ia.size, -1, np.int16),
                choice=np.concatenate(
                    [combo.choice[ia], sel[ib][:, None].astype(np.int64)],
                    axis=1,
                ),
            )
        # The clock source drives the root load; the drive resistance is
        # corner-independent but the driven load is not, so every corner row
        # gets its own source delay.
        source_delay = self.config.root_resistance * combo.cap
        return CandidateFrontier(
            side=combo.side,
            cap=combo.cap,
            max_delay=combo.max_delay + source_delay,
            min_delay=combo.min_delay + source_delay,
            buffers=combo.buffers,
            ntsvs=combo.ntsvs,
            pattern=combo.pattern,
            choice=combo.choice,
        )


def _dp_subtree_worker(payload) -> dict[int, CandidateFrontier]:
    """Evaluate one shipped DP subtree in a worker process.

    Rebuilds an equivalent :class:`VectorizedInsertionDp` and the subtree's
    nodes, then runs the exact serial per-node generation bottom-up.  The
    returned frontiers are keyed by the original DP node indices.
    """
    pdk, config, corner_pdks, primary, corner_aware, tables = payload
    dp = VectorizedInsertionDp(
        pdk,
        config,
        corner_pdks,
        primary_index=primary,
        corner_aware=corner_aware,
    )
    frontiers: dict[int, CandidateFrontier] = {}
    for node in VectorizedInsertionDp._nodes_from_tables(tables):
        frontiers[node.index] = dp._generate(node, frontiers)
    return frontiers


def _validate_subtree_frontiers(result, payload) -> None:
    """``run_tasks`` validate hook: probe a worker's frontier dict pre-merge.

    Cheap structural checks on the main process — exact key coverage of the
    shipped subtree, non-empty frontiers, finite cost columns — so a
    corrupting worker counts as a failed attempt (retried, then recomputed
    inline) instead of poisoning the serial spine above it.
    """
    tables = payload[5]
    expected = {row[0] for row in tables}
    if not isinstance(result, dict) or set(result) != expected:
        got = sorted(result) if isinstance(result, dict) else type(result).__name__
        raise RuntimeError(
            f"worker frontier keys mismatch: expected {sorted(expected)}, "
            f"got {got}"
        )
    for index, frontier in result.items():
        if frontier.size == 0:
            raise RuntimeError(f"DP node {index}: empty frontier from worker")
        for name in ("cap", "max_delay", "min_delay"):
            if not np.all(np.isfinite(getattr(frontier, name))):
                raise RuntimeError(
                    f"DP node {index}: non-finite {name} values in a "
                    "worker frontier"
                )

"""Multi-objective enhancement score (MOES) and root-solution selection.

Step 3 of the DP (Eq. (3) of the paper): the root candidate set ``S_root``
contains many combinations of latency, buffer count, and nTSV count; the
final solution is the candidate minimising

    MOES = alpha * latency + beta * #buffers + gamma * #nTSVs

with the paper's defaults alpha=1, beta=10, gamma=1.  A pure minimum-latency
selector is also provided for the Fig. 10 comparison (w/ vs w/o MOES).

Corner-aware DP runs score the latency term on the candidate's *worst-corner*
delay (``CandidateSolution.worst_max_delay``), so the selected tree signs off
across the whole corner batch; nominal-only candidates reduce to the classic
scalar behaviour because their worst values equal the scalar fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.insertion.candidate import CandidateSolution


@dataclass(frozen=True, slots=True)
class MoesWeights:
    """Weights of the multi-objective enhancement score.

    ``alpha`` weights latency (ps), ``beta`` the buffer count, and ``gamma``
    the nTSV count.  The paper uses (1, 10, 1).
    """

    alpha: float = 1.0
    beta: float = 10.0
    gamma: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.gamma < 0:
            raise ValueError("MOES weights must be non-negative")
        if self.alpha == self.beta == self.gamma == 0:
            raise ValueError("at least one MOES weight must be positive")

    def score(self, candidate: CandidateSolution) -> float:
        """Evaluate Eq. (3) for a root candidate (worst-corner latency)."""
        return (
            self.alpha * candidate.worst_max_delay
            + self.beta * candidate.buffer_count
            + self.gamma * candidate.ntsv_count
        )


def select_by_moes(
    candidates: Sequence[CandidateSolution],
    weights: MoesWeights | None = None,
) -> CandidateSolution:
    """Return the root candidate minimising the MOES."""
    if not candidates:
        raise ValueError("cannot select from an empty candidate set")
    w = weights if weights is not None else MoesWeights()
    return min(candidates, key=w.score)


def select_min_latency(candidates: Sequence[CandidateSolution]) -> CandidateSolution:
    """Return the root candidate with the smallest worst-path delay.

    Ties are broken by fewer resources, which mirrors how a latency-only
    objective would still prefer cheaper implementations.  Corner-aware
    candidates are ranked by their worst-corner delay.
    """
    if not candidates:
        raise ValueError("cannot select from an empty candidate set")
    return min(
        candidates,
        key=lambda c: (c.worst_max_delay, c.resource_count, c.worst_capacitance),
    )


def pareto_front(
    candidates: Sequence[CandidateSolution],
) -> list[CandidateSolution]:
    """Return the candidates not dominated on (latency, buffers, nTSVs).

    Used by the DSE reporting to show the shape of the root candidate set
    (Fig. 10 plots the full set together with the two selections).
    """
    front: list[CandidateSolution] = []
    for cand in candidates:
        dominated = False
        for other in candidates:
            if other is cand:
                continue
            if (
                other.max_delay <= cand.max_delay
                and other.buffer_count <= cand.buffer_count
                and other.ntsv_count <= cand.ntsv_count
                and (
                    other.max_delay < cand.max_delay
                    or other.buffer_count < cand.buffer_count
                    or other.ntsv_count < cand.ntsv_count
                )
            ):
                dominated = True
                break
        if not dominated:
            front.append(cand)
    return front

"""The six edge patterns of the double-side design space (Fig. 6).

Each pattern describes how one trunk edge of the clock tree is implemented:
which side the wire runs on, whether a buffer is inserted at the middle of
the edge, and whether nTSVs are inserted at its end-points.  The *down* end
of an edge faces the sinks, the *up* end faces the clock root.

===========  =========  =======  ==========  =======  ======
pattern      down side  up side  wire side   buffers  nTSVs
===========  =========  =======  ==========  =======  ======
P1 Buffer      front     front    front         1       0
P2 Wiring_F    front     front    front         0       0
P3 Wiring_B    back      back     back          0       0
P4 nTSV1       front     front    back          0       2
P5 nTSV2       front     back     back          0       1
P6 nTSV3       back      front    back          0       1
===========  =========  =======  ==========  =======  ======

The buffer pins live on the front side, hence every buffered pattern is
front/front; nTSVs flip the side, hence P4 (two vias) returns to the front
while P5/P6 (one via) change side across the edge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.tech.layers import Side


class InsertionMode(enum.Enum):
    """Per-DP-node insertion mode (the heterogeneity of the DP tree).

    ``FULL`` allows all six patterns (flexible nTSV); ``INTRA_SIDE`` forbids
    nTSVs, leaving only P1..P3.  The DSE flow of Section III-E controls these
    modes through a fanout threshold.
    """

    FULL = "full"
    INTRA_SIDE = "intra_side"


@dataclass(frozen=True, slots=True)
class EdgePattern:
    """One of the six candidate implementations of a trunk edge."""

    name: str
    down_side: Side
    up_side: Side
    wire_side: Side
    buffer_count: int
    ntsv_count: int

    @property
    def uses_backside(self) -> bool:
        """True when the pattern needs back-side routing resources."""
        return (
            self.wire_side is Side.BACK
            or self.down_side is Side.BACK
            or self.up_side is Side.BACK
        )

    @property
    def has_buffer(self) -> bool:
        return self.buffer_count > 0

    @property
    def has_ntsv(self) -> bool:
        return self.ntsv_count > 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


P_BUFFER = EdgePattern("P1_Buffer", Side.FRONT, Side.FRONT, Side.FRONT, 1, 0)
P_WIRING_F = EdgePattern("P2_Wiring_F", Side.FRONT, Side.FRONT, Side.FRONT, 0, 0)
P_WIRING_B = EdgePattern("P3_Wiring_B", Side.BACK, Side.BACK, Side.BACK, 0, 0)
P_NTSV1 = EdgePattern("P4_nTSV1", Side.FRONT, Side.FRONT, Side.BACK, 0, 2)
P_NTSV2 = EdgePattern("P5_nTSV2", Side.FRONT, Side.BACK, Side.BACK, 0, 1)
P_NTSV3 = EdgePattern("P6_nTSV3", Side.BACK, Side.FRONT, Side.BACK, 0, 1)

#: The pattern set "P" of the paper, in P1..P6 order.
PATTERNS: tuple[EdgePattern, ...] = (
    P_BUFFER,
    P_WIRING_F,
    P_WIRING_B,
    P_NTSV1,
    P_NTSV2,
    P_NTSV3,
)

#: Patterns allowed under the intra-side (nTSV-forbidden) mode.
INTRA_SIDE_PATTERNS: tuple[EdgePattern, ...] = (P_BUFFER, P_WIRING_F, P_WIRING_B)

#: Patterns available when the PDK has no back-side resources at all.
FRONT_ONLY_PATTERNS: tuple[EdgePattern, ...] = (P_BUFFER, P_WIRING_F)

#: Patterns allowed on leaf DP nodes (the sink-facing end must be front-side).
LEAF_COMPATIBLE_PATTERNS: tuple[EdgePattern, ...] = (
    P_BUFFER,
    P_WIRING_F,
    P_NTSV1,
    P_NTSV2,
)


def patterns_for(
    mode: InsertionMode,
    has_backside: bool,
    required_down_side: Side | None = None,
) -> tuple[EdgePattern, ...]:
    """Return the patterns selectable for a DP node.

    Args:
        mode: the node's insertion mode (full or intra-side).
        has_backside: whether the PDK offers back-side routing at all.
        required_down_side: when given, only patterns whose sink-facing end
            matches this side are returned (the connectivity constraint with
            the already-decided downstream solution).
    """
    if not has_backside:
        base = FRONT_ONLY_PATTERNS
    elif mode is InsertionMode.INTRA_SIDE:
        base = INTRA_SIDE_PATTERNS
    else:
        base = PATTERNS
    if required_down_side is None:
        return base
    return tuple(p for p in base if p.down_side is required_down_side)

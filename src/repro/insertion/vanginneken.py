"""Single-side buffer insertion.

Two things live here:

* :class:`SingleSideBufferInserter` — the paper's "Our Buffered Clock Tree"
  generator: the identical multi-objective DP restricted to front-side
  patterns (P1, P2), i.e. classic buffer insertion over the routed tree.
* :func:`van_ginneken_wire` — the textbook van Ginneken algorithm on a single
  two-pin wire with equally spaced legal buffer positions.  It is used by the
  test-suite as an independent oracle for the DP's buffered patterns and as a
  teaching reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocktree import ClockTree
from repro.insertion.concurrent import ConcurrentInserter, InsertionConfig, InsertionResult
from repro.tech.cells import BufferCell
from repro.tech.layers import LayerRC
from repro.tech.pdk import Pdk


class SingleSideBufferInserter:
    """Buffer-only insertion: the concurrent DP on a front-side-only PDK."""

    def __init__(self, pdk: Pdk, config: InsertionConfig | None = None) -> None:
        self.pdk = pdk.front_side_only() if pdk.has_backside else pdk
        self.config = config if config is not None else InsertionConfig()
        self._inserter = ConcurrentInserter(self.pdk, self.config)

    def run(self, tree: ClockTree) -> InsertionResult:
        """Insert buffers into ``tree`` (modified in place)."""
        result = self._inserter.run(tree)
        if result.inserted_ntsvs != 0:  # pragma: no cover - structural guarantee
            raise RuntimeError("single-side insertion produced nTSVs")
        return result


@dataclass(frozen=True)
class VanGinnekenSolution:
    """A solution of the textbook single-wire van Ginneken DP."""

    capacitance: float
    delay: float
    buffer_positions: tuple[float, ...]

    @property
    def buffer_count(self) -> int:
        return len(self.buffer_positions)


def van_ginneken_wire(
    length: float,
    load_capacitance: float,
    layer: LayerRC,
    buffer: BufferCell,
    segments: int = 16,
) -> VanGinnekenSolution:
    """Minimal-delay buffer insertion on a single wire (van Ginneken, 1990).

    The wire of ``length`` um drives ``load_capacitance`` fF.  Candidate
    buffer positions are the ``segments - 1`` equally spaced internal points.
    The returned solution minimises the driver-to-load Elmore delay; the
    driver stage itself is not included (consistent with the DP candidates,
    which measure delay from the upstream end of the wire).
    """
    if length < 0 or load_capacitance < 0:
        raise ValueError("length and load must be non-negative")
    if segments < 1:
        raise ValueError("need at least one wire segment")

    step = length / segments
    # One candidate per (capacitance, delay, positions); start at the load end.
    solutions: list[VanGinnekenSolution] = [
        VanGinnekenSolution(load_capacitance, 0.0, ())
    ]
    for i in range(segments):
        # Walk one wire segment toward the driver.
        advanced = [
            VanGinnekenSolution(
                s.capacitance + layer.wire_capacitance(step),
                s.delay + layer.wire_delay(step, s.capacitance),
                s.buffer_positions,
            )
            for s in solutions
        ]
        # Optionally insert a buffer at this internal position (not at the driver).
        position = length - (i + 1) * step
        if i < segments - 1:
            with_buffer = [
                VanGinnekenSolution(
                    buffer.input_capacitance,
                    s.delay + buffer.delay(s.capacitance),
                    s.buffer_positions + (position,),
                )
                for s in advanced
            ]
            advanced.extend(with_buffer)
        solutions = _prune(advanced)
    return min(solutions, key=lambda s: (s.delay, s.capacitance))


def _prune(solutions: list[VanGinnekenSolution]) -> list[VanGinnekenSolution]:
    """Keep only the (capacitance, delay) Pareto staircase."""
    ordered = sorted(solutions, key=lambda s: (s.capacitance, s.delay))
    kept: list[VanGinnekenSolution] = []
    best_delay = float("inf")
    for sol in ordered:
        if sol.delay < best_delay - 1e-12:
            kept.append(sol)
            best_delay = sol.delay
    return kept

"""Building the heterogeneous DP tree from a routed clock tree (Step 1).

Every *trunk* edge of the clock tree (an edge whose downstream node is not a
sink) becomes one DP node.  Two adjacent trunk edges are linked in the DP
tree, which is therefore rooted at the edge leaving the clock root.  Each DP
node carries an insertion mode (full / intra-side), which is how the DSE flow
of Section III-E makes the DP tree *heterogeneous*.

Long trunk edges are optionally subdivided into chains of shorter segments
before the DP, so that more than one buffer/nTSV pattern can be placed along
a physically long route (part of the double-side design space formulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.clocktree.arrays import KIND_SINK, KIND_STEINER
from repro.geometry.point import point_toward
from repro.insertion.patterns import InsertionMode
from repro.ir.design import DesignArrays
from repro.tech.layers import Side
from repro.tech.pdk import Pdk


@dataclass
class DpNode:
    """A DP node: one trunk edge of the (segmented) clock tree.

    Attributes:
        index: position in the bottom-up evaluation order.
        tree_child: the clock-tree node at the downstream (sink-facing) end
            of the edge; the upstream end is ``tree_child.parent``.
        length: Manhattan length of the edge (um).
        predecessors: DP nodes of the trunk edges directly below this one.
        mode: insertion mode restricting the selectable patterns.
        fanout: number of sinks in the subtree below the edge (used by the
            DSE fanout threshold).
        base_capacitance: static load at the downstream vertex that is not
            covered by predecessor DP nodes: the vertex's own pin capacitance
            plus the leaf-net wire and sink-pin capacitance of direct sink
            children (the leaf net stays on the front side).
        base_max_delay / base_min_delay: worst / best delay (ps) from the
            downstream vertex through the leaf net to its direct sinks.
        corner_base_capacitance / corner_base_max_delay /
        corner_base_min_delay: per-corner tuples of the same three base
            quantities, populated by :func:`attach_corner_bases` for
            corner-aware DP runs; ``None`` on nominal-only trees.
    """

    index: int
    tree_child: ClockTreeNode | None
    length: float
    predecessors: list["DpNode"] = field(default_factory=list)
    mode: InsertionMode = InsertionMode.FULL
    fanout: int = 0
    base_capacitance: float = 0.0
    base_max_delay: float = 0.0
    base_min_delay: float = 0.0
    corner_base_capacitance: tuple[float, ...] | None = None
    corner_base_max_delay: tuple[float, ...] | None = None
    corner_base_min_delay: tuple[float, ...] | None = None
    #: Downstream row when the DP tree was built over a
    #: :class:`~repro.ir.design.DesignArrays` (``tree_child`` is None then).
    tree_row: int = -1
    #: Cached direct-sink flag for IR-built nodes; ``None`` falls back to the
    #: object-tree children scan.
    direct_sinks: bool | None = None

    @property
    def is_leaf(self) -> bool:
        """True when the DP node has no trunk-edge predecessors."""
        return not self.predecessors

    @property
    def has_direct_sinks(self) -> bool:
        """True when the downstream vertex drives a leaf net directly."""
        if self.direct_sinks is not None:
            return self.direct_sinks
        return any(child.is_sink for child in self.tree_child.children)

    @property
    def name(self) -> str:
        if self.tree_child is None:
            return f"dp[@{self.tree_row}]"
        return f"dp[{self.tree_child.name}]"


@dataclass
class DpTree:
    """The full DP tree: all DP nodes in bottom-up order plus the roots."""

    nodes: list[DpNode]
    root_nodes: list[DpNode]
    clock_tree: ClockTree | DesignArrays

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def leaves(self) -> list[DpNode]:
        return [n for n in self.nodes if n.is_leaf]

    def configure_modes(
        self, mode_of: Callable[[DpNode], InsertionMode]
    ) -> None:
        """Assign an insertion mode to every DP node (the DSE control knob)."""
        for node in self.nodes:
            node.mode = mode_of(node)

    def configure_fanout_threshold(self, threshold: int) -> None:
        """The paper's DSE heuristic: full mode below the fanout threshold.

        Nodes whose downstream sink count is lower than ``threshold`` are set
        to full mode (flexible nTSV); nodes at or above the threshold are set
        to intra-side mode (nTSV forbidden).
        """
        if threshold < 0:
            raise ValueError("fanout threshold must be non-negative")
        self.configure_modes(
            lambda node: InsertionMode.FULL
            if node.fanout < threshold
            else InsertionMode.INTRA_SIDE
        )

    def mode_histogram(self) -> dict[InsertionMode, int]:
        """Count DP nodes per insertion mode (used by DSE reporting)."""
        histogram = {InsertionMode.FULL: 0, InsertionMode.INTRA_SIDE: 0}
        for node in self.nodes:
            histogram[node.mode] += 1
        return histogram


def segment_long_edges(
    tree: ClockTree | DesignArrays, max_segment_length: float
) -> int:
    """Split trunk edges longer than ``max_segment_length`` into segments.

    New Steiner nodes are inserted along an L-shaped Manhattan path between
    the two end-points.  Returns the number of Steiner nodes added.  Accepts
    either representation; the design path inserts the same Steiner names at
    the same points in the same order as the object path.
    """
    if max_segment_length <= 0:
        raise ValueError("max segment length must be positive")
    if isinstance(tree, DesignArrays):
        return _segment_long_edges_design(tree, max_segment_length)
    added = 0
    # Snapshot the edges first: we mutate the tree while iterating.
    trunk_children = [
        node
        for node in tree.nodes()
        if node.parent is not None and not node.is_sink
    ]
    for child in trunk_children:
        parent = child.parent
        length = child.edge_length()
        if length <= max_segment_length:
            continue
        segments = int(length // max_segment_length)
        if length % max_segment_length == 0:
            segments -= 1
        # Pre-compute the split points from the original child location, then
        # insert them nearest-to-child first so repeated insert_on_edge calls
        # stack correctly (each new Steiner point becomes the parent of the
        # previous one, walking toward the original parent).
        locations = [
            point_toward(child.location, parent.location, (length * i) / (segments + 1))
            for i in range(1, segments + 1)
        ]
        current = child
        for location in locations:
            tree.insert_on_edge(
                current,
                NodeKind.STEINER,
                location,
                side=Side.FRONT,
                wire_side=current.wire_side,
            )
            current = current.parent  # the freshly inserted node
            added += 1
    return added


def _segment_long_edges_design(design: DesignArrays, max_segment_length: float) -> int:
    """Row twin of :func:`segment_long_edges` (same splits, same names)."""
    added = 0
    trunk_rows = [
        row
        for row in design.rows_preorder()
        if design.parent_row[row] >= 0 and design.kind[row] != KIND_SINK
    ]
    for child in trunk_rows:
        parent = int(design.parent_row[child])
        length = float(design.edge_length[child])
        if length <= max_segment_length:
            continue
        segments = int(length // max_segment_length)
        if length % max_segment_length == 0:
            segments -= 1
        child_location = design.location_of(child)
        parent_location = design.location_of(parent)
        locations = [
            point_toward(
                child_location, parent_location, (length * i) / (segments + 1)
            )
            for i in range(1, segments + 1)
        ]
        current = child
        for location in locations:
            current = design.insert_on_edge(
                current,
                KIND_STEINER,
                location.x,
                location.y,
                side_front=True,
                wire_front=bool(design.wire_front[current]),
            )
            added += 1
    return added


def _leaf_net_bases(
    tree_node: ClockTreeNode, layers: Sequence
) -> tuple[list[float], list[float], list[float]]:
    """Static (cap, max delay, min delay) of one vertex's direct leaf net,
    evaluated against several front clock layers in a single child pass.

    The leaf net stays on the front side, so the only technology input is the
    front clock layer — which is what varies per corner when the DP runs
    corner-aware (see :func:`attach_corner_bases`).  The per-layer
    accumulation order matches a per-layer loop exactly, so the multi-layer
    pass is bit-identical to repeated single-layer evaluations.
    """
    count = len(layers)
    caps = [tree_node.capacitance] * count
    maxs = [0.0] * count
    mins = [float("inf")] * count
    has_sink_child = False
    for child in tree_node.children:
        if not child.is_sink:
            continue
        has_sink_child = True
        length = child.edge_length()
        child_cap = child.capacitance
        for i, layer in enumerate(layers):
            caps[i] += layer.wire_capacitance(length) + child_cap
            delay = layer.wire_delay(length, child_cap)
            maxs[i] = max(maxs[i], delay)
            mins[i] = min(mins[i], delay)
    if not has_sink_child:
        mins = [0.0] * count
    return caps, maxs, mins


def _leaf_net_base(tree_node: ClockTreeNode, front_layer) -> tuple[float, float, float]:
    """Single-layer view of :func:`_leaf_net_bases` (the nominal base)."""
    caps, maxs, mins = _leaf_net_bases(tree_node, (front_layer,))
    return caps[0], maxs[0], mins[0]


def _leaf_net_bases_design(
    design: DesignArrays, row: int, layers: Sequence
) -> tuple[list[float], list[float], list[float]]:
    """Row twin of :func:`_leaf_net_bases` (same child order, same floats)."""
    count = len(layers)
    caps = [float(design.cap[row])] * count
    maxs = [0.0] * count
    mins = [float("inf")] * count
    has_sink_child = False
    for child in design.children_rows[row]:
        if design.kind[child] != KIND_SINK:
            continue
        has_sink_child = True
        length = float(design.edge_length[child])
        child_cap = float(design.cap[child])
        for i, layer in enumerate(layers):
            caps[i] += layer.wire_capacitance(length) + child_cap
            delay = layer.wire_delay(length, child_cap)
            maxs[i] = max(maxs[i], delay)
            mins[i] = min(mins[i], delay)
    if not has_sink_child:
        mins = [0.0] * count
    return caps, maxs, mins


def attach_corner_bases(dp_tree: DpTree, corner_pdks: Sequence[Pdk]) -> None:
    """Populate per-corner leaf-net bases on every DP node.

    ``corner_pdks`` is the corner-scaled PDK list (one
    ``scenario.apply_to(pdk)`` per scenario, corner order) of a resolved
    :class:`~repro.tech.corners.CornerSet`.  Idempotent: re-attaching with a
    different corner set simply overwrites the tuples, so a DP tree built
    nominal-only (or for another corner set) can be reused.
    """
    layers = [corner_pdk.front_layer for corner_pdk in corner_pdks]
    for dp_node in dp_tree.nodes:
        if dp_node.tree_child is not None:
            caps, maxs, mins = _leaf_net_bases(dp_node.tree_child, layers)
        else:
            caps, maxs, mins = _leaf_net_bases_design(
                dp_tree.clock_tree, dp_node.tree_row, layers
            )
        dp_node.corner_base_capacitance = tuple(caps)
        dp_node.corner_base_max_delay = tuple(maxs)
        dp_node.corner_base_min_delay = tuple(mins)


def build_dp_tree(
    tree: ClockTree | DesignArrays,
    pdk: Pdk,
    max_segment_length: float | None = 200.0,
    default_mode: InsertionMode = InsertionMode.FULL,
    corner_pdks: Sequence[Pdk] | None = None,
) -> DpTree:
    """Build the DP tree over the trunk edges of ``tree``.

    Args:
        tree: the routed clock tree — :class:`ClockTree` or its array IR,
            :class:`~repro.ir.design.DesignArrays` (modified in place when
            segmentation splits long edges).  The design path produces DP
            nodes with identical indices, lengths, bases, and modes, so the
            downstream DP is decision-identical.
        pdk: technology used to evaluate leaf-net loads and delays.
        max_segment_length: maximum trunk edge length (um) before the edge is
            subdivided; ``None`` disables segmentation.
        default_mode: initial insertion mode of every DP node.
        corner_pdks: when given, per-corner leaf-net bases are attached for a
            corner-aware DP run (see :func:`attach_corner_bases`).

    Returns:
        The :class:`DpTree` with nodes listed in bottom-up (children before
        parents) order.
    """
    if isinstance(tree, DesignArrays):
        return _build_dp_tree_design(
            tree, pdk, max_segment_length, default_mode, corner_pdks
        )
    if max_segment_length is not None:
        segment_long_edges(tree, max_segment_length)

    front_layer = pdk.front_layer
    dp_by_tree_node: dict[int, DpNode] = {}
    nodes: list[DpNode] = []
    sink_counts: dict[int, int] = {}

    for tree_node in tree.nodes_bottom_up():
        # One accumulating pass over the bottom-up order replaces the
        # per-node subtree walks of ``ClockTreeNode.sink_count``.
        fanout = 1 if tree_node.is_sink else 0
        for child in tree_node.children:
            fanout += sink_counts[id(child)]
        sink_counts[id(tree_node)] = fanout
        if tree_node.parent is None or tree_node.is_sink:
            continue
        predecessors = [
            dp_by_tree_node[id(child)]
            for child in tree_node.children
            if not child.is_sink and id(child) in dp_by_tree_node
        ]
        base_cap, base_max, base_min = _leaf_net_base(tree_node, front_layer)
        dp_node = DpNode(
            index=len(nodes),
            tree_child=tree_node,
            length=tree_node.edge_length(),
            predecessors=predecessors,
            mode=default_mode,
            fanout=fanout,
            base_capacitance=base_cap,
            base_max_delay=base_max,
            base_min_delay=base_min,
        )
        dp_by_tree_node[id(tree_node)] = dp_node
        nodes.append(dp_node)

    root_nodes = [
        dp_by_tree_node[id(child)]
        for child in tree.root.children
        if id(child) in dp_by_tree_node
    ]
    if not root_nodes:
        raise ValueError("the clock tree has no trunk edges to optimise")
    dp_tree = DpTree(nodes=nodes, root_nodes=root_nodes, clock_tree=tree)
    if corner_pdks is not None:
        attach_corner_bases(dp_tree, corner_pdks)
    return dp_tree


def _build_dp_tree_design(
    design: DesignArrays,
    pdk: Pdk,
    max_segment_length: float | None,
    default_mode: InsertionMode,
    corner_pdks: Sequence[Pdk] | None,
) -> DpTree:
    """Row twin of :func:`build_dp_tree` over a :class:`DesignArrays`.

    The bottom-up order is the reversed BFS row order, which matches
    ``ClockTree.nodes_bottom_up`` exactly, so DP node indices line up with
    the object build node for node.
    """
    if max_segment_length is not None:
        _segment_long_edges_design(design, max_segment_length)

    front_layer = pdk.front_layer
    dp_by_row: dict[int, DpNode] = {}
    nodes: list[DpNode] = []
    sink_counts: dict[int, int] = {}

    bfs_rows = [int(row) for level in design.levels() for row in level]
    # Column views as Python lists: ``tolist`` yields the identical floats
    # ``float(arr[row])`` would, so the per-row arithmetic below is bit-equal
    # to the array-indexing version while skipping numpy scalar overhead.
    n = design.size
    kinds = design.kind[:n].tolist()
    edges = design.edge_length[:n].tolist()
    caps_col = design.cap[:n].tolist()
    parents = design.parent_row[:n].tolist()
    children = design.children_rows
    wire_capacitance = front_layer.wire_capacitance
    wire_delay = front_layer.wire_delay
    for row in reversed(bfs_rows):
        is_sink = kinds[row] == KIND_SINK
        fanout = 1 if is_sink else 0
        child_rows = children[row]
        for child in child_rows:
            fanout += sink_counts[child]
        sink_counts[row] = fanout
        if parents[row] < 0 or is_sink:
            continue
        # Inlined row twin of ``_leaf_net_bases_design`` (single layer),
        # fused with the predecessor scan — same child order, same floats.
        predecessors = []
        base_cap = caps_col[row]
        base_max = 0.0
        base_min = float("inf")
        has_sink_child = False
        for child in child_rows:
            if kinds[child] == KIND_SINK:
                has_sink_child = True
                length = edges[child]
                child_cap = caps_col[child]
                base_cap += wire_capacitance(length) + child_cap
                delay = wire_delay(length, child_cap)
                if delay > base_max:
                    base_max = delay
                if delay < base_min:
                    base_min = delay
            elif child in dp_by_row:
                predecessors.append(dp_by_row[child])
        if not has_sink_child:
            base_min = 0.0
        dp_node = DpNode(
            index=len(nodes),
            tree_child=None,
            length=edges[row],
            predecessors=predecessors,
            mode=default_mode,
            fanout=fanout,
            base_capacitance=base_cap,
            base_max_delay=base_max,
            base_min_delay=base_min,
            tree_row=row,
            direct_sinks=has_sink_child,
        )
        dp_by_row[row] = dp_node
        nodes.append(dp_node)

    root_nodes = [
        dp_by_row[child] for child in design.children_rows[0] if child in dp_by_row
    ]
    if not root_nodes:
        raise ValueError("the clock tree has no trunk edges to optimise")
    dp_tree = DpTree(nodes=nodes, root_nodes=root_nodes, clock_tree=design)
    if corner_pdks is not None:
        attach_corner_bases(dp_tree, corner_pdks)
    return dp_tree

"""Concurrent buffer and nTSV insertion (Section III-C of the paper).

This package contains the paper's primary contribution:

* :mod:`repro.insertion.patterns` — the six edge patterns P1..P6 (Fig. 6) and
  the full / intra-side insertion modes.
* :mod:`repro.insertion.candidate` — DP candidate solutions carrying
  effective capacitance, max/min path delay, buffer and nTSV counts.
* :mod:`repro.insertion.pruning` — per-side inferior-solution pruning (the
  van Ginneken dominance rule extended to two sides) and the max-cap filter.
* :mod:`repro.insertion.dp_tree` — building the heterogeneous DP tree from a
  routed clock tree (one DP node per trunk edge, with optional segmentation
  of long edges) and per-node insertion-mode configuration.
* :mod:`repro.insertion.moes` — the multi-objective enhancement score used to
  pick the final root solution, plus the min-latency selector used in the
  Fig. 10 comparison.
* :mod:`repro.insertion.concurrent` — the multi-objective dynamic program:
  bottom-up generation, multi-objective selection, top-down decision, and
  realisation of the chosen patterns on the clock tree.
* :mod:`repro.insertion.frontier` — the vectorized DP backend: candidate
  sets as :class:`CandidateFrontier` struct-of-arrays with broadcast merges,
  batched pattern costs, and vectorized pruning sweeps.  Selected via
  ``InsertionConfig.dp_backend`` / ``REPRO_DP_BACKEND`` (default
  ``vectorized``); the object DP in ``concurrent`` is the executable spec.
* :mod:`repro.insertion.vanginneken` — classic single-side buffer insertion
  (the paper's "Our Buffered Clock Tree" uses the same DP restricted to
  front-side patterns; this module also provides the textbook van Ginneken
  algorithm on a single wire for testing and teaching).
"""

from repro.insertion.patterns import EdgePattern, InsertionMode, PATTERNS, patterns_for
from repro.insertion.candidate import CandidateSolution
from repro.insertion.pruning import prune_per_side, prune_dominated, filter_max_cap
from repro.insertion.dp_tree import DpNode, DpTree, build_dp_tree
from repro.insertion.frontier import (
    CandidateFrontier,
    DP_BACKEND_NAMES,
    VectorizedInsertionDp,
    default_dp_backend,
    resolve_dp_backend,
)
from repro.insertion.moes import MoesWeights, select_by_moes, select_min_latency
from repro.insertion.concurrent import ConcurrentInserter, InsertionResult
from repro.insertion.vanginneken import SingleSideBufferInserter

__all__ = [
    "EdgePattern",
    "InsertionMode",
    "PATTERNS",
    "patterns_for",
    "CandidateSolution",
    "prune_per_side",
    "prune_dominated",
    "filter_max_cap",
    "DpNode",
    "DpTree",
    "build_dp_tree",
    "CandidateFrontier",
    "DP_BACKEND_NAMES",
    "VectorizedInsertionDp",
    "default_dp_backend",
    "resolve_dp_backend",
    "MoesWeights",
    "select_by_moes",
    "select_min_latency",
    "ConcurrentInserter",
    "InsertionResult",
    "SingleSideBufferInserter",
]

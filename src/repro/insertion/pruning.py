"""Candidate pruning rules for the multi-objective DP.

The paper extends van Ginneken's inferior-solution rule to the double-side
scenario by pruning candidates *per side*: a candidate whose effective
capacitance and worst path delay are both no better than another candidate
on the same side can never be part of an optimal-latency solution and is
dropped.  A separate filter removes candidates violating the maximum
driven-capacitance constraint.

Corner-aware DP runs prune on **per-corner vector dominance**
(:meth:`CandidateSolution.dominates`): a candidate dies only when another
same-side candidate is no worse in capacitance *and* delay at every corner
of the batch — the sound multi-corner extension, since downstream deltas are
per-corner monotone.  The maximum-load filter likewise must hold at every
corner (worst-corner capacitance).  Nominal-only candidates keep the classic
scalar staircase unchanged.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.insertion.candidate import CandidateSolution
from repro.tech.layers import Side


def filter_max_cap(
    candidates: Iterable[CandidateSolution], max_capacitance: float
) -> list[CandidateSolution]:
    """Drop candidates whose effective capacitance exceeds the PDK limit.

    Corner-aware candidates are filtered on their worst-corner capacitance:
    the constraint is physical and must hold at every operating point.
    """
    if max_capacitance <= 0:
        raise ValueError("max capacitance must be positive")
    return [c for c in candidates if c.worst_capacitance <= max_capacitance + 1e-9]


def prune_dominated(
    candidates: Sequence[CandidateSolution],
    keep_resource_diversity: bool = False,
    tol: float = 1e-9,
) -> list[CandidateSolution]:
    """Remove candidates dominated on (capacitance, max delay).

    The sweep visits candidates sorted by (worst capacitance, worst delay,
    resource count) and drops every candidate dominated by an already-kept
    one (:meth:`CandidateSolution.dominates` — the scalar staircase for
    nominal sets, per-corner vector dominance for corner-aware sets).

    **Resource-diversity rule.**  With ``keep_resource_diversity`` a
    dominated candidate still survives when its resource count (buffers +
    nTSVs) is strictly lower than the *minimum resource count among the kept
    candidates that dominate it*.  The bound is dominator-relative on
    purpose: a kept candidate that does **not** dominate the contender (a
    cheap solution elsewhere on the staircase, or — corner-aware — one that
    loses at some corner) says nothing about whether the contender buys a
    resource saving over the solutions that actually beat it, so it must not
    veto the survival.  Survivors join the kept set and participate as
    dominators for later candidates.  This single definition is the
    executable spec both DP backends implement (the object sweep here, the
    array sweep in :mod:`repro.insertion.frontier`) and is pinned by
    differential tests.
    """
    if not candidates:
        return []
    corner_aware = candidates[0].corner_capacitance is not None
    # Sort by capacitance, then delay (worst-corner values for corner-aware
    # sets; identical to the scalars otherwise): a sweep keeps the
    # lower-left staircase.
    ordered = sorted(
        candidates,
        key=lambda c: (c.worst_capacitance, c.worst_max_delay, c.resource_count),
    )
    kept: list[CandidateSolution] = []
    best_delay = float("inf")
    for cand in ordered:
        dominators: list[CandidateSolution] | None = None
        if corner_aware and keep_resource_diversity:
            # The diversity exception needs the dominator set anyway, so
            # collect it in one pass instead of re-testing dominance below.
            dominators = [k for k in kept if k.dominates(cand, tol)]
            dominated = bool(dominators)
        elif corner_aware:
            # Vector dominance: a per-corner dominator sorts no later than
            # its victims (up to tol), so testing against the kept set
            # suffices.
            dominated = any(keeper.dominates(cand, tol) for keeper in kept)
        else:
            # Sorted by capacitance, so every kept candidate is no worse in
            # cap: the staircase test against the best kept delay is exactly
            # "some kept candidate dominates this one".
            dominated = cand.max_delay >= best_delay - tol
        if dominated and keep_resource_diversity:
            if dominators is None:
                dominators = [k for k in kept if k.dominates(cand, tol)]
            resource_floor = min(k.resource_count for k in dominators)
            dominated = cand.resource_count >= resource_floor
        if not dominated:
            kept.append(cand)
            best_delay = min(best_delay, cand.max_delay)
    return kept


def prune_per_side(
    candidates: Sequence[CandidateSolution],
    max_capacitance: float | None = None,
    keep_resource_diversity: bool = False,
    max_candidates_per_side: int | None = None,
) -> list[CandidateSolution]:
    """The paper's pruning: dominance applied separately per upstream side.

    Args:
        candidates: candidate set of one DP node.
        max_capacitance: when given, candidates above this load are removed
            first (maximum driven-capacitance constraint).
        keep_resource_diversity: see :func:`prune_dominated`.
        max_candidates_per_side: optional hard cap (beam width) per side; the
            candidates kept are those with the smallest delays, preserving
            the latency-optimality of the DP in practice while bounding the
            O(k^2) merge cost.

    Returns:
        The pruned candidate list, front-side candidates first.
    """
    pool = list(candidates)
    if max_capacitance is not None:
        pool = filter_max_cap(pool, max_capacitance)
    by_side: dict[Side, list[CandidateSolution]] = defaultdict(list)
    for cand in pool:
        by_side[cand.up_side].append(cand)
    result: list[CandidateSolution] = []
    for side in (Side.FRONT, Side.BACK):
        pruned = prune_dominated(
            by_side.get(side, []), keep_resource_diversity=keep_resource_diversity
        )
        if max_candidates_per_side is not None and len(pruned) > max_candidates_per_side:
            pruned = _beam_select(pruned, max_candidates_per_side)
        result.extend(pruned)
    return result


def _beam_select(
    candidates: list[CandidateSolution], beam_width: int
) -> list[CandidateSolution]:
    """Keep ``beam_width`` candidates spread across the (cap, delay) staircase.

    Keeping only the lowest-delay candidates would bias the beam toward
    high-capacitance solutions that leave no head-room for the wires above
    them, so the beam samples the staircase evenly: the lowest-capacitance
    and the lowest-delay candidates are always retained and the rest are
    taken at even intervals in between.  Corner-aware runs walk the
    worst-corner staircase, matching the dominance sweep.
    """
    ordered = sorted(
        candidates, key=lambda c: (c.worst_capacitance, c.worst_max_delay)
    )
    if beam_width <= 1:
        return [min(ordered, key=lambda c: c.worst_max_delay)]
    last = len(ordered) - 1
    indices = {round(i * last / (beam_width - 1)) for i in range(beam_width)}
    return [ordered[i] for i in sorted(indices)]

"""Operating-point scenarios (PVT corners) for multi-corner timing sign-off.

The paper evaluates its double-side CTS flow at a single operating point; a
production deployment must sign off skew and latency across process/voltage/
temperature corners and derate scenarios.  This module captures one operating
point as a :class:`Scenario` — per-corner wire R/C scaling, a buffer-delay
derate, an nTSV resistance scale, and an optional NLDM-mode override — and a
whole sign-off set as a :class:`CornerSet`.

A scenario is *applied* to a nominal :class:`~repro.tech.pdk.Pdk` with
:meth:`Scenario.apply_to`, which returns a derived PDK with scaled layer
parasitics and a derated buffer cell.  Both timing engines consume the same
derived PDKs, which is what keeps the batched vectorized kernel and the
per-corner reference loop numerically identical (the executable-spec
property of :mod:`repro.timing.factory` extends to every corner).

Presets follow the usual sign-off shorthand:

========  =====================================================
``tt``    typical/typical — the nominal operating point
``ss``    slow/slow — resistive wires, derated (slower) buffers
``ff``    fast/fast — faster wires and buffers
``hot``   high-temperature derate on top of nominal process
``cold``  low-temperature speed-up
========  =====================================================

Custom corners can be written inline as ``name:rscale:cscale:derate`` (with
an optional fourth ``:ntsvscale`` field), e.g. ``wc:1.2:1.1:1.25``.  When
``:ntsvscale`` is omitted the nTSV resistance tracks the wire R scale
(``rscale``) — vias sit in the same interconnect stack — so pass an explicit
``:1.0`` for a wires-only or buffer-only corner.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.tech.layers import MetalStack
from repro.tech.pdk import Pdk

#: Name given to the implicitly inserted nominal scenario (see
#: :meth:`CornerSet.ensure_nominal`).
NOMINAL_NAME = "tt"


@dataclass(frozen=True)
class Scenario:
    """One operating point: how a nominal PDK is scaled at this corner.

    Attributes:
        name: short corner label (``"tt"``, ``"ss"``, ...); must not contain
            the ``,`` / ``:`` characters used by the inline spec syntax.
        wire_res_scale: multiplier on every routing layer's unit resistance.
        wire_cap_scale: multiplier on every routing layer's unit capacitance.
        buffer_derate: multiplier on the buffer delay (intrinsic delay, drive
            resistance, output slew, and any attached NLDM tables).
        ntsv_res_scale: multiplier on the nTSV series resistance.
        use_nldm: per-corner override of the engine's NLDM mode; ``None``
            inherits the engine default.
    """

    name: str
    wire_res_scale: float = 1.0
    wire_cap_scale: float = 1.0
    buffer_derate: float = 1.0
    ntsv_res_scale: float = 1.0
    use_nldm: bool | None = None

    def __post_init__(self) -> None:
        if not self.name or any(ch in self.name for ch in ",:"):
            raise ValueError(f"invalid scenario name {self.name!r}")
        for attr in ("wire_res_scale", "wire_cap_scale", "buffer_derate", "ntsv_res_scale"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"scenario {self.name!r}: {attr} must be positive")

    @property
    def is_nominal(self) -> bool:
        """True when this scenario leaves the PDK (and NLDM mode) untouched."""
        return (
            self.wire_res_scale == 1.0
            and self.wire_cap_scale == 1.0
            and self.buffer_derate == 1.0
            and self.ntsv_res_scale == 1.0
            and self.use_nldm is None
        )

    @classmethod
    def nominal(cls, name: str = NOMINAL_NAME) -> "Scenario":
        """The identity scenario (unit scales everywhere)."""
        return cls(name=name)

    # ------------------------------------------------------------------ apply
    def apply_to(self, pdk: Pdk) -> Pdk:
        """Return ``pdk`` scaled to this corner (``pdk`` itself when nominal).

        Node capacitances stored on the clock tree (sink pins, buffer input
        pins, nTSV cells) are corner-independent; only the wire parasitics,
        the buffer's delay/slew characteristics, and the nTSV series
        resistance change with the operating point.
        """
        if (
            self.wire_res_scale == 1.0
            and self.wire_cap_scale == 1.0
            and self.buffer_derate == 1.0
            and self.ntsv_res_scale == 1.0
        ):
            return pdk
        stack = pdk.stack
        layers = [
            replace(
                layer,
                unit_resistance=layer.unit_resistance * self.wire_res_scale,
                unit_capacitance=layer.unit_capacitance * self.wire_cap_scale,
            )
            for layer in stack
        ]
        scaled_stack = MetalStack(
            layers,
            front_clock_layer=stack.front_clock_layer.name,
            back_clock_layer=stack.back_clock_layer.name,
        )
        buffer = pdk.buffer
        if self.buffer_derate != 1.0:
            derate = self.buffer_derate
            buffer = replace(
                buffer,
                intrinsic_delay=buffer.intrinsic_delay * derate,
                drive_resistance=buffer.drive_resistance * derate,
                output_slew=buffer.output_slew * derate,
                nldm_delay=None if buffer.nldm_delay is None else buffer.nldm_delay.scaled(derate),
                nldm_slew=None if buffer.nldm_slew is None else buffer.nldm_slew.scaled(derate),
            )
        ntsv = pdk.ntsv
        if ntsv is not None and self.ntsv_res_scale != 1.0:
            ntsv = replace(ntsv, resistance=ntsv.resistance * self.ntsv_res_scale)
        return replace(
            pdk, name=f"{pdk.name}@{self.name}", stack=scaled_stack, buffer=buffer, ntsv=ntsv
        )

    def describe(self) -> dict[str, object]:
        """Flat summary row used by reports and the CLI."""
        return {
            "corner": self.name,
            "wire_res_scale": self.wire_res_scale,
            "wire_cap_scale": self.wire_cap_scale,
            "buffer_derate": self.buffer_derate,
            "ntsv_res_scale": self.ntsv_res_scale,
            "nldm": "inherit" if self.use_nldm is None else str(self.use_nldm).lower(),
        }


#: Built-in scenario presets addressable by name in ``CornerSet.parse``.
PRESET_SCENARIOS: dict[str, Scenario] = {
    "tt": Scenario.nominal("tt"),
    "ss": Scenario("ss", wire_res_scale=1.15, wire_cap_scale=1.08, buffer_derate=1.18,
                   ntsv_res_scale=1.15),
    "ff": Scenario("ff", wire_res_scale=0.88, wire_cap_scale=0.94, buffer_derate=0.85,
                   ntsv_res_scale=0.88),
    "hot": Scenario("hot", wire_res_scale=1.08, wire_cap_scale=1.02, buffer_derate=1.10,
                    ntsv_res_scale=1.08),
    "cold": Scenario("cold", wire_res_scale=0.96, wire_cap_scale=0.99, buffer_derate=0.93,
                     ntsv_res_scale=0.96),
}

#: The corner list used when a flow asks for "full sign-off" without naming
#: corners explicitly (CLI ``--corners signoff``).
SIGNOFF_SPEC = "tt,ss,ff,hot,cold"


@dataclass(frozen=True)
class CornerSet:
    """An ordered, uniquely named collection of :class:`Scenario` members.

    The first nominal member (unit scales, no NLDM override) acts as the
    *primary* corner: single-corner engine APIs (``analyze`` / ``skew`` /
    ``latency``) report it, while the ``*_per_corner`` and ``worst_*`` APIs
    cover the whole set.  :meth:`ensure_nominal` inserts one at the front
    when the set has none, so every engine always has a primary corner.
    """

    scenarios: tuple[Scenario, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("a corner set needs at least one scenario")
        names = [scenario.name for scenario in self.scenarios]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            # Corner names key the per-corner metric columns and the serve
            # tier's session-cache identity, so collisions must name the
            # offending corners, not just the whole set.
            raise ValueError(
                f"duplicate corner names {duplicates} in {names}; every "
                "corner (preset or custom) may appear at most once per set"
            )

    # ----------------------------------------------------------- collection
    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    @property
    def names(self) -> list[str]:
        return [scenario.name for scenario in self.scenarios]

    def nominal_index(self) -> int | None:
        """Index of the first nominal member, or None when there is none."""
        for index, scenario in enumerate(self.scenarios):
            if scenario.is_nominal:
                return index
        return None

    def ensure_nominal(self) -> "CornerSet":
        """This set, with a nominal scenario prepended when it has none."""
        if self.nominal_index() is not None:
            return self
        name = NOMINAL_NAME
        if name in self.names:  # a non-nominal scenario squatting on "tt"
            name = "nominal"
        if name in self.names:
            raise ValueError(
                "corner set has no nominal scenario and both fallback names "
                f"are taken: {self.names}"
            )
        return CornerSet((Scenario.nominal(name), *self.scenarios))

    # --------------------------------------------------------- construction
    @classmethod
    def nominal(cls) -> "CornerSet":
        """The single-corner set equivalent to classic nominal analysis."""
        return cls((Scenario.nominal(),))

    @classmethod
    def signoff(cls) -> "CornerSet":
        """The default five-corner sign-off set (tt, ss, ff, hot, cold)."""
        return cls.parse(SIGNOFF_SPEC)

    @classmethod
    def parse(cls, spec: str) -> "CornerSet":
        """Parse a comma-separated corner spec.

        Each entry is a preset name (``tt``, ``ss``, ``ff``, ``hot``,
        ``cold``), the shorthand ``signoff`` for the full preset list, or an
        inline custom corner ``name:rscale:cscale:derate[:ntsvscale]``.
        An omitted ``ntsvscale`` defaults to ``rscale`` (the via resistance
        tracks the wire resistance corner), not to 1.0.
        """
        scenarios: list[Scenario] = []
        for raw in spec.split(","):
            item = raw.strip()
            if not item:
                continue
            if item == "signoff":
                scenarios.extend(PRESET_SCENARIOS[name] for name in SIGNOFF_SPEC.split(","))
                continue
            if ":" not in item:
                try:
                    scenarios.append(PRESET_SCENARIOS[item])
                except KeyError:
                    raise ValueError(
                        f"unknown corner preset {item!r}; expected one of "
                        f"{sorted(PRESET_SCENARIOS)} or name:rscale:cscale:derate"
                    ) from None
                continue
            fields = item.split(":")
            if len(fields) not in (4, 5):
                raise ValueError(
                    f"malformed corner spec {item!r}; expected "
                    "name:rscale:cscale:derate[:ntsvscale]"
                )
            name = fields[0]
            try:
                values = [float(value) for value in fields[1:]]
            except ValueError:
                raise ValueError(f"non-numeric scale in corner spec {item!r}") from None
            ntsv_scale = values[3] if len(values) == 4 else values[0]
            scenarios.append(
                Scenario(
                    name,
                    wire_res_scale=values[0],
                    wire_cap_scale=values[1],
                    buffer_derate=values[2],
                    ntsv_res_scale=ntsv_scale,
                )
            )
        if not scenarios:
            raise ValueError(f"corner spec {spec!r} names no corners")
        return cls(tuple(scenarios))

    @classmethod
    def resolve(cls, value: "CornerSet | Scenario | Iterable[Scenario] | str | None") -> "CornerSet":
        """Coerce any accepted ``corners=`` argument into a :class:`CornerSet`.

        ``None`` resolves to the nominal single-corner set, a string is
        parsed with :meth:`parse`, a scenario or an iterable of scenarios is
        wrapped directly.
        """
        if value is None:
            return cls.nominal()
        if isinstance(value, cls):
            return value
        if isinstance(value, Scenario):
            return cls((value,))
        if isinstance(value, str):
            return cls.parse(value)
        return cls(tuple(value))

    def describe(self) -> list[dict[str, object]]:
        """Summary rows (one per scenario) for reports and the CLI."""
        return [scenario.describe() for scenario in self.scenarios]

"""Non-linear delay model (NLDM) lookup tables.

ASAP7 liberty files characterise cell delay and output slew as 2-D tables
indexed by input slew and output load.  The paper's evaluation uses the NLDM
for delay computation alongside the Elmore wire model; this module provides a
small, dependency-free implementation with bilinear interpolation and
clamped extrapolation (the behaviour of most commercial timers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class NldmTable:
    """A 2-D lookup table ``value = f(input_slew, output_capacitance)``.

    Attributes:
        slew_axis: monotonically increasing input slews (ps).
        cap_axis: monotonically increasing output loads (fF).
        values: table of shape ``(len(slew_axis), len(cap_axis))`` in ps.
    """

    slew_axis: tuple[float, ...]
    cap_axis: tuple[float, ...]
    values: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        slews = np.asarray(self.slew_axis, dtype=float)
        caps = np.asarray(self.cap_axis, dtype=float)
        table = np.asarray(self.values, dtype=float)
        if slews.ndim != 1 or caps.ndim != 1:
            raise ValueError("axes must be one-dimensional")
        if len(slews) < 2 or len(caps) < 2:
            raise ValueError("each axis needs at least two sample points")
        if np.any(np.diff(slews) <= 0) or np.any(np.diff(caps) <= 0):
            raise ValueError("axes must be strictly increasing")
        if table.shape != (len(slews), len(caps)):
            raise ValueError(
                f"table shape {table.shape} does not match axes "
                f"({len(slews)}, {len(caps)})"
            )

    @classmethod
    def from_arrays(
        cls,
        slew_axis: Sequence[float],
        cap_axis: Sequence[float],
        values: Sequence[Sequence[float]],
    ) -> "NldmTable":
        """Build a table from plain sequences (e.g. parsed liberty data)."""
        return cls(
            tuple(float(s) for s in slew_axis),
            tuple(float(c) for c in cap_axis),
            tuple(tuple(float(v) for v in row) for row in values),
        )

    @classmethod
    def from_linear_model(
        cls,
        intrinsic: float,
        resistance: float,
        slew_sensitivity: float,
        slew_axis: Sequence[float],
        cap_axis: Sequence[float],
    ) -> "NldmTable":
        """Characterise a table from a first-order model.

        ``value = intrinsic + resistance * cap + slew_sensitivity * slew`` with
        a mild quadratic term on the load to mimic the convexity of real
        tables.  Used to generate the default ASAP7-like buffer tables.
        """
        rows = []
        for slew in slew_axis:
            row = [
                intrinsic
                + resistance * cap
                + slew_sensitivity * slew
                + 0.0005 * resistance * cap * cap
                for cap in cap_axis
            ]
            rows.append(row)
        return cls.from_arrays(slew_axis, cap_axis, rows)

    def lookup(self, input_slew: float, output_cap: float) -> float:
        """Bilinear interpolation with clamping outside the characterised range."""
        slews = np.asarray(self.slew_axis)
        caps = np.asarray(self.cap_axis)
        table = np.asarray(self.values)

        slew = float(np.clip(input_slew, slews[0], slews[-1]))
        cap = float(np.clip(output_cap, caps[0], caps[-1]))

        si = int(np.searchsorted(slews, slew, side="right") - 1)
        ci = int(np.searchsorted(caps, cap, side="right") - 1)
        si = min(max(si, 0), len(slews) - 2)
        ci = min(max(ci, 0), len(caps) - 2)

        s0, s1 = slews[si], slews[si + 1]
        c0, c1 = caps[ci], caps[ci + 1]
        ts = (slew - s0) / (s1 - s0)
        tc = (cap - c0) / (c1 - c0)

        v00 = table[si, ci]
        v01 = table[si, ci + 1]
        v10 = table[si + 1, ci]
        v11 = table[si + 1, ci + 1]
        return float(
            v00 * (1 - ts) * (1 - tc)
            + v01 * (1 - ts) * tc
            + v10 * ts * (1 - tc)
            + v11 * ts * tc
        )

    def lookup_batch(
        self,
        input_slews: "np.ndarray | Sequence[float] | float",
        output_caps: "np.ndarray | Sequence[float] | float",
    ) -> np.ndarray:
        """Vectorized :meth:`lookup` over arrays of slews and loads.

        ``input_slews`` and ``output_caps`` broadcast against each other and
        the result has the broadcast shape.  Every element is bit-identical
        to the scalar :meth:`lookup` of the same (slew, cap) pair — the same
        clamping, cell search, and bilinear blend evaluated in the same
        operation order — so batched consumers (the vectorized timing engine,
        the array-based insertion DP) can be differentially tested against
        scalar reference paths at zero tolerance.
        """
        slews = np.asarray(self.slew_axis)
        caps = np.asarray(self.cap_axis)
        table = np.asarray(self.values)

        slew = np.clip(np.asarray(input_slews, dtype=float), slews[0], slews[-1])
        cap = np.clip(np.asarray(output_caps, dtype=float), caps[0], caps[-1])
        slew, cap = np.broadcast_arrays(slew, cap)

        si = np.clip(np.searchsorted(slews, slew, side="right") - 1, 0, len(slews) - 2)
        ci = np.clip(np.searchsorted(caps, cap, side="right") - 1, 0, len(caps) - 2)

        s0, s1 = slews[si], slews[si + 1]
        c0, c1 = caps[ci], caps[ci + 1]
        ts = (slew - s0) / (s1 - s0)
        tc = (cap - c0) / (c1 - c0)

        v00 = table[si, ci]
        v01 = table[si, ci + 1]
        v10 = table[si + 1, ci]
        v11 = table[si + 1, ci + 1]
        return (
            v00 * (1 - ts) * (1 - tc)
            + v01 * (1 - ts) * tc
            + v10 * ts * (1 - tc)
            + v11 * ts * tc
        )

    def scaled(self, factor: float) -> "NldmTable":
        """Return a table with every value multiplied by ``factor``.

        Used by PVT scenarios to derate a characterised cell without
        re-characterising it; the axes (input slew, output load) are
        unchanged so clamping behaviour is preserved.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        if factor == 1.0:
            return self
        return NldmTable(
            self.slew_axis,
            self.cap_axis,
            tuple(tuple(value * factor for value in row) for row in self.values),
        )

    def max_value(self) -> float:
        """Largest characterised value (used by sanity checks)."""
        return float(np.max(np.asarray(self.values)))

    def min_value(self) -> float:
        """Smallest characterised value."""
        return float(np.min(np.asarray(self.values)))


#: Characterisation axes shared by the default buffer tables: input slews in
#: ps and output loads in fF, spanning the range exercised by the benchmarks.
_DEFAULT_SLEW_AXIS: tuple[float, ...] = (5.0, 10.0, 20.0, 40.0, 80.0, 160.0)
_DEFAULT_CAP_AXIS: tuple[float, ...] = (0.5, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0)


def default_buffer_delay_table() -> NldmTable:
    """Delay table approximating BUFx4_ASAP7_75t_R (ps vs slew/load)."""
    return NldmTable.from_linear_model(
        intrinsic=11.0,
        resistance=0.25,
        slew_sensitivity=0.06,
        slew_axis=_DEFAULT_SLEW_AXIS,
        cap_axis=_DEFAULT_CAP_AXIS,
    )


def default_buffer_slew_table() -> NldmTable:
    """Output slew table approximating BUFx4_ASAP7_75t_R (ps vs slew/load)."""
    return NldmTable.from_linear_model(
        intrinsic=18.0,
        resistance=0.55,
        slew_sensitivity=0.10,
        slew_axis=_DEFAULT_SLEW_AXIS,
        cap_axis=_DEFAULT_CAP_AXIS,
    )

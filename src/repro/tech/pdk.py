"""The :class:`Pdk` bundle: metal stack, cells, and design constraints.

``asap7_backside()`` reproduces the exact technology setup of the paper's
experiments: ASAP7 front-side layers, the IMEC back-side layer parameters of
Table I, the BUFx4 clock buffer, and the nTSV cell.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.tech.cells import BufferCell, NtsvCell, default_buffer, default_ntsv
from repro.tech.layers import LayerRC, MetalStack, Side


@dataclass(frozen=True)
class Pdk:
    """Everything the CTS flow needs to know about the process.

    Attributes:
        name: human-readable PDK name.
        stack: the metal stack with front/back clock layers selected.
        buffer: the clock buffer cell available for insertion.
        ntsv: the nano-TSV cell available for side changes.
        max_capacitance: maximum load (fF) any driver may see; defaults to the
            buffer's library limit.
        max_slew: maximum transition time (ps) allowed on clock nets.
        has_backside: whether back-side routing resources exist at all.  A
            front-side-only PDK (``has_backside=False``) lets the same flow be
            used for conventional single-side CTS.
    """

    name: str
    stack: MetalStack
    buffer: BufferCell
    ntsv: NtsvCell | None
    max_capacitance: float
    max_slew: float = 150.0
    has_backside: bool = True

    def __post_init__(self) -> None:
        if self.max_capacitance <= 0:
            raise ValueError("max capacitance must be positive")
        if self.max_slew <= 0:
            raise ValueError("max slew must be positive")
        if self.has_backside and self.ntsv is None:
            raise ValueError("a back-side enabled PDK needs an nTSV cell")

    def clock_layer(self, side: Side) -> LayerRC:
        """Return the clock routing layer used on ``side``."""
        if side is Side.BACK and not self.has_backside:
            raise ValueError(f"PDK {self.name!r} has no back-side routing resources")
        return self.stack.clock_layer(side)

    @property
    def front_layer(self) -> LayerRC:
        return self.stack.front_clock_layer

    @property
    def back_layer(self) -> LayerRC:
        if not self.has_backside:
            raise ValueError(f"PDK {self.name!r} has no back-side routing resources")
        return self.stack.back_clock_layer

    def front_side_only(self) -> "Pdk":
        """Return a copy of this PDK with back-side resources disabled.

        Used to run the identical flow in single-side mode (the "Our Buffered
        Clock Tree" rows of Table III).
        """
        return replace(self, name=f"{self.name}-front-only", has_backside=False)

    def with_buffer(self, buffer: BufferCell) -> "Pdk":
        """Return a copy using a different clock buffer."""
        return replace(
            self, buffer=buffer, max_capacitance=min(self.max_capacitance, buffer.max_capacitance)
        )

    def with_ntsv(self, ntsv: NtsvCell) -> "Pdk":
        """Return a copy using a different nTSV cell."""
        return replace(self, ntsv=ntsv)

    def describe(self) -> dict[str, object]:
        """Return a summary dictionary used by reports and examples."""
        summary: dict[str, object] = {
            "name": self.name,
            "front_clock_layer": self.front_layer.name,
            "buffer": self.buffer.name,
            "max_capacitance_ff": self.max_capacitance,
            "max_slew_ps": self.max_slew,
            "has_backside": self.has_backside,
        }
        if self.has_backside and self.ntsv is not None:
            summary["back_clock_layer"] = self.back_layer.name
            summary["ntsv"] = self.ntsv.name
        return summary


def asap7_backside(
    buffer: BufferCell | None = None,
    ntsv: NtsvCell | None = None,
    max_slew: float = 150.0,
) -> Pdk:
    """Assemble the ASAP7 + back-side technology used in the paper.

    Front-side clock wires use M3 (OpenROAD convention), back-side wires use
    the BM1..BM3 parameters from Table I, the buffer is BUFx4_ASAP7_75t_R and
    the nTSV is the 0.27 um x 0.27 um cell with R = 0.020 kOhm, C = 0.004 fF.
    """
    buf = buffer if buffer is not None else default_buffer()
    via = ntsv if ntsv is not None else default_ntsv()
    return Pdk(
        name="asap7-backside",
        stack=MetalStack.table_i(),
        buffer=buf,
        ntsv=via,
        max_capacitance=buf.max_capacitance,
        max_slew=max_slew,
        has_backside=True,
    )


def asap7_frontside() -> Pdk:
    """The same technology without back-side resources (single-side CTS)."""
    return asap7_backside().front_side_only()

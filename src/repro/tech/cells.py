"""Clock buffer and nano-TSV cell models.

The paper uses a single buffer (``BUFx4_ASAP7_75t_R``, 0.378 um x 0.27 um)
and one nTSV cell (0.27 um x 0.27 um, R = 0.020 kOhm, C = 0.004 fF), relying
on later clock-tree optimisation for sizing.  Both are modelled here with the
electrical parameters the delay engine needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tech.nldm import NldmTable


@dataclass(frozen=True)
class BufferCell:
    """A clock buffer characterised for delay computation.

    The linear model used throughout the DP is

        delay = intrinsic_delay + drive_resistance * C_load      [ps]

    which matches Eq. (1) of the paper when ``C_load`` is folded into a
    constant ``Dbuf``.  An optional NLDM table refines the delay as a function
    of (input slew, output load); when present it is used by the NLDM timing
    mode.
    """

    name: str
    input_capacitance: float  # fF
    intrinsic_delay: float  # ps
    drive_resistance: float  # kOhm
    max_capacitance: float  # fF, maximum load the buffer may drive
    width: float  # um
    height: float  # um
    output_slew: float = 20.0  # ps, nominal slew at the buffer output
    nldm_delay: NldmTable | None = field(default=None, compare=False)
    nldm_slew: NldmTable | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.input_capacitance <= 0:
            raise ValueError("buffer input capacitance must be positive")
        if self.max_capacitance <= 0:
            raise ValueError("buffer max capacitance must be positive")
        if self.drive_resistance < 0 or self.intrinsic_delay < 0:
            raise ValueError("buffer delay parameters must be non-negative")

    @property
    def area(self) -> float:
        """Footprint area in square micrometres."""
        return self.width * self.height

    def delay(self, load_capacitance: float, input_slew: float | None = None) -> float:
        """Return the buffer delay (ps) for a given output load (fF).

        When an NLDM table is attached and an input slew is supplied, the
        table is used; otherwise the linear model applies.
        """
        if load_capacitance < 0:
            raise ValueError("load capacitance must be non-negative")
        if self.nldm_delay is not None and input_slew is not None:
            return self.nldm_delay.lookup(input_slew, load_capacitance)
        return self.intrinsic_delay + self.drive_resistance * load_capacitance

    def slew(self, load_capacitance: float, input_slew: float | None = None) -> float:
        """Return the output slew (ps) for a given output load (fF)."""
        if load_capacitance < 0:
            raise ValueError("load capacitance must be non-negative")
        if self.nldm_slew is not None and input_slew is not None:
            return self.nldm_slew.lookup(input_slew, load_capacitance)
        # First-order model: slew tracks the RC at the output stage.
        return self.output_slew + 2.2 * self.drive_resistance * load_capacitance

    def delay_batch(
        self,
        load_capacitances,
        input_slews=None,
    ):
        """Vectorized :meth:`delay` over an array of output loads (fF).

        With an attached NLDM delay table and ``input_slews`` (an array or a
        scalar, broadcast against the loads) the batched bilinear lookup
        (:meth:`NldmTable.lookup_batch`) is used; otherwise the linear model
        applies element-wise.  Each element is bit-identical to the scalar
        :meth:`delay` of the same (load, slew) pair, so batched hot paths
        (the vectorized timing engine, the array-based insertion DP) stay
        differentially testable against scalar reference code.
        """
        loads = np.asarray(load_capacitances, dtype=float)
        if np.any(loads < 0):
            raise ValueError("load capacitance must be non-negative")
        if self.nldm_delay is not None and input_slews is not None:
            return self.nldm_delay.lookup_batch(input_slews, loads)
        return self.intrinsic_delay + self.drive_resistance * loads

    def slew_batch(
        self,
        load_capacitances,
        input_slews=None,
    ):
        """Vectorized :meth:`slew` over an array of output loads (fF)."""
        loads = np.asarray(load_capacitances, dtype=float)
        if np.any(loads < 0):
            raise ValueError("load capacitance must be non-negative")
        if self.nldm_slew is not None and input_slews is not None:
            return self.nldm_slew.lookup_batch(input_slews, loads)
        return self.output_slew + 2.2 * self.drive_resistance * loads

    def violates_max_cap(self, load_capacitance: float) -> bool:
        """Return True when ``load_capacitance`` exceeds the library limit."""
        return load_capacitance > self.max_capacitance


@dataclass(frozen=True)
class NtsvCell:
    """A nano through-silicon via connecting the front and back sides.

    Unlike a buffer, an nTSV provides no load shielding: its capacitance adds
    to the net and its resistance is in series with the wire (Eq. (2)).
    """

    name: str
    resistance: float  # kOhm
    capacitance: float  # fF
    width: float  # um
    height: float  # um

    def __post_init__(self) -> None:
        if self.resistance < 0 or self.capacitance < 0:
            raise ValueError("nTSV parasitics must be non-negative")

    @property
    def area(self) -> float:
        """Footprint area in square micrometres."""
        return self.width * self.height

    def delay(self, load_capacitance: float) -> float:
        """Elmore delay (ps) through the via driving ``load_capacitance`` fF."""
        if load_capacitance < 0:
            raise ValueError("load capacitance must be non-negative")
        return self.resistance * (self.capacitance + load_capacitance)


def default_buffer() -> BufferCell:
    """The BUFx4_ASAP7_75t_R model used in the paper's experiments.

    Electrical values are calibrated to the ASAP7 7.5-track RVT library:
    ~0.8 fF input pin capacitance, ~11 ps unloaded delay, ~0.25 kOhm
    effective drive resistance and ~60 fF maximum load.
    """
    from repro.tech.nldm import default_buffer_delay_table, default_buffer_slew_table

    return BufferCell(
        name="BUFx4_ASAP7_75t_R",
        input_capacitance=0.8,
        intrinsic_delay=11.0,
        drive_resistance=0.25,
        max_capacitance=60.0,
        width=0.378,
        height=0.27,
        output_slew=18.0,
        nldm_delay=default_buffer_delay_table(),
        nldm_slew=default_buffer_slew_table(),
    )


def default_ntsv() -> NtsvCell:
    """The nTSV cell of the paper: 0.27 um x 0.27 um, 0.020 kOhm, 0.004 fF."""
    return NtsvCell(
        name="NTSV_ASAP7_BS",
        resistance=0.020,
        capacitance=0.004,
        width=0.27,
        height=0.27,
    )

"""Technology / PDK models.

This package captures everything the CTS flow needs to know about the
process:

* :mod:`repro.tech.layers` — per-layer unit resistance/capacitance for the
  front-side metal stack (ASAP7 M1..M9) and the back-side stack (BM1..BM3),
  reproducing Table I of the paper.
* :mod:`repro.tech.cells` — the clock buffer (``BUFx4_ASAP7_75t_R``) and the
  nano-TSV cell with their electrical and physical properties.
* :mod:`repro.tech.nldm` — a small non-linear delay model (NLDM) lookup table
  with bilinear interpolation, as used by ASAP7 liberty files.
* :mod:`repro.tech.pdk` — the :class:`Pdk` bundle plus the
  :func:`asap7_backside` factory that assembles the exact technology used in
  the paper's experiments.
* :mod:`repro.tech.corners` — :class:`Scenario` / :class:`CornerSet`
  operating points (PVT corners and derates) for multi-corner timing
  sign-off on top of any of the above PDKs.
"""

from repro.tech.layers import LayerRC, MetalStack, Side, TABLE_I_LAYERS
from repro.tech.cells import BufferCell, NtsvCell
from repro.tech.corners import CornerSet, PRESET_SCENARIOS, Scenario
from repro.tech.nldm import NldmTable
from repro.tech.pdk import Pdk, asap7_backside

__all__ = [
    "LayerRC",
    "MetalStack",
    "Side",
    "TABLE_I_LAYERS",
    "BufferCell",
    "NtsvCell",
    "NldmTable",
    "Pdk",
    "asap7_backside",
    "Scenario",
    "CornerSet",
    "PRESET_SCENARIOS",
]

"""Metal layer models and the Table I resistance/capacitance data.

Units follow the paper: unit resistance in kilo-ohms per micrometre and unit
capacitance in femtofarads per micrometre.  With those units the product
``R * C`` of a wire comes out directly in picoseconds, which is the unit used
for all delays in this library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping


class Side(enum.Enum):
    """Which face of the die a wire, pin, or tree node lives on."""

    FRONT = "front"
    BACK = "back"

    @property
    def opposite(self) -> "Side":
        return Side.BACK if self is Side.FRONT else Side.FRONT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class LayerRC:
    """Unit parasitics of a single routing layer.

    Attributes:
        name: layer name as it appears in the LEF (e.g. ``"M3"``).
        unit_resistance: series resistance per micrometre, in kOhm/um.
        unit_capacitance: ground capacitance per micrometre, in fF/um.
        side: whether the layer belongs to the front-side or back-side stack.
    """

    name: str
    unit_resistance: float
    unit_capacitance: float
    side: Side

    def __post_init__(self) -> None:
        if self.unit_resistance <= 0 or self.unit_capacitance <= 0:
            raise ValueError(f"layer {self.name}: parasitics must be positive")

    def wire_delay(self, length: float, load_capacitance: float = 0.0) -> float:
        """Elmore delay (ps) of a wire of ``length`` um driving ``load_capacitance`` fF.

        Uses the L-type lumped model of the paper (Section II-B): the wire's
        own capacitance is lumped at the far end together with the load, i.e.
        ``delay = R_wire * (C_wire + C_load)``.
        """
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        resistance = self.unit_resistance * length
        capacitance = self.unit_capacitance * length
        return resistance * (capacitance + load_capacitance)

    def wire_capacitance(self, length: float) -> float:
        """Total wire capacitance (fF) of a segment of ``length`` um."""
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        return self.unit_capacitance * length

    def wire_resistance(self, length: float) -> float:
        """Total wire resistance (kOhm) of a segment of ``length`` um."""
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        return self.unit_resistance * length


#: Table I of the paper: ASAP7 front-side layers M1..M9 and the back-side
#: layers BM1..BM3 (which share a single unit R/C entry).
TABLE_I_LAYERS: tuple[LayerRC, ...] = (
    LayerRC("M1", 0.138890, 0.11368, Side.FRONT),
    LayerRC("M2", 0.024222, 0.13426, Side.FRONT),
    LayerRC("M3", 0.024222, 0.12918, Side.FRONT),
    LayerRC("M4", 0.016778, 0.11396, Side.FRONT),
    LayerRC("M5", 0.014677, 0.13323, Side.FRONT),
    LayerRC("M6", 0.010371, 0.11575, Side.FRONT),
    LayerRC("M7", 0.009672, 0.13293, Side.FRONT),
    LayerRC("M8", 0.007431, 0.11822, Side.FRONT),
    LayerRC("M9", 0.006874, 0.13497, Side.FRONT),
    LayerRC("BM1", 0.000384, 0.116264, Side.BACK),
    LayerRC("BM2", 0.000384, 0.116264, Side.BACK),
    LayerRC("BM3", 0.000384, 0.116264, Side.BACK),
)


class MetalStack:
    """The collection of routing layers available to the clock router.

    The stack knows which single layer is used for front-side clock routing
    (OpenROAD convention: M3) and which layer represents the back-side stack
    (BM1..BM3 share identical parasitics in Table I, so one representative
    layer is sufficient for delay evaluation).
    """

    def __init__(
        self,
        layers: Iterable[LayerRC],
        front_clock_layer: str = "M3",
        back_clock_layer: str = "BM1",
    ) -> None:
        self._layers: dict[str, LayerRC] = {}
        for layer in layers:
            if layer.name in self._layers:
                raise ValueError(f"duplicate layer name {layer.name!r}")
            self._layers[layer.name] = layer
        if front_clock_layer not in self._layers:
            raise KeyError(f"front clock layer {front_clock_layer!r} not in stack")
        if back_clock_layer not in self._layers:
            raise KeyError(f"back clock layer {back_clock_layer!r} not in stack")
        if self._layers[front_clock_layer].side is not Side.FRONT:
            raise ValueError(f"{front_clock_layer!r} is not a front-side layer")
        if self._layers[back_clock_layer].side is not Side.BACK:
            raise ValueError(f"{back_clock_layer!r} is not a back-side layer")
        self._front_clock_layer = front_clock_layer
        self._back_clock_layer = back_clock_layer

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __getitem__(self, name: str) -> LayerRC:
        return self._layers[name]

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self):
        return iter(self._layers.values())

    @property
    def names(self) -> list[str]:
        return list(self._layers)

    @property
    def front_clock_layer(self) -> LayerRC:
        """The layer used for front-side clock wires (M3 by convention)."""
        return self._layers[self._front_clock_layer]

    @property
    def back_clock_layer(self) -> LayerRC:
        """The representative layer for back-side clock wires."""
        return self._layers[self._back_clock_layer]

    def clock_layer(self, side: Side) -> LayerRC:
        """Return the clock routing layer for ``side``."""
        return self.front_clock_layer if side is Side.FRONT else self.back_clock_layer

    def layers_on(self, side: Side) -> list[LayerRC]:
        """Return all layers belonging to ``side``, in stack order."""
        return [layer for layer in self._layers.values() if layer.side is side]

    def as_table(self) -> list[Mapping[str, float | str]]:
        """Return the stack as Table I style rows (for reporting/benchmarks)."""
        return [
            {
                "layer": layer.name,
                "unit_resistance_kohm_per_um": layer.unit_resistance,
                "unit_capacitance_ff_per_um": layer.unit_capacitance,
                "side": layer.side.value,
            }
            for layer in self._layers.values()
        ]

    @classmethod
    def table_i(cls) -> "MetalStack":
        """Build the exact Table I metal stack used in the paper."""
        return cls(TABLE_I_LAYERS)

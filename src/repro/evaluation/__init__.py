"""Evaluation: clock tree metrics, comparison tables, and reporting.

Provides the consistent evaluation used by all flows and baselines (latency,
skew, buffer count, nTSV count, clock wirelength, runtime), the Table III
style comparison harness, and plain-text table rendering for benchmarks and
examples.
"""

from repro.evaluation.metrics import ClockTreeMetrics, evaluate_tree
from repro.evaluation.comparison import ComparisonRow, ComparisonTable, geometric_mean_ratio
from repro.evaluation.reporting import format_corner_table, format_table, format_metrics

__all__ = [
    "ClockTreeMetrics",
    "evaluate_tree",
    "ComparisonRow",
    "ComparisonTable",
    "geometric_mean_ratio",
    "format_table",
    "format_metrics",
    "format_corner_table",
]

"""Plain-text rendering of metric tables for benchmarks and examples."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.evaluation.metrics import ClockTreeMetrics


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_precision: int = 3,
) -> str:
    """Render a list of dictionaries as an aligned fixed-width text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_precision}f}"
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def format_metrics(metrics: ClockTreeMetrics) -> str:
    """One-line human readable summary of a clock tree's quality."""
    line = (
        f"[{metrics.design}/{metrics.flow}] latency={metrics.latency:.2f}ps "
        f"skew={metrics.skew:.2f}ps buffers={metrics.buffers} "
        f"ntsvs={metrics.ntsvs} wl={metrics.wirelength:.0f}um "
        f"(back {metrics.backside_fraction * 100:.0f}%) "
        f"runtime={metrics.runtime:.3f}s"
    )
    if metrics.corner_skews:
        line += (
            f" worst_skew={metrics.worst_skew:.2f}ps"
            f"@{metrics.worst_skew_corner}"
        )
    return line


def format_corner_table(metrics: ClockTreeMetrics) -> str:
    """Per-corner skew/latency sign-off table (empty note without corners)."""
    if not metrics.corner_skews:
        return "(nominal corner only)"
    rows = [
        {
            "corner": corner,
            "skew_ps": round(skew, 3),
            "latency_ps": round(metrics.corner_latencies.get(corner, 0.0), 3),
        }
        for corner, skew in metrics.corner_skews.items()
    ]
    return format_table(rows)


def format_ratio_summary(summary: Mapping[str, Mapping[str, float]]) -> str:
    """Render the Table III style ratio rows (flow -> metric ratios)."""
    rows = []
    for flow, ratios in summary.items():
        row: dict[str, object] = {"flow": flow}
        row.update({key: round(value, 3) for key, value in ratios.items()})
        rows.append(row)
    return format_table(rows)

"""Comparison tables in the style of Table III.

A :class:`ComparisonTable` collects :class:`ClockTreeMetrics` per design and
per flow and computes the normalised "Ratio" row that the paper reports
(every flow divided by the reference flow, geometric-mean across designs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.evaluation.metrics import ClockTreeMetrics


@dataclass
class ComparisonRow:
    """All flows' metrics for one design."""

    design: str
    metrics: dict[str, ClockTreeMetrics] = field(default_factory=dict)

    def add(self, metrics: ClockTreeMetrics) -> None:
        if metrics.flow in self.metrics:
            raise ValueError(f"duplicate flow {metrics.flow!r} for design {self.design!r}")
        self.metrics[metrics.flow] = metrics


def geometric_mean_ratio(values: list[float]) -> float:
    """Geometric mean of positive ratios; zero/inf entries are skipped."""
    usable = [v for v in values if v > 0 and math.isfinite(v)]
    if not usable:
        return float("nan")
    return math.exp(sum(math.log(v) for v in usable) / len(usable))


class ComparisonTable:
    """Collects metrics per (design, flow) and renders Table III style data."""

    def __init__(self, reference_flow: str) -> None:
        self.reference_flow = reference_flow
        self._rows: dict[str, ComparisonRow] = {}

    def add(self, metrics: ClockTreeMetrics) -> None:
        """Add one flow's metrics for one design."""
        row = self._rows.setdefault(metrics.design, ComparisonRow(design=metrics.design))
        row.add(metrics)

    @property
    def designs(self) -> list[str]:
        return list(self._rows)

    @property
    def flows(self) -> list[str]:
        flows: list[str] = []
        for row in self._rows.values():
            for flow in row.metrics:
                if flow not in flows:
                    flows.append(flow)
        return flows

    def metrics_for(self, design: str, flow: str) -> ClockTreeMetrics:
        return self._rows[design].metrics[flow]

    def ratio_row(self, flow: str) -> dict[str, float]:
        """Geometric-mean ratios of ``flow`` against the reference flow.

        Values above 1.0 mean the reference flow is better by that factor,
        matching the paper's "Ratio" rows (e.g. latency 2.223x for
        OpenROAD + [2] against Ours).
        """
        per_metric: dict[str, list[float]] = {
            "latency": [],
            "skew": [],
            "buffers": [],
            "ntsvs": [],
            "wirelength": [],
            "runtime": [],
        }
        for row in self._rows.values():
            if flow not in row.metrics or self.reference_flow not in row.metrics:
                continue
            reference = row.metrics[self.reference_flow]
            other = row.metrics[flow]
            ratios = reference.ratio_to(other)
            for key in per_metric:
                per_metric[key].append(ratios[key])
        return {key: geometric_mean_ratio(vals) for key, vals in per_metric.items()}

    def rows(self) -> list[dict[str, float | int | str]]:
        """Flat per-(design, flow) rows for rendering."""
        output: list[dict[str, float | int | str]] = []
        for design in self.designs:
            for flow in self.flows:
                row = self._rows[design]
                if flow in row.metrics:
                    output.append(row.metrics[flow].as_row())
        return output

    def summary(self) -> dict[str, dict[str, float]]:
        """Ratio rows for every non-reference flow."""
        return {
            flow: self.ratio_row(flow)
            for flow in self.flows
            if flow != self.reference_flow
        }

"""Clock tree quality metrics (the columns of Table III).

Beyond the paper's single-operating-point columns, metrics can carry a
multi-corner sign-off: pass ``corners=`` to :func:`evaluate_tree` and the
per-corner skews/latencies (plus the worst-corner summary columns) ride
along with the nominal numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.clocktree import ClockTree
from repro.ir.design import DesignArrays
from repro.tech.corners import CornerSet, Scenario
from repro.tech.layers import Side
from repro.tech.pdk import Pdk
from repro.timing import create_engine
from repro.timing.vectorized import VectorizedElmoreEngine


@dataclass(frozen=True)
class ClockTreeMetrics:
    """The paper's evaluation metrics for one synthesised clock tree.

    Attributes:
        design: design name the tree belongs to.
        flow: name of the flow that produced the tree (for comparison tables).
        latency: maximum source-to-sink delay (ps).
        skew: maximum minus minimum sink arrival (ps).
        buffers: number of inserted clock buffers.
        ntsvs: number of inserted nTSVs.
        wirelength: total clock wirelength (um).
        front_wirelength / back_wirelength: per-side split of the wirelength.
        runtime: flow runtime in seconds (0 when not measured).
        sinks: number of clock sinks.
        corner_skews: corner name -> skew (ps); empty for nominal-only runs.
        corner_latencies: corner name -> latency (ps); empty for nominal-only
            runs.
    """

    design: str
    flow: str
    latency: float
    skew: float
    buffers: int
    ntsvs: int
    wirelength: float
    front_wirelength: float
    back_wirelength: float
    runtime: float
    sinks: int
    corner_skews: Mapping[str, float] = field(default_factory=dict)
    corner_latencies: Mapping[str, float] = field(default_factory=dict)

    @property
    def resource_count(self) -> int:
        """Buffers + nTSVs (the x-axis of Fig. 12)."""
        return self.buffers + self.ntsvs

    @property
    def backside_fraction(self) -> float:
        """Fraction of the clock wirelength routed on the back side."""
        if self.wirelength == 0:
            return 0.0
        return self.back_wirelength / self.wirelength

    @property
    def worst_skew(self) -> float:
        """The largest skew across the corner set (nominal when no corners)."""
        if not self.corner_skews:
            return self.skew
        return max(self.corner_skews.values())

    @property
    def worst_latency(self) -> float:
        """The largest latency across the corner set (nominal when no corners)."""
        if not self.corner_latencies:
            return self.latency
        return max(self.corner_latencies.values())

    @property
    def worst_skew_corner(self) -> str:
        """Name of the corner with the largest skew (empty when no corners)."""
        if not self.corner_skews:
            return ""
        return max(self.corner_skews, key=self.corner_skews.__getitem__)

    def as_row(self) -> dict[str, float | int | str]:
        """Flat dictionary used by tables and benchmark output."""
        row: dict[str, float | int | str] = {
            "design": self.design,
            "flow": self.flow,
            "latency_ps": round(self.latency, 3),
            "skew_ps": round(self.skew, 3),
            "buffers": self.buffers,
            "ntsvs": self.ntsvs,
            "wirelength_um": round(self.wirelength, 1),
            "back_wl_um": round(self.back_wirelength, 1),
            "runtime_s": round(self.runtime, 3),
        }
        if self.corner_skews:
            for corner, skew in self.corner_skews.items():
                row[f"skew_{corner}_ps"] = round(skew, 3)
            row["worst_skew_ps"] = round(self.worst_skew, 3)
            row["worst_latency_ps"] = round(self.worst_latency, 3)
            row["worst_corner"] = self.worst_skew_corner
        return row

    def ratio_to(self, reference: "ClockTreeMetrics") -> dict[str, float]:
        """Return ``reference / self`` ratios (how much better *self* is).

        This matches the paper's convention in Table III, where the "Ratio"
        row normalises every method against "Ours" (so 2.223x means the other
        method's latency is 2.223 times larger).
        """
        def _ratio(a: float, b: float) -> float:
            if b == 0:
                return float("inf") if a > 0 else 1.0
            return a / b

        return {
            "latency": _ratio(reference.latency, self.latency),
            "skew": _ratio(reference.skew, self.skew),
            "buffers": _ratio(reference.buffers, self.buffers),
            "ntsvs": _ratio(reference.ntsvs, self.ntsvs),
            "wirelength": _ratio(reference.wirelength, self.wirelength),
            "runtime": _ratio(reference.runtime, self.runtime),
        }


def evaluate_tree(
    tree: ClockTree | DesignArrays,
    pdk: Pdk,
    design: str = "",
    flow: str = "",
    runtime: float = 0.0,
    engine: str | None = None,
    corners: CornerSet | Scenario | str | None = None,
    timing_engine: "VectorizedElmoreEngine | None" = None,
) -> ClockTreeMetrics:
    """Run the consistent evaluation of the paper on a synthesised tree.

    ``engine`` selects the timing engine by factory name (``"vectorized"``
    by default, ``"reference"`` for differential checks).  ``corners`` adds a
    multi-corner sign-off on top of the nominal columns: per-corner skews and
    latencies are computed in one batched pass (vectorized engine) or one
    per-corner loop (reference engine) and attached to the metrics.

    ``tree`` may be a :class:`~repro.ir.design.DesignArrays` design: counts
    and per-side wirelength reduce over the rows directly, and the timing
    engine analyses the design in place.  The reference engine walks object
    trees only, so that pairing realises the design once at this boundary.

    ``timing_engine`` reuses an already-compiled engine instead of creating
    one (the serve tier's warm path: repeated evaluations of a long-lived
    design go through the engine's incremental dirty-cone update instead of
    a fresh compile).  The caller owns corner consistency: the instance's
    corner batch is what the per-corner columns report.
    """
    if timing_engine is None:
        timing_engine = create_engine(pdk, engine, corners=corners)
    if isinstance(tree, DesignArrays) and not isinstance(
        timing_engine, VectorizedElmoreEngine
    ):
        tree = tree.to_clock_tree()
    timing = timing_engine.analyze(tree)
    corner_skews: dict[str, float] = {}
    corner_latencies: dict[str, float] = {}
    if len(timing_engine.corners) > 1:
        # One analyze_corners pass yields both dicts (this matters for the
        # reference engine, whose per-corner loop is a full analysis each).
        for name, result in timing_engine.analyze_corners(
            tree, with_slew=False
        ).items():
            corner_skews[name] = result.skew
            corner_latencies[name] = result.latency
    front_wl = tree.wirelength(Side.FRONT)
    back_wl = tree.wirelength(Side.BACK)
    if isinstance(tree, DesignArrays):
        _nodes, sinks, buffers, ntsvs = tree.counts()
    else:
        sinks = tree.sink_count()
        buffers = tree.buffer_count()
        ntsvs = tree.ntsv_count()
    return ClockTreeMetrics(
        design=design,
        flow=flow,
        latency=timing.latency,
        skew=timing.skew,
        buffers=buffers,
        ntsvs=ntsvs,
        wirelength=front_wl + back_wl,
        front_wirelength=front_wl,
        back_wirelength=back_wl,
        runtime=runtime,
        sinks=sinks,
        corner_skews=corner_skews,
        corner_latencies=corner_latencies,
    )

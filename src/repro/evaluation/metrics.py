"""Clock tree quality metrics (the columns of Table III)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocktree import ClockTree
from repro.tech.layers import Side
from repro.tech.pdk import Pdk
from repro.timing import create_engine


@dataclass(frozen=True)
class ClockTreeMetrics:
    """The paper's evaluation metrics for one synthesised clock tree.

    Attributes:
        design: design name the tree belongs to.
        flow: name of the flow that produced the tree (for comparison tables).
        latency: maximum source-to-sink delay (ps).
        skew: maximum minus minimum sink arrival (ps).
        buffers: number of inserted clock buffers.
        ntsvs: number of inserted nTSVs.
        wirelength: total clock wirelength (um).
        front_wirelength / back_wirelength: per-side split of the wirelength.
        runtime: flow runtime in seconds (0 when not measured).
        sinks: number of clock sinks.
    """

    design: str
    flow: str
    latency: float
    skew: float
    buffers: int
    ntsvs: int
    wirelength: float
    front_wirelength: float
    back_wirelength: float
    runtime: float
    sinks: int

    @property
    def resource_count(self) -> int:
        """Buffers + nTSVs (the x-axis of Fig. 12)."""
        return self.buffers + self.ntsvs

    @property
    def backside_fraction(self) -> float:
        """Fraction of the clock wirelength routed on the back side."""
        if self.wirelength == 0:
            return 0.0
        return self.back_wirelength / self.wirelength

    def as_row(self) -> dict[str, float | int | str]:
        """Flat dictionary used by tables and benchmark output."""
        return {
            "design": self.design,
            "flow": self.flow,
            "latency_ps": round(self.latency, 3),
            "skew_ps": round(self.skew, 3),
            "buffers": self.buffers,
            "ntsvs": self.ntsvs,
            "wirelength_um": round(self.wirelength, 1),
            "back_wl_um": round(self.back_wirelength, 1),
            "runtime_s": round(self.runtime, 3),
        }

    def ratio_to(self, reference: "ClockTreeMetrics") -> dict[str, float]:
        """Return ``reference / self`` ratios (how much better *self* is).

        This matches the paper's convention in Table III, where the "Ratio"
        row normalises every method against "Ours" (so 2.223x means the other
        method's latency is 2.223 times larger).
        """
        def _ratio(a: float, b: float) -> float:
            if b == 0:
                return float("inf") if a > 0 else 1.0
            return a / b

        return {
            "latency": _ratio(reference.latency, self.latency),
            "skew": _ratio(reference.skew, self.skew),
            "buffers": _ratio(reference.buffers, self.buffers),
            "ntsvs": _ratio(reference.ntsvs, self.ntsvs),
            "wirelength": _ratio(reference.wirelength, self.wirelength),
            "runtime": _ratio(reference.runtime, self.runtime),
        }


def evaluate_tree(
    tree: ClockTree,
    pdk: Pdk,
    design: str = "",
    flow: str = "",
    runtime: float = 0.0,
    engine: str | None = None,
) -> ClockTreeMetrics:
    """Run the consistent evaluation of the paper on a synthesised tree.

    ``engine`` selects the timing engine by factory name (``"vectorized"``
    by default, ``"reference"`` for differential checks).
    """
    timing = create_engine(pdk, engine).analyze(tree)
    front_wl = tree.wirelength(Side.FRONT)
    back_wl = tree.wirelength(Side.BACK)
    return ClockTreeMetrics(
        design=design,
        flow=flow,
        latency=timing.latency,
        skew=timing.skew,
        buffers=tree.buffer_count(),
        ntsvs=tree.ntsv_count(),
        wirelength=front_wl + back_wl,
        front_wirelength=front_wl,
        back_wirelength=back_wl,
        runtime=runtime,
        sinks=tree.sink_count(),
    )

"""repro — multi-objective double-side clock tree synthesis.

A from-scratch Python reproduction of "A Systematic Approach for
Multi-objective Double-side Clock Tree Synthesis" (DAC 2025): hierarchical
clock routing, concurrent buffer and nTSV insertion by multi-objective
dynamic programming, skew refinement, design-space exploration, and the
baselines the paper compares against.

Quick start::

    from repro import asap7_backside, load_design, DoubleSideCTS

    pdk = asap7_backside()
    design = load_design("C4", scale=0.25)   # a scaled-down riscv32i
    result = DoubleSideCTS(pdk).run(design)
    print(result.metrics.as_row())
"""

from repro.tech import asap7_backside, CornerSet, Pdk, Scenario, Side
from repro.tech.pdk import asap7_frontside
from repro.netlist import Design, ClockNet, ClockSink, ClockSource
from repro.designs import load_design, benchmark_suite, BENCHMARK_SPECS
from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.flow import CtsConfig, DoubleSideCTS, SingleSideCTS
from repro.dse import DesignSpaceExplorer
from repro.evaluation import ClockTreeMetrics, evaluate_tree, ComparisonTable
from repro.baselines import (
    OpenRoadLikeCTS,
    VelosoBacksideOptimizer,
    FanoutBacksideOptimizer,
    TimingCriticalBacksideOptimizer,
    PdnAwareBacksideOptimizer,
)
from repro.visualization import render_tree_svg, render_scatter_svg

__version__ = "1.0.0"

__all__ = [
    "asap7_backside",
    "asap7_frontside",
    "Pdk",
    "Side",
    "Scenario",
    "CornerSet",
    "Design",
    "ClockNet",
    "ClockSink",
    "ClockSource",
    "load_design",
    "benchmark_suite",
    "BENCHMARK_SPECS",
    "ClockTree",
    "ClockTreeNode",
    "NodeKind",
    "CtsConfig",
    "DoubleSideCTS",
    "SingleSideCTS",
    "DesignSpaceExplorer",
    "ClockTreeMetrics",
    "evaluate_tree",
    "ComparisonTable",
    "OpenRoadLikeCTS",
    "VelosoBacksideOptimizer",
    "FanoutBacksideOptimizer",
    "TimingCriticalBacksideOptimizer",
    "PdnAwareBacksideOptimizer",
    "render_tree_svg",
    "render_scatter_svg",
    "__version__",
]

"""Clock routing: topology generation and deferred-merge embedding (DME).

Implements Section III-B of the paper:

* :mod:`repro.routing.topology` — abstract binary topologies over terminals
  and the greedy nearest-neighbour *matching* topology generator (Fig. 5(c)).
* :mod:`repro.routing.dme` — the scalar DME router (the executable spec):
  bottom-up merging-region construction with Elmore-balanced edge allotment,
  then top-down embedding that minimises wirelength.
* :mod:`repro.routing.dme_arrays` — the level-batched array DME backend
  (decision-identical to the scalar router) plus the shared
  :func:`~repro.routing.dme_arrays.create_dme_router` factory through which
  flow code selects backends (``CtsConfig.dme_backend`` / ``--dme-backend``
  / ``REPRO_DME_BACKEND``).
* :mod:`repro.routing.hierarchical` — the paper's hierarchical clock routing:
  dual-level clustering + per-cluster DME + top-level DME, producing the
  initial (unbuffered) :class:`~repro.clocktree.ClockTree`.
"""

from repro.routing.topology import TopologyNode, matching_topology, balanced_bipartition_topology
from repro.routing.dme import DmeRouter, DmeTerminal, EmbeddedNode
from repro.routing.dme_arrays import (
    DEFAULT_DME_BACKEND,
    DME_BACKEND_NAMES,
    VectorizedDmeRouter,
    create_dme_router,
    default_dme_backend,
    resolve_dme_backend,
)
from repro.routing.hierarchical import HierarchicalClockRouter, HierarchicalRoutingResult

__all__ = [
    "TopologyNode",
    "matching_topology",
    "balanced_bipartition_topology",
    "DmeRouter",
    "DmeTerminal",
    "EmbeddedNode",
    "DEFAULT_DME_BACKEND",
    "DME_BACKEND_NAMES",
    "VectorizedDmeRouter",
    "create_dme_router",
    "default_dme_backend",
    "resolve_dme_backend",
    "HierarchicalClockRouter",
    "HierarchicalRoutingResult",
]

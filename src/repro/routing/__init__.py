"""Clock routing: topology generation and deferred-merge embedding (DME).

Implements Section III-B of the paper:

* :mod:`repro.routing.topology` — abstract binary topologies over terminals
  and the greedy nearest-neighbour *matching* topology generator (Fig. 5(c)).
* :mod:`repro.routing.dme` — the DME router: bottom-up merging-region
  construction with Elmore-balanced edge allotment, then top-down embedding
  that minimises wirelength.
* :mod:`repro.routing.hierarchical` — the paper's hierarchical clock routing:
  dual-level clustering + per-cluster DME + top-level DME, producing the
  initial (unbuffered) :class:`~repro.clocktree.ClockTree`.
"""

from repro.routing.topology import TopologyNode, matching_topology, balanced_bipartition_topology
from repro.routing.dme import DmeRouter, DmeTerminal, EmbeddedNode
from repro.routing.hierarchical import HierarchicalClockRouter, HierarchicalRoutingResult

__all__ = [
    "TopologyNode",
    "matching_topology",
    "balanced_bipartition_topology",
    "DmeRouter",
    "DmeTerminal",
    "EmbeddedNode",
    "HierarchicalClockRouter",
    "HierarchicalRoutingResult",
]

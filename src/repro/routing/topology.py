"""Abstract binary topologies over routing terminals.

A topology fixes *which* terminals are merged together before DME decides
*where* the merge points are embedded.  Two generators are provided:

* :func:`matching_topology` — the classic greedy nearest-neighbour matching
  used by Edahiro-style DME (Fig. 5(c) of the paper); pairs of closest
  subtrees are merged level by level.
* :func:`balanced_bipartition_topology` — recursive geometric bisection,
  which the OpenROAD-like baseline uses to build H-tree style topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.geometry import Point


@dataclass
class TopologyNode:
    """A node of an abstract binary routing topology.

    Leaves carry ``terminal_index`` (an index into the caller's terminal
    list); internal nodes have exactly two children and no terminal index.
    ``location_hint`` caches the centroid of the subtree's terminals and is
    used only to guide matching decisions, never as a final embedding.
    """

    terminal_index: int | None = None
    children: list["TopologyNode"] = field(default_factory=list)
    location_hint: Point | None = None

    @property
    def is_leaf(self) -> bool:
        return self.terminal_index is not None

    def __post_init__(self) -> None:
        if self.is_leaf and self.children:
            raise ValueError("a leaf topology node cannot have children")

    def leaves(self) -> list["TopologyNode"]:
        """Return every leaf in the subtree (left-to-right order).

        Iterative — no per-level intermediate lists and no recursion, so
        deep chained (caterpillar) topologies of arbitrary depth work.
        """
        result: list["TopologyNode"] = []
        stack = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                result.append(node)
            else:
                stack.extend(reversed(node.children))
        return result

    def leaf_indices(self) -> list[int]:
        """Return the terminal indices of every leaf in the subtree."""
        return [leaf.terminal_index for leaf in self.leaves()]  # type: ignore[misc]

    def depth(self) -> int:
        """Height of the subtree (a single leaf has depth 0); iterative."""
        best = 0
        stack: list[tuple["TopologyNode", int]] = [(self, 0)]
        while stack:
            node, level = stack.pop()
            if node.is_leaf:
                best = max(best, level)
            else:
                stack.extend((child, level + 1) for child in node.children)
        return best

    def internal_count(self) -> int:
        """Number of internal (merge) nodes in the subtree; iterative."""
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                count += 1
                stack.extend(node.children)
        return count


def matching_topology(locations: Sequence[Point]) -> TopologyNode:
    """Greedy nearest-neighbour matching topology (bottom-up pairing).

    At every level the two mutually closest remaining subtrees are paired
    until a single root remains.  Ties and odd counts are handled by carrying
    the left-over subtree to the next level, which keeps the tree balanced
    (depth O(log n)) without quadratic blow-up on typical inputs.
    """
    if not locations:
        raise ValueError("cannot build a topology over zero terminals")
    level: list[TopologyNode] = [
        TopologyNode(terminal_index=i, location_hint=loc)
        for i, loc in enumerate(locations)
    ]
    while len(level) > 1:
        level = _pair_level(level)
    return level[0]


def _pair_level(nodes: list[TopologyNode]) -> list[TopologyNode]:
    """Pair up the nodes of one level by greedy nearest-neighbour matching."""
    remaining = list(range(len(nodes)))
    next_level: list[TopologyNode] = []
    used: set[int] = set()
    # Process in order of x then y so the greedy matching is deterministic.
    remaining.sort(key=lambda i: (nodes[i].location_hint.x, nodes[i].location_hint.y))
    for i in remaining:
        if i in used:
            continue
        best_j = None
        best_dist = float("inf")
        for j in remaining:
            if j == i or j in used:
                continue
            dist = nodes[i].location_hint.manhattan(nodes[j].location_hint)
            if dist < best_dist:
                best_dist = dist
                best_j = j
        if best_j is None:
            # Odd node out: promote it unchanged to the next level.
            next_level.append(nodes[i])
            used.add(i)
            continue
        used.add(i)
        used.add(best_j)
        a, b = nodes[i], nodes[best_j]
        hint = Point(
            (a.location_hint.x + b.location_hint.x) / 2.0,
            (a.location_hint.y + b.location_hint.y) / 2.0,
        )
        next_level.append(TopologyNode(children=[a, b], location_hint=hint))
    return next_level


def balanced_bipartition_topology(locations: Sequence[Point]) -> TopologyNode:
    """Recursive geometric bisection topology (H-tree flavoured).

    The terminal set is split in half along the longer dimension of its
    bounding box, recursively, producing a balanced binary topology whose
    cuts alternate naturally with the point distribution.  Used by the
    OpenROAD-style baseline CTS.
    """
    if not locations:
        raise ValueError("cannot build a topology over zero terminals")
    indices = list(range(len(locations)))
    return _bisect(indices, list(locations))


def _bisect(indices: list[int], locations: list[Point]) -> TopologyNode:
    if len(indices) == 1:
        idx = indices[0]
        return TopologyNode(terminal_index=idx, location_hint=locations[idx])
    xs = [locations[i].x for i in indices]
    ys = [locations[i].y for i in indices]
    split_on_x = (max(xs) - min(xs)) >= (max(ys) - min(ys))
    key = (lambda i: (locations[i].x, locations[i].y)) if split_on_x else (
        lambda i: (locations[i].y, locations[i].x)
    )
    ordered = sorted(indices, key=key)
    mid = len(ordered) // 2
    left = _bisect(ordered[:mid], locations)
    right = _bisect(ordered[mid:], locations)
    hint = Point(
        (left.location_hint.x + right.location_hint.x) / 2.0,
        (left.location_hint.y + right.location_hint.y) / 2.0,
    )
    return TopologyNode(children=[left, right], location_hint=hint)

"""Hierarchical clock routing (Section III-B of the paper).

The router combines dual-level clustering with DME:

1. dual-level K-means clustering of the sinks (``Hc`` / ``Lc``),
2. per-high-cluster DME routing with the low-level centroids as leaves,
3. a top-level DME over the high-level sub-roots toward the clock source,
4. star-routed leaf nets from each low-level centroid (a *tap*) to its sinks.

The output is an unbuffered, all-front-side :class:`~repro.clocktree.ClockTree`
whose trunk edges are later processed by the concurrent buffer and nTSV
insertion.  A non-hierarchical "flat matching DME" mode is also provided for
the ablation against Fig. 5(c).

**Region-parallel construction (the scaled tier).**  On the IR path
(:meth:`HierarchicalClockRouter.route_design`) with ``workers > 1``, the
independent per-high-cluster work — low-level clustering, tap-terminal
lumping, DME embedding, and shard materialisation — fans out over a process
pool: each worker routes its region into its own :class:`DesignArrays`
shard, and a deterministic serial merge stitches the shards into one design
in the serial flow's exact row and name order
(:meth:`~repro.ir.design.DesignArrays.graft`).  The result is bit-identical
to the serial route at every worker count; the object path
(:meth:`~HierarchicalClockRouter.route`) always runs serially.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

import numpy as np

from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.clocktree.arrays import KIND_SINK, KIND_STEINER, KIND_TAP
from repro.clocktree.tree import ConnectivityError
from repro.clustering import (
    Cluster,
    DualLevelClustering,
    dual_level_clustering,
    low_clusters_for_high,
)
from repro.clustering.dual_level import _cluster_sinks
from repro.geometry import Point
from repro.ir.design import DesignArrays
from repro.netlist.clock import ClockNet, ClockSink
from repro.routing.dme import DmeTerminal, EmbeddedNode
from repro.routing.dme_arrays import (
    DmeEmbedding,
    VectorizedDmeRouter,
    create_dme_router,
    resolve_dme_backend,
)
from repro.tech.layers import LayerRC, Side
from repro.tech.pdk import Pdk

if TYPE_CHECKING:  # deferred at runtime: repro.flow.config imports the flow pkg
    from repro.flow.config import CtsConfig


@dataclass
class HierarchicalRoutingResult:
    """The routed (unbuffered) clock tree plus the clustering used to build it."""

    tree: ClockTree
    clustering: DualLevelClustering | None
    trunk_wirelength: float
    leaf_wirelength: float
    tap_nodes: list[ClockTreeNode] = field(default_factory=list)

    @property
    def total_wirelength(self) -> float:
        return self.trunk_wirelength + self.leaf_wirelength


@dataclass
class DesignRoutingResult:
    """Array-IR twin of :class:`HierarchicalRoutingResult`.

    Taps are recorded by *name* (rows are renumbered whenever the design is
    compacted, names are stable for the lifetime of the node).
    """

    design: DesignArrays
    clustering: DualLevelClustering | None
    trunk_wirelength: float
    leaf_wirelength: float
    tap_names: list[str] = field(default_factory=list)
    #: Pool tasks the region-parallel path fanned out (0 when serial) and
    #: the recovery events (retries, degrade-to-serial) recorded for them.
    parallel_tasks: int = 0
    parallel_diagnostics: list = field(default_factory=list)

    @property
    def total_wirelength(self) -> float:
        return self.trunk_wirelength + self.leaf_wirelength


class _DmeCursor:
    """:class:`EmbeddedNode`-shaped read view over a :class:`DmeEmbedding`.

    Lets the design materialisers walk the array-form DME solution with the
    exact traversal the object materialisers use, without realising
    EmbeddedNode objects.
    """

    __slots__ = ("_emb", "_index")

    def __init__(self, emb: DmeEmbedding, index: int = 0) -> None:
        self._emb = emb
        self._index = index

    @property
    def is_leaf(self) -> bool:
        if self._emb.arrays is None:
            return True
        return int(self._emb.arrays.term[self._index]) >= 0

    @property
    def terminal(self) -> DmeTerminal:
        if self._emb.arrays is None:
            return self._emb.terminals[0]
        return self._emb.terminals[int(self._emb.arrays.term[self._index])]

    @property
    def location(self) -> Point:
        if self.is_leaf:
            return self.terminal.location
        return Point(float(self._emb.x[self._index]), float(self._emb.y[self._index]))

    @property
    def children(self) -> list["_DmeCursor"]:
        arrays = self._emb.arrays
        return [
            _DmeCursor(self._emb, int(arrays.left[self._index])),
            _DmeCursor(self._emb, int(arrays.right[self._index])),
        ]


def _root_cursor(embedding: "DmeEmbedding | EmbeddedNode"):
    """Uniform walkable root for array-form and object-form embeddings."""
    if isinstance(embedding, DmeEmbedding):
        return _DmeCursor(embedding)
    return embedding


def _tap_terminal(low: Cluster, layer: LayerRC) -> DmeTerminal:
    """Lump a low-level cluster (tap + star leaf net) into a DME terminal.

    Vectorized over the cluster's cached member columns, bit-equal to the
    per-sink loop it replaced: each elementwise product is the same single
    float operation ``layer.wire_capacitance`` / ``layer.wire_delay`` would
    perform, the capacitance sums run in member order (Python ``sum`` over
    the element list), and ``max`` is order-independent.
    """
    xs, ys, caps = low.columns()
    dists = np.abs(low.centroid.x - xs) + np.abs(low.centroid.y - ys)
    wire_cap = sum((layer.unit_capacitance * dists).tolist())
    sink_cap = sum(caps.tolist())
    delays = (layer.unit_resistance * dists) * (layer.unit_capacitance * dists + caps)
    max_delay = max(0.0, max(delays.tolist()))
    return DmeTerminal(
        name=f"tap_{low.index}",
        location=low.centroid,
        capacitance=wire_cap + sink_cap,
        delay=max_delay,
    )


def _embed(router, terminals, root_location) -> "DmeEmbedding | EmbeddedNode":
    """Run DME keeping the vectorized solution in array form."""
    if isinstance(router, VectorizedDmeRouter):
        return router.embed(terminals, root_location=root_location)
    return router.route(terminals, root_location=root_location)


def _materialise_sub_design(
    design: DesignArrays,
    parent_row: int,
    embedding: "DmeEmbedding | EmbeddedNode",
    lows: list[Cluster],
    tap_names: list[str],
) -> int:
    low_by_name = {f"tap_{low.index}": low for low in lows}
    return _materialise_design_node(
        design, parent_row, _root_cursor(embedding), low_by_name, tap_names
    )


def _materialise_design_node(
    design: DesignArrays,
    parent_row: int,
    node,
    low_by_name: dict[str, Cluster],
    tap_names: list[str],
) -> int:
    """Row twin of :meth:`HierarchicalClockRouter._materialise_node`
    (same names, same order).  Module-level so region workers can
    materialise their shard without a router instance."""
    if node.is_leaf:
        low = low_by_name[node.terminal.name]
        tap_row = design.add_child(
            parent_row, node.terminal.name, KIND_TAP, low.centroid.x, low.centroid.y
        )
        tap_names.append(node.terminal.name)
        design.add_children(
            tap_row,
            [sink.name for sink in low.sinks],
            KIND_SINK,
            [sink.location.x for sink in low.sinks],
            [sink.location.y for sink in low.sinks],
            [sink.capacitance for sink in low.sinks],
        )
        return tap_row
    location = node.location
    steiner = design.add_child(
        parent_row, design.new_name("st"), KIND_STEINER, location.x, location.y
    )
    for child in node.children:
        _materialise_design_node(design, steiner, child, low_by_name, tap_names)
    return steiner


# ------------------------------------------------- region-parallel workers
@dataclass
class _RegionShard:
    """One worker's routed region plus everything the serial merge needs.

    ``low_members`` holds, per low cluster, positions into the high
    cluster's member list (the merge rebuilds the clustering around the
    original sink objects, which never cross the process boundary back).
    """

    high_index: int
    shard: DesignArrays
    low_members: list[list[int]]
    low_centroids: list[tuple[float, float]]
    root_x: float
    root_y: float
    root_capacitance: float
    root_delay: float


def _route_region_shard(payload) -> _RegionShard:
    """Route one high cluster into a fresh shard (runs in a worker process).

    Performs exactly the serial per-region sequence — low-level clustering
    (same per-region seed), tap-terminal lumping, DME embedding, shard
    materialisation — so every float and every local name matches what the
    serial loop would produce for this region.
    """
    (
        high_index,
        centroid_xy,
        sinks,
        low_size,
        seed,
        balanced,
        max_leaf_capacitance,
        unit_wire_capacitance,
        layer,
        dme_backend,
    ) = payload
    centroid = Point(centroid_xy[0], centroid_xy[1])
    low_groups = low_clusters_for_high(
        sinks,
        low_size,
        seed,
        high_index,
        balanced=balanced,
        max_leaf_capacitance=max_leaf_capacitance,
        unit_wire_capacitance=unit_wire_capacitance,
    )
    lows = [
        Cluster(index=i, centroid=c, sinks=members, parent_index=high_index)
        for i, (c, members) in enumerate(low_groups)
    ]
    router = create_dme_router(layer, backend=dme_backend)
    terminals = [_tap_terminal(low, layer) for low in lows]
    embedding = _embed(router, terminals, centroid)
    shard = DesignArrays(name=f"region_{high_index}")
    shard.add_root("__region__", centroid.x, centroid.y)
    tap_names: list[str] = []
    _materialise_sub_design(shard, 0, embedding, lows, tap_names)
    root_location = _root_cursor(embedding).location
    if isinstance(embedding, DmeEmbedding):
        root_capacitance = embedding.root_capacitance
        root_delay = embedding.root_delay
    else:
        root_capacitance = embedding.subtree_capacitance
        root_delay = embedding.subtree_delay
    position_of = {id(sink): i for i, sink in enumerate(sinks)}
    return _RegionShard(
        high_index=high_index,
        shard=shard,
        low_members=[[position_of[id(s)] for s in low.sinks] for low in lows],
        low_centroids=[(low.centroid.x, low.centroid.y) for low in lows],
        root_x=root_location.x,
        root_y=root_location.y,
        root_capacitance=float(root_capacitance),
        root_delay=float(root_delay),
    )


def _probe_region_shard(region: _RegionShard, expected_sinks: int) -> None:
    """Shard-level stage probe: reject a malformed worker result pre-merge.

    Cheap structural checks (connectivity, tombstones, sink coverage) that
    catch worker-side corruption before the merge stitches the shard into
    the flow design — the scaled tier's guard surface.
    """
    shard = region.shard
    if shard.dead_count:
        raise ConnectivityError(
            f"region {region.high_index}: shard carries tombstoned rows"
        )
    reached = sum(int(level.size) for level in shard.levels())
    if reached != shard.size:
        raise ConnectivityError(
            f"region {region.high_index}: {shard.size - reached} shard rows "
            "unreachable from the region root"
        )
    sinks = int(shard.sink_rows().size)
    if sinks != expected_sinks:
        raise ConnectivityError(
            f"region {region.high_index}: shard covers {sinks} sinks, "
            f"expected {expected_sinks}"
        )


def _validate_region_shard(region: _RegionShard, payload) -> None:
    """``run_tasks`` validate hook: probe a worker's shard against its payload.

    Runs on the main process before the shard can reach the merge; a
    malformed shard (worker-side corruption) counts as a failed attempt and
    goes through the retry / degrade-to-serial ladder instead of aborting
    the flow.
    """
    expected_high, _, members = payload[0], payload[1], payload[2]
    if region.high_index != expected_high:
        raise ConnectivityError(
            f"worker returned region {region.high_index}, "
            f"expected {expected_high}"
        )
    _probe_region_shard(region, len(members))


class HierarchicalClockRouter:
    """Builds the initial clock tree topology of the paper's flow."""

    _LOOSE_KWARGS_KEY = "HierarchicalClockRouter.loose-kwargs"

    def __init__(
        self,
        pdk: Pdk,
        high_cluster_size: int | None = None,
        low_cluster_size: int | None = None,
        seed: int | None = None,
        hierarchical: bool | None = None,
        dme_backend: str | None = None,
        config: "CtsConfig | None" = None,
    ) -> None:
        """Preferred construction is ``HierarchicalClockRouter(pdk, config=cfg)``
        — clustering shape, seed, hierarchy mode, and the DME backend all come
        from the :class:`~repro.flow.config.CtsConfig` (backends through
        ``config.resolved_backends()``).  The loose keyword arguments are
        deprecated; they still win over ``config`` but warn once per process.
        """
        loose = {
            key: value
            for key, value in (
                ("high_cluster_size", high_cluster_size),
                ("low_cluster_size", low_cluster_size),
                ("seed", seed),
                ("hierarchical", hierarchical),
                ("dme_backend", dme_backend),
            )
            if value is not None
        }
        # Deferred import: repro.flow imports this module at package init.
        from repro.flow.config import CtsConfig, warn_deprecated_once

        if loose:
            warn_deprecated_once(
                self._LOOSE_KWARGS_KEY,
                "HierarchicalClockRouter(high_cluster_size=..., "
                "low_cluster_size=..., seed=..., hierarchical=..., "
                "dme_backend=...) is deprecated; pass config=CtsConfig(...) "
                "(backends via CtsConfig.backends) instead",
            )
        if config is None:
            config = CtsConfig()
        self.pdk = pdk
        self.high_cluster_size = (
            high_cluster_size
            if high_cluster_size is not None
            else config.high_cluster_size
        )
        self.low_cluster_size = (
            low_cluster_size
            if low_cluster_size is not None
            else config.low_cluster_size
        )
        self.seed = seed if seed is not None else config.seed
        self.hierarchical = (
            hierarchical if hierarchical is not None else config.hierarchical_routing
        )
        if dme_backend is not None:
            self.dme_backend = resolve_dme_backend(dme_backend)
        else:
            self.dme_backend = config.resolved_backends().dme
        self.workers = config.resolved_workers()
        self.parallel_policy = config.resolved_parallel_policy()
        if self.high_cluster_size < self.low_cluster_size:
            raise ValueError("high-level cluster size must be >= low-level size")

    # ---------------------------------------------------------------- public
    def route(self, clock_net: ClockNet) -> HierarchicalRoutingResult:
        """Route ``clock_net`` and return the initial clock tree."""
        if clock_net.sink_count == 0:
            raise ValueError("clock net has no sinks")
        if self.hierarchical:
            return self._route_hierarchical(clock_net)
        return self._route_flat(clock_net)

    def route_design(self, clock_net: ClockNet) -> DesignRoutingResult:
        """Route ``clock_net`` straight into a :class:`DesignArrays` (IR entry).

        Decision-identical to :meth:`route`: same clustering, same DME
        embeddings, and the same node names assigned in the same creation
        order, so ``result.design.to_clock_tree()`` fingerprints equal to the
        object route's tree.  The vectorized DME backend feeds the design rows
        directly from its array-form solution; the reference backend walks the
        scalar router's embedded tree (its sanctioned object boundary).
        """
        if clock_net.sink_count == 0:
            raise ValueError("clock net has no sinks")
        if self.hierarchical:
            return self._route_hierarchical_design(clock_net)
        return self._route_flat_design(clock_net)

    # --------------------------------------------------------- hierarchical
    def _route_hierarchical(self, clock_net: ClockNet) -> HierarchicalRoutingResult:
        layer = self.pdk.front_layer
        clustering = dual_level_clustering(
            clock_net.sinks,
            high_size=self.high_cluster_size,
            low_size=self.low_cluster_size,
            seed=self.seed,
            max_leaf_capacitance=0.9 * self.pdk.max_capacitance,
            unit_wire_capacitance=layer.unit_capacitance,
        )
        router = create_dme_router(layer, backend=self.dme_backend)

        root = ClockTreeNode(
            name="clkroot",
            kind=NodeKind.ROOT,
            location=clock_net.source.location,
            side=Side.FRONT,
        )
        tree = ClockTree(root, name=clock_net.name)
        tap_nodes: list[ClockTreeNode] = []

        sub_roots: list[tuple[EmbeddedNode, list[Cluster]]] = []
        for high in clustering.high_clusters:
            lows = clustering.low_clusters_of(high.index)
            terminals = [self._tap_terminal(low, layer) for low in lows]
            embedded = router.route(terminals, root_location=high.centroid)
            sub_roots.append((embedded, lows))

        if len(sub_roots) == 1:
            embedded, lows = sub_roots[0]
            top_child = self._materialise(tree, root, embedded, lows, tap_nodes)
        else:
            # Top-level DME over the high-cluster sub-roots.
            top_terminals = [
                DmeTerminal(
                    name=f"high_{i}",
                    location=embedded.location,
                    capacitance=embedded.subtree_capacitance,
                    delay=embedded.subtree_delay,
                )
                for i, (embedded, _lows) in enumerate(sub_roots)
            ]
            top_embedded = router.route(
                top_terminals, root_location=clock_net.source.location
            )
            top_child = self._materialise_top(
                tree, root, top_embedded, sub_roots, tap_nodes
            )

        trunk_wl = tree.wirelength() - self._leaf_wirelength(tap_nodes)
        return HierarchicalRoutingResult(
            tree=tree,
            clustering=clustering,
            trunk_wirelength=trunk_wl,
            leaf_wirelength=self._leaf_wirelength(tap_nodes),
            tap_nodes=tap_nodes,
        )

    def _tap_terminal(self, low: Cluster, layer) -> DmeTerminal:
        return _tap_terminal(low, layer)

    # --------------------------------------------------------------- flat DME
    def _route_flat(self, clock_net: ClockNet) -> HierarchicalRoutingResult:
        """Matching-based DME straight over all sinks (Fig. 5(c) baseline)."""
        layer = self.pdk.front_layer
        router = create_dme_router(layer, backend=self.dme_backend)
        terminals = [
            DmeTerminal(name=s.name, location=s.location, capacitance=s.capacitance)
            for s in clock_net.sinks
        ]
        embedded = router.route(terminals, root_location=clock_net.source.location)
        root = ClockTreeNode(
            name="clkroot",
            kind=NodeKind.ROOT,
            location=clock_net.source.location,
            side=Side.FRONT,
        )
        tree = ClockTree(root, name=clock_net.name)
        self._materialise_flat(tree, root, embedded, clock_net)
        return HierarchicalRoutingResult(
            tree=tree,
            clustering=None,
            trunk_wirelength=tree.wirelength(),
            leaf_wirelength=0.0,
            tap_nodes=[],
        )

    # --------------------------------------------------------- materialising
    def _materialise(
        self,
        tree: ClockTree,
        parent: ClockTreeNode,
        embedded: EmbeddedNode,
        lows: list[Cluster],
        tap_nodes: list[ClockTreeNode],
    ) -> ClockTreeNode:
        """Convert an embedded sub-DME into clock tree nodes below ``parent``."""
        low_by_name = {f"tap_{low.index}": low for low in lows}
        return self._materialise_node(tree, parent, embedded, low_by_name, tap_nodes)

    def _materialise_top(
        self,
        tree: ClockTree,
        root: ClockTreeNode,
        top_embedded: EmbeddedNode,
        sub_roots: list[tuple[EmbeddedNode, list[Cluster]]],
        tap_nodes: list[ClockTreeNode],
    ) -> ClockTreeNode:
        """Materialise the top-level DME; its leaves expand into sub-DMEs."""

        def expand(parent: ClockTreeNode, node: EmbeddedNode) -> ClockTreeNode:
            if node.is_leaf:
                index = int(node.terminal.name.split("_")[1])
                embedded, lows = sub_roots[index]
                return self._materialise(tree, parent, embedded, lows, tap_nodes)
            steiner = ClockTreeNode(
                name=tree.new_name("st"),
                kind=NodeKind.STEINER,
                location=node.location,
                side=Side.FRONT,
                wire_side=Side.FRONT,
            )
            parent.add_child(steiner)
            for child in node.children:
                expand(steiner, child)
            return steiner

        return expand(root, top_embedded)

    def _materialise_node(
        self,
        tree: ClockTree,
        parent: ClockTreeNode,
        embedded: EmbeddedNode,
        low_by_name: dict[str, Cluster],
        tap_nodes: list[ClockTreeNode],
    ) -> ClockTreeNode:
        if embedded.is_leaf:
            low = low_by_name[embedded.terminal.name]
            tap = ClockTreeNode(
                name=embedded.terminal.name,
                kind=NodeKind.TAP,
                location=low.centroid,
                side=Side.FRONT,
                wire_side=Side.FRONT,
            )
            parent.add_child(tap)
            tap_nodes.append(tap)
            for sink in low.sinks:
                tap.add_child(
                    ClockTreeNode(
                        name=sink.name,
                        kind=NodeKind.SINK,
                        location=sink.location,
                        side=Side.FRONT,
                        capacitance=sink.capacitance,
                        wire_side=Side.FRONT,
                    )
                )
            return tap
        steiner = ClockTreeNode(
            name=tree.new_name("st"),
            kind=NodeKind.STEINER,
            location=embedded.location,
            side=Side.FRONT,
            wire_side=Side.FRONT,
        )
        parent.add_child(steiner)
        for child in embedded.children:
            self._materialise_node(tree, steiner, child, low_by_name, tap_nodes)
        return steiner

    def _materialise_flat(
        self,
        tree: ClockTree,
        parent: ClockTreeNode,
        embedded: EmbeddedNode,
        clock_net: ClockNet,
    ) -> ClockTreeNode:
        if embedded.is_leaf:
            sink = clock_net.sink_by_name(embedded.terminal.name)
            node = ClockTreeNode(
                name=sink.name,
                kind=NodeKind.SINK,
                location=sink.location,
                side=Side.FRONT,
                capacitance=sink.capacitance,
                wire_side=Side.FRONT,
            )
            parent.add_child(node)
            return node
        steiner = ClockTreeNode(
            name=tree.new_name("st"),
            kind=NodeKind.STEINER,
            location=embedded.location,
            side=Side.FRONT,
            wire_side=Side.FRONT,
        )
        parent.add_child(steiner)
        for child in embedded.children:
            self._materialise_flat(tree, steiner, child, clock_net)
        return steiner

    # ------------------------------------------------- IR (DesignArrays) path
    def _embed(self, router, terminals, root_location) -> "DmeEmbedding | EmbeddedNode":
        return _embed(router, terminals, root_location)

    def _route_hierarchical_design(self, clock_net: ClockNet) -> DesignRoutingResult:
        layer = self.pdk.front_layer
        if self.workers > 1:
            high_groups = _cluster_sinks(
                clock_net.sinks, self.high_cluster_size, self.seed, True
            )
            if len(high_groups) > 1:
                return self._route_parallel_design(clock_net, layer, high_groups)
        clustering = dual_level_clustering(
            clock_net.sinks,
            high_size=self.high_cluster_size,
            low_size=self.low_cluster_size,
            seed=self.seed,
            max_leaf_capacitance=0.9 * self.pdk.max_capacitance,
            unit_wire_capacitance=layer.unit_capacitance,
        )
        router = create_dme_router(layer, backend=self.dme_backend)

        design = DesignArrays(name=clock_net.name)
        source = clock_net.source.location
        root_row = design.add_root("clkroot", source.x, source.y)
        tap_names: list[str] = []

        sub_roots: list[tuple[DmeEmbedding | EmbeddedNode, list[Cluster]]] = []
        for high in clustering.high_clusters:
            lows = clustering.low_clusters_of(high.index)
            terminals = [self._tap_terminal(low, layer) for low in lows]
            embedding = self._embed(router, terminals, high.centroid)
            sub_roots.append((embedding, lows))

        if len(sub_roots) == 1:
            embedding, lows = sub_roots[0]
            self._materialise_sub_design(design, root_row, embedding, lows, tap_names)
        else:
            top_terminals = [
                DmeTerminal(
                    name=f"high_{i}",
                    location=_root_cursor(embedding).location,
                    capacitance=(
                        embedding.root_capacitance
                        if isinstance(embedding, DmeEmbedding)
                        else embedding.subtree_capacitance
                    ),
                    delay=(
                        embedding.root_delay
                        if isinstance(embedding, DmeEmbedding)
                        else embedding.subtree_delay
                    ),
                )
                for i, (embedding, _lows) in enumerate(sub_roots)
            ]
            top_embedding = self._embed(router, top_terminals, source)
            self._materialise_top_design(
                design, root_row, _root_cursor(top_embedding), sub_roots, tap_names
            )

        leaf_wl = self._leaf_wirelength_design(design, tap_names)
        trunk_wl = design.wirelength() - leaf_wl
        return DesignRoutingResult(
            design=design,
            clustering=clustering,
            trunk_wirelength=trunk_wl,
            leaf_wirelength=leaf_wl,
            tap_names=tap_names,
        )

    def _route_parallel_design(
        self,
        clock_net: ClockNet,
        layer: LayerRC,
        high_groups: list[tuple[Point, list[ClockSink]]],
    ) -> DesignRoutingResult:
        """Region-parallel twin of :meth:`_route_hierarchical_design`.

        Fans the per-high-cluster work out over the shared process pool and
        stitches the returned shards back in the serial flow's exact row and
        name order, so the merged design fingerprints bit-equal to the serial
        route at every worker count.

        Shards travel through the fault-tolerant
        :func:`~repro.parallel.run_tasks` map: a crashed, hung, or
        corrupting worker gets its region retried on the pool and, failing
        that, recomputed inline by the same module-level worker function —
        bit-identical by construction — with a
        :class:`~repro.parallel.ParallelDiagnostic` recorded on the result
        (``strict`` policy raises :class:`~repro.parallel.ParallelError`
        instead, which is never caught here or anywhere downstream).
        """
        from repro.parallel import run_tasks

        payloads = [
            (
                high_index,
                (centroid.x, centroid.y),
                members,
                self.low_cluster_size,
                self.seed,
                True,
                0.9 * self.pdk.max_capacitance,
                layer.unit_capacitance,
                layer,
                self.dme_backend,
            )
            for high_index, (centroid, members) in enumerate(high_groups)
        ]
        diagnostics: list = []
        regions = run_tasks(
            "routing",
            _route_region_shard,
            payloads,
            min(self.workers, len(payloads)),
            policy=self.parallel_policy,
            validate=_validate_region_shard,
            diagnostics=diagnostics,
            label=lambda i, payload: f"region {payload[0]}",
        )
        regions = sorted(regions, key=lambda r: r.high_index)

        # Rebuild the clustering around the ORIGINAL sink objects (the
        # worker copies never travel back; only member positions do).
        # Every shard was already probed by the run_tasks validate hook
        # before it could reach this merge.
        high_clusters: list[Cluster] = []
        low_clusters: list[Cluster] = []
        tap_bases: list[int] = []
        for region, (centroid, members) in zip(regions, high_groups):
            high_clusters.append(
                Cluster(index=region.high_index, centroid=centroid, sinks=members)
            )
            tap_bases.append(len(low_clusters))
            for (cx, cy), positions in zip(region.low_centroids, region.low_members):
                low_clusters.append(
                    Cluster(
                        index=len(low_clusters),
                        centroid=Point(cx, cy),
                        sinks=[members[p] for p in positions],
                        parent_index=region.high_index,
                    )
                )
        clustering = DualLevelClustering(
            high_clusters=high_clusters,
            low_clusters=low_clusters,
            high_size_target=self.high_cluster_size,
            low_size_target=self.low_cluster_size,
        )
        clustering.validate()

        router = create_dme_router(layer, backend=self.dme_backend)
        design = DesignArrays(name=clock_net.name)
        source = clock_net.source.location
        root_row = design.add_root("clkroot", source.x, source.y)
        tap_names: list[str] = []

        top_terminals = [
            DmeTerminal(
                name=f"high_{region.high_index}",
                location=Point(region.root_x, region.root_y),
                capacitance=region.root_capacitance,
                delay=region.root_delay,
            )
            for region in regions
        ]
        top_embedding = self._embed(router, top_terminals, source)
        self._stitch_top_design(
            design,
            root_row,
            _root_cursor(top_embedding),
            regions,
            tap_bases,
            tap_names,
        )

        leaf_wl = self._leaf_wirelength_design(design, tap_names)
        trunk_wl = design.wirelength() - leaf_wl
        return DesignRoutingResult(
            design=design,
            clustering=clustering,
            trunk_wirelength=trunk_wl,
            leaf_wirelength=leaf_wl,
            tap_names=tap_names,
            parallel_tasks=len(payloads),
            parallel_diagnostics=diagnostics,
        )

    def _stitch_top_design(
        self,
        design: DesignArrays,
        root_row: int,
        top_node,
        regions: list[_RegionShard],
        tap_bases: list[int],
        tap_names: list[str],
    ) -> int:
        """Row twin of :meth:`_materialise_top_design` over routed shards:
        top-level steiners are created in DFS order, and each ``high_{i}``
        leaf grafts region ``i``'s shard instead of expanding a sub-DME."""

        def expand(parent_row: int, node) -> int:
            if node.is_leaf:
                index = int(node.terminal.name.split("_")[1])
                return self._graft_region(
                    design, parent_row, regions[index], tap_bases[index], tap_names
                )
            location = node.location
            steiner = design.add_child(
                parent_row, design.new_name("st"), KIND_STEINER, location.x, location.y
            )
            for child in node.children:
                expand(steiner, child)
            return steiner

        return expand(root_row, top_node)

    def _graft_region(
        self,
        design: DesignArrays,
        parent_row: int,
        region: _RegionShard,
        tap_base: int,
        tap_names: list[str],
    ) -> int:
        """Splice one shard under ``parent_row`` with serial-order names.

        Shard rows were appended in DFS creation order, so walking them
        ascending replays the serial expansion of this region exactly:
        steiner rows draw the next ``st_{n}`` from the design's shared
        counter, tap rows translate their shard-local index to the global
        low-cluster index, and sink rows keep their design names.
        """
        shard = region.shard
        names: list[str] = []
        region_taps: list[str] = []
        for row in range(1, shard.size):
            local = shard.names[row]
            if shard.kind[row] == KIND_STEINER:
                names.append(design.new_name("st"))
            elif shard.kind[row] == KIND_TAP:
                name = f"tap_{tap_base + int(local.split('_')[1])}"
                names.append(name)
                region_taps.append(name)
            else:
                names.append(local)
        rows = design.graft(shard, parent_row, names)
        tap_names.extend(region_taps)
        return int(rows[0])

    def _route_flat_design(self, clock_net: ClockNet) -> DesignRoutingResult:
        layer = self.pdk.front_layer
        router = create_dme_router(layer, backend=self.dme_backend)
        terminals = [
            DmeTerminal(name=s.name, location=s.location, capacitance=s.capacitance)
            for s in clock_net.sinks
        ]
        embedding = self._embed(router, terminals, clock_net.source.location)
        design = DesignArrays(name=clock_net.name)
        source = clock_net.source.location
        root_row = design.add_root("clkroot", source.x, source.y)
        self._materialise_flat_design(
            design, root_row, _root_cursor(embedding), clock_net
        )
        return DesignRoutingResult(
            design=design,
            clustering=None,
            trunk_wirelength=design.wirelength(),
            leaf_wirelength=0.0,
            tap_names=[],
        )

    def _materialise_sub_design(
        self,
        design: DesignArrays,
        parent_row: int,
        embedding: "DmeEmbedding | EmbeddedNode",
        lows: list[Cluster],
        tap_names: list[str],
    ) -> int:
        return _materialise_sub_design(design, parent_row, embedding, lows, tap_names)

    def _materialise_top_design(
        self,
        design: DesignArrays,
        root_row: int,
        top_node,
        sub_roots: "list[tuple[DmeEmbedding | EmbeddedNode, list[Cluster]]]",
        tap_names: list[str],
    ) -> int:
        """Row twin of :meth:`_materialise_top`."""

        def expand(parent_row: int, node) -> int:
            if node.is_leaf:
                index = int(node.terminal.name.split("_")[1])
                embedding, lows = sub_roots[index]
                return self._materialise_sub_design(
                    design, parent_row, embedding, lows, tap_names
                )
            location = node.location
            steiner = design.add_child(
                parent_row, design.new_name("st"), KIND_STEINER, location.x, location.y
            )
            for child in node.children:
                expand(steiner, child)
            return steiner

        return expand(root_row, top_node)

    def _materialise_flat_design(
        self,
        design: DesignArrays,
        parent_row: int,
        node,
        clock_net: ClockNet,
    ) -> int:
        """Row twin of :meth:`_materialise_flat`."""
        if node.is_leaf:
            sink = clock_net.sink_by_name(node.terminal.name)
            return design.add_child(
                parent_row,
                sink.name,
                KIND_SINK,
                sink.location.x,
                sink.location.y,
                capacitance=sink.capacitance,
            )
        location = node.location
        steiner = design.add_child(
            parent_row, design.new_name("st"), KIND_STEINER, location.x, location.y
        )
        for child in node.children:
            self._materialise_flat_design(design, steiner, child, clock_net)
        return steiner

    @staticmethod
    def _leaf_wirelength_design(design: DesignArrays, tap_names: list[str]) -> float:
        """Star leaf-net wirelength below the named taps (um)."""
        total = 0.0
        for name in tap_names:
            tap = design.name_to_row[name]
            for child in design.children_rows[tap]:
                if design.kind[child] == KIND_SINK:
                    total += float(design.edge_length[child])
        return total

    # ------------------------------------------------------------------ misc
    @staticmethod
    def _leaf_wirelength(tap_nodes: list[ClockTreeNode]) -> float:
        """Total wirelength of the star leaf nets below all taps (um)."""
        total = 0.0
        for tap in tap_nodes:
            for child in tap.children:
                if child.is_sink:
                    total += tap.location.manhattan(child.location)
        return total

"""Hierarchical clock routing (Section III-B of the paper).

The router combines dual-level clustering with DME:

1. dual-level K-means clustering of the sinks (``Hc`` / ``Lc``),
2. per-high-cluster DME routing with the low-level centroids as leaves,
3. a top-level DME over the high-level sub-roots toward the clock source,
4. star-routed leaf nets from each low-level centroid (a *tap*) to its sinks.

The output is an unbuffered, all-front-side :class:`~repro.clocktree.ClockTree`
whose trunk edges are later processed by the concurrent buffer and nTSV
insertion.  A non-hierarchical "flat matching DME" mode is also provided for
the ablation against Fig. 5(c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.clustering import Cluster, DualLevelClustering, dual_level_clustering
from repro.netlist.clock import ClockNet
from repro.routing.dme import DmeTerminal, EmbeddedNode
from repro.routing.dme_arrays import create_dme_router, resolve_dme_backend
from repro.tech.layers import Side
from repro.tech.pdk import Pdk


@dataclass
class HierarchicalRoutingResult:
    """The routed (unbuffered) clock tree plus the clustering used to build it."""

    tree: ClockTree
    clustering: DualLevelClustering | None
    trunk_wirelength: float
    leaf_wirelength: float
    tap_nodes: list[ClockTreeNode] = field(default_factory=list)

    @property
    def total_wirelength(self) -> float:
        return self.trunk_wirelength + self.leaf_wirelength


class HierarchicalClockRouter:
    """Builds the initial clock tree topology of the paper's flow."""

    def __init__(
        self,
        pdk: Pdk,
        high_cluster_size: int = 3000,
        low_cluster_size: int = 30,
        seed: int = 2025,
        hierarchical: bool = True,
        dme_backend: str | None = None,
    ) -> None:
        """``dme_backend`` selects the DME engine (``"vectorized"`` — the
        level-batched array router, the default — or ``"reference"`` — the
        per-node scalar spec); ``None`` resolves ``REPRO_DME_BACKEND`` /
        the library default.  Both backends embed identical trees."""
        if high_cluster_size < low_cluster_size:
            raise ValueError("high-level cluster size must be >= low-level size")
        self.pdk = pdk
        self.high_cluster_size = high_cluster_size
        self.low_cluster_size = low_cluster_size
        self.seed = seed
        self.hierarchical = hierarchical
        self.dme_backend = resolve_dme_backend(dme_backend)

    # ---------------------------------------------------------------- public
    def route(self, clock_net: ClockNet) -> HierarchicalRoutingResult:
        """Route ``clock_net`` and return the initial clock tree."""
        if clock_net.sink_count == 0:
            raise ValueError("clock net has no sinks")
        if self.hierarchical:
            return self._route_hierarchical(clock_net)
        return self._route_flat(clock_net)

    # --------------------------------------------------------- hierarchical
    def _route_hierarchical(self, clock_net: ClockNet) -> HierarchicalRoutingResult:
        layer = self.pdk.front_layer
        clustering = dual_level_clustering(
            clock_net.sinks,
            high_size=self.high_cluster_size,
            low_size=self.low_cluster_size,
            seed=self.seed,
            max_leaf_capacitance=0.9 * self.pdk.max_capacitance,
            unit_wire_capacitance=layer.unit_capacitance,
        )
        router = create_dme_router(layer, backend=self.dme_backend)

        root = ClockTreeNode(
            name="clkroot",
            kind=NodeKind.ROOT,
            location=clock_net.source.location,
            side=Side.FRONT,
        )
        tree = ClockTree(root, name=clock_net.name)
        tap_nodes: list[ClockTreeNode] = []

        sub_roots: list[tuple[EmbeddedNode, list[Cluster]]] = []
        for high in clustering.high_clusters:
            lows = clustering.low_clusters_of(high.index)
            terminals = [self._tap_terminal(low, layer) for low in lows]
            embedded = router.route(terminals, root_location=high.centroid)
            sub_roots.append((embedded, lows))

        if len(sub_roots) == 1:
            embedded, lows = sub_roots[0]
            top_child = self._materialise(tree, root, embedded, lows, tap_nodes)
        else:
            # Top-level DME over the high-cluster sub-roots.
            top_terminals = [
                DmeTerminal(
                    name=f"high_{i}",
                    location=embedded.location,
                    capacitance=embedded.subtree_capacitance,
                    delay=embedded.subtree_delay,
                )
                for i, (embedded, _lows) in enumerate(sub_roots)
            ]
            top_embedded = router.route(
                top_terminals, root_location=clock_net.source.location
            )
            top_child = self._materialise_top(
                tree, root, top_embedded, sub_roots, tap_nodes
            )

        trunk_wl = tree.wirelength() - self._leaf_wirelength(tap_nodes)
        return HierarchicalRoutingResult(
            tree=tree,
            clustering=clustering,
            trunk_wirelength=trunk_wl,
            leaf_wirelength=self._leaf_wirelength(tap_nodes),
            tap_nodes=tap_nodes,
        )

    def _tap_terminal(self, low: Cluster, layer) -> DmeTerminal:
        """Lump a low-level cluster (tap + star leaf net) into a DME terminal."""
        wire_cap = sum(
            layer.wire_capacitance(low.centroid.manhattan(s.location)) for s in low.sinks
        )
        sink_cap = low.total_capacitance
        max_delay = 0.0
        for sink in low.sinks:
            length = low.centroid.manhattan(sink.location)
            max_delay = max(
                max_delay, layer.wire_delay(length, sink.capacitance)
            )
        return DmeTerminal(
            name=f"tap_{low.index}",
            location=low.centroid,
            capacitance=wire_cap + sink_cap,
            delay=max_delay,
        )

    # --------------------------------------------------------------- flat DME
    def _route_flat(self, clock_net: ClockNet) -> HierarchicalRoutingResult:
        """Matching-based DME straight over all sinks (Fig. 5(c) baseline)."""
        layer = self.pdk.front_layer
        router = create_dme_router(layer, backend=self.dme_backend)
        terminals = [
            DmeTerminal(name=s.name, location=s.location, capacitance=s.capacitance)
            for s in clock_net.sinks
        ]
        embedded = router.route(terminals, root_location=clock_net.source.location)
        root = ClockTreeNode(
            name="clkroot",
            kind=NodeKind.ROOT,
            location=clock_net.source.location,
            side=Side.FRONT,
        )
        tree = ClockTree(root, name=clock_net.name)
        self._materialise_flat(tree, root, embedded, clock_net)
        return HierarchicalRoutingResult(
            tree=tree,
            clustering=None,
            trunk_wirelength=tree.wirelength(),
            leaf_wirelength=0.0,
            tap_nodes=[],
        )

    # --------------------------------------------------------- materialising
    def _materialise(
        self,
        tree: ClockTree,
        parent: ClockTreeNode,
        embedded: EmbeddedNode,
        lows: list[Cluster],
        tap_nodes: list[ClockTreeNode],
    ) -> ClockTreeNode:
        """Convert an embedded sub-DME into clock tree nodes below ``parent``."""
        low_by_name = {f"tap_{low.index}": low for low in lows}
        return self._materialise_node(tree, parent, embedded, low_by_name, tap_nodes)

    def _materialise_top(
        self,
        tree: ClockTree,
        root: ClockTreeNode,
        top_embedded: EmbeddedNode,
        sub_roots: list[tuple[EmbeddedNode, list[Cluster]]],
        tap_nodes: list[ClockTreeNode],
    ) -> ClockTreeNode:
        """Materialise the top-level DME; its leaves expand into sub-DMEs."""

        def expand(parent: ClockTreeNode, node: EmbeddedNode) -> ClockTreeNode:
            if node.is_leaf:
                index = int(node.terminal.name.split("_")[1])
                embedded, lows = sub_roots[index]
                return self._materialise(tree, parent, embedded, lows, tap_nodes)
            steiner = ClockTreeNode(
                name=tree.new_name("st"),
                kind=NodeKind.STEINER,
                location=node.location,
                side=Side.FRONT,
                wire_side=Side.FRONT,
            )
            parent.add_child(steiner)
            for child in node.children:
                expand(steiner, child)
            return steiner

        return expand(root, top_embedded)

    def _materialise_node(
        self,
        tree: ClockTree,
        parent: ClockTreeNode,
        embedded: EmbeddedNode,
        low_by_name: dict[str, Cluster],
        tap_nodes: list[ClockTreeNode],
    ) -> ClockTreeNode:
        if embedded.is_leaf:
            low = low_by_name[embedded.terminal.name]
            tap = ClockTreeNode(
                name=embedded.terminal.name,
                kind=NodeKind.TAP,
                location=low.centroid,
                side=Side.FRONT,
                wire_side=Side.FRONT,
            )
            parent.add_child(tap)
            tap_nodes.append(tap)
            for sink in low.sinks:
                tap.add_child(
                    ClockTreeNode(
                        name=sink.name,
                        kind=NodeKind.SINK,
                        location=sink.location,
                        side=Side.FRONT,
                        capacitance=sink.capacitance,
                        wire_side=Side.FRONT,
                    )
                )
            return tap
        steiner = ClockTreeNode(
            name=tree.new_name("st"),
            kind=NodeKind.STEINER,
            location=embedded.location,
            side=Side.FRONT,
            wire_side=Side.FRONT,
        )
        parent.add_child(steiner)
        for child in embedded.children:
            self._materialise_node(tree, steiner, child, low_by_name, tap_nodes)
        return steiner

    def _materialise_flat(
        self,
        tree: ClockTree,
        parent: ClockTreeNode,
        embedded: EmbeddedNode,
        clock_net: ClockNet,
    ) -> ClockTreeNode:
        if embedded.is_leaf:
            sink = clock_net.sink_by_name(embedded.terminal.name)
            node = ClockTreeNode(
                name=sink.name,
                kind=NodeKind.SINK,
                location=sink.location,
                side=Side.FRONT,
                capacitance=sink.capacitance,
                wire_side=Side.FRONT,
            )
            parent.add_child(node)
            return node
        steiner = ClockTreeNode(
            name=tree.new_name("st"),
            kind=NodeKind.STEINER,
            location=embedded.location,
            side=Side.FRONT,
            wire_side=Side.FRONT,
        )
        parent.add_child(steiner)
        for child in embedded.children:
            self._materialise_flat(tree, steiner, child, clock_net)
        return steiner

    # ------------------------------------------------------------------ misc
    @staticmethod
    def _leaf_wirelength(tap_nodes: list[ClockTreeNode]) -> float:
        """Total wirelength of the star leaf nets below all taps (um)."""
        total = 0.0
        for tap in tap_nodes:
            for child in tap.children:
                if child.is_sink:
                    total += tap.location.manhattan(child.location)
        return total

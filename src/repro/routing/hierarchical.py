"""Hierarchical clock routing (Section III-B of the paper).

The router combines dual-level clustering with DME:

1. dual-level K-means clustering of the sinks (``Hc`` / ``Lc``),
2. per-high-cluster DME routing with the low-level centroids as leaves,
3. a top-level DME over the high-level sub-roots toward the clock source,
4. star-routed leaf nets from each low-level centroid (a *tap*) to its sinks.

The output is an unbuffered, all-front-side :class:`~repro.clocktree.ClockTree`
whose trunk edges are later processed by the concurrent buffer and nTSV
insertion.  A non-hierarchical "flat matching DME" mode is also provided for
the ablation against Fig. 5(c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.clocktree import ClockTree, ClockTreeNode, NodeKind
from repro.clocktree.arrays import KIND_SINK, KIND_STEINER, KIND_TAP
from repro.clustering import Cluster, DualLevelClustering, dual_level_clustering
from repro.geometry import Point
from repro.ir.design import DesignArrays
from repro.netlist.clock import ClockNet
from repro.routing.dme import DmeTerminal, EmbeddedNode
from repro.routing.dme_arrays import (
    DmeEmbedding,
    VectorizedDmeRouter,
    create_dme_router,
    resolve_dme_backend,
)
from repro.tech.layers import Side
from repro.tech.pdk import Pdk

if TYPE_CHECKING:  # deferred at runtime: repro.flow.config imports the flow pkg
    from repro.flow.config import CtsConfig


@dataclass
class HierarchicalRoutingResult:
    """The routed (unbuffered) clock tree plus the clustering used to build it."""

    tree: ClockTree
    clustering: DualLevelClustering | None
    trunk_wirelength: float
    leaf_wirelength: float
    tap_nodes: list[ClockTreeNode] = field(default_factory=list)

    @property
    def total_wirelength(self) -> float:
        return self.trunk_wirelength + self.leaf_wirelength


@dataclass
class DesignRoutingResult:
    """Array-IR twin of :class:`HierarchicalRoutingResult`.

    Taps are recorded by *name* (rows are renumbered whenever the design is
    compacted, names are stable for the lifetime of the node).
    """

    design: DesignArrays
    clustering: DualLevelClustering | None
    trunk_wirelength: float
    leaf_wirelength: float
    tap_names: list[str] = field(default_factory=list)

    @property
    def total_wirelength(self) -> float:
        return self.trunk_wirelength + self.leaf_wirelength


class _DmeCursor:
    """:class:`EmbeddedNode`-shaped read view over a :class:`DmeEmbedding`.

    Lets the design materialisers walk the array-form DME solution with the
    exact traversal the object materialisers use, without realising
    EmbeddedNode objects.
    """

    __slots__ = ("_emb", "_index")

    def __init__(self, emb: DmeEmbedding, index: int = 0) -> None:
        self._emb = emb
        self._index = index

    @property
    def is_leaf(self) -> bool:
        if self._emb.arrays is None:
            return True
        return int(self._emb.arrays.term[self._index]) >= 0

    @property
    def terminal(self) -> DmeTerminal:
        if self._emb.arrays is None:
            return self._emb.terminals[0]
        return self._emb.terminals[int(self._emb.arrays.term[self._index])]

    @property
    def location(self) -> Point:
        if self.is_leaf:
            return self.terminal.location
        return Point(float(self._emb.x[self._index]), float(self._emb.y[self._index]))

    @property
    def children(self) -> list["_DmeCursor"]:
        arrays = self._emb.arrays
        return [
            _DmeCursor(self._emb, int(arrays.left[self._index])),
            _DmeCursor(self._emb, int(arrays.right[self._index])),
        ]


def _root_cursor(embedding: "DmeEmbedding | EmbeddedNode"):
    """Uniform walkable root for array-form and object-form embeddings."""
    if isinstance(embedding, DmeEmbedding):
        return _DmeCursor(embedding)
    return embedding


class HierarchicalClockRouter:
    """Builds the initial clock tree topology of the paper's flow."""

    _LOOSE_KWARGS_KEY = "HierarchicalClockRouter.loose-kwargs"

    def __init__(
        self,
        pdk: Pdk,
        high_cluster_size: int | None = None,
        low_cluster_size: int | None = None,
        seed: int | None = None,
        hierarchical: bool | None = None,
        dme_backend: str | None = None,
        config: "CtsConfig | None" = None,
    ) -> None:
        """Preferred construction is ``HierarchicalClockRouter(pdk, config=cfg)``
        — clustering shape, seed, hierarchy mode, and the DME backend all come
        from the :class:`~repro.flow.config.CtsConfig` (backends through
        ``config.resolved_backends()``).  The loose keyword arguments are
        deprecated; they still win over ``config`` but warn once per process.
        """
        loose = {
            key: value
            for key, value in (
                ("high_cluster_size", high_cluster_size),
                ("low_cluster_size", low_cluster_size),
                ("seed", seed),
                ("hierarchical", hierarchical),
                ("dme_backend", dme_backend),
            )
            if value is not None
        }
        # Deferred import: repro.flow imports this module at package init.
        from repro.flow.config import CtsConfig, warn_deprecated_once

        if loose:
            warn_deprecated_once(
                self._LOOSE_KWARGS_KEY,
                "HierarchicalClockRouter(high_cluster_size=..., "
                "low_cluster_size=..., seed=..., hierarchical=..., "
                "dme_backend=...) is deprecated; pass config=CtsConfig(...) "
                "(backends via CtsConfig.backends) instead",
            )
        if config is None:
            config = CtsConfig()
        self.pdk = pdk
        self.high_cluster_size = (
            high_cluster_size
            if high_cluster_size is not None
            else config.high_cluster_size
        )
        self.low_cluster_size = (
            low_cluster_size
            if low_cluster_size is not None
            else config.low_cluster_size
        )
        self.seed = seed if seed is not None else config.seed
        self.hierarchical = (
            hierarchical if hierarchical is not None else config.hierarchical_routing
        )
        if dme_backend is not None:
            self.dme_backend = resolve_dme_backend(dme_backend)
        else:
            self.dme_backend = config.resolved_backends().dme
        if self.high_cluster_size < self.low_cluster_size:
            raise ValueError("high-level cluster size must be >= low-level size")

    # ---------------------------------------------------------------- public
    def route(self, clock_net: ClockNet) -> HierarchicalRoutingResult:
        """Route ``clock_net`` and return the initial clock tree."""
        if clock_net.sink_count == 0:
            raise ValueError("clock net has no sinks")
        if self.hierarchical:
            return self._route_hierarchical(clock_net)
        return self._route_flat(clock_net)

    def route_design(self, clock_net: ClockNet) -> DesignRoutingResult:
        """Route ``clock_net`` straight into a :class:`DesignArrays` (IR entry).

        Decision-identical to :meth:`route`: same clustering, same DME
        embeddings, and the same node names assigned in the same creation
        order, so ``result.design.to_clock_tree()`` fingerprints equal to the
        object route's tree.  The vectorized DME backend feeds the design rows
        directly from its array-form solution; the reference backend walks the
        scalar router's embedded tree (its sanctioned object boundary).
        """
        if clock_net.sink_count == 0:
            raise ValueError("clock net has no sinks")
        if self.hierarchical:
            return self._route_hierarchical_design(clock_net)
        return self._route_flat_design(clock_net)

    # --------------------------------------------------------- hierarchical
    def _route_hierarchical(self, clock_net: ClockNet) -> HierarchicalRoutingResult:
        layer = self.pdk.front_layer
        clustering = dual_level_clustering(
            clock_net.sinks,
            high_size=self.high_cluster_size,
            low_size=self.low_cluster_size,
            seed=self.seed,
            max_leaf_capacitance=0.9 * self.pdk.max_capacitance,
            unit_wire_capacitance=layer.unit_capacitance,
        )
        router = create_dme_router(layer, backend=self.dme_backend)

        root = ClockTreeNode(
            name="clkroot",
            kind=NodeKind.ROOT,
            location=clock_net.source.location,
            side=Side.FRONT,
        )
        tree = ClockTree(root, name=clock_net.name)
        tap_nodes: list[ClockTreeNode] = []

        sub_roots: list[tuple[EmbeddedNode, list[Cluster]]] = []
        for high in clustering.high_clusters:
            lows = clustering.low_clusters_of(high.index)
            terminals = [self._tap_terminal(low, layer) for low in lows]
            embedded = router.route(terminals, root_location=high.centroid)
            sub_roots.append((embedded, lows))

        if len(sub_roots) == 1:
            embedded, lows = sub_roots[0]
            top_child = self._materialise(tree, root, embedded, lows, tap_nodes)
        else:
            # Top-level DME over the high-cluster sub-roots.
            top_terminals = [
                DmeTerminal(
                    name=f"high_{i}",
                    location=embedded.location,
                    capacitance=embedded.subtree_capacitance,
                    delay=embedded.subtree_delay,
                )
                for i, (embedded, _lows) in enumerate(sub_roots)
            ]
            top_embedded = router.route(
                top_terminals, root_location=clock_net.source.location
            )
            top_child = self._materialise_top(
                tree, root, top_embedded, sub_roots, tap_nodes
            )

        trunk_wl = tree.wirelength() - self._leaf_wirelength(tap_nodes)
        return HierarchicalRoutingResult(
            tree=tree,
            clustering=clustering,
            trunk_wirelength=trunk_wl,
            leaf_wirelength=self._leaf_wirelength(tap_nodes),
            tap_nodes=tap_nodes,
        )

    def _tap_terminal(self, low: Cluster, layer) -> DmeTerminal:
        """Lump a low-level cluster (tap + star leaf net) into a DME terminal."""
        wire_cap = sum(
            layer.wire_capacitance(low.centroid.manhattan(s.location)) for s in low.sinks
        )
        sink_cap = low.total_capacitance
        max_delay = 0.0
        for sink in low.sinks:
            length = low.centroid.manhattan(sink.location)
            max_delay = max(
                max_delay, layer.wire_delay(length, sink.capacitance)
            )
        return DmeTerminal(
            name=f"tap_{low.index}",
            location=low.centroid,
            capacitance=wire_cap + sink_cap,
            delay=max_delay,
        )

    # --------------------------------------------------------------- flat DME
    def _route_flat(self, clock_net: ClockNet) -> HierarchicalRoutingResult:
        """Matching-based DME straight over all sinks (Fig. 5(c) baseline)."""
        layer = self.pdk.front_layer
        router = create_dme_router(layer, backend=self.dme_backend)
        terminals = [
            DmeTerminal(name=s.name, location=s.location, capacitance=s.capacitance)
            for s in clock_net.sinks
        ]
        embedded = router.route(terminals, root_location=clock_net.source.location)
        root = ClockTreeNode(
            name="clkroot",
            kind=NodeKind.ROOT,
            location=clock_net.source.location,
            side=Side.FRONT,
        )
        tree = ClockTree(root, name=clock_net.name)
        self._materialise_flat(tree, root, embedded, clock_net)
        return HierarchicalRoutingResult(
            tree=tree,
            clustering=None,
            trunk_wirelength=tree.wirelength(),
            leaf_wirelength=0.0,
            tap_nodes=[],
        )

    # --------------------------------------------------------- materialising
    def _materialise(
        self,
        tree: ClockTree,
        parent: ClockTreeNode,
        embedded: EmbeddedNode,
        lows: list[Cluster],
        tap_nodes: list[ClockTreeNode],
    ) -> ClockTreeNode:
        """Convert an embedded sub-DME into clock tree nodes below ``parent``."""
        low_by_name = {f"tap_{low.index}": low for low in lows}
        return self._materialise_node(tree, parent, embedded, low_by_name, tap_nodes)

    def _materialise_top(
        self,
        tree: ClockTree,
        root: ClockTreeNode,
        top_embedded: EmbeddedNode,
        sub_roots: list[tuple[EmbeddedNode, list[Cluster]]],
        tap_nodes: list[ClockTreeNode],
    ) -> ClockTreeNode:
        """Materialise the top-level DME; its leaves expand into sub-DMEs."""

        def expand(parent: ClockTreeNode, node: EmbeddedNode) -> ClockTreeNode:
            if node.is_leaf:
                index = int(node.terminal.name.split("_")[1])
                embedded, lows = sub_roots[index]
                return self._materialise(tree, parent, embedded, lows, tap_nodes)
            steiner = ClockTreeNode(
                name=tree.new_name("st"),
                kind=NodeKind.STEINER,
                location=node.location,
                side=Side.FRONT,
                wire_side=Side.FRONT,
            )
            parent.add_child(steiner)
            for child in node.children:
                expand(steiner, child)
            return steiner

        return expand(root, top_embedded)

    def _materialise_node(
        self,
        tree: ClockTree,
        parent: ClockTreeNode,
        embedded: EmbeddedNode,
        low_by_name: dict[str, Cluster],
        tap_nodes: list[ClockTreeNode],
    ) -> ClockTreeNode:
        if embedded.is_leaf:
            low = low_by_name[embedded.terminal.name]
            tap = ClockTreeNode(
                name=embedded.terminal.name,
                kind=NodeKind.TAP,
                location=low.centroid,
                side=Side.FRONT,
                wire_side=Side.FRONT,
            )
            parent.add_child(tap)
            tap_nodes.append(tap)
            for sink in low.sinks:
                tap.add_child(
                    ClockTreeNode(
                        name=sink.name,
                        kind=NodeKind.SINK,
                        location=sink.location,
                        side=Side.FRONT,
                        capacitance=sink.capacitance,
                        wire_side=Side.FRONT,
                    )
                )
            return tap
        steiner = ClockTreeNode(
            name=tree.new_name("st"),
            kind=NodeKind.STEINER,
            location=embedded.location,
            side=Side.FRONT,
            wire_side=Side.FRONT,
        )
        parent.add_child(steiner)
        for child in embedded.children:
            self._materialise_node(tree, steiner, child, low_by_name, tap_nodes)
        return steiner

    def _materialise_flat(
        self,
        tree: ClockTree,
        parent: ClockTreeNode,
        embedded: EmbeddedNode,
        clock_net: ClockNet,
    ) -> ClockTreeNode:
        if embedded.is_leaf:
            sink = clock_net.sink_by_name(embedded.terminal.name)
            node = ClockTreeNode(
                name=sink.name,
                kind=NodeKind.SINK,
                location=sink.location,
                side=Side.FRONT,
                capacitance=sink.capacitance,
                wire_side=Side.FRONT,
            )
            parent.add_child(node)
            return node
        steiner = ClockTreeNode(
            name=tree.new_name("st"),
            kind=NodeKind.STEINER,
            location=embedded.location,
            side=Side.FRONT,
            wire_side=Side.FRONT,
        )
        parent.add_child(steiner)
        for child in embedded.children:
            self._materialise_flat(tree, steiner, child, clock_net)
        return steiner

    # ------------------------------------------------- IR (DesignArrays) path
    def _embed(self, router, terminals, root_location) -> "DmeEmbedding | EmbeddedNode":
        """Run DME keeping the vectorized solution in array form."""
        if isinstance(router, VectorizedDmeRouter):
            return router.embed(terminals, root_location=root_location)
        return router.route(terminals, root_location=root_location)

    def _route_hierarchical_design(self, clock_net: ClockNet) -> DesignRoutingResult:
        layer = self.pdk.front_layer
        clustering = dual_level_clustering(
            clock_net.sinks,
            high_size=self.high_cluster_size,
            low_size=self.low_cluster_size,
            seed=self.seed,
            max_leaf_capacitance=0.9 * self.pdk.max_capacitance,
            unit_wire_capacitance=layer.unit_capacitance,
        )
        router = create_dme_router(layer, backend=self.dme_backend)

        design = DesignArrays(name=clock_net.name)
        source = clock_net.source.location
        root_row = design.add_root("clkroot", source.x, source.y)
        tap_names: list[str] = []

        sub_roots: list[tuple[DmeEmbedding | EmbeddedNode, list[Cluster]]] = []
        for high in clustering.high_clusters:
            lows = clustering.low_clusters_of(high.index)
            terminals = [self._tap_terminal(low, layer) for low in lows]
            embedding = self._embed(router, terminals, high.centroid)
            sub_roots.append((embedding, lows))

        if len(sub_roots) == 1:
            embedding, lows = sub_roots[0]
            self._materialise_sub_design(design, root_row, embedding, lows, tap_names)
        else:
            top_terminals = [
                DmeTerminal(
                    name=f"high_{i}",
                    location=_root_cursor(embedding).location,
                    capacitance=(
                        embedding.root_capacitance
                        if isinstance(embedding, DmeEmbedding)
                        else embedding.subtree_capacitance
                    ),
                    delay=(
                        embedding.root_delay
                        if isinstance(embedding, DmeEmbedding)
                        else embedding.subtree_delay
                    ),
                )
                for i, (embedding, _lows) in enumerate(sub_roots)
            ]
            top_embedding = self._embed(router, top_terminals, source)
            self._materialise_top_design(
                design, root_row, _root_cursor(top_embedding), sub_roots, tap_names
            )

        leaf_wl = self._leaf_wirelength_design(design, tap_names)
        trunk_wl = design.wirelength() - leaf_wl
        return DesignRoutingResult(
            design=design,
            clustering=clustering,
            trunk_wirelength=trunk_wl,
            leaf_wirelength=leaf_wl,
            tap_names=tap_names,
        )

    def _route_flat_design(self, clock_net: ClockNet) -> DesignRoutingResult:
        layer = self.pdk.front_layer
        router = create_dme_router(layer, backend=self.dme_backend)
        terminals = [
            DmeTerminal(name=s.name, location=s.location, capacitance=s.capacitance)
            for s in clock_net.sinks
        ]
        embedding = self._embed(router, terminals, clock_net.source.location)
        design = DesignArrays(name=clock_net.name)
        source = clock_net.source.location
        root_row = design.add_root("clkroot", source.x, source.y)
        self._materialise_flat_design(
            design, root_row, _root_cursor(embedding), clock_net
        )
        return DesignRoutingResult(
            design=design,
            clustering=None,
            trunk_wirelength=design.wirelength(),
            leaf_wirelength=0.0,
            tap_names=[],
        )

    def _materialise_sub_design(
        self,
        design: DesignArrays,
        parent_row: int,
        embedding: "DmeEmbedding | EmbeddedNode",
        lows: list[Cluster],
        tap_names: list[str],
    ) -> int:
        low_by_name = {f"tap_{low.index}": low for low in lows}
        return self._materialise_design_node(
            design, parent_row, _root_cursor(embedding), low_by_name, tap_names
        )

    def _materialise_design_node(
        self,
        design: DesignArrays,
        parent_row: int,
        node,
        low_by_name: dict[str, Cluster],
        tap_names: list[str],
    ) -> int:
        """Row twin of :meth:`_materialise_node` (same names, same order)."""
        if node.is_leaf:
            low = low_by_name[node.terminal.name]
            tap_row = design.add_child(
                parent_row, node.terminal.name, KIND_TAP, low.centroid.x, low.centroid.y
            )
            tap_names.append(node.terminal.name)
            design.add_children(
                tap_row,
                [sink.name for sink in low.sinks],
                KIND_SINK,
                [sink.location.x for sink in low.sinks],
                [sink.location.y for sink in low.sinks],
                [sink.capacitance for sink in low.sinks],
            )
            return tap_row
        location = node.location
        steiner = design.add_child(
            parent_row, design.new_name("st"), KIND_STEINER, location.x, location.y
        )
        for child in node.children:
            self._materialise_design_node(
                design, steiner, child, low_by_name, tap_names
            )
        return steiner

    def _materialise_top_design(
        self,
        design: DesignArrays,
        root_row: int,
        top_node,
        sub_roots: "list[tuple[DmeEmbedding | EmbeddedNode, list[Cluster]]]",
        tap_names: list[str],
    ) -> int:
        """Row twin of :meth:`_materialise_top`."""

        def expand(parent_row: int, node) -> int:
            if node.is_leaf:
                index = int(node.terminal.name.split("_")[1])
                embedding, lows = sub_roots[index]
                return self._materialise_sub_design(
                    design, parent_row, embedding, lows, tap_names
                )
            location = node.location
            steiner = design.add_child(
                parent_row, design.new_name("st"), KIND_STEINER, location.x, location.y
            )
            for child in node.children:
                expand(steiner, child)
            return steiner

        return expand(root_row, top_node)

    def _materialise_flat_design(
        self,
        design: DesignArrays,
        parent_row: int,
        node,
        clock_net: ClockNet,
    ) -> int:
        """Row twin of :meth:`_materialise_flat`."""
        if node.is_leaf:
            sink = clock_net.sink_by_name(node.terminal.name)
            return design.add_child(
                parent_row,
                sink.name,
                KIND_SINK,
                sink.location.x,
                sink.location.y,
                capacitance=sink.capacitance,
            )
        location = node.location
        steiner = design.add_child(
            parent_row, design.new_name("st"), KIND_STEINER, location.x, location.y
        )
        for child in node.children:
            self._materialise_flat_design(design, steiner, child, clock_net)
        return steiner

    @staticmethod
    def _leaf_wirelength_design(design: DesignArrays, tap_names: list[str]) -> float:
        """Star leaf-net wirelength below the named taps (um)."""
        total = 0.0
        for name in tap_names:
            tap = design.name_to_row[name]
            for child in design.children_rows[tap]:
                if design.kind[child] == KIND_SINK:
                    total += float(design.edge_length[child])
        return total

    # ------------------------------------------------------------------ misc
    @staticmethod
    def _leaf_wirelength(tap_nodes: list[ClockTreeNode]) -> float:
        """Total wirelength of the star leaf nets below all taps (um)."""
        total = 0.0
        for tap in tap_nodes:
            for child in tap.children:
                if child.is_sink:
                    total += tap.location.manhattan(child.location)
        return total

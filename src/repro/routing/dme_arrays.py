"""Level-batched array backend for DME clock routing (the fast engine).

Mirrors the two-engine pattern of :mod:`repro.timing` and
:mod:`repro.insertion.frontier`: the per-node scalar
:class:`~repro.routing.dme.DmeRouter` is the executable spec, and this
module is the production backend.  The abstract topology is flattened once
into struct-of-arrays form and every topology *level* is processed as whole
numpy vectors:

* the bottom-up phase computes merging-segment endpoints, Elmore
  edge-length balancing (a 64-step vector bisection with detour/saturation
  masks), and merged cap/delay for all same-level merge records at once
  through the batched TRR helpers in :mod:`repro.geometry.trr`,
* the top-down phase embeds each level by clamping the parents' rotated
  coordinates against the children's merging regions in one shot, and
* the :class:`~repro.routing.dme.EmbeddedNode` tree is realised from the
  child/edge back-pointer arrays in the scalar router's exact node order.

Levels smaller than ``min_batch`` fall back to the shared scalar merge
arithmetic (:func:`repro.routing.dme.merge_step`), so degenerate chain
topologies run at scalar speed instead of paying per-level numpy dispatch.

Both backends are kept *decision-identical*: the vector code replicates the
scalar balance/detour/region arithmetic operation for operation (bit-equal
floats, including the bisection trajectory), leaves are embedded at their
terminal's exact location, and the realised children order matches the
scalar embedding, so the two backends return node-for-node identical trees.
``tests/test_routing_dme_vectorized.py`` enforces this on seeded and
hypothesis-generated designs through the differential harness.

Backends are selected through ``CtsConfig.dme_backend`` /
``dscts --dme-backend`` / the ``REPRO_DME_BACKEND`` environment variable,
defaulting to ``vectorized``; flow code obtains routers through
:func:`create_dme_router` rather than instantiating either class ad hoc.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Point
from repro.geometry.trr import (
    TiltedRect,
    merging_region_arrays,
    nearest_point_arrays,
    rect_distance_arrays,
)
from repro.routing.dme import DmeRouter, DmeTerminal, EmbeddedNode, merge_step
from repro.routing.topology import TopologyNode, matching_topology
from repro.tech.layers import LayerRC

#: Backend used when neither the caller, the config, nor the environment
#: chooses one.  Mirrors ``repro.flow.config.DME_BACKEND_CHOICE`` (kept as
#: literals here because importing ``repro.flow.config`` at module scope
#: would pull the flow package into every routing import).
DEFAULT_DME_BACKEND = "vectorized"

DME_BACKEND_NAMES = ("reference", "vectorized")

#: Levels with fewer merge records than this run the shared scalar
#: arithmetic instead of numpy (vector dispatch overhead dominates there).
DEFAULT_MIN_BATCH = 8


def default_dme_backend() -> str:
    """The DME backend used for ``backend=None`` (env override included)."""
    # Deferred import: repro.flow.config transitively imports heavy packages.
    from repro.flow.config import DME_BACKEND_CHOICE

    return DME_BACKEND_CHOICE.default_name()


def resolve_dme_backend(name: str | None) -> str:
    """Resolve an explicit/None backend name against the environment default."""
    from repro.flow.config import DME_BACKEND_CHOICE

    return DME_BACKEND_CHOICE.resolve(name)


def create_dme_router(
    layer: LayerRC,
    detour_allowed: bool = True,
    backend: str | None = None,
) -> "DmeRouter | VectorizedDmeRouter":
    """Build the requested DME router (the shared factory).

    Flow code must obtain DME routers here (or via the config surfaces that
    feed ``backend``) so the whole library can be switched between the
    level-batched array router and the per-node reference implementation —
    per call site, per flow (``CtsConfig.dme_backend``), from the CLI
    (``--dme-backend``), or globally via ``REPRO_DME_BACKEND``.
    """
    name = resolve_dme_backend(backend)
    if name == "reference":
        return DmeRouter(layer, detour_allowed=detour_allowed)
    return VectorizedDmeRouter(layer, detour_allowed=detour_allowed)


@dataclass
class _TopologyArrays:
    """A binary topology flattened to struct-of-arrays (pre-order indices).

    ``left`` / ``right`` / ``parent`` are node indices (``-1`` when absent),
    ``term`` is the terminal index for leaves (``-1`` for merge nodes),
    ``height`` is the distance from the deepest leaf (leaves are 0), and
    ``depth`` the distance from the root.  Pre-order numbering guarantees
    every child index is greater than its parent's.
    """

    left: np.ndarray
    right: np.ndarray
    parent: np.ndarray
    term: np.ndarray
    height: np.ndarray
    depth: np.ndarray

    @property
    def size(self) -> int:
        return int(self.term.size)


def _flatten(root: TopologyNode) -> _TopologyArrays:
    """Flatten ``root`` iteratively (deep chains are legal topologies)."""
    left: list[int] = []
    right: list[int] = []
    parent: list[int] = []
    term: list[int] = []
    stack: list[tuple[TopologyNode, int, bool]] = [(root, -1, False)]
    while stack:
        node, par, is_right = stack.pop()
        index = len(term)
        left.append(-1)
        right.append(-1)
        parent.append(par)
        term.append(node.terminal_index if node.is_leaf else -1)
        if par >= 0:
            if is_right:
                right[par] = index
            else:
                left[par] = index
        if not node.is_leaf:
            if len(node.children) != 2:
                raise ValueError(
                    "DME topologies must be binary; internal node has "
                    f"{len(node.children)} children"
                )
            # Right pushed first so the left child pops (and numbers) first.
            stack.append((node.children[1], index, True))
            stack.append((node.children[0], index, False))
    n = len(term)
    left_arr = np.asarray(left, dtype=np.int64)
    right_arr = np.asarray(right, dtype=np.int64)
    parent_arr = np.asarray(parent, dtype=np.int64)
    term_arr = np.asarray(term, dtype=np.int64)
    height = np.zeros(n, dtype=np.int64)
    for i in range(n - 1, -1, -1):  # children have larger indices
        if term_arr[i] < 0:
            height[i] = 1 + max(height[left_arr[i]], height[right_arr[i]])
    depth = np.zeros(n, dtype=np.int64)
    for i in range(1, n):  # parents have smaller indices
        depth[i] = depth[parent_arr[i]] + 1
    return _TopologyArrays(
        left=left_arr,
        right=right_arr,
        parent=parent_arr,
        term=term_arr,
        height=height,
        depth=depth,
    )


def _group_by(values: np.ndarray) -> list[np.ndarray]:
    """Index groups ``[values == 0, values == 1, ...]`` up to the maximum."""
    order = np.argsort(values, kind="stable")
    bounds = np.searchsorted(values[order], np.arange(int(values.max()) + 2))
    return [order[bounds[k] : bounds[k + 1]] for k in range(len(bounds) - 1)]


@dataclass
class DmeEmbedding:
    """A routed DME solution kept in array form (the IR-native result).

    Holds the flattened topology plus the bottom-up merge state and the
    top-down embedding coordinates — everything :meth:`VectorizedDmeRouter.route`
    computes *before* realising :class:`~repro.routing.dme.EmbeddedNode`
    objects.  IR-flow callers materialise design rows straight from these
    arrays; :meth:`realise` recovers the exact object tree at boundaries.

    ``arrays`` is ``None`` for single-terminal nets (no merge happened); the
    root accessors then fall through to the lone terminal.
    """

    terminals: list[DmeTerminal]
    arrays: _TopologyArrays | None
    state: dict[str, np.ndarray] | None
    x: np.ndarray | None
    y: np.ndarray | None

    @property
    def is_single(self) -> bool:
        return self.arrays is None

    @property
    def root_location(self) -> Point:
        if self.arrays is None:
            return self.terminals[0].location
        return Point(float(self.x[0]), float(self.y[0]))

    @property
    def root_capacitance(self) -> float:
        if self.arrays is None:
            return self.terminals[0].capacitance
        return float(self.state["cap"][0])

    @property
    def root_delay(self) -> float:
        if self.arrays is None:
            return self.terminals[0].delay
        return float(self.state["delay"][0])

    def realise(self) -> EmbeddedNode:
        """Build the object embedding (identical to :meth:`route`'s return)."""
        if self.arrays is None:
            term = self.terminals[0]
            return EmbeddedNode(
                location=term.location,
                terminal=term,
                subtree_capacitance=term.capacitance,
                subtree_delay=term.delay,
            )
        return VectorizedDmeRouter._realise(
            self.arrays, self.terminals, self.state, self.x, self.y
        )


class VectorizedDmeRouter:
    """Elmore-balanced DME over a single metal layer, one level per batch.

    Drop-in decision-identical replacement for :class:`DmeRouter`; see the
    module docstring for the batching scheme and the identity contract.

    Args:
        layer: metal layer whose unit RC balances the merges.
        detour_allowed: add wire detour when no split balances (the scalar
            router's knob, same semantics).
        min_batch: levels with fewer merge records run the shared scalar
            arithmetic; tests set 1 to force every lane through numpy.
    """

    def __init__(
        self,
        layer: LayerRC,
        detour_allowed: bool = True,
        min_batch: int = DEFAULT_MIN_BATCH,
    ) -> None:
        self.layer = layer
        self.detour_allowed = detour_allowed
        self.min_batch = max(1, int(min_batch))

    # -------------------------------------------------------------- public
    def route(
        self,
        terminals: list[DmeTerminal],
        root_location: Point | None = None,
        topology: TopologyNode | None = None,
    ) -> EmbeddedNode:
        """Route the terminals and return the embedded tree.

        Same contract as :meth:`DmeRouter.route`; the returned tree is
        node-for-node identical to the scalar router's.
        """
        return self.embed(terminals, root_location, topology).realise()

    def embed(
        self,
        terminals: list[DmeTerminal],
        root_location: Point | None = None,
        topology: TopologyNode | None = None,
    ) -> DmeEmbedding:
        """Route the terminals and return the solution in array form.

        The IR-native entry point: identical decisions to :meth:`route`
        (same topology, merge state, and embedding coordinates) without
        realising :class:`EmbeddedNode` objects.  ``embed(...).realise()``
        equals ``route(...)`` node for node.
        """
        if not terminals:
            raise ValueError("DME needs at least one terminal")
        if len(terminals) == 1:
            return DmeEmbedding(
                terminals=list(terminals), arrays=None, state=None, x=None, y=None
            )
        if topology is None:
            topology = matching_topology([t.location for t in terminals])
        arrays = _flatten(topology)
        state = self._bottom_up(arrays, terminals)
        x, y = self._top_down(arrays, state, root_location)
        return DmeEmbedding(
            terminals=list(terminals), arrays=arrays, state=state, x=x, y=y
        )

    # ----------------------------------------------------------- bottom-up
    def _bottom_up(
        self, arrays: _TopologyArrays, terminals: list[DmeTerminal]
    ) -> dict[str, np.ndarray]:
        """Merge every topology level as one batch, leaves upward."""
        n = arrays.size
        ulo = np.empty(n)
        vlo = np.empty(n)
        uhi = np.empty(n)
        vhi = np.empty(n)
        cap = np.empty(n)
        delay = np.empty(n)
        e_left = np.zeros(n)
        e_right = np.zeros(n)

        leaves = arrays.term >= 0
        leaf_terms = arrays.term[leaves]
        tx = np.asarray([terminals[t].location.x for t in leaf_terms])
        ty = np.asarray([terminals[t].location.y for t in leaf_terms])
        ulo[leaves] = uhi[leaves] = tx + ty
        vlo[leaves] = vhi[leaves] = tx - ty
        cap[leaves] = [terminals[t].capacitance for t in leaf_terms]
        delay[leaves] = [terminals[t].delay for t in leaf_terms]

        unit_r = self.layer.unit_resistance
        unit_c = self.layer.unit_capacitance
        levels = _group_by(arrays.height)
        for level in levels[1:]:  # level 0 is the leaves
            li = arrays.left[level]
            ri = arrays.right[level]
            if level.size < self.min_batch:
                for i, l, r in zip(level.tolist(), li.tolist(), ri.tolist()):
                    region, m_cap, m_delay, e_l, e_r = merge_step(
                        unit_r,
                        unit_c,
                        TiltedRect(ulo[l], vlo[l], uhi[l], vhi[l]),
                        cap[l],
                        delay[l],
                        TiltedRect(ulo[r], vlo[r], uhi[r], vhi[r]),
                        cap[r],
                        delay[r],
                        self.detour_allowed,
                    )
                    ulo[i], vlo[i] = region.ulo, region.vlo
                    uhi[i], vhi[i] = region.uhi, region.vhi
                    cap[i], delay[i] = m_cap, m_delay
                    e_left[i], e_right[i] = e_l, e_r
                continue
            dl, cl = delay[li], cap[li]
            dr, cr = delay[ri], cap[ri]
            left_regions = (ulo[li], vlo[li], uhi[li], vhi[li])
            right_regions = (ulo[ri], vlo[ri], uhi[ri], vhi[ri])
            distance = rect_distance_arrays(*left_regions, *right_regions)
            e_l, e_r = self._balance_edges_arrays(
                unit_r, unit_c, dl, cl, dr, cr, distance
            )
            ulo[level], vlo[level], uhi[level], vhi[level] = merging_region_arrays(
                *left_regions, *right_regions, e_l, e_r
            )
            delay[level] = np.maximum(
                dl + unit_r * e_l * (unit_c * e_l + cl),
                dr + unit_r * e_r * (unit_c * e_r + cr),
            )
            cap[level] = cl + cr + unit_c * (e_l + e_r)
            e_left[level] = e_l
            e_right[level] = e_r
        return {
            "ulo": ulo,
            "vlo": vlo,
            "uhi": uhi,
            "vhi": vhi,
            "cap": cap,
            "delay": delay,
            "e_left": e_left,
            "e_right": e_right,
        }

    def _balance_edges_arrays(
        self,
        unit_r: float,
        unit_c: float,
        dl: np.ndarray,
        cl: np.ndarray,
        dr: np.ndarray,
        cr: np.ndarray,
        distance: np.ndarray,
        detour_allowed: bool | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vector lanes of :func:`repro.routing.dme.balance_edges`.

        Every lane follows the same branch structure and the same arithmetic
        (including the 64-step bisection trajectory) as the scalar spec, so
        results are bit-identical.
        """
        if detour_allowed is None:
            detour_allowed = self.detour_allowed
        n = distance.shape[0]
        e_l = np.zeros(n)
        e_r = np.zeros(n)

        degenerate = distance <= 0
        active = ~degenerate
        if np.any(degenerate) and detour_allowed:
            gap0 = dl - dr
            need = degenerate & (np.abs(gap0) >= 1e-12)
            deg_right = need & (dl > dr)
            deg_left = need & ~deg_right
            e_r = np.where(
                deg_right, _solve_detour_arrays(unit_r, unit_c, dl, dr, cr), e_r
            )
            e_l = np.where(
                deg_left, _solve_detour_arrays(unit_r, unit_c, dr, dl, cl), e_l
            )

        # Imbalance at the split boundaries (delay_l(0) simplifies to dl and
        # delay_r(0) to dr; the products the scalar spec adds are exact
        # zeros, so the simplification is bit-preserving).
        imb_at_zero = dl - (dr + unit_r * distance * (unit_c * distance + cr))
        imb_at_dist = (dl + unit_r * distance * (unit_c * distance + cl)) - dr
        saturate_right = active & (imb_at_zero > 0)
        saturate_left = active & ~saturate_right & (imb_at_dist < 0)
        interior = active & ~saturate_right & ~saturate_left

        if detour_allowed:
            e_r = np.where(
                saturate_right,
                np.maximum(distance, _solve_detour_arrays(unit_r, unit_c, dl, dr, cr)),
                e_r,
            )
            e_l = np.where(
                saturate_left,
                np.maximum(distance, _solve_detour_arrays(unit_r, unit_c, dr, dl, cl)),
                e_l,
            )
        else:
            e_r = np.where(saturate_right, distance, e_r)
            e_l = np.where(saturate_left, distance, e_l)

        if np.any(interior):
            idx = np.nonzero(interior)[0]
            d_i = distance[idx]
            dl_i, cl_i = dl[idx], cl[idx]
            dr_i, cr_i = dr[idx], cr[idx]
            lo = np.zeros(idx.size)
            hi = d_i.copy()
            for _ in range(64):
                mid = (lo + hi) / 2.0
                rhs = d_i - mid
                imb = (dl_i + unit_r * mid * (unit_c * mid + cl_i)) - (
                    dr_i + unit_r * rhs * (unit_c * rhs + cr_i)
                )
                gt = imb > 0
                hi = np.where(gt, mid, hi)
                lo = np.where(gt, lo, mid)
            e = (lo + hi) / 2.0
            e_l[idx] = e
            e_r[idx] = d_i - e
        return e_l, e_r

    # ------------------------------------------------------------ top-down
    def _top_down(
        self,
        arrays: _TopologyArrays,
        state: dict[str, np.ndarray],
        root_location: Point | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Embed every level by clamping against the merging regions."""
        ulo, vlo = state["ulo"], state["vlo"]
        uhi, vhi = state["uhi"], state["vhi"]
        n = arrays.size
        x = np.empty(n)
        y = np.empty(n)
        root_region = TiltedRect(ulo[0], vlo[0], uhi[0], vhi[0])
        if root_location is not None:
            root_point = root_region.nearest_point_to(root_location)
        else:
            root_point = root_region.center()
        x[0], y[0] = root_point.x, root_point.y

        for level in _group_by(arrays.depth)[1:]:
            parents = arrays.parent[level]
            if level.size < self.min_batch:
                for i, p in zip(level.tolist(), parents.tolist()):
                    point = TiltedRect(ulo[i], vlo[i], uhi[i], vhi[i]).nearest_point_to(
                        Point(x[p], y[p])
                    )
                    x[i], y[i] = point.x, point.y
                continue
            pu = x[parents] + y[parents]
            pv = x[parents] - y[parents]
            cu, cv = nearest_point_arrays(
                ulo[level], vlo[level], uhi[level], vhi[level], pu, pv
            )
            x[level] = (cu + cv) / 2.0
            y[level] = (cu - cv) / 2.0
        return x, y

    # ------------------------------------------------------------- realise
    @staticmethod
    def _realise(
        arrays: _TopologyArrays,
        terminals: list[DmeTerminal],
        state: dict[str, np.ndarray],
        x: np.ndarray,
        y: np.ndarray,
    ) -> EmbeddedNode:
        """Build the EmbeddedNode tree in the scalar router's stack order."""
        cap, delay = state["cap"], state["delay"]
        e_left, e_right = state["e_left"], state["e_right"]
        term = arrays.term

        def make(index: int, planned: float) -> EmbeddedNode:
            t = int(term[index])
            if t >= 0:
                terminal = terminals[t]
                return EmbeddedNode(
                    location=terminal.location,
                    terminal=terminal,
                    planned_edge_length=planned,
                    subtree_capacitance=float(cap[index]),
                    subtree_delay=float(delay[index]),
                )
            return EmbeddedNode(
                location=Point(float(x[index]), float(y[index])),
                planned_edge_length=planned,
                subtree_capacitance=float(cap[index]),
                subtree_delay=float(delay[index]),
            )

        root = make(0, 0.0)
        stack: list[tuple[int, EmbeddedNode]] = [(0, root)]
        while stack:
            index, embedded = stack.pop()
            if term[index] >= 0:
                continue
            planned = (float(e_left[index]), float(e_right[index]))
            children = (int(arrays.left[index]), int(arrays.right[index]))
            for child, child_planned in zip(children, planned):
                child_embedded = make(child, child_planned)
                embedded.children.append(child_embedded)
                stack.append((child, child_embedded))
        return root


def _solve_detour_arrays(
    unit_r: float,
    unit_c: float,
    target: np.ndarray,
    base: np.ndarray,
    cap: np.ndarray,
) -> np.ndarray:
    """Vector lanes of :func:`repro.routing.dme.solve_detour`."""
    gap = target - base
    a = unit_r * unit_c
    b = unit_r * cap
    # Clamp only the lanes the scalar spec would never evaluate (gap <= 0
    # returns 0 before touching the square root), keeping sqrt finite.
    disc = b * b + 4 * a * np.maximum(gap, 0.0)
    return np.where(gap <= 0, 0.0, (-b + np.sqrt(disc)) / (2 * a))

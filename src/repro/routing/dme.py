"""Deferred-merge embedding (DME) clock routing.

The router takes a set of terminals (each with a location, a lumped
downstream capacitance, and a downstream delay), an optional abstract binary
topology, and produces an embedded routing tree:

1. **Bottom-up phase** — for every internal topology node, compute a merging
   region (a tilted rectangle in the Manhattan plane) together with the edge
   lengths allotted to its two children such that the Elmore delays of the
   two subtrees are balanced (adding wire detour when one side is much
   faster).
2. **Top-down phase** — embed the root at the point of its merging region
   nearest to the clock source, then embed every child at the point of its
   region nearest to its parent's embedding, which minimises wirelength.

The router is metal-layer aware (it balances delays with the unit RC of the
layer it is given) but side-agnostic: the initial routed tree produced for
the paper's flow is all front-side; the concurrent buffer and nTSV insertion
afterwards decides which edges move to the back side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geometry import Point, TiltedRect, merging_region
from repro.tech.layers import LayerRC
from repro.routing.topology import TopologyNode, matching_topology


@dataclass(frozen=True)
class DmeTerminal:
    """A leaf terminal of the DME problem.

    Attributes:
        name: terminal name (propagated to the embedded tree).
        location: terminal location (um).
        capacitance: lumped capacitance looking into the terminal (fF).
        delay: delay already accumulated below the terminal (ps); non-zero
            when the terminal is itself the root of a routed subtree (e.g. a
            low-level cluster centroid driving its leaf net).
    """

    name: str
    location: Point
    capacitance: float = 1.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance < 0 or self.delay < 0:
            raise ValueError(f"terminal {self.name}: negative capacitance or delay")


@dataclass
class EmbeddedNode:
    """A node of the embedded routing tree produced by DME."""

    location: Point
    terminal: DmeTerminal | None = None
    children: list["EmbeddedNode"] = field(default_factory=list)
    planned_edge_length: float = 0.0  # length allotted during the bottom-up phase
    subtree_capacitance: float = 0.0
    subtree_delay: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.terminal is not None

    def wirelength(self) -> float:
        """Total embedded Manhattan wirelength of the subtree (um).

        Iterative so that chained (path-like) embeddings of arbitrary depth
        do not exhaust Python's recursion limit.
        """
        total = 0.0
        stack = [self]
        while stack:
            node = stack.pop()
            for child in node.children:
                total += node.location.manhattan(child.location)
                stack.append(child)
        return total

    def leaves(self) -> list["EmbeddedNode"]:
        """Every leaf of the subtree, in left-to-right order (iterative)."""
        result = []
        stack = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                result.append(node)
            else:
                stack.extend(reversed(node.children))
        return result


@dataclass
class _MergeRecord:
    """Bookkeeping of the bottom-up phase for one topology node."""

    region: TiltedRect
    capacitance: float
    delay: float
    edge_to_left: float = 0.0
    edge_to_right: float = 0.0


# --------------------------------------------------------------------------
# Scalar merge arithmetic — the executable spec shared by both backends.
#
# These module-level functions are the single definition of the DME balance
# and detour arithmetic.  :class:`DmeRouter` calls them per node; the
# level-batched backend (:mod:`repro.routing.dme_arrays`) calls them for its
# small-level scalar fallback and replicates them operation-for-operation in
# numpy for large levels, so both backends stay bit-identical.


def solve_detour(
    unit_r: float, unit_c: float, target: float, base: float, cap: float
) -> float:
    """Wire length e with ``base + R(e)(C(e) + cap) = target`` (e >= 0)."""
    gap = target - base
    if gap <= 0:
        return 0.0
    # unit_r*unit_c*e^2 + unit_r*cap*e - gap = 0
    a = unit_r * unit_c
    b = unit_r * cap
    disc = b * b + 4 * a * gap
    return (-b + math.sqrt(disc)) / (2 * a)


def balance_edges(
    unit_r: float,
    unit_c: float,
    left_delay: float,
    left_cap: float,
    right_delay: float,
    right_cap: float,
    distance: float,
    detour_allowed: bool,
) -> tuple[float, float]:
    """Split ``distance`` into the two edge lengths that balance delay.

    Solves ``d_l + R(e_l)(C(e_l) + c_l) = d_r + R(e_r)(C(e_r) + c_r)``
    with ``e_l + e_r = distance``; when no split balances, the faster
    side receives a detour (extra wirelength) if allowed, otherwise the
    split saturates at the boundary.
    """

    def delay_l(e: float) -> float:
        return left_delay + unit_r * e * (unit_c * e + left_cap)

    def delay_r(e: float) -> float:
        return right_delay + unit_r * e * (unit_c * e + right_cap)

    # f(e) = delay of left with e  -  delay of right with (distance - e);
    # f is increasing in e, so bisection finds the balance point.
    def imbalance(e: float) -> float:
        return delay_l(e) - delay_r(distance - e)

    if distance <= 0:
        low_delay_gap = left_delay - right_delay
        if abs(low_delay_gap) < 1e-12 or not detour_allowed:
            return 0.0, 0.0
        # Balance two co-located subtrees by snaking wire on the faster one.
        if left_delay > right_delay:
            return 0.0, solve_detour(unit_r, unit_c, left_delay, right_delay, right_cap)
        return solve_detour(unit_r, unit_c, right_delay, left_delay, left_cap), 0.0

    if imbalance(0.0) > 0:
        # Left subtree is already slower even with zero wire: detour right.
        if not detour_allowed:
            return 0.0, distance
        extra = solve_detour(unit_r, unit_c, left_delay, right_delay, right_cap)
        return 0.0, max(distance, extra)
    if imbalance(distance) < 0:
        # Right subtree is slower even when it gets no wire: detour left.
        if not detour_allowed:
            return distance, 0.0
        extra = solve_detour(unit_r, unit_c, right_delay, left_delay, left_cap)
        return max(distance, extra), 0.0

    lo, hi = 0.0, distance
    for _ in range(64):
        mid = (lo + hi) / 2.0
        if imbalance(mid) > 0:
            hi = mid
        else:
            lo = mid
    e_left = (lo + hi) / 2.0
    return e_left, distance - e_left


def merge_step(
    unit_r: float,
    unit_c: float,
    left_region: TiltedRect,
    left_cap: float,
    left_delay: float,
    right_region: TiltedRect,
    right_cap: float,
    right_delay: float,
    detour_allowed: bool,
) -> tuple[TiltedRect, float, float, float, float]:
    """One DME merge: ``(region, capacitance, delay, e_left, e_right)``."""
    distance = left_region.distance_to(right_region)
    e_left, e_right = balance_edges(
        unit_r,
        unit_c,
        left_delay,
        left_cap,
        right_delay,
        right_cap,
        distance,
        detour_allowed,
    )
    region = merging_region(left_region, right_region, e_left, e_right)
    merged_delay = max(
        left_delay + unit_r * e_left * (unit_c * e_left + left_cap),
        right_delay + unit_r * e_right * (unit_c * e_right + right_cap),
    )
    merged_cap = left_cap + right_cap + unit_c * (e_left + e_right)
    return region, merged_cap, merged_delay, e_left, e_right


class DmeRouter:
    """Elmore-balanced DME router over a single metal layer."""

    def __init__(self, layer: LayerRC, detour_allowed: bool = True) -> None:
        self.layer = layer
        self.detour_allowed = detour_allowed

    # -------------------------------------------------------------- public
    def route(
        self,
        terminals: list[DmeTerminal],
        root_location: Point | None = None,
        topology: TopologyNode | None = None,
    ) -> EmbeddedNode:
        """Route the terminals and return the embedded tree.

        Args:
            terminals: the DME leaves.
            root_location: when given, the tree root is embedded at the point
                of the root merging region closest to this location (the
                clock source); otherwise the region centre is used.
            topology: abstract binary topology; defaults to greedy matching.
        """
        if not terminals:
            raise ValueError("DME needs at least one terminal")
        if len(terminals) == 1:
            term = terminals[0]
            return EmbeddedNode(
                location=term.location,
                terminal=term,
                subtree_capacitance=term.capacitance,
                subtree_delay=term.delay,
            )
        if topology is None:
            topology = matching_topology([t.location for t in terminals])
        records: dict[int, _MergeRecord] = {}
        self._bottom_up(topology, terminals, records)
        return self._top_down(topology, terminals, records, root_location)

    # ----------------------------------------------------------- bottom-up
    def _bottom_up(
        self,
        node: TopologyNode,
        terminals: list[DmeTerminal],
        records: dict[int, _MergeRecord],
    ) -> _MergeRecord:
        """Post-order merge-region computation with an explicit stack.

        Deep or chained topologies (e.g. a sink strand along a datapath) can
        exceed Python's recursion limit, so the traversal is iterative.
        """
        stack: list[tuple[TopologyNode, bool]] = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if current.is_leaf:
                term = terminals[current.terminal_index]
                records[id(current)] = _MergeRecord(
                    region=TiltedRect.from_point(term.location),
                    capacitance=term.capacitance,
                    delay=term.delay,
                )
                continue
            if not expanded:
                if len(current.children) != 2:
                    raise ValueError(
                        "DME topologies must be binary; internal node has "
                        f"{len(current.children)} children"
                    )
                stack.append((current, True))
                stack.append((current.children[1], False))
                stack.append((current.children[0], False))
                continue
            left = records[id(current.children[0])]
            right = records[id(current.children[1])]
            region, merged_cap, merged_delay, e_left, e_right = merge_step(
                self.layer.unit_resistance,
                self.layer.unit_capacitance,
                left.region,
                left.capacitance,
                left.delay,
                right.region,
                right.capacitance,
                right.delay,
                self.detour_allowed,
            )
            records[id(current)] = _MergeRecord(
                region=region,
                capacitance=merged_cap,
                delay=merged_delay,
                edge_to_left=e_left,
                edge_to_right=e_right,
            )
        return records[id(node)]

    # ------------------------------------------------------------ top-down
    def _top_down(
        self,
        topology: TopologyNode,
        terminals: list[DmeTerminal],
        records: dict[int, _MergeRecord],
        root_location: Point | None,
    ) -> EmbeddedNode:
        root_record = records[id(topology)]
        if root_location is not None:
            root_point = root_record.region.nearest_point_to(root_location)
        else:
            root_point = root_record.region.center()
        return self._embed(topology, terminals, records, root_point, 0.0)

    def _embed(
        self,
        node: TopologyNode,
        terminals: list[DmeTerminal],
        records: dict[int, _MergeRecord],
        location: Point,
        planned_length: float,
    ) -> EmbeddedNode:
        """Pre-order embedding with an explicit stack (recursion-free)."""

        def make_node(
            topo: TopologyNode, point: Point, planned: float
        ) -> EmbeddedNode:
            record = records[id(topo)]
            if topo.is_leaf:
                term = terminals[topo.terminal_index]
                return EmbeddedNode(
                    location=term.location,
                    terminal=term,
                    planned_edge_length=planned,
                    subtree_capacitance=record.capacitance,
                    subtree_delay=record.delay,
                )
            return EmbeddedNode(
                location=point,
                planned_edge_length=planned,
                subtree_capacitance=record.capacitance,
                subtree_delay=record.delay,
            )

        root = make_node(node, location, planned_length)
        stack: list[tuple[TopologyNode, EmbeddedNode]] = [(node, root)]
        while stack:
            topo, embedded = stack.pop()
            if topo.is_leaf:
                continue
            record = records[id(topo)]
            planned = (record.edge_to_left, record.edge_to_right)
            for child, child_planned in zip(topo.children, planned):
                child_record = records[id(child)]
                child_point = child_record.region.nearest_point_to(embedded.location)
                child_embedded = make_node(child, child_point, child_planned)
                embedded.children.append(child_embedded)
                stack.append((child, child_embedded))
        return root

"""The ``dscts serve`` request loop: asyncio front, bounded worker bridge.

:class:`CtsServer` owns the :class:`~repro.serve.session.SessionCache` and a
synchronous :meth:`CtsServer.handle_line` that takes one request line to one
reply line.  The asyncio TCP front (:meth:`CtsServer.serve_tcp`) reads
newline-delimited requests per connection and bridges each into a bounded
``ThreadPoolExecutor`` — flow builds and what-if evaluations are CPU work
and must not block the accept loop, and the pool bound keeps a burst of
clients from piling unbounded flow runs onto the box.  ``--stdio`` mode
(:meth:`CtsServer.run_stdio`) serves the same protocol over stdin/stdout
for tests and one-off scripting.

Error contract: :meth:`handle_line` is the single sanctioned catch point.
Every failure — malformed request, unknown session, and in particular typed
:class:`~repro.guard.GuardError` / :class:`~repro.parallel.ParallelError`
flow errors — is *surfaced* to the requesting client as a structured error
reply (see :func:`repro.serve.protocol.error_reply`); nothing is swallowed
and no error takes the server down.
"""

from __future__ import annotations

import asyncio
import contextlib
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from typing import Any, TextIO

from repro.designs import load_design
from repro.flow.config import CtsConfig
from repro.geometry import Point
from repro.guard.validation import design_cache_key
from repro.netlist.clock import ClockNet, ClockSink, ClockSource
from repro.serve.protocol import (
    ProtocolError,
    decode_request,
    encode_reply,
    error_reply,
    ok_reply,
)
from repro.serve.session import SessionCache, build_session
from repro.tech.corners import CornerSet
from repro.tech.pdk import Pdk


def _inline_net(spec: dict[str, Any]) -> ClockNet:
    """Build a :class:`ClockNet` from an inline request design spec."""
    try:
        source_spec = spec.get("source") or {}
        source = ClockSource(
            name=str(source_spec.get("name", "clk_root")),
            location=Point(
                float(source_spec.get("x", 0.0)), float(source_spec.get("y", 0.0))
            ),
        )
        sinks = [
            ClockSink(
                name=str(sink["name"]),
                location=Point(float(sink["x"]), float(sink["y"])),
                capacitance=float(sink.get("cap", 1.0)),
            )
            for sink in spec.get("sinks", [])
        ]
        return ClockNet(str(spec.get("name", "inline")), source, sinks)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad inline design spec: {exc}") from None


class CtsServer:
    """A long-lived cross-design CTS service over the session cache."""

    def __init__(
        self,
        pdk: Pdk,
        config: CtsConfig | None = None,
        max_sessions: int = 8,
        workers: int = 2,
    ) -> None:
        self.pdk = pdk
        self.config = config or CtsConfig()
        self.sessions = SessionCache(max_sessions)
        self.workers = max(1, int(workers))
        self.requests = 0
        self._shutdown = threading.Event()

    # ------------------------------------------------------------ requests
    def handle_line(self, line: str) -> str:
        """One request line to one canonical reply line (never raises)."""
        request_id: Any = None
        try:
            request = decode_request(line)
            request_id = request.get("id")
            reply = ok_reply(request_id, self._dispatch(request))
        except Exception as exc:  # the one sanctioned handler: every error
            # (GuardError and ParallelError included) is surfaced to the
            # client that owns the request as a typed structured reply —
            # never swallowed, and never fatal to the other sessions.
            reply = error_reply(request_id, exc)
        return encode_reply(reply)

    def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        self.requests += 1
        handler = getattr(self, f"_op_{request['op']}")
        return handler(request)

    # ---------------------------------------------------------- operations
    def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"pong": True, "sessions": len(self.sessions)}

    def _op_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        self._shutdown.set()
        return {"stopping": True}

    def _op_sessions(self, request: dict[str, Any]) -> dict[str, Any]:
        return self.sessions.describe()

    def _op_evict(self, request: dict[str, Any]) -> dict[str, Any]:
        key = request.get("session")
        if not isinstance(key, str):
            raise ProtocolError(f"evict needs a string session key, got {key!r}")
        return {"session": key, "evicted": self.sessions.evict(key)}

    def _request_config(self, request: dict[str, Any]) -> CtsConfig:
        corners = request.get("corners")
        if corners is None:
            return self.config
        if not isinstance(corners, str):
            raise ProtocolError(f"corners must be a spec string, got {corners!r}")
        return self.config.with_updates(corners=CornerSet.parse(corners))

    def _resolve_net(self, request: dict[str, Any]) -> tuple[ClockNet, str]:
        spec = request.get("design")
        if isinstance(spec, str):
            scale = float(request.get("scale", 1.0))
            design = load_design(spec, scale=scale, include_combinational=False)
            return design.require_clock_net(), design.name
        if isinstance(spec, dict):
            net = _inline_net(spec)
            return net, net.name
        raise ProtocolError(
            f"design must be a benchmark id or an inline spec, got {spec!r}"
        )

    def _op_build(self, request: dict[str, Any]) -> dict[str, Any]:
        net, name = self._resolve_net(request)
        config = self._request_config(request)
        key = design_cache_key(net, self.pdk, config.for_session().corners)
        session = self.sessions.get(key)
        cached = session is not None
        evicted: list[str] = []
        if session is None:
            session = build_session(self.pdk, net, config, design_name=name)
            evicted = self.sessions.put(session)
        run = session.run
        result: dict[str, Any] = {
            "session": session.key,
            "cached": cached,
            "design": session.design_name,
            "fingerprint": session.fingerprint(),
            "metrics": dict(run.metrics.as_row()),
            "diagnostics": {
                "guard": [asdict(d) for d in run.guard_diagnostics],
                "parallel": {
                    "tasks": run.parallel_tasks,
                    "events": [asdict(d) for d in run.parallel_diagnostics],
                },
            },
        }
        if evicted:
            result["evicted"] = evicted
        return result

    def _op_what_if(self, request: dict[str, Any]) -> dict[str, Any]:
        session = self.sessions.require(request.get("session"))
        edits = request.get("edits")
        if not isinstance(edits, list):
            raise ProtocolError(f"what_if needs a list of edits, got {edits!r}")
        return session.what_if(
            edits,
            corners=request.get("corners"),
            commit=bool(request.get("commit", False)),
        )

    def _op_query(self, request: dict[str, Any]) -> dict[str, Any]:
        session = self.sessions.require(request.get("session"))
        return session.query(corners=request.get("corners"))

    # -------------------------------------------------------------- fronts
    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Accept newline-delimited JSON clients until a shutdown request.

        Requests run on a bounded worker pool so a long flow build neither
        blocks the event loop nor admits unbounded concurrent CPU work.
        """
        loop = asyncio.get_running_loop()
        executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="dscts-serve"
        )

        async def handle(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    text = line.decode("utf-8", errors="replace")
                    if not text.strip():
                        continue
                    reply = await loop.run_in_executor(
                        executor, self.handle_line, text
                    )
                    writer.write(reply.encode("utf-8") + b"\n")
                    await writer.drain()
                    if self._shutdown.is_set():
                        break
            finally:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

        server = await asyncio.start_server(handle, host, port)
        bound = server.sockets[0].getsockname()
        # Single discovery line clients (and the smoke test) wait for.
        print(f"serving on {bound[0]}:{bound[1]}", flush=True)
        try:
            async with server:
                while not self._shutdown.is_set():
                    await asyncio.sleep(0.05)
        finally:
            executor.shutdown(wait=True)

    def run_stdio(
        self, stdin: TextIO | None = None, stdout: TextIO | None = None
    ) -> int:
        """Serve the protocol synchronously over stdin/stdout."""
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        print("serving on stdio", file=sys.stderr, flush=True)
        for line in stdin:
            print(self.handle_line(line), file=stdout, flush=True)
            if self._shutdown.is_set():
                break
        return 0

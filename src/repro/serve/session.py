"""Design sessions: long-lived built designs answering warm what-if queries.

A :class:`DesignSession` is what ``dscts serve`` keeps between requests: the
flow's persistent :class:`~repro.ir.design.DesignArrays` design, the
compiled :class:`~repro.timing.vectorized.VectorizedElmoreEngine` state (one
engine per corner set the session has been asked about), and the log of
committed what-if edits.  A ``what_if`` request applies its edits to the
live design, re-evaluates through the engine's incremental dirty-cone
update, and (unless committed) reverts them — the same trial idiom the skew
refiner uses, so a warm answer costs a small cone re-time instead of a flow
rebuild.

Sessions are registered in a :class:`SessionCache` keyed by
:func:`~repro.guard.validation.design_cache_key` — the canonical sha of the
clock net's full-precision columns plus the PDK and corner identity — and
evicted least-recently-used under a configurable cap.

:func:`one_shot_reply` is the executable spec of the warm path: it rebuilds
the design cold (a full flow run), replays the same edits, and produces the
same reply dict.  The serve tests and the ``serve_whatif`` bench pin the
warm reply byte-identical to it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Iterable

from repro.flow.config import CtsConfig
from repro.flow.cts import CtsRunResult, DoubleSideCTS
from repro.guard.validation import design_cache_key
from repro.ir.design import KIND_BUFFER, KIND_SINK, DesignArrays
from repro.netlist.clock import ClockNet
from repro.serve.protocol import EDIT_KINDS, ProtocolError, SessionError
from repro.tech.corners import CornerSet
from repro.tech.pdk import Pdk
from repro.timing.vectorized import VectorizedElmoreEngine


# ------------------------------------------------------------------- edits
def _row_of(design: DesignArrays, name: Any) -> int:
    if not isinstance(name, str) or name not in design.name_to_row:
        raise ProtocolError(f"unknown design node {name!r}")
    return design.name_to_row[name]


def _fresh_name(design: DesignArrays, base: str) -> str:
    """A deterministic unused name derived from ``base`` (no counters).

    Generated what-if names must depend only on the design's current content
    and the edit itself, never on how many (possibly reverted) what-ifs this
    process has already served — otherwise a warm reply could not be
    byte-identical to a cold replay of the same edits.
    """
    if base not in design.name_to_row:
        return base
    suffix = 2
    while f"{base}_{suffix}" in design.name_to_row:
        suffix += 1
    return f"{base}_{suffix}"


def apply_edit(
    design: DesignArrays, edit: dict[str, Any], pdk: Pdk
) -> Callable[[], None]:
    """Apply one what-if edit and return the callable that reverts it.

    Every mutation goes through the :class:`DesignArrays` mutators and
    records its covering edit, so both the apply and the revert ride the
    timing engine's incremental replay.  Undo closures look rows up by name
    at revert time — the engine may compact the design in between, and names
    are the stable handle across renumbering.
    """
    kind = edit.get("kind")
    if kind not in EDIT_KINDS:
        raise ProtocolError(
            f"unknown edit kind {kind!r}; expected one of {list(EDIT_KINDS)}"
        )
    if kind == "insert_buffer":
        node = edit.get("node")
        row = _row_of(design, node)
        parent = int(design.parent_row[row])
        if parent < 0:
            raise ProtocolError(f"cannot insert a buffer above the root {node!r}")
        x = float(edit.get("x", (design.x[row] + design.x[parent]) / 2.0))
        y = float(edit.get("y", (design.y[row] + design.y[parent]) / 2.0))
        name = edit.get("name") or _fresh_name(design, f"wi_buf_{node}")
        design.insert_on_edge(
            row,
            KIND_BUFFER,
            x,
            y,
            side_front=True,
            capacitance=pdk.buffer.input_capacitance,
            name=name,
        )

        def undo() -> None:
            buffer_row = design.name_to_row[name]
            buffer_parent = int(design.parent_row[buffer_row])
            child = design.children_rows[buffer_row][0]
            design.move_child(child, buffer_parent)
            design.remove_leaf(buffer_row)
            design.mark_rewire(buffer_parent)

        return undo

    # retarget / rewire: move a subtree under a new parent.
    node = edit.get("node")
    row = _row_of(design, node)
    target = _row_of(design, edit.get("new_parent"))
    if int(design.parent_row[row]) < 0:
        raise ProtocolError(f"cannot retarget the root {node!r}")
    if design.kind[target] == KIND_SINK:
        raise ProtocolError(
            f"cannot retarget {node!r} under sink {edit.get('new_parent')!r}"
        )
    walk = target
    while walk >= 0:
        if walk == row:
            raise ProtocolError(
                f"retargeting {node!r} under its own subtree would form a cycle"
            )
        walk = int(design.parent_row[walk])
    old_parent = int(design.parent_row[row])
    old_parent_name = design.names[old_parent]
    target_name = design.names[target]
    design.move_child(row, target)
    # Both cones changed: the donor lost load, the receiver gained it.
    design.mark_rewire(old_parent)
    design.mark_rewire(target)

    def undo() -> None:
        moved = design.name_to_row[node]
        donor = design.name_to_row[old_parent_name]
        receiver = design.name_to_row[target_name]
        design.move_child(moved, donor)
        design.mark_rewire(receiver)
        design.mark_rewire(donor)

    return undo


# ----------------------------------------------------------------- session
def _corners_token(corners: CornerSet | None) -> tuple:
    if corners is None:
        return ()
    return tuple(
        (s.name, s.wire_res_scale, s.wire_cap_scale, s.buffer_derate,
         s.ntsv_res_scale, s.use_nldm)
        for s in corners
    )


def _metrics_row(metrics) -> dict[str, Any]:
    """The metrics reply row: ``as_row`` minus the wall-clock column.

    Runtime is the one column that legitimately differs between a warm
    session answer and its cold one-shot equivalent; everything else is part
    of the byte-identity contract.
    """
    row = dict(metrics.as_row())
    row.pop("runtime_s", None)
    return row


class DesignSession:
    """One cached design: built arrays, warm engines, committed edit log."""

    def __init__(
        self,
        key: str,
        pdk: Pdk,
        config: CtsConfig,
        run: CtsRunResult,
    ) -> None:
        if run.design is None:
            raise ValueError(
                "a serve session needs an IR flow result carrying its design "
                "(build with CtsConfig.for_session())"
            )
        self.key = key
        self.pdk = pdk
        self.config = config
        self.run = run
        self.design = run.design
        self.design_name = run.design_name
        self.edit_log: list[dict[str, Any]] = []
        self.requests = 0
        self._fingerprint: str | None = None
        self._cts = DoubleSideCTS(pdk, config)
        self._engines: dict[tuple, VectorizedElmoreEngine] = {}
        # One lock per session: concurrent clients may share a session, and
        # a what-if is a mutate-measure-revert critical section.
        self._lock = threading.Lock()

    # ------------------------------------------------------------- engines
    def _corner_set(self, corners: Any) -> CornerSet | None:
        if corners is None:
            return self.config.corners
        if isinstance(corners, CornerSet):
            return corners
        if not isinstance(corners, str):
            raise ProtocolError(f"corners must be a spec string, got {corners!r}")
        return CornerSet.parse(corners)

    def _engine(self, corners: CornerSet | None) -> VectorizedElmoreEngine:
        """The compiled engine for ``corners`` (created on first use).

        The session always times through the vectorized engine — its
        compiled state *is* what the session keeps warm; corner swaps get
        their own engine so each corner set's state stays warm independently.
        """
        token = _corners_token(corners)
        engine = self._engines.get(token)
        if engine is None:
            engine = VectorizedElmoreEngine(self.pdk, corners=corners)
            self._engines[token] = engine
        return engine

    # ------------------------------------------------------------- queries
    def fingerprint(self) -> str:
        """The canonical sha of the session's *committed* design state.

        Cached: the canonical hash walks every alive row, which would
        otherwise dominate a warm reply.  Only a commit changes the
        committed state, so only a commit invalidates it — trial edits are
        reverted before any reply is assembled.
        """
        if self._fingerprint is None:
            self._fingerprint = design_cache_key(self.design)
        return self._fingerprint

    def query(self, corners: Any = None) -> dict[str, Any]:
        """The metrics row of the design as built (plus committed edits)."""
        return self.what_if([], corners=corners)

    def what_if(
        self,
        edits: Iterable[dict[str, Any]],
        corners: Any = None,
        commit: bool = False,
    ) -> dict[str, Any]:
        """Apply ``edits``, re-evaluate warm, and revert unless committed."""
        edits = list(edits)
        for edit in edits:
            if not isinstance(edit, dict):
                raise ProtocolError(f"each edit must be an object, got {edit!r}")
        with self._lock:
            self.requests += 1
            corner_set = self._corner_set(corners)
            engine = self._engine(corner_set)
            undos: list[Callable[[], None]] = []
            try:
                for edit in edits:
                    undos.append(apply_edit(self.design, edit, self.pdk))
                metrics = self._cts.evaluate_design(
                    self.design, self.design_name, timing_engine=engine
                )
            except BaseException:
                for undo in reversed(undos):
                    undo()
                raise
            if commit:
                self.edit_log.extend(dict(edit) for edit in edits)
                if edits:
                    self._fingerprint = None
            else:
                for undo in reversed(undos):
                    undo()
            # The fingerprint reports the *committed* state the reply was
            # answered from (trial edits are reverted by now), so the cached
            # hash serves every warm reply between commits.
            return {
                "design": self.design_name,
                "fingerprint": self.fingerprint(),
                "corners": list(engine.corners.names),
                "edits": len(edits),
                "committed": bool(commit and edits),
                "metrics": _metrics_row(metrics),
            }

    def describe(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "design": self.design_name,
            "sinks": self.run.metrics.sinks,
            "requests": self.requests,
            "committed_edits": len(self.edit_log),
            "corner_sets": len(self._engines),
        }


def build_session(
    pdk: Pdk,
    clock_net: ClockNet,
    config: CtsConfig | None = None,
    design_name: str | None = None,
) -> DesignSession:
    """Run the flow once and wrap the result as a cacheable session."""
    session_config = (config or CtsConfig()).for_session()
    key = design_cache_key(clock_net, pdk, session_config.corners)
    run = DoubleSideCTS(pdk, session_config).run(clock_net, design_name)
    return DesignSession(key, pdk, session_config, run)


def one_shot_reply(
    pdk: Pdk,
    clock_net: ClockNet,
    config: CtsConfig | None = None,
    design_name: str | None = None,
    edits: Iterable[dict[str, Any]] = (),
    corners: Any = None,
    committed: Iterable[dict[str, Any]] = (),
) -> dict[str, Any]:
    """The cold one-shot equivalent of a warm ``what_if`` reply.

    Builds the design from scratch (a full ``dscts run``-equivalent flow),
    replays the session's ``committed`` edits and then the query ``edits``,
    and evaluates on a fresh engine.  The executable spec the warm path's
    byte-identity is pinned against — any representation (``object`` or
    ``ir``) and any worker count must land on these exact bytes.
    """
    session = build_session(pdk, clock_net, config, design_name)
    for edit in committed:
        apply_edit(session.design, edit, pdk)
        session.edit_log.append(dict(edit))
    return session.what_if(edits, corners=corners)


# ------------------------------------------------------------------- cache
class SessionCache:
    """A thread-safe LRU registry of :class:`DesignSession` objects."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("session cache capacity must be at least 1")
        self.capacity = capacity
        self.evictions = 0
        self._sessions: OrderedDict[str, DesignSession] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> DesignSession | None:
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
            return session

    def require(self, key: Any) -> DesignSession:
        if not isinstance(key, str):
            raise ProtocolError(f"session key must be a string, got {key!r}")
        session = self.get(key)
        if session is None:
            raise SessionError(f"unknown session {key!r} (expired or never built)")
        return session

    def put(self, session: DesignSession) -> list[str]:
        """Register ``session`` (most-recent) and return any evicted keys."""
        evicted: list[str] = []
        with self._lock:
            self._sessions[session.key] = session
            self._sessions.move_to_end(session.key)
            while len(self._sessions) > self.capacity:
                key, _ = self._sessions.popitem(last=False)
                self.evictions += 1
                evicted.append(key)
        return evicted

    def evict(self, key: str) -> bool:
        with self._lock:
            return self._sessions.pop(key, None) is not None

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def describe(self) -> dict[str, Any]:
        with self._lock:
            sessions = [session.describe() for session in self._sessions.values()]
        return {
            "capacity": self.capacity,
            "evictions": self.evictions,
            "sessions": sessions,
        }

"""``dscts serve``: a long-lived, cross-design CTS service.

The serve tier keeps built designs warm: each successful build becomes a
:class:`~repro.serve.session.DesignSession` (the persistent design arrays
plus compiled timing-engine state) registered under its canonical
:func:`~repro.guard.validation.design_cache_key`, and subsequent ``what_if``
requests ride the engine's incremental dirty-cone path instead of
re-running the flow.  See :mod:`repro.serve.protocol` for the wire format.
"""

from repro.serve.protocol import (
    EDIT_KINDS,
    KNOWN_OPS,
    ProtocolError,
    SessionError,
    decode_request,
    encode_reply,
    error_reply,
    ok_reply,
)
from repro.serve.server import CtsServer
from repro.serve.session import (
    DesignSession,
    SessionCache,
    apply_edit,
    build_session,
    one_shot_reply,
)

__all__ = [
    "EDIT_KINDS",
    "KNOWN_OPS",
    "ProtocolError",
    "SessionError",
    "decode_request",
    "encode_reply",
    "error_reply",
    "ok_reply",
    "CtsServer",
    "DesignSession",
    "SessionCache",
    "apply_edit",
    "build_session",
    "one_shot_reply",
]

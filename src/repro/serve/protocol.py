"""Wire protocol of ``dscts serve``: newline-delimited JSON requests/replies.

One request per line, one reply per line, over TCP or stdin.  A request is a
JSON object with an ``op`` field and optional ``id`` (echoed verbatim in the
reply so pipelining clients can match answers to questions):

==============  =============================================================
``build``       build (or fetch from the session cache) a design:
                ``design`` is a benchmark id (``"C4"``, with optional
                ``scale``) or an inline net ``{"name", "source": {"x","y"},
                "sinks": [{"name","x","y","cap"}, ...]}``; optional
                ``corners`` spec string.  Replies with the session ``key``,
                ``cached`` flag, the metrics row, and build diagnostics.
``what_if``     apply hypothetical ``edits`` to a cached ``session`` and
                reply with the re-evaluated metrics row; ``commit`` (default
                false) keeps the edits, otherwise they are reverted after
                measuring.  Optional ``corners`` re-times the same tree under
                a different corner set (a corner swap, not a rebuild).
``query``       the metrics row of a cached ``session`` without edits
                (optionally under a swapped ``corners`` set).
``sessions``    list cached session keys and per-session stats.
``evict``       drop ``session`` from the cache.
``ping``        liveness probe.
``shutdown``    stop the server after replying.
==============  =============================================================

Replies are ``{"id": ..., "ok": true, "result": {...}}`` or ``{"id": ...,
"ok": false, "error": {"type", "message", ...}}``.  Typed flow errors keep
their fields: a :class:`~repro.guard.GuardError` reply carries ``stage`` /
``anomaly`` / ``fingerprint``, a :class:`~repro.parallel.ParallelError`
reply carries ``stage`` / ``task`` / ``attempts`` / ``cause`` — the serve
loop surfaces them per request instead of swallowing them (the same
never-catch rule the CLI follows; see :mod:`repro.guard.policy`).

Replies are encoded canonically (sorted keys, no whitespace) so an answer's
bytes depend only on its content — the byte-identity contract the warm
``what_if`` path is pinned against.
"""

from __future__ import annotations

import json
from typing import Any

from repro.guard.policy import GuardError
from repro.parallel import ParallelError

#: Every operation the request loop dispatches.
KNOWN_OPS: tuple[str, ...] = (
    "build",
    "what_if",
    "query",
    "sessions",
    "evict",
    "ping",
    "shutdown",
)

#: What-if edit kinds the session applies (``rewire`` aliases ``retarget``).
EDIT_KINDS: tuple[str, ...] = ("insert_buffer", "retarget", "rewire")


class ProtocolError(ValueError):
    """A malformed request: bad JSON, wrong shape, or an unknown operation."""


class SessionError(KeyError):
    """A request referenced a session key the cache does not hold."""

    def __str__(self) -> str:  # KeyError reprs its argument; keep it readable
        return self.args[0] if self.args else ""


def decode_request(line: str) -> dict[str, Any]:
    """Parse one request line into a validated request dict."""
    text = line.strip()
    if not text:
        raise ProtocolError("empty request line")
    try:
        request = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(request, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    op = request.get("op")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {list(KNOWN_OPS)}"
        )
    return request


def ok_reply(request_id: Any, result: dict[str, Any]) -> dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_reply(request_id: Any, exc: BaseException) -> dict[str, Any]:
    """The structured error reply for ``exc`` (typed fields preserved).

    Guard and parallel errors must never be caught-and-swallowed: this is
    the one sanctioned handler, and it *surfaces* the error — type, message,
    and every typed field — to the client that owns the request.
    """
    error: dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, GuardError):
        error.update(
            stage=exc.stage, anomaly=exc.anomaly, fingerprint=exc.fingerprint
        )
    elif isinstance(exc, ParallelError):
        error.update(
            stage=exc.stage, task=exc.task, attempts=exc.attempts, cause=exc.cause
        )
    return {"id": request_id, "ok": False, "error": error}


def encode_reply(reply: dict[str, Any]) -> str:
    """Canonical one-line encoding (sorted keys — byte-stable by content)."""
    return json.dumps(reply, sort_keys=True, separators=(",", ":"))

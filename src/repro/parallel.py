"""Process-level parallelism shared by the scaled construction tier.

The region-parallel routing and the DP-subtree-parallel insertion both fan
work out over a process pool.  Spinning a fresh
:class:`~concurrent.futures.ProcessPoolExecutor` per stage call would
dominate small runs (and the test suite under a ``workers>1`` matrix job),
so this module keeps one lazily created pool per process and reuses it
across calls; the pool grows when a caller asks for more workers than it
currently has and is torn down at interpreter exit.

``resolve_workers`` is the one resolution rule for the ``workers=`` knob:
explicit argument > ``CtsConfig.workers`` > ``REPRO_FLOW_WORKERS`` > 1 —
the same precedence shape every backend knob uses.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_FLOW_WORKERS"

_POOL: ProcessPoolExecutor | None = None
_POOL_SIZE = 0


def resolve_workers(*candidates: int | None) -> int:
    """Resolve the first non-None candidate, else the env var, else 1.

    An empty environment value counts as unset so CI matrix entries can
    pass ``REPRO_FLOW_WORKERS`` through unconditionally.
    """
    value = next((c for c in candidates if c is not None), None)
    if value is None:
        env = os.environ.get(WORKERS_ENV_VAR) or ""
        value = int(env) if env.strip() else 1
    value = int(value)
    if value < 1:
        raise ValueError(f"workers must be at least 1, got {value}")
    return value


def shared_pool(workers: int) -> ProcessPoolExecutor:
    """A process pool with at least ``workers`` workers, reused across calls."""
    global _POOL, _POOL_SIZE
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    if _POOL is None or _POOL_SIZE < workers:
        if _POOL is not None:
            _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_SIZE = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear the shared pool down (tests and interpreter exit)."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_SIZE = 0


atexit.register(shutdown_pool)

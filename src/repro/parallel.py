"""Fault-tolerant process-level parallelism of the scaled construction tier.

The region-parallel routing, the DP-subtree-parallel insertion, the DSE
sweep, and the benchmark flow cache all fan work out over one shared
process pool.  Spinning a fresh
:class:`~concurrent.futures.ProcessPoolExecutor` per stage call would
dominate small runs (and the test suite under a ``workers>1`` matrix job),
so this module keeps one lazily created pool per process and reuses it
across calls; the pool grows when a caller asks for more workers than it
currently has and is torn down at interpreter exit.

``resolve_workers`` is the one resolution rule for the ``workers=`` knob:
explicit argument > ``CtsConfig.workers`` > ``REPRO_FLOW_WORKERS`` > 1 —
the same precedence shape every backend knob uses.
``resolve_parallel_policy`` applies the identical rule to the
fault-tolerance knob (:class:`ParallelPolicy`, env var
``REPRO_PARALLEL_POLICY``).

**Fault tolerance** (:func:`run_tasks`).  Because parallel construction is
bit-identical to serial by contract (``tests/test_parallel_construction.py``),
every worker failure is perfectly recoverable: the affected task can simply
be recomputed — first by retrying on the pool (crashes are often caused by
transient conditions: OOM kills, a recycled worker), finally by running the
same module-level worker function *inline* on the main process, which is the
serial flow by construction.  :func:`run_tasks` implements that ladder:

* per-task timeouts (``policy.timeout_s``) so a hung worker cannot stall
  the flow forever;
* bounded retries with exponential backoff (``policy.attempts``,
  ``policy.backoff_s``, ``policy.backoff_factor``);
* :class:`~concurrent.futures.process.BrokenProcessPool` detection with an
  automatic pool re-spawn between rounds (a pool that lost a worker — or
  whose workers are hung past their timeout — is never reused);
* a per-task ``validate`` hook run on the *main* process, so a worker that
  returns corrupt rows counts as a failed attempt rather than poisoning the
  merge;
* **degrade-to-serial** as the terminal fallback (``policy.mode ==
  "degrade"``): the task runs inline, the flow continues, and a
  :class:`ParallelDiagnostic` records stage, task, attempt count, and cause
  — mirroring the guard's :class:`~repro.guard.GuardDiagnostic`;
* ``policy.mode == "strict"`` raises a typed :class:`ParallelError`
  instead.  Like :class:`~repro.guard.GuardError`, a :class:`ParallelError`
  is **never caught at a call site** — it exists to stop the flow, and
  swallowing it would turn a deliberate fail-fast into silent data loss.

The worker-fault injectors that prove every branch of this ladder live in
:mod:`repro.guard.faults` (:class:`~repro.guard.faults.WorkerFault`), armed
programmatically or via the ``REPRO_PARALLEL_FAULTS`` environment variable
so a whole CI job can run with, say, every first attempt crashing.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_FLOW_WORKERS"

#: Environment variable consulted when no explicit policy is given
#: (``"attempts=3,timeout_s=10,backoff_s=0.1,mode=strict"`` — any subset).
PARALLEL_POLICY_ENV_VAR = "REPRO_PARALLEL_POLICY"

#: Terminal behaviours after a task exhausts its attempts.
PARALLEL_MODES = ("degrade", "strict")

_POOL: ProcessPoolExecutor | None = None
_POOL_SIZE = 0
_EXIT_SWEEP_REGISTERED = False


def _pool_workers(pool: ProcessPoolExecutor) -> list:
    return list((getattr(pool, "_processes", None) or {}).values())


def resolve_workers(*candidates: int | None) -> int:
    """Resolve the first non-None candidate, else the env var, else 1.

    An empty environment value counts as unset so CI matrix entries can
    pass ``REPRO_FLOW_WORKERS`` through unconditionally.  Anything that is
    not an integer of at least 1 — zero, negatives, floats, bools, an
    unparsable environment value — is rejected with a :class:`ValueError`
    rather than silently truncated: a worker count of ``2.7`` is a caller
    bug, not a request for 2 workers.
    """
    value: Any = next((c for c in candidates if c is not None), None)
    if value is None:
        env = (os.environ.get(WORKERS_ENV_VAR) or "").strip()
        if not env:
            return 1
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"workers must be an integer of at least 1, got "
                f"{WORKERS_ENV_VAR}={env!r}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"workers must be an integer of at least 1, got {value!r}"
        )
    if value < 1:
        raise ValueError(f"workers must be an integer of at least 1, got {value}")
    return value


# ------------------------------------------------------------------- policy
@dataclass(frozen=True)
class ParallelPolicy:
    """The fault-tolerance knob of every pool consumer.

    Attributes:
        attempts: how many times a task may run on the pool before the
            terminal fallback (>= 1; ``1`` disables retries).
        timeout_s: per-task wall-clock budget on the pool; ``None`` (the
            default) waits forever.  The default stays ``None`` because the
            pool's task sizes span five orders of magnitude (a routing shard
            to a full benchmark flow) — callers that know their task scale
            opt in via config or ``REPRO_PARALLEL_POLICY``.  The budget is
            measured from submission, so it also covers queue wait and
            worker spin-up — and a retry always lands on a freshly
            respawned pool whose forkserver workers import numpy and the
            task's module from scratch.  Choose it generously (seconds,
            not milliseconds), or a cold but healthy retry can itself
            "time out" straight into the terminal fallback.
        backoff_s: sleep before the second round of a task that failed;
            each further round multiplies it by :attr:`backoff_factor`.
        backoff_factor: exponential backoff base (>= 1).
        mode: terminal behaviour once attempts are exhausted —
            ``"degrade"`` recomputes the task inline on the main process
            (bit-identical by construction) and records a
            :class:`ParallelDiagnostic`; ``"strict"`` raises
            :class:`ParallelError`.
    """

    attempts: int = 2
    timeout_s: float | None = None
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    mode: str = "degrade"

    def __post_init__(self) -> None:
        if isinstance(self.attempts, bool) or not isinstance(self.attempts, int):
            raise ValueError(f"attempts must be an integer, got {self.attempts!r}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be at least 1, got {self.attempts}")
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be non-negative, got {self.backoff_s}")
        if self.backoff_factor < 1:
            raise ValueError(
                f"backoff_factor must be at least 1, got {self.backoff_factor}"
            )
        if self.mode not in PARALLEL_MODES:
            raise ValueError(
                f"unknown parallel mode {self.mode!r}; expected one of "
                f"{PARALLEL_MODES}"
            )

    @classmethod
    def parse(cls, spec: str) -> "ParallelPolicy":
        """Parse ``"attempts=3,timeout_s=10,mode=strict"`` (any subset).

        A bare mode name (``"strict"`` / ``"degrade"``) is accepted as
        shorthand; ``timeout_s=none`` clears the timeout.
        """
        kwargs: dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                if part in PARALLEL_MODES:
                    kwargs["mode"] = part
                    continue
                raise ValueError(
                    f"bad parallel-policy entry {part!r}; expected key=value "
                    f"or one of {PARALLEL_MODES}"
                )
            key, _, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if key == "attempts":
                kwargs[key] = int(value)
            elif key == "timeout_s":
                kwargs[key] = None if value.lower() in ("", "none") else float(value)
            elif key in ("backoff_s", "backoff_factor"):
                kwargs[key] = float(value)
            elif key == "mode":
                kwargs[key] = value
            else:
                raise ValueError(f"unknown parallel-policy key {key!r}")
        return cls(**kwargs)

    def with_updates(self, **kwargs) -> "ParallelPolicy":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def resolve_parallel_policy(
    *candidates: "ParallelPolicy | str | None",
) -> ParallelPolicy:
    """First non-None candidate > ``REPRO_PARALLEL_POLICY`` > defaults.

    The same precedence rule as every backend knob; string candidates (and
    the environment value) go through :meth:`ParallelPolicy.parse`.
    """
    policy = next((c for c in candidates if c is not None), None)
    if policy is None:
        env = (os.environ.get(PARALLEL_POLICY_ENV_VAR) or "").strip()
        if not env:
            return ParallelPolicy()
        policy = env
    if isinstance(policy, str):
        return ParallelPolicy.parse(policy)
    return policy


# ---------------------------------------------------------------- diagnostics
class ParallelError(RuntimeError):
    """A pool task failed beyond recovery under the ``strict`` policy.

    Never catch this at a call site (the same rule as
    :class:`~repro.guard.GuardError`): ``strict`` exists to stop the flow,
    and recovery belongs to the ``degrade`` policy, not to ad-hoc handlers.
    """

    def __init__(self, stage: str, task: str, attempts: int, cause: str) -> None:
        self.stage = stage
        self.task = task
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"parallel {stage} task [{task}] failed after {attempts} "
            f"attempt(s): {cause}"
        )


@dataclass(frozen=True)
class ParallelDiagnostic:
    """One recovered pool-task failure, recorded on the flow result.

    Attributes:
        stage: pool consumer name (``"routing"``, ``"insertion"``,
            ``"dse"``, ``"flow_cache"``).
        task: human-readable task id (e.g. ``"region 3"``).
        attempts: pool attempts consumed when the action was taken.
        action: ``"retried"`` (a later pool attempt succeeded) or
            ``"degraded-to-serial"`` (the task was recomputed inline).
        cause: ``"ExcType: message"`` of the first failure.
    """

    stage: str
    task: str
    attempts: int
    action: str
    cause: str


# ---------------------------------------------------------------- shared pool
def _pool_context():
    """The multiprocessing start method used for the shared pool.

    ``fork`` is unsafe here: once pools are being torn down and respawned
    (exactly what the fault-tolerance ladder does), the parent process has
    live helper threads — executor queue feeders, management threads, BLAS
    pools — and a child forked while one of them holds a lock inherits that
    lock forever and deadlocks.  ``forkserver`` forks every worker from a
    thread-free server process instead, making respawn deadlock-free; the
    worker functions are all importable module-level callables, so pickling
    by reference (which forkserver requires) already holds.
    """
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform without forkserver
        return multiprocessing.get_context()


def _kill_stray_workers() -> None:
    """SIGKILL every pool worker still alive when the interpreter exits.

    Interpreter exit joins pool workers twice, both times without a
    timeout: ``concurrent.futures`` joins every executor's management
    thread (which joins its workers), and ``multiprocessing.util``'s own
    atexit hook then joins every remaining child process.  A worker that
    deadlocked on a queue lock whose holder was killed mid-write — the
    fault injectors make that race easy to hit, a real OOM kill hits it
    too — blocks those joins forever, turning a finished, fully passing
    run into a process that never exits.

    Executor bookkeeping cannot enumerate these strays: the management
    thread pops a worker it believes exited from ``_processes`` before
    joining it, and an abandoned executor may itself be garbage-collected
    while its worker lives on.  ``multiprocessing.active_children()`` is
    the one complete census — every worker is a child of this process —
    filtered to pool workers by their ``_process_worker`` target so the
    sweep never touches unrelated child processes an embedding
    application might own.

    Registered via ``threading._register_atexit`` *after* the
    ``concurrent.futures`` exit hook, so Python's LIFO ordering runs the
    sweep *before* the joins it unblocks; by then every result has been
    consumed, so SIGKILL is safe — recovery happened rounds ago, on the
    main process.

    Workers are recognised by their default process name (the pool start
    method's class prefix, e.g. ``ForkServerProcess-``): ``Process.start``
    deletes the ``_target`` attribute, and no other identity survives on
    the parent-side object.  The kill loop re-scans a few times because
    the management thread can have a replacement spawn in flight — the
    child registers with ``active_children`` only once the fork-server
    hands back its pid, possibly after the first scan.
    """
    prefix = _pool_context().Process.__name__ + "-"
    for _ in range(3):
        strays = [
            process
            for process in multiprocessing.active_children()
            if process.name.startswith(prefix)
        ]
        if not strays:
            return
        for process in strays:
            process.kill()
        time.sleep(0.05)


def _register_exit_sweep() -> None:
    global _EXIT_SWEEP_REGISTERED
    if _EXIT_SWEEP_REGISTERED:
        return
    register = getattr(threading, "_register_atexit", None)
    if register is not None:
        register(_kill_stray_workers)
    else:  # pragma: no cover - very old interpreters
        atexit.register(_kill_stray_workers)
    _EXIT_SWEEP_REGISTERED = True


def shared_pool(workers: int) -> ProcessPoolExecutor:
    """A process pool with at least ``workers`` workers, reused across calls."""
    global _POOL, _POOL_SIZE
    if workers < 1:
        raise ValueError(f"workers must be an integer of at least 1, got {workers}")
    if _POOL is None or _POOL_SIZE < workers:
        shutdown_pool()
        _register_exit_sweep()
        _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())
        _POOL_SIZE = workers
        # Exactly one registration per live pool: re-register on every
        # (re)creation and unregister on shutdown, so a pool created after
        # an earlier teardown (a late FlowCache.warm, a test that called
        # shutdown_pool) is still torn down at interpreter exit.
        atexit.unregister(shutdown_pool)
        atexit.register(shutdown_pool)
    return _POOL


def shutdown_pool() -> None:
    """Tear the shared pool down (tests, recovery, and interpreter exit).

    The abandoned pool's workers are *terminated*, not joined: nothing will
    ever await their results again (a task in flight on them is being
    retried on the next pool or recomputed serially), and a worker hung
    mid-task would otherwise block forever — ``concurrent.futures`` joins
    every executor's management thread at interpreter exit, and that thread
    in turn joins the worker processes, so one stuck worker left alive
    turns a finished run into a process that never exits.
    """
    global _POOL, _POOL_SIZE
    atexit.unregister(shutdown_pool)
    if _POOL is not None:
        pool = _POOL
        _POOL = None
        _POOL_SIZE = 0
        pool.shutdown(wait=False, cancel_futures=True)
        for process in _pool_workers(pool):
            process.terminate()


def respawn_pool(workers: int) -> ProcessPoolExecutor:
    """Replace the shared pool with a fresh one of ``workers`` workers.

    A pool that lost a worker (:class:`BrokenProcessPool`) or whose workers
    are hung past their task timeout cannot be reused; the old executor is
    shut down without waiting (hung workers are left to finish dying on
    their own) and a new pool takes its place.
    """
    shutdown_pool()
    return shared_pool(workers)


# ------------------------------------------------------------------- run_tasks
def _policed_call(args: tuple) -> Any:
    """Worker-side task wrapper: apply armed worker faults around ``fn``.

    ``faults`` travelled with the payload (picklable
    :class:`~repro.guard.faults.WorkerFault` rows), so the injectors work
    under any multiprocessing start method and need no worker-side state.
    """
    fn, payload, stage, index, attempt, faults = args
    for fault in faults:
        fault.worker_before(stage, index, attempt)
    result = fn(payload)
    for fault in faults:
        result = fault.worker_after(stage, index, attempt, result)
    return result


def run_tasks(
    stage: str,
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int,
    *,
    policy: "ParallelPolicy | None" = None,
    validate: Callable[[Any, Any], None] | None = None,
    serial_fn: Callable[[Any], Any] | None = None,
    diagnostics: "list[ParallelDiagnostic] | None" = None,
    label: Callable[[int, Any], str] | None = None,
) -> list:
    """Fault-tolerant map of ``fn`` over ``payloads`` on the shared pool.

    Results are returned in payload order regardless of completion order.
    ``fn`` must be a module-level callable taking one payload argument (the
    pool pickles it by reference); ``serial_fn`` (default: ``fn``) is the
    inline fallback run on the main process when ``policy.mode ==
    "degrade"`` and a task has exhausted its pool attempts.  ``validate``
    runs on the main process against every pool result *and* every serial
    recomputation; a validation error on a pool result counts as a failed
    attempt, on a serial result it raises :class:`ParallelError` (nothing
    left to fall back to).  ``label`` names tasks for diagnostics (default
    ``"task {i}"``).  Recovery events are appended to ``diagnostics``.

    With ``workers <= 1`` or a single payload there is nothing to fan out:
    tasks run inline (exactly the serial flow — no pool, no injected worker
    faults, no diagnostics).
    """
    payloads = list(payloads)
    count = len(payloads)
    if count == 0:
        return []
    policy = resolve_parallel_policy(policy)
    serial = serial_fn if serial_fn is not None else fn
    sink = diagnostics if diagnostics is not None else []
    names = [
        label(i, payload) if label is not None else f"task {i}"
        for i, payload in enumerate(payloads)
    ]

    if workers <= 1 or count == 1:
        results = []
        for i in range(count):
            result = serial(payloads[i])
            if validate is not None:
                validate(result, payloads[i])
            results.append(result)
        return results

    from repro.guard.faults import active_worker_faults, break_pool

    faults = tuple(f for f in active_worker_faults() if f.applies_to(stage))
    results: list[Any] = [None] * count
    pending = list(range(count))
    attempts_done = {i: 0 for i in pending}
    first_cause: dict[int, str] = {}
    pool_size = min(workers, count)
    pool: ProcessPoolExecutor | None
    try:
        pool = shared_pool(pool_size)
    except Exception as exc:  # pool unavailable (e.g. interpreter shutdown)
        pool = None
        for i in pending:
            first_cause[i] = f"pool unavailable: {type(exc).__name__}: {exc}"

    for attempt in range(1, policy.attempts + 1):
        if pool is None or not pending:
            break
        if any(
            fault.kind == "broken_pool" and fault.fires(stage, i, attempt)
            for fault in faults
            for i in pending
        ):
            try:
                break_pool(pool)
            except Exception:
                # break_pool submits a probe task to force worker spawn; on
                # a pool whose spawn machinery is already down (a crashed
                # fork-server) that probe raises instead.  The pool is then
                # exactly as broken as the injector wanted — carry on and
                # let the submit loop below observe it.
                pass
        futures: dict[int, Any] = {}
        failed: list[int] = []
        respawn = False
        submit_error: Exception | None = None
        for i in pending:
            try:
                futures[i] = pool.submit(
                    _policed_call, (fn, payloads[i], stage, i, attempt, faults)
                )
            except Exception as exc:  # broken pool / executor already shut down
                submit_error = exc
                break
        if submit_error is not None:
            cause = f"{type(submit_error).__name__}: {submit_error}"
            for i in pending:
                attempts_done[i] += 1
                first_cause.setdefault(i, cause)
            failed = list(pending)
            respawn = True
        else:
            for i in pending:
                attempts_done[i] += 1
                try:
                    result = futures[i].result(timeout=policy.timeout_s)
                    if validate is not None:
                        validate(result, payloads[i])
                except FuturesTimeoutError:
                    first_cause.setdefault(
                        i,
                        "TimeoutError: no result within "
                        f"{policy.timeout_s}s",
                    )
                    failed.append(i)
                    respawn = True
                except BrokenProcessPool as exc:
                    first_cause.setdefault(i, f"{type(exc).__name__}: {exc}")
                    failed.append(i)
                    respawn = True
                except Exception as exc:
                    first_cause.setdefault(i, f"{type(exc).__name__}: {exc}")
                    failed.append(i)
                else:
                    results[i] = result
                    if attempts_done[i] > 1:
                        sink.append(
                            ParallelDiagnostic(
                                stage=stage,
                                task=names[i],
                                attempts=attempts_done[i],
                                action="retried",
                                cause=first_cause.get(i, ""),
                            )
                        )
        pending = failed
        if respawn:
            # A broken or timed-out pool may hold dead or hung workers;
            # replace it before the next round (or the next caller).
            try:
                pool = respawn_pool(pool_size)
            except Exception:  # pragma: no cover - interpreter shutdown
                pool = None
        if pending and pool is not None and attempt < policy.attempts:
            if policy.backoff_s > 0:
                time.sleep(
                    policy.backoff_s * policy.backoff_factor ** (attempt - 1)
                )

    # Terminal fallback for tasks that never produced a valid pool result.
    for i in pending:
        cause = first_cause.get(i, "unknown failure")
        if policy.mode == "strict":
            raise ParallelError(stage, names[i], attempts_done[i], cause)
        result = serial(payloads[i])
        if validate is not None:
            try:
                validate(result, payloads[i])
            except Exception as exc:
                raise ParallelError(
                    stage,
                    names[i],
                    attempts_done[i],
                    f"serial recomputation failed validation: "
                    f"{type(exc).__name__}: {exc}",
                ) from exc
        results[i] = result
        sink.append(
            ParallelDiagnostic(
                stage=stage,
                task=names[i],
                attempts=attempts_done[i],
                action="degraded-to-serial",
                cause=cause,
            )
        )
    return results

"""The Table II benchmark suite (C1..C5)."""

from __future__ import annotations

from repro.designs.generator import PlacementGenerator, PlacementSpec
from repro.netlist.design import Design

#: Table II of the paper: OpenROAD designs placed with the ASAP7 flow.
BENCHMARK_SPECS: dict[str, PlacementSpec] = {
    "C1": PlacementSpec(
        name="jpeg", cell_count=54973, ff_count=4380, utilization=0.50, seed=11
    ),
    "C2": PlacementSpec(
        name="swerv_wrapper",
        cell_count=148407,
        ff_count=14338,
        utilization=0.40,
        macro_count=4,
        seed=12,
    ),
    "C3": PlacementSpec(
        name="ethmac",
        cell_count=56851,
        ff_count=10018,
        utilization=0.40,
        macro_count=2,
        seed=13,
    ),
    "C4": PlacementSpec(
        name="riscv32i", cell_count=11579, ff_count=1056, utilization=0.50, seed=14
    ),
    "C5": PlacementSpec(
        name="aes", cell_count=29306, ff_count=2072, utilization=0.50, seed=15
    ),
}

#: Reverse lookup from design name to benchmark id.
_NAME_TO_ID = {spec.name: bench_id for bench_id, spec in BENCHMARK_SPECS.items()}


def load_design(
    identifier: str,
    scale: float = 1.0,
    include_combinational: bool = True,
) -> Design:
    """Generate one benchmark design by id ("C3") or name ("ethmac").

    ``scale`` proportionally shrinks the cell and flip-flop counts (used by
    tests and quick examples); ``include_combinational=False`` skips the
    non-clocked cells, which CTS never looks at, for faster generation.
    """
    bench_id = identifier if identifier in BENCHMARK_SPECS else _NAME_TO_ID.get(identifier)
    if bench_id is None:
        raise KeyError(
            f"unknown benchmark {identifier!r}; choose from "
            f"{sorted(BENCHMARK_SPECS)} or {sorted(_NAME_TO_ID)}"
        )
    spec = BENCHMARK_SPECS[bench_id]
    if scale != 1.0:
        spec = spec.scaled(scale)
    generator = PlacementGenerator(include_combinational=include_combinational)
    return generator.generate(spec)


def benchmark_suite(
    scale: float = 1.0,
    include_combinational: bool = True,
    only: list[str] | None = None,
) -> dict[str, Design]:
    """Generate the whole C1..C5 suite (optionally scaled / filtered)."""
    ids = only if only is not None else list(BENCHMARK_SPECS)
    return {
        bench_id: load_design(
            bench_id, scale=scale, include_combinational=include_combinational
        )
        for bench_id in ids
    }


def table_ii_rows(scale: float = 1.0) -> list[dict[str, float | int | str]]:
    """Return Table II as data rows (id, design, #cells, #FFs, utilisation)."""
    rows = []
    for bench_id, spec in BENCHMARK_SPECS.items():
        effective = spec if scale == 1.0 else spec.scaled(scale)
        rows.append(
            {
                "id": bench_id,
                "design": effective.name,
                "cells": effective.cell_count,
                "ffs": effective.ff_count,
                "utilization": effective.utilization,
            }
        )
    return rows

"""Benchmark designs (Table II) and the synthetic placement generator.

The paper's benchmarks are OpenROAD designs placed with the ASAP7 flow; the
post-place DEF files are not redistributable, so this package generates
placed designs with the same statistics (#cells, #FFs, utilisation) and
realistic, non-uniform sink distributions.  Real DEF files can be used
instead through :mod:`repro.lefdef`.
"""

from repro.designs.generator import (
    PlacementGenerator,
    PlacementSpec,
    random_sink_cloud,
)
from repro.designs.suite import (
    BENCHMARK_SPECS,
    benchmark_suite,
    load_design,
    table_ii_rows,
)

__all__ = [
    "PlacementGenerator",
    "PlacementSpec",
    "random_sink_cloud",
    "BENCHMARK_SPECS",
    "benchmark_suite",
    "load_design",
    "table_ii_rows",
]

"""Synthetic placed-design generation.

The generator reproduces the *statistics* of the paper's benchmarks — cell
count, flip-flop count, utilisation, and an ASAP7-like die size — with a
realistic spatial distribution of flip-flops: a mixture of dense register
clusters (datapaths, FIFOs) and a uniform background, plus optional macro
blockages that sinks avoid (the macros drawn in Fig. 5 of the paper).
All randomness is seeded, so every benchmark is reproducible bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import Point, Rect
from repro.netlist import ClockNet, ClockSink, ClockSource
from repro.netlist.cell import Cell, CellKind
from repro.netlist.design import Design

#: ASAP7 7.5-track row height in micrometres.
ROW_HEIGHT = 0.27
#: Average standard cell widths (um) used for die sizing.
COMB_CELL_WIDTH = 0.65
FF_CELL_WIDTH = 1.30
#: Default clock pin capacitance of a flip-flop (fF).
FF_CLOCK_PIN_CAP = 0.8


@dataclass(frozen=True)
class PlacementSpec:
    """Statistics of a benchmark to generate (one Table II row).

    Attributes:
        name: design name (e.g. ``"jpeg"``).
        cell_count: total number of placed cells.
        ff_count: number of flip-flops (clock sinks).
        utilization: placement utilisation (placed area / die area).
        macro_count: number of rectangular macro blockages.
        cluster_fraction: fraction of flip-flops placed in dense register
            clusters; the remainder is spread uniformly.
        seed: RNG seed.
    """

    name: str
    cell_count: int
    ff_count: int
    utilization: float
    macro_count: int = 0
    cluster_fraction: float = 0.6
    seed: int = 1

    def __post_init__(self) -> None:
        if self.ff_count > self.cell_count:
            raise ValueError(f"{self.name}: more flip-flops than cells")
        if not 0 < self.utilization <= 1:
            raise ValueError(f"{self.name}: utilisation must be in (0, 1]")
        if not 0 <= self.cluster_fraction <= 1:
            raise ValueError(f"{self.name}: cluster fraction must be in [0, 1]")

    def scaled(self, scale: float) -> "PlacementSpec":
        """Return a proportionally smaller spec (for fast tests/examples)."""
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        return PlacementSpec(
            name=self.name,
            cell_count=max(10, int(self.cell_count * scale)),
            ff_count=max(4, int(self.ff_count * scale)),
            utilization=self.utilization,
            macro_count=self.macro_count,
            cluster_fraction=self.cluster_fraction,
            seed=self.seed,
        )

    def die_area(self) -> Rect:
        """Derive a square die from the cell areas and the utilisation."""
        comb_cells = self.cell_count - self.ff_count
        total_area = (
            comb_cells * COMB_CELL_WIDTH * ROW_HEIGHT
            + self.ff_count * FF_CELL_WIDTH * ROW_HEIGHT
        )
        side = math.sqrt(total_area / self.utilization)
        return Rect(0.0, 0.0, side, side)


@dataclass
class PlacementGenerator:
    """Generates a placed :class:`~repro.netlist.Design` from a spec."""

    include_combinational: bool = True
    ff_clock_pin_capacitance: float = FF_CLOCK_PIN_CAP
    macro_margin: float = 0.05
    _rng: np.random.Generator = field(init=False, repr=False, default=None)

    # ----------------------------------------------------------------- public
    def generate(self, spec: PlacementSpec) -> Design:
        """Generate the placed design described by ``spec``."""
        self._rng = np.random.default_rng(spec.seed)
        die = spec.die_area()
        design = Design(name=spec.name, die_area=die)

        macros = self._place_macros(design, spec, die)
        self._place_flip_flops(design, spec, die, macros)
        if self.include_combinational:
            self._place_combinational(design, spec, die)
        design.build_clock_net()
        return design

    # ------------------------------------------------------------------ macros
    def _place_macros(
        self, design: Design, spec: PlacementSpec, die: Rect
    ) -> list[Rect]:
        macros: list[Rect] = []
        for index in range(spec.macro_count):
            width = die.width * self._rng.uniform(0.12, 0.22)
            height = die.height * self._rng.uniform(0.12, 0.22)
            x = self._rng.uniform(die.xlo, die.xhi - width)
            y = self._rng.uniform(die.ylo, die.yhi - height)
            rect = Rect(x, y, x + width, y + height)
            macros.append(rect)
            design.add_cell(
                Cell(
                    name=f"macro_{index}",
                    master="SRAM_MACRO",
                    kind=CellKind.MACRO,
                    location=Point(x, y),
                    width=width,
                    height=height,
                    fixed=True,
                )
            )
        return macros

    # ------------------------------------------------------------- flip-flops
    def _place_flip_flops(
        self, design: Design, spec: PlacementSpec, die: Rect, macros: list[Rect]
    ) -> None:
        clustered = int(spec.ff_count * spec.cluster_fraction)
        uniform = spec.ff_count - clustered
        locations: list[Point] = []
        locations.extend(self._clustered_points(clustered, die, macros))
        locations.extend(self._uniform_points(uniform, die, macros))
        self._rng.shuffle(locations)
        for index, location in enumerate(locations):
            design.add_cell(
                Cell(
                    name=f"ff_{index}",
                    master="DFFHQNx1_ASAP7_75t_R",
                    kind=CellKind.FLIP_FLOP,
                    location=location,
                    width=FF_CELL_WIDTH,
                    height=ROW_HEIGHT,
                    clock_pin_capacitance=self.ff_clock_pin_capacitance,
                )
            )

    def _clustered_points(
        self, count: int, die: Rect, macros: list[Rect]
    ) -> list[Point]:
        """Register clusters: Gaussian blobs around a handful of centres."""
        if count == 0:
            return []
        cluster_count = max(2, min(12, count // 200 + 2))
        centres = [
            Point(
                self._rng.uniform(die.xlo + 0.1 * die.width, die.xhi - 0.1 * die.width),
                self._rng.uniform(die.ylo + 0.1 * die.height, die.yhi - 0.1 * die.height),
            )
            for _ in range(cluster_count)
        ]
        sigma = 0.06 * min(die.width, die.height)
        points: list[Point] = []
        while len(points) < count:
            centre = centres[int(self._rng.integers(cluster_count))]
            candidate = Point(
                float(self._rng.normal(centre.x, sigma)),
                float(self._rng.normal(centre.y, sigma)),
            )
            point = die.expanded(-min(die.width, die.height) * 0.01).clamp(candidate)
            if self._inside_macro(point, macros):
                continue
            points.append(point)
        return points

    def _uniform_points(self, count: int, die: Rect, macros: list[Rect]) -> list[Point]:
        points: list[Point] = []
        while len(points) < count:
            candidate = Point(
                float(self._rng.uniform(die.xlo, die.xhi)),
                float(self._rng.uniform(die.ylo, die.yhi)),
            )
            if self._inside_macro(candidate, macros):
                continue
            points.append(candidate)
        return points

    def _inside_macro(self, point: Point, macros: list[Rect]) -> bool:
        return any(m.expanded(self.macro_margin).contains(point) for m in macros)

    # ---------------------------------------------------------- combinational
    def _place_combinational(
        self, design: Design, spec: PlacementSpec, die: Rect
    ) -> None:
        count = spec.cell_count - spec.ff_count - spec.macro_count
        if count <= 0:
            return
        xs = self._rng.uniform(die.xlo, die.xhi, size=count)
        ys = self._rng.uniform(die.ylo, die.yhi, size=count)
        for index in range(count):
            design.cells[f"u_{index}"] = Cell(
                name=f"u_{index}",
                master="NAND2x1_ASAP7_75t_R",
                kind=CellKind.COMBINATIONAL,
                location=Point(float(xs[index]), float(ys[index])),
                width=COMB_CELL_WIDTH,
                height=ROW_HEIGHT,
            )


def random_sink_cloud(
    count: int,
    extent: float = 400.0,
    seed: int = 11,
    capacitance: float = FF_CLOCK_PIN_CAP,
    name: str = "clk",
) -> ClockNet:
    """A seeded uniform random sink cloud with the source at the bottom edge.

    The lightweight counterpart of :class:`PlacementGenerator` for code that
    only needs a clock net of a given size — benchmarks, examples, and tests
    share this one definition so their "N-sink design" means the same thing.
    """
    rng = np.random.default_rng(seed)
    sinks = [
        ClockSink(
            name=f"ff_{i}",
            location=Point(
                float(rng.uniform(0, extent)), float(rng.uniform(0, extent))
            ),
            capacitance=capacitance,
        )
        for i in range(count)
    ]
    source = ClockSource(name="clk_root", location=Point(extent / 2.0, 0.0))
    return ClockNet(name=name, source=source, sinks=sinks)

"""Dependency-free SVG visualisation of clock trees and DSE sweeps.

Clock-tree layouts are much easier to review visually: front-side wires,
back-side wires, buffers, nTSVs, and sinks are drawn with distinct colours so
the double-side structure produced by the flow (Fig. 2 of the paper) can be
inspected in any browser.  A small scatter renderer covers the Fig. 12 style
latency-vs-resources plots.
"""

from repro.visualization.svg import render_tree_svg, render_scatter_svg

__all__ = ["render_tree_svg", "render_scatter_svg"]

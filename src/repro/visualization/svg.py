"""SVG rendering of clock trees and scatter plots (no external dependencies)."""

from __future__ import annotations

from typing import Sequence

from repro.clocktree import ClockTree, NodeKind
from repro.geometry import Rect, bounding_box
from repro.tech.layers import Side

#: Colours of the double-side clock tree drawing.
FRONT_WIRE_COLOR = "#1f77b4"  # blue: front-side metal
BACK_WIRE_COLOR = "#d62728"  # red: back-side metal
BUFFER_COLOR = "#2ca02c"  # green squares
NTSV_COLOR = "#ff7f0e"  # orange diamonds
SINK_COLOR = "#7f7f7f"  # grey dots
ROOT_COLOR = "#9467bd"  # purple root marker


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


class _SvgCanvas:
    """Tiny helper accumulating SVG elements with a data→pixel transform."""

    def __init__(self, extent: Rect, size: float, margin: float) -> None:
        self.size = size
        self.margin = margin
        self.extent = extent
        span = max(extent.width, extent.height, 1e-9)
        self.scale = (size - 2 * margin) / span
        self.elements: list[str] = []

    def x(self, value: float) -> float:
        return self.margin + (value - self.extent.xlo) * self.scale

    def y(self, value: float) -> float:
        # SVG y grows downward; flip so the die looks like a floorplan.
        return self.size - self.margin - (value - self.extent.ylo) * self.scale

    def line(self, x1, y1, x2, y2, color, width=1.0, opacity=1.0) -> None:
        self.elements.append(
            f'<line x1="{self.x(x1):.2f}" y1="{self.y(y1):.2f}" '
            f'x2="{self.x(x2):.2f}" y2="{self.y(y2):.2f}" '
            f'stroke="{color}" stroke-width="{width}" stroke-opacity="{opacity}"/>'
        )
    def circle(self, cx, cy, radius, color, opacity=1.0) -> None:
        self.elements.append(
            f'<circle cx="{self.x(cx):.2f}" cy="{self.y(cy):.2f}" r="{radius}" '
            f'fill="{color}" fill-opacity="{opacity}"/>'
        )

    def square(self, cx, cy, half, color) -> None:
        self.elements.append(
            f'<rect x="{self.x(cx) - half:.2f}" y="{self.y(cy) - half:.2f}" '
            f'width="{2 * half}" height="{2 * half}" fill="{color}"/>'
        )

    def diamond(self, cx, cy, half, color) -> None:
        x, y = self.x(cx), self.y(cy)
        points = f"{x},{y - half} {x + half},{y} {x},{y + half} {x - half},{y}"
        self.elements.append(f'<polygon points="{points}" fill="{color}"/>')

    def rect_outline(self, rect: Rect, color="#000000", width=1.0) -> None:
        self.elements.append(
            f'<rect x="{self.x(rect.xlo):.2f}" y="{self.y(rect.yhi):.2f}" '
            f'width="{rect.width * self.scale:.2f}" height="{rect.height * self.scale:.2f}" '
            f'fill="none" stroke="{color}" stroke-width="{width}"/>'
        )

    def text(self, px: float, py: float, content: str, size: int = 12) -> None:
        self.elements.append(
            f'<text x="{px:.1f}" y="{py:.1f}" font-size="{size}" '
            f'font-family="sans-serif">{_escape(content)}</text>'
        )

    def render(self) -> str:
        body = "\n  ".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.size}" '
            f'height="{self.size}" viewBox="0 0 {self.size} {self.size}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n  {body}\n</svg>\n'
        )


def render_tree_svg(
    tree: ClockTree,
    die_area: Rect | None = None,
    size: float = 800.0,
    title: str | None = None,
    show_sinks: bool = True,
) -> str:
    """Render a clock tree as an SVG document string.

    Front-side wires are blue, back-side wires red, buffers green squares,
    nTSVs orange diamonds, sinks grey dots, and the clock root a purple
    circle.  ``die_area`` adds the die outline; by default the drawing extent
    is the bounding box of all tree nodes.
    """
    locations = [node.location for node in tree.nodes()]
    extent = die_area if die_area is not None else bounding_box(locations).expanded(1.0)
    canvas = _SvgCanvas(extent, size=size, margin=30.0)
    if die_area is not None:
        canvas.rect_outline(die_area, color="#888888")

    # Wires first so markers draw on top of them.
    for node in tree.nodes():
        if node.parent is None:
            continue
        color = FRONT_WIRE_COLOR if node.wire_side is Side.FRONT else BACK_WIRE_COLOR
        width = 0.8 if node.is_sink else 1.6
        opacity = 0.55 if node.is_sink else 0.95
        canvas.line(
            node.parent.location.x,
            node.parent.location.y,
            node.location.x,
            node.location.y,
            color,
            width=width,
            opacity=opacity,
        )

    for node in tree.nodes():
        if node.kind is NodeKind.BUFFER:
            canvas.square(node.location.x, node.location.y, 3.5, BUFFER_COLOR)
        elif node.kind is NodeKind.NTSV:
            canvas.diamond(node.location.x, node.location.y, 3.5, NTSV_COLOR)
        elif node.kind is NodeKind.ROOT:
            canvas.circle(node.location.x, node.location.y, 5.0, ROOT_COLOR)
        elif node.is_sink and show_sinks:
            canvas.circle(node.location.x, node.location.y, 1.2, SINK_COLOR, opacity=0.7)

    if title:
        canvas.text(10, 18, title, size=14)
    canvas.text(
        10,
        size - 8,
        (
            f"front wl={tree.wirelength(Side.FRONT):.0f}um  "
            f"back wl={tree.wirelength(Side.BACK):.0f}um  "
            f"buffers={tree.buffer_count()}  ntsvs={tree.ntsv_count()}  "
            f"sinks={tree.sink_count()}"
        ),
        size=11,
    )
    return canvas.render()


def render_scatter_svg(
    points: Sequence[tuple[float, float, str]],
    x_label: str = "#Buffers + #nTSVs",
    y_label: str = "Latency (ps)",
    size: float = 640.0,
    title: str | None = None,
) -> str:
    """Render a Fig. 12 style scatter plot.

    ``points`` is a sequence of ``(x, y, series)`` tuples; each distinct
    series gets its own colour and a legend entry.
    """
    if not points:
        raise ValueError("a scatter plot needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    extent = Rect(min(xs), min(ys), max(xs) or 1.0, max(ys) or 1.0)
    if extent.width == 0:
        extent = Rect(extent.xlo - 1, extent.ylo, extent.xhi + 1, extent.yhi)
    if extent.height == 0:
        extent = Rect(extent.xlo, extent.ylo - 1, extent.xhi, extent.yhi + 1)
    canvas = _SvgCanvas(extent, size=size, margin=50.0)

    palette = ["#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#17becf"]
    series_names: list[str] = []
    for _x, _y, series in points:
        if series not in series_names:
            series_names.append(series)
    colors = {name: palette[i % len(palette)] for i, name in enumerate(series_names)}

    canvas.rect_outline(extent, color="#cccccc")
    for x, y, series in points:
        canvas.circle(x, y, 4.0, colors[series], opacity=0.85)

    if title:
        canvas.text(12, 20, title, size=14)
    canvas.text(size / 2 - 60, size - 10, x_label, size=12)
    canvas.text(8, 32, y_label, size=12)
    for i, name in enumerate(series_names):
        y_pos = 40 + 16 * i
        canvas.elements.append(
            f'<circle cx="{size - 170:.1f}" cy="{y_pos - 4:.1f}" r="4" fill="{colors[name]}"/>'
        )
        canvas.text(size - 160, y_pos, name, size=11)
    return canvas.render()

"""Manhattan-plane geometry primitives used throughout the CTS flow.

The clock-routing algorithms (Section III-B of the paper) operate in the
Manhattan (L1) metric.  This package provides:

* :class:`Point` — an immutable 2-D point with Manhattan distance helpers.
* :class:`Rect` — an axis-aligned rectangle (die area, placement rows,
  bounding boxes).
* :class:`TiltedRect` — a 45-degree tilted rectangle represented in the
  rotated (Chebyshev) coordinate system; the building block of
  deferred-merge-embedding (DME) merging regions and tilted rectangular
  regions (TRRs).
"""

from repro.geometry.point import Point, manhattan, midpoint, centroid
from repro.geometry.rect import Rect, bounding_box
from repro.geometry.trr import (
    TiltedRect,
    merging_region,
    merging_region_arrays,
    nearest_point_arrays,
    rect_distance_arrays,
    to_rotated_arrays,
    from_rotated_arrays,
)

__all__ = [
    "Point",
    "manhattan",
    "midpoint",
    "centroid",
    "Rect",
    "bounding_box",
    "TiltedRect",
    "merging_region",
    "merging_region_arrays",
    "nearest_point_arrays",
    "rect_distance_arrays",
    "to_rotated_arrays",
    "from_rotated_arrays",
]

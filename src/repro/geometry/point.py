"""Immutable 2-D points in the Manhattan plane.

All physical coordinates in this library are expressed in micrometres (um),
matching the unit convention of LEF/DEF after division by the database unit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class Point:
    """A 2-D point with float coordinates in micrometres.

    The class is immutable and hashable so points can be used as dictionary
    keys (e.g. to deduplicate Steiner points during routing).
    """

    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        """Return the Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean(self, other: "Point") -> float:
        """Return the Euclidean (L2) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def snapped(self, grid: float) -> "Point":
        """Return the point snapped to a routing grid of pitch ``grid``."""
        if grid <= 0:
            raise ValueError(f"grid pitch must be positive, got {grid}")
        return Point(round(self.x / grid) * grid, round(self.y / grid) * grid)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def is_close(self, other: "Point", tol: float = 1e-9) -> bool:
        """Return True when both coordinates match within ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def __iter__(self):
        yield self.x
        yield self.y

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x:.3f}, {self.y:.3f})"


def manhattan(a: Point | Sequence[float], b: Point | Sequence[float]) -> float:
    """Manhattan distance between two points or ``(x, y)`` sequences."""
    ax, ay = (a.x, a.y) if isinstance(a, Point) else (a[0], a[1])
    bx, by = (b.x, b.y) if isinstance(b, Point) else (b[0], b[1])
    return abs(ax - bx) + abs(ay - by)


def midpoint(a: Point, b: Point) -> Point:
    """Return the Euclidean midpoint of ``a`` and ``b``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def centroid(points: Iterable[Point]) -> Point:
    """Return the arithmetic centroid of a non-empty collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid of an empty point collection is undefined")
    sx = sum(p.x for p in pts)
    sy = sum(p.y for p in pts)
    return Point(sx / len(pts), sy / len(pts))


def point_toward(origin: Point, target: Point, distance: float) -> Point:
    """Return a point at Manhattan ``distance`` from ``origin`` toward ``target``.

    The point is obtained by walking along an L-shaped (x-first) Manhattan
    path from ``origin`` to ``target``.  When ``distance`` exceeds the full
    Manhattan separation the target itself is returned.
    """
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    total = origin.manhattan(target)
    if distance >= total:
        return target
    dx = target.x - origin.x
    if distance <= abs(dx):
        step = math.copysign(distance, dx) if dx != 0 else 0.0
        return Point(origin.x + step, origin.y)
    remaining = distance - abs(dx)
    dy = target.y - origin.y
    step = math.copysign(remaining, dy) if dy != 0 else 0.0
    return Point(target.x, origin.y + step)

"""Axis-aligned rectangles (die areas, bounding boxes, cluster extents)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xhi < self.xlo or self.yhi < self.ylo:
            raise ValueError(
                f"degenerate rectangle: ({self.xlo}, {self.ylo}) .. ({self.xhi}, {self.yhi})"
            )

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    @property
    def half_perimeter(self) -> float:
        """Half-perimeter wirelength (HPWL) of the rectangle."""
        return self.width + self.height

    def contains(self, point: Point, tol: float = 1e-9) -> bool:
        """Return True when ``point`` lies inside or on the boundary."""
        return (
            self.xlo - tol <= point.x <= self.xhi + tol
            and self.ylo - tol <= point.y <= self.yhi + tol
        )

    def clamp(self, point: Point) -> Point:
        """Return the point inside the rectangle closest to ``point``."""
        return Point(
            min(max(point.x, self.xlo), self.xhi),
            min(max(point.y, self.ylo), self.yhi),
        )

    def intersects(self, other: "Rect") -> bool:
        """Return True when the two rectangles share at least one point."""
        return not (
            self.xhi < other.xlo
            or other.xhi < self.xlo
            or self.yhi < other.ylo
            or other.yhi < self.ylo
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the intersection rectangle, or None when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xlo, other.xlo),
            max(self.ylo, other.ylo),
            min(self.xhi, other.xhi),
            min(self.yhi, other.yhi),
        )

    def expanded(self, margin: float) -> "Rect":
        """Return the rectangle grown by ``margin`` on every side."""
        if margin < 0 and (2 * -margin > self.width or 2 * -margin > self.height):
            raise ValueError("negative margin larger than rectangle extent")
        return Rect(
            self.xlo - margin, self.ylo - margin, self.xhi + margin, self.yhi + margin
        )

    def quadrants(self) -> tuple["Rect", "Rect", "Rect", "Rect"]:
        """Split into four equal quadrants (SW, SE, NW, NE)."""
        cx, cy = self.center.x, self.center.y
        return (
            Rect(self.xlo, self.ylo, cx, cy),
            Rect(cx, self.ylo, self.xhi, cy),
            Rect(self.xlo, cy, cx, self.yhi),
            Rect(cx, cy, self.xhi, self.yhi),
        )

    def halves(self, vertical_cut: bool) -> tuple["Rect", "Rect"]:
        """Split into two halves; ``vertical_cut`` cuts along x = center.x."""
        if vertical_cut:
            cx = self.center.x
            return (
                Rect(self.xlo, self.ylo, cx, self.yhi),
                Rect(cx, self.ylo, self.xhi, self.yhi),
            )
        cy = self.center.y
        return (
            Rect(self.xlo, self.ylo, self.xhi, cy),
            Rect(self.xlo, cy, self.xhi, self.yhi),
        )


def bounding_box(points: Iterable[Point]) -> Rect:
    """Return the axis-aligned bounding box of a non-empty point collection."""
    pts = list(points)
    if not pts:
        raise ValueError("bounding box of an empty point collection is undefined")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Rect(min(xs), min(ys), max(xs), max(ys))

"""Tilted rectangular regions (TRRs) for deferred-merge embedding.

DME reasons about loci of points that are at a fixed Manhattan distance from
a *merging segment*.  In the Manhattan metric those loci are rectangles tilted
by 45 degrees.  The standard trick is to work in the rotated coordinate system

    u = x + y,    v = x - y

where the Manhattan metric becomes the Chebyshev (L-infinity) metric, tilted
rectangles become axis-aligned rectangles, and "inflate by radius r" becomes
"grow by r on every side".  This module implements that representation.

The merging *segments* produced by exact DME are always degenerate tilted
rectangles (zero extent in one rotated axis).  We keep the general rectangle
form because detour cases and numerically-inexact radii can otherwise produce
empty intersections; the embedding step simply picks the nearest point of the
region, which is exact for true segments and a high-quality approximation for
thin rectangles.

Alongside the scalar :class:`TiltedRect` the module provides *batched* array
helpers (``*_arrays``) that apply the same operations to struct-of-arrays
regions — four parallel ``(n,)`` vectors ``(ulo, vlo, uhi, vhi)``.  They are
the geometric kernel of the level-batched DME backend
(:mod:`repro.routing.dme_arrays`) and replicate the scalar methods
operation-for-operation so results are bit-identical lane by lane.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.point import Point


def to_rotated(p: Point) -> tuple[float, float]:
    """Map a point to rotated (u, v) = (x + y, x - y) coordinates."""
    return (p.x + p.y, p.x - p.y)


def from_rotated(u: float, v: float) -> Point:
    """Map rotated (u, v) coordinates back to a Manhattan-plane point."""
    return Point((u + v) / 2.0, (u - v) / 2.0)


@dataclass(frozen=True, slots=True)
class TiltedRect:
    """A 45-degree tilted rectangle stored as an axis-aligned box in (u, v).

    ``ulo <= uhi`` and ``vlo <= vhi`` always hold.  A point corresponds to
    ``ulo == uhi and vlo == vhi``; a classic DME merging segment has exactly
    one degenerate axis.
    """

    ulo: float
    vlo: float
    uhi: float
    vhi: float

    def __post_init__(self) -> None:
        if self.uhi < self.ulo or self.vhi < self.vlo:
            raise ValueError("degenerate tilted rectangle with negative extent")

    @classmethod
    def from_point(cls, p: Point) -> "TiltedRect":
        u, v = to_rotated(p)
        return cls(u, v, u, v)

    @classmethod
    def from_segment(cls, a: Point, b: Point, tol: float = 1e-6) -> "TiltedRect":
        """Build the region spanned by a Manhattan arc between ``a`` and ``b``.

        The two endpoints must lie on a common +/-45-degree line (within
        ``tol``); otherwise the bounding tilted rectangle of the two points is
        returned, which is the conservative superset used by approximate DME.
        """
        ua, va = to_rotated(a)
        ub, vb = to_rotated(b)
        return cls(min(ua, ub), min(va, vb), max(ua, ub), max(va, vb))

    @property
    def is_point(self) -> bool:
        return self.ulo == self.uhi and self.vlo == self.vhi

    @property
    def is_segment(self) -> bool:
        return (self.ulo == self.uhi) != (self.vlo == self.vhi)

    def corners(self) -> list[Point]:
        """Return the (up to four) corners in the Manhattan plane."""
        rotated = {
            (self.ulo, self.vlo),
            (self.ulo, self.vhi),
            (self.uhi, self.vlo),
            (self.uhi, self.vhi),
        }
        return [from_rotated(u, v) for u, v in sorted(rotated)]

    def center(self) -> Point:
        return from_rotated((self.ulo + self.uhi) / 2.0, (self.vlo + self.vhi) / 2.0)

    def inflated(self, radius: float) -> "TiltedRect":
        """Return the region of points within Manhattan ``radius`` of this one."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        return TiltedRect(
            self.ulo - radius, self.vlo - radius, self.uhi + radius, self.vhi + radius
        )

    def distance_to(self, other: "TiltedRect") -> float:
        """Minimum Manhattan distance between the two regions (0 if overlapping)."""
        du = max(0.0, max(self.ulo, other.ulo) - min(self.uhi, other.uhi))
        dv = max(0.0, max(self.vlo, other.vlo) - min(self.vhi, other.vhi))
        return max(du, dv)

    def distance_to_point(self, p: Point) -> float:
        """Minimum Manhattan distance from the region to a point."""
        return self.distance_to(TiltedRect.from_point(p))

    def intersection(self, other: "TiltedRect") -> "TiltedRect | None":
        """Return the intersection region, or None when disjoint."""
        ulo = max(self.ulo, other.ulo)
        vlo = max(self.vlo, other.vlo)
        uhi = min(self.uhi, other.uhi)
        vhi = min(self.vhi, other.vhi)
        if uhi < ulo or vhi < vlo:
            return None
        return TiltedRect(ulo, vlo, uhi, vhi)

    def nearest_point_to(self, p: Point) -> Point:
        """Return the point of the region closest (Manhattan) to ``p``."""
        u, v = to_rotated(p)
        cu = min(max(u, self.ulo), self.uhi)
        cv = min(max(v, self.vlo), self.vhi)
        # The clamped rotated point is only a valid Manhattan point when
        # (cu + cv) and (cu - cv) are both realisable; any (u, v) pair maps
        # back to a real point, so no extra care is required.
        return from_rotated(cu, cv)


def merging_region(
    region_a: TiltedRect,
    region_b: TiltedRect,
    extra_a: float,
    extra_b: float,
) -> TiltedRect:
    """Compute the merging region of two child regions.

    ``extra_a`` and ``extra_b`` are the wire lengths allotted to the edges
    from the merge point down to child ``a`` and child ``b`` respectively.
    The merging region is the intersection of the two inflated regions; when
    the allotted lengths are (numerically) insufficient the midpoint locus is
    approximated by the intersection obtained after inflating both regions to
    half of the residual gap, which keeps the construction total.
    """
    if extra_a < 0 or extra_b < 0:
        raise ValueError("edge lengths must be non-negative")
    inflated_a = region_a.inflated(extra_a)
    inflated_b = region_b.inflated(extra_b)
    inter = inflated_a.intersection(inflated_b)
    if inter is not None:
        return inter
    gap = inflated_a.distance_to(inflated_b)
    # Numerical slack: grow both by half the residual gap (plus epsilon).
    slack = gap / 2.0 + 1e-9
    inter = inflated_a.inflated(slack).intersection(inflated_b.inflated(slack))
    if inter is None:  # pragma: no cover - defensive, cannot happen after slack
        raise RuntimeError("merging region construction failed")
    return inter


# --------------------------------------------------------------------------
# Batched struct-of-arrays helpers (the scalar methods, one lane per region).


def to_rotated_arrays(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map point coordinate arrays to rotated ``(u, v)`` coordinate arrays."""
    return x + y, x - y


def from_rotated_arrays(u: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map rotated coordinate arrays back to Manhattan-plane ``(x, y)``."""
    return (u + v) / 2.0, (u - v) / 2.0


def rect_distance_arrays(
    a_ulo: np.ndarray,
    a_vlo: np.ndarray,
    a_uhi: np.ndarray,
    a_vhi: np.ndarray,
    b_ulo: np.ndarray,
    b_vlo: np.ndarray,
    b_uhi: np.ndarray,
    b_vhi: np.ndarray,
) -> np.ndarray:
    """Lane-wise :meth:`TiltedRect.distance_to` over two region batches."""
    du = np.maximum(0.0, np.maximum(a_ulo, b_ulo) - np.minimum(a_uhi, b_uhi))
    dv = np.maximum(0.0, np.maximum(a_vlo, b_vlo) - np.minimum(a_vhi, b_vhi))
    return np.maximum(du, dv)


def nearest_point_arrays(
    ulo: np.ndarray,
    vlo: np.ndarray,
    uhi: np.ndarray,
    vhi: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Lane-wise :meth:`TiltedRect.nearest_point_to` (rotated in, rotated out)."""
    cu = np.minimum(np.maximum(u, ulo), uhi)
    cv = np.minimum(np.maximum(v, vlo), vhi)
    return cu, cv


def merging_region_arrays(
    a_ulo: np.ndarray,
    a_vlo: np.ndarray,
    a_uhi: np.ndarray,
    a_vhi: np.ndarray,
    b_ulo: np.ndarray,
    b_vlo: np.ndarray,
    b_uhi: np.ndarray,
    b_vhi: np.ndarray,
    extra_a: np.ndarray,
    extra_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Lane-wise :func:`merging_region` over two region batches.

    Returns the merged region batch ``(ulo, vlo, uhi, vhi)``.  Lanes whose
    inflated regions do not intersect take the same slack fallback as the
    scalar function (grow both by half the residual gap plus epsilon).
    """
    if np.any(extra_a < 0) or np.any(extra_b < 0):
        raise ValueError("edge lengths must be non-negative")
    ia_ulo, ia_vlo, ia_uhi, ia_vhi = (
        a_ulo - extra_a,
        a_vlo - extra_a,
        a_uhi + extra_a,
        a_vhi + extra_a,
    )
    ib_ulo, ib_vlo, ib_uhi, ib_vhi = (
        b_ulo - extra_b,
        b_vlo - extra_b,
        b_uhi + extra_b,
        b_vhi + extra_b,
    )
    ulo = np.maximum(ia_ulo, ib_ulo)
    vlo = np.maximum(ia_vlo, ib_vlo)
    uhi = np.minimum(ia_uhi, ib_uhi)
    vhi = np.minimum(ia_vhi, ib_vhi)
    empty = (uhi < ulo) | (vhi < vlo)
    if np.any(empty):
        # Numerical slack: grow both by half the residual gap (plus epsilon).
        gap = rect_distance_arrays(
            ia_ulo, ia_vlo, ia_uhi, ia_vhi, ib_ulo, ib_vlo, ib_uhi, ib_vhi
        )
        slack = gap / 2.0 + 1e-9
        ulo = np.where(empty, np.maximum(ia_ulo - slack, ib_ulo - slack), ulo)
        vlo = np.where(empty, np.maximum(ia_vlo - slack, ib_vlo - slack), vlo)
        uhi = np.where(empty, np.minimum(ia_uhi + slack, ib_uhi + slack), uhi)
        vhi = np.where(empty, np.minimum(ia_vhi + slack, ib_vhi + slack), vhi)
    return ulo, vlo, uhi, vhi

"""The persistent struct-of-arrays design representation of the IR flow.

:class:`DesignArrays` is the one design object the IR-native flow threads
through clustering → topology → DME → insertion → refinement → evaluation.
It deliberately exposes the exact read surface of
:class:`~repro.clocktree.arrays.TreeArrays` (``parent_row`` / ``kind`` /
``edge_length`` / ``wire_front`` / ``cap`` / ``alive`` columns,
``children_rows``, ``levels()``, ``sink_rows()``, …) so the vectorized
timing engine can run its level-batched passes directly on the design —
no per-stage snapshot compile — plus the columns a *design* needs beyond a
timing snapshot: names, coordinates, node sides, and the name counter that
keeps fresh node names identical to the object flow's.

Structural edits go through the same edit-log protocol as
:class:`~repro.clocktree.ClockTree` (``mark_splice`` / ``mark_rewire`` /
``touch`` with the same bounded log), except entries carry *rows* instead of
node objects and the structure is updated eagerly at edit time.  The
vectorized engine replays the log with the same numeric patch sequence as
its ``TreeArrays`` path, which is what keeps the IR flow bit-identical to
the object flow.

Object trees exist only at the boundaries: :meth:`to_clock_tree` /
:meth:`from_clock_tree` are lossless (names, children order, sides, caps,
coordinates, and the name counter are bit-preserved both ways).
"""

from __future__ import annotations

import numpy as np

from repro.clocktree.arrays import (
    KIND_BUFFER,
    KIND_CODE,
    KIND_NTSV,
    KIND_ROOT,
    KIND_SINK,
    KIND_TAP,
)
from repro.clocktree.node import ClockTreeNode, NodeKind
from repro.clocktree.tree import _MAX_EDIT_LOG, ClockTree, ConnectivityError
from repro.geometry import Point
from repro.tech.layers import Side

#: Integer kind code -> :class:`NodeKind` (inverse of ``KIND_CODE``).
KIND_OF_CODE: tuple[NodeKind, ...] = tuple(
    sorted(KIND_CODE, key=KIND_CODE.__getitem__)
)


class DesignArrays:
    """A persistent, editable struct-of-arrays clock-tree design.

    Row 0 is always the clock root.  ``size`` counts allocated rows
    including tombstones; ``alive`` filters.  All structural operations
    mirror the :class:`~repro.clocktree.ClockTree` editing API one-to-one
    (same children ordering, same fresh-name sequence, same edit log), so a
    flow run on rows makes exactly the decisions the object flow makes.

    .. warning:: Row indices are only stable between compactions.  Any
       engine sync may compact (``VectorizedElmoreEngine._compile_design``
       calls :meth:`compact`, renumbering every row), so held row indices
       must be re-resolved through ``name_to_row`` after handing the design
       to an engine or crossing a stage boundary.  Names are the stable
       handle; rows are a transient one.
    """

    __slots__ = (
        "name",
        "size",
        "names",
        "parent_row",
        "kind",
        "edge_length",
        "wire_front",
        "cap",
        "alive",
        "x",
        "y",
        "side_front",
        "children_rows",
        "name_to_row",
        "dead_count",
        "_dup_names",
        "_counter",
        "_version",
        "_edits",
        "_levels",
        "_sink_rows",
        "_alive_rows",
        "_bfs_clean",
    )

    def __init__(self, name: str = "clk", capacity: int = 64) -> None:
        capacity = max(1, int(capacity))
        self.name = name
        self.size = 0
        self.names: list[str | None] = []
        self.parent_row = np.full(capacity, -1, dtype=np.int64)
        self.kind = np.zeros(capacity, dtype=np.int8)
        self.edge_length = np.zeros(capacity, dtype=np.float64)
        self.wire_front = np.ones(capacity, dtype=bool)
        self.cap = np.zeros(capacity, dtype=np.float64)
        self.alive = np.ones(capacity, dtype=bool)
        self.x = np.zeros(capacity, dtype=np.float64)
        self.y = np.zeros(capacity, dtype=np.float64)
        self.side_front = np.ones(capacity, dtype=bool)
        self.children_rows: list[list[int]] = []
        self.name_to_row: dict[str, int] = {}
        self.dead_count = 0
        self._dup_names: set[str] = set()
        self._counter = 0
        self._version = 0
        self._edits: list[tuple[int, str, int | None]] = []
        self._levels: list[np.ndarray] | None = None
        self._sink_rows: np.ndarray | None = None
        self._alive_rows: np.ndarray | None = None
        self._bfs_clean = True

    # ------------------------------------------------------- edit tracking
    @property
    def version(self) -> int:
        """Monotonic structural version; bumped by every recorded edit."""
        return self._version

    def _record(self, kind: str, row: int | None) -> None:
        self._version += 1
        self._edits.append((self._version, kind, row))
        if len(self._edits) > _MAX_EDIT_LOG:
            self._edits = [(self._version, "touch", None)]

    def mark_splice(self, row: int) -> None:
        """Record that ``row`` was spliced onto the edge above its only child."""
        self._record("splice", row)

    def mark_rewire(self, row: int) -> None:
        """Record that the subtree rooted at ``row`` changed arbitrarily."""
        self._record("rewire", row)

    def touch(self) -> None:
        """Record an unscoped structural change (forces full re-analysis)."""
        self._record("touch", None)

    @property
    def edit_log(self) -> tuple[tuple[int, str, int | None], ...]:
        """The recorded ``(version, kind, row)`` edits, oldest first."""
        return tuple(self._edits)

    def edits_since(self, version: int) -> list[tuple[int, str, int | None]] | None:
        """Edits recorded after ``version``, or None when the log was pruned."""
        if version == self._version:
            return []
        if not self._edits or self._edits[0][0] > version + 1:
            return None
        return [edit for edit in self._edits if edit[0] > version]

    def new_name(self, prefix: str) -> str:
        """Return a fresh unique node name (same sequence as ``ClockTree``)."""
        self._counter += 1
        return f"{prefix}_{self._counter}"

    # ------------------------------------------------------------- queries
    @property
    def capacity(self) -> int:
        return int(self.parent_row.shape[0])

    def levels(self) -> list[np.ndarray]:
        """Alive rows grouped by depth, root first (rebuilt after edits)."""
        if self._levels is None:
            levels: list[np.ndarray] = []
            frontier = [0]
            while frontier:
                levels.append(np.asarray(frontier, dtype=np.int64))
                frontier = [c for row in frontier for c in self.children_rows[row]]
            self._levels = levels
        return self._levels

    def sink_rows(self) -> np.ndarray:
        """Rows of every alive sink node."""
        if self._sink_rows is None:
            used = self.kind[: self.size]
            mask = (used == KIND_SINK) & self.alive[: self.size]
            self._sink_rows = np.flatnonzero(mask)
        return self._sink_rows

    def alive_rows(self) -> np.ndarray:
        """Every alive row (any order)."""
        if self._alive_rows is None:
            self._alive_rows = np.flatnonzero(self.alive[: self.size])
        return self._alive_rows

    def kind_rows(self, code: int) -> np.ndarray:
        rows = self.alive_rows()
        return rows[self.kind[rows] == code]

    def rows_preorder(self) -> list[int]:
        """Every alive row in pre-order (matches ``ClockTree.nodes()``)."""
        order: list[int] = []
        stack = [0]
        pop = stack.pop
        extend = stack.extend
        while stack:
            row = pop()
            order.append(row)
            extend(reversed(self.children_rows[row]))
        return order

    def counts(self) -> tuple[int, int, int, int]:
        """(nodes, sinks, buffers, ntsvs) over the alive rows."""
        rows = self.alive_rows()
        kinds = self.kind[rows]
        return (
            int(rows.size),
            int(np.count_nonzero(kinds == KIND_SINK)),
            int(np.count_nonzero(kinds == KIND_BUFFER)),
            int(np.count_nonzero(kinds == KIND_NTSV)),
        )

    def wirelength(self, side: Side | None = None) -> float:
        """Total Manhattan wirelength (um), optionally on one side."""
        rows = self.alive_rows()
        mask = self.parent_row[rows] >= 0
        if side is not None:
            mask &= self.wire_front[rows] == (side is Side.FRONT)
        return float(np.sum(self.edge_length[rows[mask]]))

    def location_of(self, row: int) -> Point:
        return Point(float(self.x[row]), float(self.y[row]))

    def _edge(self, row: int, parent: int) -> float:
        # Scalar Manhattan distance, bit-identical to Point.manhattan().
        return abs(float(self.x[row]) - float(self.x[parent])) + abs(
            float(self.y[row]) - float(self.y[parent])
        )

    # ------------------------------------------------------------- editing
    def _invalidate(self) -> None:
        self._levels = None
        self._sink_rows = None
        self._alive_rows = None
        self._bfs_clean = False

    def _grow(self) -> None:
        grow = max(16, self.capacity)
        self.parent_row = np.concatenate(
            [self.parent_row, np.full(grow, -1, dtype=np.int64)]
        )
        self.kind = np.concatenate([self.kind, np.zeros(grow, dtype=np.int8)])
        self.edge_length = np.concatenate([self.edge_length, np.zeros(grow)])
        self.wire_front = np.concatenate([self.wire_front, np.ones(grow, bool)])
        self.cap = np.concatenate([self.cap, np.zeros(grow)])
        self.alive = np.concatenate([self.alive, np.ones(grow, bool)])
        self.x = np.concatenate([self.x, np.zeros(grow)])
        self.y = np.concatenate([self.y, np.zeros(grow)])
        self.side_front = np.concatenate([self.side_front, np.ones(grow, bool)])

    def _append_row(
        self,
        name: str,
        kind_code: int,
        x: float,
        y: float,
        side_front: bool,
        capacitance: float,
        wire_front: bool,
    ) -> int:
        if capacitance < 0:
            raise ValueError(f"node {name}: negative capacitance")
        if name in self.name_to_row:
            raise ValueError(f"design {self.name}: duplicate node name {name!r}")
        if self.size == self.capacity:
            self._grow()
        row = self.size
        self.size += 1
        self.names.append(name)
        self.children_rows.append([])
        self.parent_row[row] = -1
        self.kind[row] = kind_code
        self.edge_length[row] = 0.0
        self.wire_front[row] = wire_front
        self.cap[row] = capacitance
        self.alive[row] = True
        self.x[row] = x
        self.y[row] = y
        self.side_front[row] = side_front
        self.name_to_row[name] = row
        return row

    def add_root(self, name: str, x: float, y: float) -> int:
        """Create the clock-root row (must be the first row)."""
        if self.size:
            raise ValueError("design already has a root row")
        row = self._append_row(name, KIND_ROOT, x, y, True, 0.0, True)
        self._invalidate()
        return row

    def add_child(
        self,
        parent: int,
        name: str,
        kind_code: int,
        x: float,
        y: float,
        side_front: bool = True,
        capacitance: float = 0.0,
        wire_front: bool = True,
    ) -> int:
        """Append a new leaf row under ``parent`` (mirrors ``add_child``)."""
        row = self._append_row(
            name, kind_code, x, y, side_front, capacitance, wire_front
        )
        self.parent_row[row] = parent
        self.edge_length[row] = self._edge(row, parent)
        self.children_rows[parent].append(row)
        self._invalidate()
        return row

    def add_children(
        self,
        parent: int,
        names: list[str],
        kind_code: int,
        xs: "list[float] | np.ndarray",
        ys: "list[float] | np.ndarray",
        capacitances: "list[float] | np.ndarray | None" = None,
    ) -> np.ndarray:
        """Append ``len(names)`` sibling rows under ``parent`` in one shot.

        Decision-identical to calling :meth:`add_child` once per name in
        order — same row numbers, same children order, and bit-equal edge
        lengths (the vectorized ``|dx| + |dy|`` is the elementwise twin of
        the scalar :meth:`_edge`).  Exists because per-row appends dominate
        routing materialisation for sink-heavy designs.
        """
        n = len(names)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        caps = (
            np.zeros(n)
            if capacitances is None
            else np.asarray(capacitances, dtype=np.float64)
        )
        if caps.min() < 0:
            bad = names[int(np.argmax(caps < 0))]
            raise ValueError(f"node {bad}: negative capacitance")
        fresh: set[str] = set()
        for name in names:
            if name in self.name_to_row or name in fresh:
                raise ValueError(
                    f"design {self.name}: duplicate node name {name!r}"
                )
            fresh.add(name)
        while self.capacity < self.size + n:
            self._grow()
        start = self.size
        stop = start + n
        self.size = stop
        self.parent_row[start:stop] = parent
        self.kind[start:stop] = kind_code
        self.edge_length[start:stop] = np.abs(xs - self.x[parent]) + np.abs(
            ys - self.y[parent]
        )
        self.wire_front[start:stop] = True
        self.cap[start:stop] = caps
        self.alive[start:stop] = True
        self.x[start:stop] = xs
        self.y[start:stop] = ys
        self.side_front[start:stop] = True
        self.names.extend(names)
        self.children_rows.extend([] for _ in range(n))
        self.children_rows[parent].extend(range(start, stop))
        for offset, name in enumerate(names):
            self.name_to_row[name] = start + offset
        self._invalidate()
        return np.arange(start, stop, dtype=np.int64)

    def graft(
        self, shard: "DesignArrays", parent: int, names: list[str]
    ) -> np.ndarray:
        """Block-append another design's rows (1..) under ``parent``.

        The merge primitive of the region-parallel construction tier: a
        worker routes one region into its own *shard* (whose row 0 is a
        placeholder root), and the serial merge grafts the shard below
        ``parent`` with caller-supplied global ``names`` — one per shard row
        in shard row order.  Rows keep the shard's relative order and
        children order, so a graft appends exactly the row sequence the
        serial materialisation would have; edges of the shard root's
        children are recomputed against the real parent (their shard edges
        were measured against the placeholder root).

        Returns the new row indices (aligned with ``names``).
        """
        if shard.dead_count:
            raise ValueError("cannot graft a shard with tombstoned rows")
        n = shard.size - 1
        if n < 0 or len(names) != n:
            raise ValueError(f"graft needs {max(n, 0)} names, got {len(names)}")
        fresh: set[str] = set()
        for name in names:
            if name in self.name_to_row or name in fresh:
                raise ValueError(
                    f"design {self.name}: duplicate node name {name!r}"
                )
            fresh.add(name)
        while self.capacity < self.size + n:
            self._grow()
        start = self.size
        stop = start + n
        base = start - 1  # shard row r (>= 1) lands at r + base
        self.size = stop
        for column in ("kind", "edge_length", "wire_front", "cap", "x", "y",
                       "side_front"):
            getattr(self, column)[start:stop] = getattr(shard, column)[1 : n + 1]
        self.alive[start:stop] = True
        shard_parent = shard.parent_row[1 : n + 1]
        self.parent_row[start:stop] = np.where(
            shard_parent == 0, parent, shard_parent + base
        )
        self.names.extend(names)
        self.children_rows.extend(
            [c + base for c in shard.children_rows[r]] for r in range(1, n + 1)
        )
        region_roots = [c + base for c in shard.children_rows[0]]
        self.children_rows[parent].extend(region_roots)
        for offset, name in enumerate(names):
            self.name_to_row[name] = start + offset
        for row in region_roots:
            self.edge_length[row] = self._edge(row, parent)
        self._invalidate()
        return np.arange(start, stop, dtype=np.int64)

    def insert_on_edge(
        self,
        child: int,
        kind_code: int,
        x: float,
        y: float,
        side_front: bool = True,
        capacitance: float = 0.0,
        wire_front: bool | None = None,
        name: str | None = None,
    ) -> int:
        """Insert a new row on the edge between ``child`` and its parent.

        Mirrors :meth:`ClockTree.insert_on_edge` exactly: the fresh name uses
        the kind's value as prefix, the new row replaces ``child`` at the
        *end* of the parent's children list (remove + append), and a splice
        edit is recorded.
        """
        parent = int(self.parent_row[child])
        if parent < 0:
            raise ValueError(
                f"cannot insert above the root row {self.names[child]!r}"
            )
        if wire_front is None:
            wire_front = bool(self.wire_front[child])
        row = self._append_row(
            name or self.new_name(KIND_OF_CODE[kind_code].value),
            kind_code,
            x,
            y,
            side_front,
            capacitance,
            wire_front,
        )
        siblings = self.children_rows[parent]
        siblings.remove(child)
        siblings.append(row)
        self.children_rows[row] = [child]
        self.parent_row[row] = parent
        self.parent_row[child] = row
        self.edge_length[row] = self._edge(row, parent)
        self.edge_length[child] = self._edge(child, row)
        self._invalidate()
        self.mark_splice(row)
        return row

    def add_buffer(
        self, child: int, x: float, y: float, input_capacitance: float
    ) -> int:
        """Insert a clock buffer on the edge above ``child`` (front side)."""
        return self.insert_on_edge(
            child,
            KIND_BUFFER,
            x,
            y,
            side_front=True,
            capacitance=input_capacitance,
            wire_front=True,
        )

    def add_ntsv(
        self, child: int, x: float, y: float, capacitance: float, upstream_front: bool
    ) -> int:
        """Insert an nTSV on the edge above ``child``."""
        return self.insert_on_edge(
            child,
            KIND_NTSV,
            x,
            y,
            side_front=upstream_front,
            capacitance=capacitance,
            wire_front=upstream_front,
        )

    def move_child(self, row: int, new_parent: int) -> None:
        """Detach ``row`` from its parent and append it under ``new_parent``.

        Mirrors ``node.detach(); new_parent.add_child(node)`` — the caller is
        responsible for recording the covering rewire edit, exactly like the
        object API.
        """
        old_parent = int(self.parent_row[row])
        if old_parent < 0:
            raise ValueError(f"row {self.names[row]!r} has no parent to detach")
        self.children_rows[old_parent].remove(row)
        self.children_rows[new_parent].append(row)
        self.parent_row[row] = new_parent
        self.edge_length[row] = self._edge(row, new_parent)
        self._invalidate()

    def remove_leaf(self, row: int) -> None:
        """Detach and tombstone a childless row (caller records the rewire)."""
        if self.children_rows[row]:
            raise ValueError(f"row {self.names[row]!r} still has children")
        parent = int(self.parent_row[row])
        if parent >= 0:
            self.children_rows[parent].remove(row)
        self.parent_row[row] = -1
        self.alive[row] = False
        self.dead_count += 1
        self._drop_name(row)
        self._invalidate()

    def _drop_name(self, row: int) -> None:
        """Clear ``row``'s name and keep the index coherent for duplicates."""
        name = self.names[row]
        self.names[row] = None
        if name is None:
            return
        if self.name_to_row.get(name) == row:
            del self.name_to_row[name]
        if name in self._dup_names:
            self._reindex_duplicate(name)

    def detach_subtree(self, row: int) -> None:
        """Detach and tombstone a whole subtree (fault injection / pruning)."""
        parent = int(self.parent_row[row])
        if parent >= 0:
            self.children_rows[parent].remove(row)
        stack = [row]
        while stack:
            current = stack.pop()
            stack.extend(self.children_rows[current])
            self.children_rows[current] = []
            self.parent_row[current] = -1
            self.alive[current] = False
            self.dead_count += 1
            self._drop_name(current)
        self._invalidate()

    def rename(self, row: int, name: str) -> None:
        """Rename a row (duplicate names allowed, like the object tree).

        Duplicate names resolve like a cold :meth:`ClockTree.find` index:
        the first holder in *pre-order* owns the ``name_to_row`` entry.
        Duplicates only ever arise through renames (appends reject them),
        so the pre-order rescan runs only on an actual collision and the
        unique-name fast path stays O(1).
        """
        old = self.names[row]
        if old == name:
            return
        self.names[row] = name
        if old is not None and self.name_to_row.get(old) == row:
            del self.name_to_row[old]
            if old in self._dup_names:
                self._reindex_duplicate(old)
        existing = self.name_to_row.get(name)
        if existing is None:
            self.name_to_row[name] = row
        elif existing != row:
            self._dup_names.add(name)
            self._reindex_duplicate(name)

    def _reindex_duplicate(self, name: str) -> None:
        """Point ``name_to_row[name]`` at the first pre-order holder."""
        rows = [r for r in self.rows_preorder() if self.names[r] == name]
        if not rows:
            self._dup_names.discard(name)
            self.name_to_row.pop(name, None)
            return
        if len(rows) == 1:
            self._dup_names.discard(name)
        self.name_to_row[name] = rows[0]

    def _rebuild_name_index(self) -> None:
        """Rebuild ``name_to_row`` from ``names`` (pre-order for duplicates)."""
        index: dict[str, int] = {}
        duplicated = False
        for row, name in enumerate(self.names):
            if name is None:
                continue
            if name in index:
                duplicated = True
            else:
                index[name] = row
        self._dup_names = set()
        if duplicated:
            index = {}
            for row in self.rows_preorder():
                name = self.names[row]
                if name is None:
                    continue
                if name in index:
                    self._dup_names.add(name)
                else:
                    index[name] = row
        self.name_to_row = index

    # --------------------------------------------------------- maintenance
    def compact(self) -> None:
        """Renumber every alive row into breadth-first order (root first).

        This is the IR analogue of a fresh ``TreeArrays`` compile: after
        compaction the row order, and therefore the level grouping every
        vectorized pass reduces over, is exactly what a full recompile of
        the equivalent object tree would produce — which is what keeps IR
        and object timing bit-identical across stage boundaries.

        A compaction that actually permutes rows is a *structural edit*:
        the version bumps (through :meth:`_record`) and the edit log
        collapses to that one covering touch (old entries reference old
        row numbers), so an engine that synced just before the compaction
        can never mistake the renumbered rows for "nothing changed".  A
        no-op compaction (rows already breadth-first, no tombstones)
        leaves the version and log untouched.
        """
        if self._bfs_clean and not self.dead_count:
            return
        order: list[int] = []
        frontier = [0]
        while frontier:
            order.extend(frontier)
            frontier = [c for row in frontier for c in self.children_rows[row]]
        if not self.dead_count and order == list(range(self.size)):
            self._bfs_clean = True
            return
        remap = np.full(self.size, -1, dtype=np.int64)
        for new, old in enumerate(order):
            remap[old] = new
        perm = np.asarray(order, dtype=np.int64)
        n = len(order)
        old_parent = self.parent_row[perm]
        self.parent_row[:n] = np.where(old_parent >= 0, remap[old_parent], -1)
        self.parent_row[n:] = -1
        for column in ("kind", "edge_length", "wire_front", "cap", "x", "y",
                       "side_front"):
            values = getattr(self, column)
            values[:n] = values[perm]
        self.alive[:n] = True
        self.names = [self.names[old] for old in order]
        self.children_rows = [
            [int(remap[c]) for c in self.children_rows[old]] for old in order
        ]
        self.size = n
        self.dead_count = 0
        self._rebuild_name_index()
        self._record("touch", None)
        self._edits = self._edits[-1:]
        self._invalidate()
        self._bfs_clean = True

    def snapshot(self) -> dict:
        """A cheap full copy of the design state (guard degrade recovery)."""
        n = self.size
        return {
            "size": n,
            "dead_count": self.dead_count,
            "counter": self._counter,
            "version": self._version,
            "edits": list(self._edits),
            "names": list(self.names),
            "children_rows": [list(rows) for rows in self.children_rows],
            "columns": {
                column: getattr(self, column)[:n].copy()
                for column in (
                    "parent_row",
                    "kind",
                    "edge_length",
                    "wire_front",
                    "cap",
                    "alive",
                    "x",
                    "y",
                    "side_front",
                )
            },
        }

    def restore(self, snapshot: dict) -> None:
        """Restore the state captured by :meth:`snapshot` in place.

        Structure, columns, and the name counter return to the snapshot;
        the *version* does not.  A restore is itself a structural edit, so
        the version stays monotonic (never rewinds to the snapshot's
        counter) and a covering touch is recorded: any observer holding a
        pre-restore version sees a non-empty ``edits_since`` (or ``None``,
        forcing a recompile) — never a stale ``[]``.  The snapshot's edit
        entries are dropped rather than replayed; their versions belong to
        the abandoned timeline.
        """
        n = snapshot["size"]
        self.size = n
        self.dead_count = snapshot["dead_count"]
        self._counter = snapshot["counter"]
        self._version = max(self._version, snapshot["version"])
        self._edits = []
        self.names = list(snapshot["names"])
        self.children_rows = [list(rows) for rows in snapshot["children_rows"]]
        for column, values in snapshot["columns"].items():
            getattr(self, column)[:n] = values
        self.parent_row[n:] = -1
        self.alive[n:] = True
        self._rebuild_name_index()
        self._invalidate()
        self._record("touch", None)

    # ---------------------------------------------------------- validation
    def validate(self) -> None:
        """Vectorized structural + double-side connectivity invariants.

        The IR twin of :meth:`ClockTree.validate`: raises
        :class:`ConnectivityError` on cycles/orphans, duplicate names,
        back-side sinks or buffers, and the paper's shared-vertex side
        constraint.
        """
        rows = self.alive_rows()
        if not rows.size or self.kind[0] != KIND_ROOT or not self.alive[0]:
            raise ConnectivityError("design has no alive root row")
        reached = sum(level.size for level in self.levels())
        if reached != rows.size:
            raise ConnectivityError(
                f"{rows.size - reached} alive rows unreachable from the root"
            )
        names = [self.names[row] for row in rows]
        if len(set(names)) != len(names):
            seen: set[str] = set()
            for name in names:
                if name in seen:
                    raise ConnectivityError(f"duplicate node name {name!r}")
                seen.add(name)
        kinds = self.kind[rows]
        front = self.side_front[rows]
        for code, label in ((KIND_SINK, "sink"), (KIND_BUFFER, "buffer")):
            bad = rows[(kinds == code) & ~front]
            if bad.size:
                raise ConnectivityError(
                    f"{label} {self.names[int(bad[0])]!r} is on the back side"
                )
        parents = self.parent_row[rows]
        has_parent = parents >= 0
        ntsv = kinds == KIND_NTSV
        # Upstream wire must match the node side (nTSV and non-nTSV alike).
        bad = rows[has_parent & (self.wire_front[rows] != front)]
        if bad.size:
            row = int(bad[0])
            raise ConnectivityError(
                f"node {self.names[row]!r} side/wire mismatch "
                f"(upstream wire on the opposite side)"
            )
        # Downstream wires: node side for non-nTSVs, opposite for nTSVs.
        child_rows = rows[has_parent]
        child_parents = parents[has_parent]
        parent_front = self.side_front[child_parents]
        parent_ntsv = self.kind[child_parents] == KIND_NTSV
        expected_front = np.where(parent_ntsv, ~parent_front, parent_front)
        bad = child_rows[self.wire_front[child_rows] != expected_front]
        if bad.size:
            row = int(bad[0])
            parent = int(self.parent_row[row])
            raise ConnectivityError(
                f"node {self.names[parent]!r} touches a downstream wire on "
                f"the wrong side (child {self.names[row]!r})"
            )
        del ntsv

    # ----------------------------------------------------------- boundary
    def to_clock_tree(self) -> ClockTree:
        """Realise the design as an object :class:`ClockTree` (lossless)."""
        order: list[int] = []
        frontier = [0]
        while frontier:
            order.extend(frontier)
            frontier = [c for row in frontier for c in self.children_rows[row]]
        nodes: dict[int, ClockTreeNode] = {}
        tree: ClockTree | None = None
        for row in order:
            node = ClockTreeNode(
                name=self.names[row],
                kind=KIND_OF_CODE[int(self.kind[row])],
                location=Point(float(self.x[row]), float(self.y[row])),
                side=Side.FRONT if self.side_front[row] else Side.BACK,
                capacitance=float(self.cap[row]),
                wire_side=Side.FRONT if self.wire_front[row] else Side.BACK,
            )
            nodes[row] = node
            parent = int(self.parent_row[row])
            if parent < 0:
                tree = ClockTree(node, name=self.name)
            else:
                nodes[parent].add_child(node)
        assert tree is not None
        tree._counter = self._counter
        return tree

    @classmethod
    def from_clock_tree(cls, tree: ClockTree) -> "DesignArrays":
        """Compile an object tree into a fresh design (BFS row order)."""
        order: list[ClockTreeNode] = []
        frontier = [tree.root]
        while frontier:
            order.extend(frontier)
            frontier = [c for node in frontier for c in node.children]
        design = cls(name=tree.name, capacity=len(order))
        row_of = {id(node): row for row, node in enumerate(order)}
        for row, node in enumerate(order):
            design.names.append(node.name)
            design.children_rows.append([row_of[id(c)] for c in node.children])
            design.name_to_row.setdefault(node.name, row)
            parent = node.parent
            design.parent_row[row] = -1 if parent is None else row_of[id(parent)]
            design.kind[row] = KIND_CODE[node.kind]
            design.edge_length[row] = node.edge_length()
            design.wire_front[row] = node.wire_side is Side.FRONT
            design.cap[row] = node.capacitance
            design.x[row] = node.location.x
            design.y[row] = node.location.y
            design.side_front[row] = node.side is Side.FRONT
        design.size = len(order)
        design._counter = tree._counter
        if len(design.name_to_row) != len(order):
            # Pathological duplicate names: redo the index in pre-order so
            # lookups match a cold ClockTree.find scan.
            design._rebuild_name_index()
        return design

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nodes, sinks, buffers, ntsvs = self.counts()
        return (
            f"DesignArrays(name={self.name!r}, nodes={nodes}, sinks={sinks}, "
            f"buffers={buffers}, ntsvs={ntsvs})"
        )


#: Re-exported kind codes for IR-side call sites.
__all__ = [
    "DesignArrays",
    "KIND_OF_CODE",
    "KIND_ROOT",
    "KIND_SINK",
    "KIND_BUFFER",
    "KIND_NTSV",
    "KIND_TAP",
]

"""``repro.ir`` — the persistent array IR of the end-to-end flow.

:class:`DesignArrays` is the struct-of-arrays design representation that
flows through every construction stage without realising object trees in
between; :mod:`repro.ir.stages` wraps the stages in the uniform
:class:`~repro.ir.stages.Stage` protocol the IR flow pipeline runs.

Only the design container is imported eagerly here: the stage pipeline
imports routing/insertion/refinement/timing, which themselves import
``repro.ir.design`` — keeping this package root light avoids the cycle.
"""

from repro.ir.design import DesignArrays

__all__ = ["DesignArrays"]

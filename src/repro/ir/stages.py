"""The stage pipeline of the IR-native flow.

Every construction stage here has one shape: a
:class:`~repro.ir.design.DesignArrays` design (plus the
:class:`~repro.flow.config.CtsConfig` carried by the context) in, a design
out.  The design flows through routing -> insertion -> refinement ->
evaluation without realising an object tree between stages; object trees
appear only at sanctioned boundaries:

* a stage whose selected backend is the scalar *reference* spec (the
  executable spec walks object trees, so the stage realises the design
  once, runs the spec, and compiles the result back), and
* the guard's *degrade* path, which restores the pre-stage design from a
  :meth:`~repro.ir.design.DesignArrays.snapshot` and re-runs just the
  anomalous stage on the reference backends — no earlier stage is replayed.

Both bridges are exact: the reference and vectorized backends are
decision-identical, and ``to_clock_tree()`` / ``from_clock_tree()`` are
lossless, so the IR flow makes bit-for-bit the decisions the object-hop
flow makes (``tests/test_ir_flow.py`` pins this across the backend matrix).

The stage objects also centralise *construction*: :func:`build_router`,
:func:`build_inserter`, and :func:`build_refiner` are the single place a
stage engine is instantiated from a config, shared with the object-hop
flow in :mod:`repro.flow.cts` so the two paths cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.evaluation.metrics import evaluate_tree
from repro.guard.validation import insertion_anomaly, metrics_anomaly
from repro.insertion.concurrent import ConcurrentInserter, InsertionConfig
from repro.ir.design import DesignArrays
from repro.refinement.skew_refinement import SkewRefiner
from repro.routing.hierarchical import HierarchicalClockRouter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.metrics import ClockTreeMetrics
    from repro.flow.config import CtsConfig, ResolvedBackends
    from repro.guard.policy import StageGuard
    from repro.insertion.concurrent import InsertionResult
    from repro.netlist.clock import ClockNet
    from repro.refinement.skew_refinement import SkewRefinementReport
    from repro.routing.hierarchical import DesignRoutingResult
    from repro.tech.pdk import Pdk


# ------------------------------------------------------------ construction
def build_router(pdk: "Pdk", config: "CtsConfig") -> HierarchicalClockRouter:
    """The single construction point for the routing stage engine."""
    return HierarchicalClockRouter(pdk, config=config)


def build_inserter(
    pdk: "Pdk", config: "CtsConfig", timing: str, dp: str
) -> ConcurrentInserter:
    """The single construction point for the insertion stage engine."""
    return ConcurrentInserter(
        pdk,
        InsertionConfig(
            weights=config.moes_weights,
            selection=config.selection,
            max_segment_length=config.max_segment_length,
            keep_resource_diversity=config.keep_resource_diversity,
            max_candidates_per_side=config.max_candidates_per_side,
            default_mode=config.default_mode,
            dp_backend=dp,
        ),
        engine=timing,
        corners=config.construction_corners(),
        workers=config.resolved_workers(),
        parallel_policy=config.resolved_parallel_policy(),
    )


def build_refiner(pdk: "Pdk", config: "CtsConfig", timing: str) -> SkewRefiner:
    """The single construction point for the refinement stage engine."""
    return SkewRefiner(
        pdk,
        skew_trigger_fraction=config.skew_trigger_fraction,
        max_endpoints=config.max_refined_endpoints,
        strategy=config.skew_strategy,
        engine=timing,
        corners=config.construction_corners(),
        nominal_skew_budget=config.nominal_skew_budget,
    )


def reference_config(config: "CtsConfig") -> "CtsConfig":
    """``config`` with every construction backend forced to the reference.

    Guard and representation selections are preserved; only the three
    backend axes the degrade path re-runs are overridden.
    """
    from dataclasses import replace

    from repro.flow.config import BackendSelection

    selection = config.backends if config.backends is not None else BackendSelection()
    return config.with_updates(
        backends=replace(
            selection, timing="reference", dp="reference", dme="reference"
        )
    )


# ------------------------------------------------------------------ stages
@dataclass
class StageContext:
    """Everything a stage needs besides the design, plus the stage payloads.

    The design itself is threaded stage to stage as the pipeline value; the
    context accumulates the per-stage results the flow reports
    (:class:`DesignRoutingResult`, :class:`InsertionResult`, the skew
    report, the metrics).
    """

    pdk: "Pdk"
    config: "CtsConfig"
    backends: "ResolvedBackends"
    guard: "StageGuard"
    clock_net: "ClockNet"
    design_name: str = ""
    flow_name: str = ""
    runtime: float = 0.0
    routing: "DesignRoutingResult | None" = None
    insertion: "InsertionResult | None" = None
    skew_report: "SkewRefinementReport | None" = None
    metrics: "ClockTreeMetrics | None" = None


class Stage:
    """One guarded flow stage: design in, design out.

    :meth:`run` wraps the stage body with the guard protocol: snapshot the
    pre-stage design (``degrade`` policy only — healthy runs never copy),
    execute, apply injected faults, check, and on an anomaly restore the
    snapshot and re-run this one stage on the reference backends.  The
    degraded stage is never re-faulted, mirroring the object-hop flow.
    """

    name = "stage"
    #: False for result-only stages (evaluation): no faults, metrics-only check.
    mutates = True

    def run(self, design: DesignArrays | None, ctx: StageContext) -> DesignArrays:
        snapshot = None
        if self.mutates and design is not None and ctx.guard.degrading:
            snapshot = design.snapshot()
        out = self._execute(design, ctx)
        probe = out if self.mutates else None
        if self.mutates:
            ctx.guard.inject(self.name, out)
        if ctx.guard.check(self.name, probe, extra=self._extra(ctx)):
            out = self._degrade(design, snapshot, ctx)
            ctx.guard.confirm(
                self.name, out if self.mutates else None, extra=self._extra(ctx)
            )
        if ctx.routing is not None and out is not ctx.routing.design:
            # A bridged or degraded stage replaced the design object; keep
            # the routing result pointing at the live design.
            ctx.routing.design = out
        return out

    def _execute(
        self, design: DesignArrays | None, ctx: StageContext
    ) -> DesignArrays:
        raise NotImplementedError

    def _degrade(
        self,
        design: DesignArrays | None,
        snapshot: dict | None,
        ctx: StageContext,
    ) -> DesignArrays:
        raise NotImplementedError

    def _extra(self, ctx: StageContext) -> Callable[[], str | None] | None:
        return None


class RoutingStage(Stage):
    """Hierarchical clock routing straight into design rows."""

    name = "routing"

    def _execute(self, design, ctx):
        ctx.routing = build_router(ctx.pdk, ctx.config).route_design(ctx.clock_net)
        return ctx.routing.design

    def _degrade(self, design, snapshot, ctx):
        ctx.routing = build_router(
            ctx.pdk, reference_config(ctx.config)
        ).route_design(ctx.clock_net)
        return ctx.routing.design


class InsertionStage(Stage):
    """Concurrent buffer and nTSV insertion on the design rows.

    The vectorized DP and timing engines run IR-native; a reference
    selection on either axis bridges the whole stage through the object
    spec (realise, run, compile back) — the sanctioned boundary.
    """

    name = "insertion"

    def _execute(self, design, ctx):
        timing, dp = ctx.backends.timing, ctx.backends.dp
        if "reference" in (timing, dp):
            return self._bridge(design, ctx, timing, dp)
        ctx.insertion = build_inserter(ctx.pdk, ctx.config, timing, dp).run(
            design, fanout_threshold=ctx.config.fanout_threshold
        )
        return design

    def _degrade(self, design, snapshot, ctx):
        design.restore(snapshot)
        return self._bridge(design, ctx, "reference", "reference")

    def _bridge(self, design, ctx, timing, dp):
        tree = design.to_clock_tree()
        ctx.insertion = build_inserter(ctx.pdk, ctx.config, timing, dp).run(
            tree, fanout_threshold=ctx.config.fanout_threshold
        )
        return DesignArrays.from_clock_tree(tree)

    def _extra(self, ctx):
        return lambda: insertion_anomaly(ctx.insertion)


class RefinementStage(Stage):
    """End-point skew refinement on the design rows."""

    name = "refinement"

    def _execute(self, design, ctx):
        timing = ctx.backends.timing
        if timing == "reference":
            return self._bridge(design, ctx, timing)
        ctx.skew_report = build_refiner(ctx.pdk, ctx.config, timing).refine(design)
        return design

    def _degrade(self, design, snapshot, ctx):
        design.restore(snapshot)
        return self._bridge(design, ctx, "reference")

    def _bridge(self, design, ctx, timing):
        tree = design.to_clock_tree()
        ctx.skew_report = build_refiner(ctx.pdk, ctx.config, timing).refine(tree)
        return DesignArrays.from_clock_tree(tree)


class EvaluationStage(Stage):
    """Final metrics over the design rows (does not mutate the design)."""

    name = "evaluation"
    mutates = False

    def _execute(self, design, ctx):
        ctx.metrics = self._evaluate(design, ctx, ctx.backends.timing)
        return design

    def _degrade(self, design, snapshot, ctx):
        ctx.metrics = self._evaluate(design, ctx, "reference")
        return design

    def _evaluate(self, design, ctx, timing):
        return evaluate_tree(
            design,
            ctx.pdk,
            design=ctx.design_name,
            flow=ctx.flow_name,
            runtime=ctx.runtime,
            engine=timing,
            corners=ctx.config.corners,
        )

    def _extra(self, ctx):
        return lambda: metrics_anomaly(ctx.metrics)


__all__ = [
    "Stage",
    "StageContext",
    "RoutingStage",
    "InsertionStage",
    "RefinementStage",
    "EvaluationStage",
    "build_router",
    "build_inserter",
    "build_refiner",
    "reference_config",
]

"""Setuptools shim for offline/legacy editable installs.

All package metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (PEP 660 editable installs require it).
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""The guarded flow: anomaly detection and graceful degradation in action.

The flow's three guard policies (``CtsConfig.guard`` / ``dscts --guard`` /
``REPRO_GUARD``):

* ``off`` (default) — today's unguarded flow, no checks, no overhead;
* ``strict`` — validate the inputs at entry and the stage invariants after
  every step, raising a typed ``GuardError`` on the first anomaly;
* ``degrade`` — same checks, but an anomalous stage is re-run through the
  reference backend (the executable spec of the two-engine pattern), a
  ``GuardDiagnostic`` is recorded on the result, and the flow continues.

This script simulates a backend bug with the fault-injection harness
(``repro.guard.faults``): a fault armed at the insertion stage poisons a pin
capacitance with NaN right after the stage runs.  It then shows all three
policies reacting — ``strict`` failing fast with the stage and design
fingerprint, ``degrade`` recovering on the reference backend and shipping a
healthy tree, and input validation catching a malformed design before any
construction runs.

Usage::

    python examples/guarded_flow.py [sinks]

    sinks   sink count of the generated clock net; default 300
"""

from __future__ import annotations

import sys

from repro import asap7_backside
from repro.designs import random_sink_cloud
from repro.flow import CtsConfig, DoubleSideCTS
from repro.guard import GuardError, StageFault
from repro.guard.faults import poke_nan_capacitance


def main() -> int:
    sinks = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    pdk = asap7_backside()
    clock_net = random_sink_cloud(sinks, seed=11)
    fault = StageFault("insertion", poke_nan_capacitance)

    print(f"{sinks}-sink clock net, fault armed: NaN capacitance after insertion\n")

    print("guard=strict — fail fast on the first anomaly:")
    flow = DoubleSideCTS(pdk, CtsConfig(guard="strict"), guard_faults=[fault])
    try:
        flow.run(clock_net)
    except GuardError as exc:
        print(f"  GuardError at stage {exc.stage!r}")
        print(f"  {exc}\n")

    print("guard=degrade — re-run the anomalous stage on the reference backend:")
    flow = DoubleSideCTS(pdk, CtsConfig(guard="degrade"), guard_faults=[fault])
    result = flow.run(clock_net)
    for diagnostic in result.guard_diagnostics:
        print(f"  degraded {diagnostic.stage!r} -> {diagnostic.backend} backend")
        print(f"  anomaly was: {diagnostic.anomaly}")
    print(
        f"  flow completed: skew {result.metrics.skew:.2f} ps, "
        f"latency {result.metrics.latency:.2f} ps\n"
    )

    print("input validation — a malformed design never reaches construction:")
    bad_net = random_sink_cloud(sinks, seed=11)
    object.__setattr__(bad_net.sinks[0], "capacitance", float("nan"))
    try:
        DoubleSideCTS(pdk, CtsConfig(guard="strict")).run(bad_net)
    except GuardError as exc:
        print(f"  GuardError at stage {exc.stage!r}: {exc.anomaly}")
        print(f"  design fingerprint: {exc.fingerprint}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

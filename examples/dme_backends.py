#!/usr/bin/env python3
"""DME routing backends: the scalar router vs. the level-batched arrays.

The DME clock routing has two interchangeable backends behind
``CtsConfig.dme_backend`` (mirroring the timing engines and the
insertion-DP backends):

* ``reference`` — the per-node scalar ``DmeRouter``, the executable spec;
* ``vectorized`` (default) — ``VectorizedDmeRouter``: the topology is
  flattened to struct-of-arrays and every level's merging-segment
  endpoints, Elmore edge balancing (a 64-step vector bisection with
  detour masks), and top-down embedding run as whole numpy batches.

Both embed *bit-identical* trees; this script builds one matching topology
over a generated sink cloud, routes it with each backend, verifies the
embedded wirelength agrees to the last bit, and prints the wall-clock
comparison — standalone DME and through the full hierarchical router.

Usage::

    python examples/dme_backends.py [terminals]

    terminals   terminal count of the generated net; default 2000
"""

from __future__ import annotations

import sys
import time

from repro import asap7_backside
from repro.designs import random_sink_cloud
from repro.routing import DmeTerminal, HierarchicalClockRouter, create_dme_router
from repro.routing.topology import matching_topology


def main() -> int:
    terminals = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    pdk = asap7_backside()
    clock_net = random_sink_cloud(terminals)
    leaves = [
        DmeTerminal(name=s.name, location=s.location, capacitance=s.capacitance)
        for s in clock_net.sinks
    ]
    print(f"Building a matching topology over {terminals} terminals ...")
    topology = matching_topology([t.location for t in leaves])

    print(f"{'stage':>24}  {'reference':>10}  {'vectorized':>10}  speedup")
    timings = {}
    wirelengths = {}
    for backend in ("reference", "vectorized"):
        router = create_dme_router(pdk.front_layer, backend=backend)
        start = time.perf_counter()
        embedded = router.route(
            leaves, root_location=clock_net.source.location, topology=topology
        )
        timings[backend] = time.perf_counter() - start
        wirelengths[backend] = embedded.wirelength()
    if wirelengths["reference"] != wirelengths["vectorized"]:
        raise AssertionError("DME backends diverged (wirelength mismatch)")
    print(
        f"{'flat DME embed':>24}  {timings['reference'] * 1e3:8.1f}ms"
        f"  {timings['vectorized'] * 1e3:8.1f}ms"
        f"  {timings['reference'] / timings['vectorized']:6.2f}x"
    )

    flow_timings = {}
    for backend in ("reference", "vectorized"):
        router = HierarchicalClockRouter(pdk, dme_backend=backend)
        start = time.perf_counter()
        result = router.route(clock_net)
        flow_timings[backend] = time.perf_counter() - start
    print(
        f"{'hierarchical routing':>24}  {flow_timings['reference'] * 1e3:8.1f}ms"
        f"  {flow_timings['vectorized'] * 1e3:8.1f}ms"
        f"  {flow_timings['reference'] / flow_timings['vectorized']:6.2f}x"
    )
    print(
        f"\nIdentical embeddings from both backends: "
        f"{result.tree.sink_count()} sinks, wirelength "
        f"{wirelengths['vectorized']:.3f} um (bit-equal across backends)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""The persistent array IR: one ``DesignArrays`` through the whole flow.

Every vectorized stage backend has an IR-native entry point, so with
``CtsConfig(backends=BackendSelection(representation="ir"))`` the flow
threads a single struct-of-arrays design (``repro.ir.DesignArrays``)
through routing, insertion, refinement, and evaluation without realising
``ClockTree`` objects between stages.  Object trees exist only at the
boundaries — ``to_clock_tree()`` / ``from_clock_tree()`` — and the two
representations are decision-identical: they build bit-equal trees.

This script runs the same clock net under both representations, checks the
trees are identical node-for-node, times both paths (interleaved, best of
N — the saving is a fixed conversion cost, so minima separate it from
scheduler noise), and shows the boundary bridges round-tripping.

Usage::

    python examples/array_ir_flow.py [sinks] [rounds]

    sinks    sink count of the generated clock net; default 2000
    rounds   timing rounds per representation; default 3
"""

from __future__ import annotations

import sys
import time

from repro import asap7_backside
from repro.designs import random_sink_cloud
from repro.flow import BackendSelection, CtsConfig, DoubleSideCTS
from repro.ir import DesignArrays


def fingerprint(tree) -> list[tuple]:
    """Order-independent structural identity of a clock tree."""
    return sorted(
        (
            node.name,
            node.kind.value,
            node.parent.name if node.parent is not None else "",
            node.location.x,
            node.location.y,
        )
        for node in tree.nodes()
    )


def main() -> int:
    sinks = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    pdk = asap7_backside()
    clock_net = random_sink_cloud(sinks, seed=11)

    samples: dict[str, list[float]] = {"object": [], "ir": []}
    results: dict[str, object] = {}
    for _ in range(rounds):
        for representation in ("object", "ir"):
            config = CtsConfig(
                backends=BackendSelection(representation=representation)
            )
            flow = DoubleSideCTS(pdk, config)
            start = time.perf_counter()
            results[representation] = flow.run(clock_net)
            samples[representation].append(time.perf_counter() - start)

    obj, ir = results["object"], results["ir"]
    identical = fingerprint(obj.tree) == fingerprint(ir.tree)
    t_obj, t_ir = min(samples["object"]), min(samples["ir"])

    print(f"{sinks}-sink clock net, best of {rounds} rounds per path\n")
    print(f"  object-hop flow : {t_obj * 1e3:8.1f} ms")
    print(f"  persistent IR   : {t_ir * 1e3:8.1f} ms  ({t_obj / t_ir:.2f}x)")
    print(f"  trees identical : {identical}")
    print(
        f"  metrics         : skew {ir.metrics.skew:.2f} ps, "
        f"latency {ir.metrics.latency:.2f} ps, "
        f"wirelength {ir.metrics.wirelength:.0f} um\n"
    )
    if not identical:
        raise AssertionError("representations diverged — file a bug")

    # The boundary bridges: object tree -> arrays -> object tree.
    design = DesignArrays.from_clock_tree(ir.tree)
    nodes, sink_count, buffers, ntsvs = design.counts()
    print("DesignArrays bridged from the result tree:")
    print(f"  {nodes} rows: {sink_count} sinks, {buffers} buffers, {ntsvs} nTSVs")
    print(f"  wirelength {design.wirelength():.0f} um (matches the metrics above)")
    round_tripped = design.to_clock_tree()
    same = fingerprint(round_tripped) == fingerprint(ir.tree)
    print(f"  round-trip identical: {same}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

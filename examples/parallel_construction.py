#!/usr/bin/env python3
"""The region-parallel scaled tier: ``workers=N`` construction.

With ``CtsConfig(workers=N)`` (or ``dscts run --workers N``, or
``REPRO_FLOW_WORKERS=N``) the flow fans construction out over a process
pool: each top-level cluster is routed by a worker into its own
``DesignArrays`` shard and stitched back by a deterministic graft merge,
and the insertion DP ships its bottom subtrees to the pool as flat
tables.  The contract is *bit-identical to serial* — same names, same
rows, same coordinates, same frontiers — at every worker count
(``tests/test_parallel_construction.py`` pins it across the backend
matrix).

This script runs one clock net serially and at a sweep of worker counts,
verifies the trees are identical node-for-node, and prints the wall-clock
sweep.  Honest expectations: the parallel tier only pays off when the
host actually has the cores.  On a machine with fewer cores than workers
the pool adds pickling and spin-up cost with nothing to parallelise on,
so parallel runs measure *slower* than serial there — the perf gates
(``benchmarks/check_regression.py``) apply the ``*_100k`` floors only
when the row was measured with ``cores >= workers`` for exactly this
reason.  The bit-identity checks hold regardless.

Usage::

    python examples/parallel_construction.py [sinks] [workers ...]

    sinks     sink count of the generated clock net; default 20000
    workers   worker counts to sweep; default 2 4
"""

from __future__ import annotations

import os
import sys
import time

from repro import asap7_backside
from repro.designs import random_sink_cloud
from repro.flow import BackendSelection, CtsConfig, DoubleSideCTS


def fingerprint(tree) -> list[tuple]:
    """Order-independent structural identity of a clock tree."""
    return sorted(
        (
            node.name,
            node.kind.value,
            node.parent.name if node.parent is not None else "",
            node.location.x,
            node.location.y,
        )
        for node in tree.nodes()
    )


def run_once(pdk, clock_net, workers: int):
    config = CtsConfig(
        workers=workers, backends=BackendSelection(representation="ir")
    )
    flow = DoubleSideCTS(pdk, config)
    start = time.perf_counter()
    result = flow.run(clock_net)
    return time.perf_counter() - start, result


def main() -> int:
    sinks = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    sweep = [int(arg) for arg in sys.argv[2:]] or [2, 4]
    cores = os.cpu_count() or 1
    pdk = asap7_backside()
    clock_net = random_sink_cloud(sinks, seed=11)

    print(f"host cores: {cores}   sinks: {sinks}")
    t_serial, serial = run_once(pdk, clock_net, workers=1)
    reference = fingerprint(serial.tree)
    print(
        f"workers= 1  {t_serial * 1e3:9.1f} ms   "
        f"skew={serial.metrics.skew:.4f}  buffers={serial.metrics.buffers}"
    )

    for workers in sweep:
        t_parallel, parallel = run_once(pdk, clock_net, workers=workers)
        identical = fingerprint(parallel.tree) == reference
        ratio = t_serial / t_parallel
        note = "" if cores >= workers else "  (more workers than cores)"
        print(
            f"workers={workers:2d}  {t_parallel * 1e3:9.1f} ms   "
            f"serial/parallel={ratio:5.2f}x   "
            f"bit-identical={identical}{note}"
        )
        if not identical:
            print("ERROR: parallel construction diverged from serial")
            return 1

    if cores < max(sweep):
        print(
            "\nNote: this host has fewer cores than the largest worker "
            "count; the ratios above measure pool overhead, not scaling. "
            "On a >=4-core host the 100k-sink routing tier targets >=2x "
            "at workers=4 (see benchmarks/perf_floors.json)."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Quickstart: synthesise a double-side clock tree on one benchmark design.

Runs the paper's flow (hierarchical clock routing, concurrent buffer & nTSV
insertion, skew refinement) on a scaled-down ``riscv32i`` benchmark, prints
the quality metrics, and writes the resulting clock tree to JSON and to a
DEF-style snippet.

Usage::

    python examples/quickstart.py [design] [scale]

    design  benchmark id (C1..C5) or name (jpeg, aes, ...); default C4
    scale   size factor in (0, 1]; default 0.5
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import DoubleSideCTS, asap7_backside, load_design
from repro.evaluation.reporting import format_metrics
from repro.lefdef import tree_to_def_snippet, tree_to_json
from repro.visualization import render_tree_svg


def main() -> int:
    design_id = sys.argv[1] if len(sys.argv) > 1 else "C4"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    print(f"Generating benchmark {design_id} at scale {scale} ...")
    pdk = asap7_backside()
    design = load_design(design_id, scale=scale, include_combinational=False)
    print(f"  {design!r}")

    print("Running the systematic double-side CTS flow ...")
    result = DoubleSideCTS(pdk).run(design)
    print("  " + format_metrics(result.metrics))
    print(f"  routing wirelength : {result.routing.total_wirelength:.0f} um")
    print(f"  trunk / leaf split : {result.routing.trunk_wirelength:.0f} / "
          f"{result.routing.leaf_wirelength:.0f} um")
    print(f"  DP root candidates : {len(result.insertion.root_candidates)}")
    if result.skew_report is not None and result.skew_report.triggered:
        print(f"  skew refinement    : {result.skew_report.added_buffers} buffers, "
              f"skew {result.skew_report.before.skew:.2f} -> "
              f"{result.skew_report.after.skew:.2f} ps")

    out_dir = Path(__file__).parent / "output"
    out_dir.mkdir(exist_ok=True)
    (out_dir / f"{design.name}_clock_tree.json").write_text(tree_to_json(result.tree))
    (out_dir / f"{design.name}_clock_tree.def").write_text(
        tree_to_def_snippet(result.tree)
    )
    (out_dir / f"{design.name}_clock_tree.svg").write_text(
        render_tree_svg(
            result.tree,
            die_area=design.die_area,
            title=f"{design.name}: double-side clock tree",
        )
    )
    print(f"Clock tree (JSON / DEF / SVG) written to {out_dir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Multi-corner sign-off: batch a PVT corner set through one timing engine.

Demonstrates the scenario-batching subsystem on top of the vectorized
timing kernel:

1. direct engine use — one ``VectorizedElmoreEngine`` evaluating five
   corners (tt/ss/ff/hot/cold) in a single level-synchronous pass over a
   shared tree compile, cross-checked against the reference per-corner loop;
2. flow integration — ``CtsConfig(corners=...)`` attaches per-corner skew
   and latency columns (plus the worst-corner summary) to the flow metrics;
3. worst-corner DSE — with corners configured, the fanout-threshold sweep
   scores every point on worst-corner skew/latency instead of nominal.

Usage::

    python examples/multi_corner_timing.py [design] [scale]

    design  benchmark id (C1..C5) or name (jpeg, aes, ...); default C1
    scale   size factor in (0, 1]; default 0.1
"""

from __future__ import annotations

import sys
import time

from repro import CornerSet, CtsConfig, DoubleSideCTS, asap7_backside, load_design
from repro.dse import DesignSpaceExplorer
from repro.evaluation import format_corner_table, format_metrics, format_table
from repro.timing import create_engine


def main() -> int:
    design_id = sys.argv[1] if len(sys.argv) > 1 else "C1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1

    pdk = asap7_backside()
    corners = CornerSet.signoff()  # tt, ss, ff, hot, cold
    print(f"Corner set: {', '.join(corners.names)}")
    print(format_table(corners.describe()))

    print(f"\nRunning the double-side CTS flow on {design_id} (scale {scale}) ...")
    design = load_design(design_id, scale=scale, include_combinational=False)
    config = CtsConfig(corners=corners)
    result = DoubleSideCTS(pdk, config).run(design)
    print("  " + format_metrics(result.metrics))
    print(format_corner_table(result.metrics))

    print("\nBatched vs sequential corner analysis on the synthesised tree:")
    tree = result.tree
    # Engines are built outside the timed region on both sides so the
    # comparison isolates the analysis cost (like the bench harness does).
    batched = create_engine(pdk, corners=corners)
    sequential = {
        scenario.name: create_engine(scenario.apply_to(pdk))
        for scenario in corners
    }
    start = time.perf_counter()
    batched_skews = batched.skew_per_corner(tree)
    t_batched = time.perf_counter() - start
    start = time.perf_counter()
    sequential_skews = {
        name: engine.skew(tree) for name, engine in sequential.items()
    }
    t_sequential = time.perf_counter() - start
    for corner, skew in batched_skews.items():
        drift = abs(skew - sequential_skews[corner])
        print(f"  {corner:>5}: skew {skew:8.3f} ps   (drift vs sequential {drift:.2e})")
    print(
        f"  batched {t_batched * 1e3:.2f} ms vs sequential "
        f"{t_sequential * 1e3:.2f} ms for {len(corners)} corners"
    )

    print("\nWorst-corner DSE sweep (Pareto on worst-corner skew):")
    explorer = DesignSpaceExplorer(pdk, config)
    sweep = explorer.explore(design, fanout_thresholds=[20, 100, 400])
    print(format_table(sweep.rows()))
    pareto = sweep.pareto()
    print(f"Pareto-optimal thresholds (worst-corner objectives): "
          f"{[p.parameter for p in pareto]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

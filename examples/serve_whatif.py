#!/usr/bin/env python3
"""``dscts serve`` walkthrough: one server, one client, warm what-ifs.

Spawns ``dscts serve`` as a subprocess on an ephemeral TCP port, waits for
its ``serving on host:port`` discovery line, and drives the full request
loop over one socket:

1. ``build`` a small benchmark — the flow runs once and the result becomes
   a cached :class:`~repro.serve.session.DesignSession`;
2. a second ``build`` of the same design — answered from the session cache
   (``cached: true``), no flow run;
3. three ``what_if`` requests — buffer inserts and a corner swap, each
   answered warm through the timing engine's incremental dirty-cone path
   and reverted after measuring;
4. one malformed request — the server replies with a structured
   ``ProtocolError`` instead of dying (the never-swallow error contract);
5. ``shutdown`` — the server replies, stops accepting, and exits cleanly.

The script asserts every reply shape and the server's clean exit, so CI
runs it as the serve smoke job.

Usage::

    PYTHONPATH=src python examples/serve_whatif.py
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def start_server() -> tuple[subprocess.Popen, str, int]:
    """Spawn ``dscts serve`` and wait for its discovery line."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("serving on "):
        proc.kill()
        raise RuntimeError(f"unexpected server banner: {line!r}")
    host, port = line.removeprefix("serving on ").rsplit(":", 1)
    return proc, host, int(port)


def main() -> int:
    proc, host, port = start_server()
    print(f"server up on {host}:{port}")
    try:
        with socket.create_connection((host, port), timeout=120) as sock:
            stream = sock.makefile("rw", encoding="utf-8")

            def rpc(payload: str | dict) -> dict:
                text = payload if isinstance(payload, str) else json.dumps(payload)
                stream.write(text + "\n")
                stream.flush()
                return json.loads(stream.readline())

            # 1. Cold build: the flow runs once, the session is cached.
            start = time.perf_counter()
            built = rpc({"op": "build", "id": 1, "design": "C4", "scale": 0.05})
            cold_s = time.perf_counter() - start
            assert built["ok"], built
            session = built["result"]["session"]
            skew = built["result"]["metrics"]["skew_ps"]
            print(f"built {built['result']['design']} in {cold_s * 1e3:.0f} ms "
                  f"(skew {skew} ps, session {session[:12]}...)")
            assert built["result"]["cached"] is False

            # 2. Same design again: a cache hit, no flow run.
            again = rpc({"op": "build", "id": 2, "design": "C4", "scale": 0.05})
            assert again["result"]["cached"] is True
            assert again["result"]["session"] == session
            print("second build answered from the session cache")

            # 3. Warm what-ifs: buffer inserts and a corner swap.
            what_ifs = [
                {"op": "what_if", "id": 3, "session": session,
                 "edits": [{"kind": "insert_buffer", "node": "ff_3"}]},
                {"op": "what_if", "id": 4, "session": session,
                 "edits": [{"kind": "insert_buffer", "node": "ff_11"},
                           {"kind": "insert_buffer", "node": "ff_23"}]},
                {"op": "what_if", "id": 5, "session": session,
                 "edits": [{"kind": "insert_buffer", "node": "ff_3"}],
                 "corners": "tt,ss,ff"},
            ]
            for request in what_ifs:
                start = time.perf_counter()
                reply = rpc(request)
                warm_s = time.perf_counter() - start
                assert reply["ok"], reply
                result = reply["result"]
                label = ",".join(result["corners"])
                print(f"what_if #{request['id']}: {result['edits']} edit(s) "
                      f"under [{label}] -> skew {result['metrics']['skew_ps']} ps "
                      f"in {warm_s * 1e3:.1f} ms (reverted)")

            # 4. A malformed request gets a structured error, not a dead server.
            broken = rpc("this is not json")
            assert broken["ok"] is False
            assert broken["error"]["type"] == "ProtocolError"
            print(f"malformed request -> {broken['error']['type']} "
                  f"({broken['error']['message'][:40]}...); server still up")
            assert rpc({"op": "ping", "id": 6})["result"]["pong"] is True

            # 5. Clean shutdown: reply first, then stop.
            assert rpc({"op": "shutdown", "id": 7})["result"]["stopping"] is True
    finally:
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise RuntimeError("server did not exit after shutdown")
    assert code == 0, f"server exited {code}: {proc.stderr.read()}"
    print("server exited cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

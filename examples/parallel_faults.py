#!/usr/bin/env python3
"""The fault-tolerant parallel tier: worker failures that never change bits.

Every pool consumer in the flow (region-parallel routing shards, DP
subtrees, the DSE sweep, ``FlowCache.warm``) runs through
``repro.parallel.run_tasks`` under a ``ParallelPolicy``
(``CtsConfig(parallel_policy=...)`` / ``REPRO_PARALLEL_POLICY``):

* a failed task — worker crash, hang past ``timeout_s``, corrupt result,
  lost worker — is retried with exponential backoff on a respawned pool;
* a task that exhausts its attempts is recomputed **inline, serially**.
  Because the parallel tier is bit-identical to serial by construction,
  that degraded result is exactly what the healthy pool would have
  produced — recovery never changes the answer, only the wall-clock;
* every recovery is recorded as a ``ParallelDiagnostic`` on the result
  (``result.parallel_diagnostics`` / ``result.parallel_summary()``);
* ``mode="strict"`` (``dscts run --strict-parallel``) raises a typed
  ``ParallelError`` instead of degrading — and like ``GuardError`` it is
  never caught at a call site.

This script arms the worker-fault injectors from ``repro.guard.faults``
against a real flow run at ``workers=2`` and shows the whole ladder: a
crash retried, a corrupted shard degraded to serial, and strict mode
failing fast — with the recovered trees verified node-for-node against a
serial run.

Usage::

    python examples/parallel_faults.py [sinks]

    sinks   sink count of the generated clock net; default 2000
"""

from __future__ import annotations

import sys

from repro import asap7_backside
from repro.designs import random_sink_cloud
from repro.flow import (
    BackendSelection,
    CtsConfig,
    DoubleSideCTS,
    ParallelError,
    ParallelPolicy,
)
from repro.guard import WorkerFault, arm_worker_faults


def fingerprint(tree) -> list[tuple]:
    """Order-independent structural identity of a clock tree."""
    return sorted(
        (
            node.name,
            node.kind.value,
            node.parent.name if node.parent is not None else "",
            node.location.x,
            node.location.y,
        )
        for node in tree.nodes()
    )


def run_once(pdk, clock_net, workers: int, policy: ParallelPolicy | None = None):
    # Hc sized well below the sink count so the clustering yields several
    # top-level regions — otherwise routing runs inline (one shard needs no
    # pool) and there would be no worker for the faults to kill.
    config = CtsConfig(
        workers=workers,
        parallel_policy=policy,
        high_cluster_size=max(len(clock_net.sinks) // 4, 50),
        backends=BackendSelection(representation="ir"),
    )
    return DoubleSideCTS(pdk, config).run(clock_net)


def main() -> int:
    sinks = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    pdk = asap7_backside()
    clock_net = random_sink_cloud(sinks, seed=11)
    policy = ParallelPolicy(attempts=2, backoff_s=0.0)

    print(f"{sinks}-sink clock net, serial baseline first\n")
    serial = run_once(pdk, clock_net, workers=1)
    reference = fingerprint(serial.tree)

    print("crash on every first attempt — the retry rung recovers:")
    crash = WorkerFault(stage="routing", kind="crash", fail_attempts=1)
    with arm_worker_faults(crash):
        result = run_once(pdk, clock_net, workers=2, policy=policy)
    print(f"  {result.parallel_summary()}")
    for diagnostic in result.parallel_diagnostics:
        print(
            f"  {diagnostic.action} {diagnostic.stage!r} {diagnostic.task} "
            f"after {diagnostic.attempts} attempts ({diagnostic.cause})"
        )
    print(f"  bit-identical to serial: {fingerprint(result.tree) == reference}\n")

    print("corrupt results on every attempt — degrade-to-serial recovers:")
    corrupt = WorkerFault(stage="routing", kind="corrupt", fail_attempts=policy.attempts)
    with arm_worker_faults(corrupt):
        result = run_once(pdk, clock_net, workers=2, policy=policy)
    print(f"  {result.parallel_summary()}")
    print(f"  bit-identical to serial: {fingerprint(result.tree) == reference}\n")

    print("the same exhausted fault under mode='strict' — fail fast instead:")
    with arm_worker_faults(corrupt):
        try:
            run_once(
                pdk, clock_net, workers=2, policy=policy.with_updates(mode="strict")
            )
        except ParallelError as exc:
            print(f"  ParallelError at stage {exc.stage!r}, {exc.task}")
            print(f"  {exc}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

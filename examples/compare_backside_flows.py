#!/usr/bin/env python3
"""Compare the systematic flow against the incremental back-side baselines.

Reproduces a miniature Table III on one design: the OpenROAD-like buffered
tree, its back-side optimisation per Veloso et al. [2], our single-side
buffered tree with the post-CTS methods [2], [7], [6], and the paper's
systematic double-side flow.

Usage::

    python examples/compare_backside_flows.py [design] [scale]
"""

from __future__ import annotations

import sys

from repro import (
    DoubleSideCTS,
    FanoutBacksideOptimizer,
    OpenRoadLikeCTS,
    SingleSideCTS,
    TimingCriticalBacksideOptimizer,
    VelosoBacksideOptimizer,
    asap7_backside,
    load_design,
)
from repro.evaluation import ComparisonTable, format_table
from repro.evaluation.reporting import format_ratio_summary


def main() -> int:
    design_id = sys.argv[1] if len(sys.argv) > 1 else "C4"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    pdk = asap7_backside()
    design = load_design(design_id, scale=scale, include_combinational=False)
    print(f"Comparing flows on {design!r}\n")

    ours = DoubleSideCTS(pdk).run(design)
    single = SingleSideCTS(pdk).run(design)
    openroad = OpenRoadLikeCTS(pdk).run(design)

    flows = {
        "ours": ours.metrics,
        "our_buffered_tree": single.metrics,
        "openroad_buffered_tree": openroad.metrics,
        "openroad+[2]": VelosoBacksideOptimizer(pdk)
        .run(openroad.tree, design_name=design.name)
        .metrics,
        "our_buffered_tree+[2]": VelosoBacksideOptimizer(pdk)
        .run(single.tree, design_name=design.name)
        .metrics,
        "our_buffered_tree+[7]": FanoutBacksideOptimizer(pdk, fanout_threshold=100)
        .run(single.tree, design_name=design.name)
        .metrics,
        "our_buffered_tree+[6]": TimingCriticalBacksideOptimizer(pdk, critical_fraction=0.5)
        .run(single.tree, design_name=design.name)
        .metrics,
    }

    table = ComparisonTable(reference_flow="ours")
    rows = []
    for label, metrics in flows.items():
        relabelled = type(metrics)(**{**metrics.__dict__, "flow": label})
        table.add(relabelled)
        rows.append(relabelled.as_row())

    print(format_table(rows))
    print("\nRatios against 'ours' (values > 1.0 mean ours is better):\n")
    print(format_ratio_summary(table.summary()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

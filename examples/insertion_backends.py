#!/usr/bin/env python3
"""Insertion-DP backends: the object DP vs. the candidate-frontier engine.

The concurrent buffer/nTSV insertion has two interchangeable backends behind
``InsertionConfig.dp_backend`` (mirroring the two timing engines):

* ``reference`` — the per-candidate object DP, the executable spec;
* ``vectorized`` (default) — struct-of-arrays candidate frontiers with
  broadcast merges, batched pattern costs, and vectorized pruning sweeps.

Both build *identical* trees; this script routes one design, runs the DP
with each backend (nominal and against a 5-corner sign-off batch), verifies
the realised trees agree, and prints the wall-clock comparison.  The
vectorized backend pulls ahead where candidate frontiers are dense — corner
batches and the Pareto-rich ``keep_resource_diversity`` configuration.

Usage::

    python examples/insertion_backends.py [sinks]

    sinks   sink count of the generated clock net; default 500
"""

from __future__ import annotations

import sys
import time

from repro import asap7_backside
from repro.designs import random_sink_cloud
from repro.insertion import ConcurrentInserter
from repro.insertion.concurrent import InsertionConfig
from repro.routing.hierarchical import HierarchicalClockRouter
from repro.tech import CornerSet


def main() -> int:
    sinks = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    pdk = asap7_backside()
    print(f"Routing a {sinks}-sink clock net ...")
    routed = HierarchicalClockRouter(pdk).route(random_sink_cloud(sinks)).tree

    configurations = [
        ("nominal, default pruning", None, False),
        ("nominal, resource diversity", None, True),
        ("signoff K=5, resource diversity", CornerSet.signoff(), True),
    ]
    print(f"{'configuration':>32}  {'reference':>10}  {'vectorized':>10}  speedup")
    for label, corners, diversity in configurations:
        timings = {}
        outcomes = {}
        for backend in ("reference", "vectorized"):
            tree = routed.copy()
            config = InsertionConfig(
                dp_backend=backend, keep_resource_diversity=diversity
            )
            start = time.perf_counter()
            result = ConcurrentInserter(pdk, config, corners=corners).run(tree)
            timings[backend] = time.perf_counter() - start
            outcomes[backend] = (
                result.inserted_buffers,
                result.inserted_ntsvs,
                round(result.skew, 9),
            )
        if outcomes["reference"] != outcomes["vectorized"]:
            raise AssertionError(f"backends diverged on {label!r}")
        print(
            f"{label:>32}  {timings['reference'] * 1e3:8.1f}ms"
            f"  {timings['vectorized'] * 1e3:8.1f}ms"
            f"  {timings['reference'] / timings['vectorized']:6.2f}x"
        )
    buffers, ntsvs, skew = outcomes["vectorized"]
    print(
        f"\nIdentical trees from both backends: {buffers} buffers, "
        f"{ntsvs} nTSVs, skew {skew:.3f} ps (worst corner batch)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

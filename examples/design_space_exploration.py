#!/usr/bin/env python3
"""Design space exploration: sweep the fanout threshold of the DP tree.

Reproduces the Fig. 12 experiment in miniature: the heterogeneous DP tree's
insertion modes are controlled through a fanout threshold, and sweeping it
traces a Pareto frontier that trades latency and skew against buffer and
nTSV usage.  The baselines [7] and [6] are swept on a fixed buffered tree
for comparison.

Usage::

    python examples/design_space_exploration.py [design] [scale]
"""

from __future__ import annotations

import sys

from repro import DesignSpaceExplorer, SingleSideCTS, asap7_backside, load_design
from repro.evaluation import format_table
from repro.flow import CtsConfig


def main() -> int:
    design_id = sys.argv[1] if len(sys.argv) > 1 else "C5"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4

    pdk = asap7_backside()
    config = CtsConfig()
    design = load_design(design_id, scale=scale, include_combinational=False)
    print(f"Exploring the double-side design space of {design!r}\n")

    explorer = DesignSpaceExplorer(pdk, config)
    thresholds = [0, 20, 50, 100, 300, 1000, 10_000]
    sweep = explorer.explore(design, fanout_thresholds=thresholds)

    columns = ["configuration", "parameter", "latency_ps", "skew_ps",
               "buffers", "ntsvs", "resources"]
    print("Our DSE sweep (fanout threshold controls nTSV-enabled DP nodes):")
    print(format_table(sweep.rows(), columns=columns))

    pareto = sweep.pareto()
    print(f"\nPareto-optimal configurations: "
          f"{sorted(int(p.parameter) for p in pareto)}")

    print("\nBaseline sweeps on a fixed buffered clock tree:")
    buffered = SingleSideCTS(pdk, config).run(design)
    fanout = explorer.sweep_fanout_baseline(
        buffered.tree, thresholds=[20, 100, 400, 1000], design_name=design.name
    )
    critical = explorer.sweep_critical_baseline(
        buffered.tree, fractions=[0.2, 0.5, 0.8], design_name=design.name
    )
    print(format_table(fanout.rows() + critical.rows(), columns=columns))

    best = sweep.best_latency()
    print(f"\nBest latency reached by the DSE flow: {best.metrics.latency:.2f} ps "
          f"(threshold {int(best.parameter)}, {best.metrics.resource_count} cells)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

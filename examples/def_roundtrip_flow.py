#!/usr/bin/env python3
"""Run the flow on a placed DEF file (and write one if you have none).

Demonstrates the LEF/DEF entry point of the library: a placed DEF is parsed
into the design database, the double-side CTS flow runs on it, and the
inserted buffers/nTSVs plus the clock net are emitted as a post-CTS DEF
snippet — the same interface the paper's C++ implementation exposes on top
of the OpenROAD flow.

Usage::

    python examples/def_roundtrip_flow.py [path/to/placed.def]

When no DEF is given, a small synthetic benchmark is generated, written to
``examples/output/generated_placed.def``, and used as the input.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import DoubleSideCTS, asap7_backside, load_design
from repro.evaluation.reporting import format_metrics
from repro.lefdef import read_def, tree_to_def_snippet, write_def


def main() -> int:
    out_dir = Path(__file__).parent / "output"
    out_dir.mkdir(exist_ok=True)

    if len(sys.argv) > 1:
        def_path = Path(sys.argv[1])
        print(f"Reading placed DEF from {def_path} ...")
        def_text = def_path.read_text()
    else:
        print("No DEF given: generating a synthetic placed design ...")
        generated = load_design("C4", scale=0.3, include_combinational=True)
        def_path = out_dir / "generated_placed.def"
        def_text = write_def(generated)
        def_path.write_text(def_text)
        print(f"  wrote {def_path}")

    design = read_def(def_text)
    print(f"  parsed {design!r}")

    pdk = asap7_backside()
    result = DoubleSideCTS(pdk).run(design)
    print("  " + format_metrics(result.metrics))

    post_cts = out_dir / f"{design.name}_post_cts.def"
    post_cts.write_text(tree_to_def_snippet(result.tree))
    print(f"Post-CTS components and clock net written to {post_cts}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

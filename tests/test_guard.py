"""The guarded flow: validation, anomaly detection, fault injection.

Three layers under test:

* input validation at flow entry (bad designs, PDKs, and corner sets are
  rejected with every problem listed),
* the stage-anomaly probes (each corruption class is detected on a live
  tree),
* the full fault-injection matrix: with a fault armed at a chosen stage the
  ``strict`` policy raises a :class:`GuardError` naming that stage, the
  ``degrade`` policy completes with a recorded diagnostic and a final tree
  bit-identical to an all-reference-backend run, and ``off`` reproduces the
  unguarded behaviour, corruption included.
"""

from __future__ import annotations

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.clocktree.node import ClockTreeNode, NodeKind
from repro.flow import BackendSelection, CtsConfig, DoubleSideCTS
from repro.guard import (
    GuardError,
    StageFault,
    clock_net_problems,
    corner_problems,
    design_fingerprint,
    edit_log_anomaly,
    insertion_anomaly,
    metrics_anomaly,
    pdk_problems,
    stage_anomaly,
    timing_anomaly,
    validate_flow_inputs,
)
from repro.guard.faults import (
    drop_edit_log_entry,
    drop_sink,
    duplicate_node_name,
    flip_wire_side,
    poke_nan_capacitance,
    poke_nan_location,
    poke_negative_capacitance,
)
from repro.netlist import ClockNet, ClockSink, ClockSource
from repro.geometry import Point
from repro.routing.hierarchical import HierarchicalClockRouter
from repro.tech import CornerSet
from repro.tech.corners import Scenario
from repro.tech.layers import MetalStack, Side
from repro.tech.nldm import NldmTable
from tests.conftest import make_random_clock_net
from tests.harness import assert_clock_trees_identical

ALL_REFERENCE = {
    "timing_engine": "reference",
    "dp_backend": "reference",
    "dme_backend": "reference",
}


def run_guarded(pdk, clock_net, faults=(), **config_kwargs):
    """The harness flow configuration plus guard faults."""
    config = CtsConfig(high_cluster_size=40, low_cluster_size=6, seed=7, **config_kwargs)
    return DoubleSideCTS(pdk, config, guard_faults=faults).run(clock_net)


def small_net(count: int = 40, seed: int = 5) -> ClockNet:
    return make_random_clock_net(count=count, extent=120.0, seed=seed)


# ----------------------------------------------------------- input validation
class TestInputValidation:
    def test_clean_inputs_pass(self, pdk):
        validate_flow_inputs(small_net(), pdk, corners=CornerSet.signoff())

    def test_no_sinks(self):
        net = ClockNet(
            name="empty", source=ClockSource("root", Point(0.0, 0.0)), sinks=[]
        )
        assert any("no sinks" in p for p in clock_net_problems(net))

    def test_duplicate_sink_names(self):
        net = small_net()
        # The ClockNet constructor rejects duplicates, so corrupt a built net
        # the way a buggy reader would: append a second sink with a taken name.
        net.sinks.append(replace(net.sinks[0], location=Point(1.0, 2.0)))
        assert any("duplicate sink name" in p for p in clock_net_problems(net))

    def test_nan_sink_location(self):
        net = small_net()
        object.__setattr__(net.sinks[3], "location", Point(float("nan"), 0.0))
        problems = clock_net_problems(net)
        assert any("location is not finite" in p for p in problems)

    def test_non_positive_sink_cap(self):
        net = small_net()
        object.__setattr__(net.sinks[0], "capacitance", 0.0)
        object.__setattr__(net.sinks[1], "capacitance", float("inf"))
        problems = clock_net_problems(net)
        assert sum("capacitance" in p for p in problems) == 2

    def test_nan_source_drive(self):
        net = small_net()
        object.__setattr__(net.source, "drive_resistance", float("nan"))
        assert any("drive resistance" in p for p in clock_net_problems(net))

    def test_clean_pdk_passes(self, pdk):
        assert pdk_problems(pdk) == []

    def test_nldm_with_inf_entry(self, pdk):
        bad_table = NldmTable.from_arrays(
            [1.0, 2.0], [1.0, 2.0], [[1.0, float("inf")], [2.0, 3.0]]
        )
        bad_pdk = pdk.with_buffer(replace(pdk.buffer, nldm_delay=bad_table))
        problems = pdk_problems(bad_pdk)
        assert any("table entries are not finite" in p for p in problems)

    def test_nan_unit_resistance(self, pdk):
        # LayerRC's own `<= 0` check rejects negatives at construction but
        # lets NaN through — the guard closes that gap.
        layers = [replace(layer, unit_resistance=float("nan")) for layer in pdk.stack]
        bad_pdk = replace(pdk, stack=MetalStack(layers))
        assert any("unit_resistance" in p for p in pdk_problems(bad_pdk))

    def test_nan_corner_scale(self):
        # Scenario's own __post_init__ only rejects `<= 0`, so a NaN scale
        # sails through construction — exactly what the guard must catch.
        corners = CornerSet(
            (Scenario("bad", wire_res_scale=float("nan"), wire_cap_scale=1.0),)
        )
        assert any("wire_res_scale" in p for p in corner_problems(corners))

    def test_validate_raises_guard_error_listing_all_problems(self, pdk):
        net = small_net()
        object.__setattr__(net.sinks[0], "capacitance", -1.0)
        object.__setattr__(net.sinks[1], "location", Point(float("inf"), 0.0))
        with pytest.raises(GuardError) as err:
            validate_flow_inputs(net, pdk)
        assert err.value.stage == "inputs"
        assert "capacitance" in err.value.anomaly
        assert "location" in err.value.anomaly
        assert err.value.fingerprint == design_fingerprint(net)

    def test_flow_entry_validation_under_strict(self, pdk):
        net = small_net()
        object.__setattr__(net.sinks[0], "capacitance", float("nan"))
        with pytest.raises(GuardError) as err:
            run_guarded(pdk, net, guard="strict")
        assert err.value.stage == "inputs"

    def test_flow_entry_validation_skipped_when_off(self, pdk):
        # Same invalid input, no guard: the NaN capacitance flows into the
        # insertion DP and dies deep inside a kernel with an obscure error —
        # the before picture the "inputs" GuardError replaces.
        net = small_net()
        object.__setattr__(net.sinks[0], "capacitance", float("nan"))
        with pytest.raises(RuntimeError) as err:
            run_guarded(pdk, net, guard="off")
        assert not isinstance(err.value, GuardError)

    def test_fingerprint_is_stable_and_input_sensitive(self):
        net_a = small_net(seed=5)
        net_b = small_net(seed=6)
        assert design_fingerprint(net_a) == design_fingerprint(small_net(seed=5))
        assert design_fingerprint(net_a) != design_fingerprint(net_b)
        assert len(design_fingerprint(net_a)) == 12


# ------------------------------------------------------------ stage anomalies
class TestStageAnomalies:
    @pytest.fixture()
    def routed(self, pdk):
        net = small_net()
        tree = (
            HierarchicalClockRouter(pdk, high_cluster_size=40, low_cluster_size=6, seed=7)
            .route(net)
            .tree
        )
        return net, tree

    def test_clean_tree_has_no_anomaly(self, routed):
        net, tree = routed
        assert stage_anomaly(tree, net) is None

    @pytest.mark.parametrize(
        "injector, expected",
        [
            (poke_nan_capacitance, "non-finite"),
            (poke_negative_capacitance, "negative"),
            (poke_nan_location, "non-finite"),
            (drop_sink, "sink preservation violated"),
            (drop_edit_log_entry, "edit log incoherent"),
            (duplicate_node_name, "invariant violation"),
            (flip_wire_side, "invariant violation"),
        ],
        ids=lambda arg: getattr(arg, "__name__", str(arg)),
    )
    def test_each_corruption_is_detected(self, routed, injector, expected):
        net, tree = routed
        injector(tree)
        anomaly = stage_anomaly(tree, net)
        assert anomaly is not None and expected in anomaly

    # The fused probe owns the structural checks that ClockTree.validate()
    # also performs; corrupt each invariant directly to pin every branch.
    def test_broken_parent_link(self, routed):
        net, tree = routed
        child = tree.root.children[0]
        child.parent = child  # root no longer the recorded parent
        anomaly = stage_anomaly(tree, net)
        assert anomaly is not None and "broken parent link" in anomaly

    def test_cycle_detected(self, routed):
        net, tree = routed
        leaf = tree.sinks()[0]
        leaf.children.append(tree.root)
        tree.root.parent = leaf
        anomaly = stage_anomaly(tree, net)
        assert anomaly is not None and "cycle detected" in anomaly

    def test_sink_on_back_side(self, routed):
        net, tree = routed
        tree.sinks()[0].side = Side.BACK
        anomaly = stage_anomaly(tree, net)
        assert anomaly is not None and "back side" in anomaly

    def test_child_wire_disagrees_with_node_side(self, routed):
        net, tree = routed
        # Flip a leaf's wire under a same-side parent: the shared-vertex
        # check must flag it (the nTSV checks have their own messages).
        leaf = next(s for s in tree.sinks() if not s.parent.is_ntsv)
        leaf.wire_side = leaf.wire_side.opposite
        anomaly = stage_anomaly(tree, net)
        assert anomaly is not None and "touches a wire on side" in anomaly

    def test_ghost_find_index_entry(self, routed):
        net, tree = routed
        name = tree.sinks()[0].name
        tree.find(name)  # build the cache
        ghost = ClockTreeNode(name, NodeKind.SINK, Point(1.0, 1.0), capacitance=1.0)
        ghost.parent = tree.root  # reaches the root, but is nobody's child
        tree._find_cache[name] = ghost
        anomaly = stage_anomaly(tree, net)
        assert anomaly is not None and "find() index incoherent" in anomaly


class TestEditLogProbe:
    """Branch coverage of the edit-log coherence probe on a live tree."""

    @pytest.fixture()
    def tree(self, pdk):
        net = small_net()
        return (
            HierarchicalClockRouter(pdk, high_cluster_size=40, low_cluster_size=6, seed=7)
            .route(net)
            .tree
        )

    def test_clean_log_passes(self, tree):
        assert edit_log_anomaly(tree) is None

    def test_unknown_edit_kind(self, tree):
        tree._edits.append((tree.version + 1, "bogus", None))
        assert "unknown edit kind" in edit_log_anomaly(tree)

    def test_versions_not_increasing(self, tree):
        tree.touch()
        tree._edits.append((1, "touch", None))
        assert "versions not strictly increasing" in edit_log_anomaly(tree)

    def test_splice_entry_without_node(self, tree):
        tree._edits.append((tree.version + 1, "splice", None))
        assert "names no node" in edit_log_anomaly(tree)

    def test_emptied_log_on_edited_tree(self, tree):
        tree.touch()
        tree._edits.clear()
        assert "empty log" in edit_log_anomaly(tree)


class TestResultProbes:
    """The numeric result probes (timing, insertion, metrics)."""

    @staticmethod
    def timing(arrivals):
        return SimpleNamespace(arrivals=arrivals)

    def test_timing_clean_and_none(self):
        assert timing_anomaly(None) is None
        assert timing_anomaly(self.timing({"a": 1.0, "b": 2.0})) is None

    def test_timing_non_finite(self):
        anomaly = timing_anomaly(self.timing({"a": float("nan"), "b": 2.0}))
        assert "non-finite" in anomaly and "'a'" in anomaly

    def test_timing_negative(self):
        anomaly = timing_anomaly(self.timing({"a": -1.0, "b": 2.0}))
        assert "negative" in anomaly

    def test_insertion_negative_resources(self):
        result = SimpleNamespace(
            timing=self.timing({"a": 1.0}),
            timing_per_corner={"ss": self.timing({"a": 1.0})},
            inserted_buffers=-1,
            inserted_ntsvs=0,
        )
        assert "negative resource counts" in insertion_anomaly(result)

    def test_insertion_corner_anomaly_is_labelled(self):
        result = SimpleNamespace(
            timing=self.timing({"a": 1.0}),
            timing_per_corner={"ss": self.timing({"a": float("inf")})},
            inserted_buffers=1,
            inserted_ntsvs=0,
        )
        assert "corner ss" in insertion_anomaly(result)

    @staticmethod
    def metrics(**overrides):
        base = dict(
            latency=10.0,
            skew=1.0,
            wirelength=100.0,
            front_wirelength=60.0,
            back_wirelength=40.0,
            corner_skews={"ss": 1.5},
            corner_latencies={"ss": 12.0},
        )
        base.update(overrides)
        return SimpleNamespace(**base)

    def test_metrics_clean(self):
        assert metrics_anomaly(self.metrics()) is None

    def test_metrics_nan_latency(self):
        assert "latency" in metrics_anomaly(self.metrics(latency=float("nan")))

    def test_metrics_bad_corner_value(self):
        anomaly = metrics_anomaly(self.metrics(corner_skews={"ss": float("-inf")}))
        assert "corner ss" in anomaly


# --------------------------------------------------------- policy resolution
class TestGuardedFlowPolicies:
    def test_default_policy_is_off(self, pdk, monkeypatch):
        # The CI matrix pre-sets REPRO_GUARD; the built-in default is what
        # an unconfigured environment gets.
        monkeypatch.delenv("REPRO_GUARD", raising=False)
        result = run_guarded(pdk, small_net())
        assert result.guard_policy == "off"
        assert result.guard_diagnostics == []
        assert not result.degraded

    def test_env_var_selects_policy(self, pdk, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "degrade")
        result = run_guarded(pdk, small_net())
        assert result.guard_policy == "degrade"

    def test_config_beats_env(self, pdk, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "strict")
        result = run_guarded(pdk, small_net(), guard="degrade")
        assert result.guard_policy == "degrade"

    def test_unknown_policy_rejected(self, pdk):
        with pytest.raises(ValueError, match="guard policy"):
            run_guarded(pdk, small_net(), guard="lenient")

    def test_degrade_clean_run_identical_to_off(self, pdk):
        net = small_net()
        off = run_guarded(pdk, net, guard="off")
        degraded = run_guarded(pdk, net, guard="degrade")
        assert degraded.guard_diagnostics == []
        assert_clock_trees_identical(off.tree, degraded.tree)

    def test_strict_clean_run_passes(self, pdk):
        result = run_guarded(pdk, small_net(), guard="strict")
        assert result.guard_diagnostics == []


# ------------------------------------------------------ fault-injection matrix
#: (stage, injector) pairs covering every guarded mutating stage with both
#: numeric and structural corruption classes.
FAULT_CASES = [
    ("routing", poke_nan_capacitance),
    ("routing", flip_wire_side),
    ("routing", drop_sink),
    ("insertion", poke_nan_location),
    ("insertion", drop_edit_log_entry),
    ("insertion", poke_negative_capacitance),
    ("refinement", duplicate_node_name),
    ("refinement", poke_nan_capacitance),
]


def fault_id(case) -> str:
    stage, injector = case
    return f"{stage}-{injector.__name__}"


@pytest.mark.parametrize("case", FAULT_CASES, ids=fault_id)
class TestFaultInjectionMatrix:
    def test_strict_raises_naming_the_stage(self, pdk, case):
        stage, injector = case
        net = small_net()
        with pytest.raises(GuardError) as err:
            run_guarded(pdk, net, faults=[StageFault(stage, injector)], guard="strict")
        assert err.value.stage == stage
        assert err.value.fingerprint == design_fingerprint(net)
        assert stage in str(err.value)

    def test_degrade_recovers_bit_identical_to_all_reference(self, pdk, case):
        stage, injector = case
        net = small_net()
        degraded = run_guarded(
            pdk, net, faults=[StageFault(stage, injector)], guard="degrade"
        )
        stages = [d.stage for d in degraded.guard_diagnostics]
        assert stage in stages
        diagnostic = degraded.guard_diagnostics[stages.index(stage)]
        assert diagnostic.action == "degraded"
        assert diagnostic.backend == "reference"
        assert diagnostic.anomaly
        assert degraded.degraded
        # The recovered stage ran on the reference backend, and every later
        # stage consumed its output — from the faulted stage on, the tree is
        # the all-reference tree, bit for bit.
        reference = run_guarded(pdk, net, guard="off", **ALL_REFERENCE)
        if stage == "routing":
            assert_clock_trees_identical(degraded.tree, reference.tree)


class TestDegradeSemantics:
    def test_routing_degrade_matches_reference_everything_downstream(self, pdk):
        # A routing fault degrades routing to the reference DME; insertion
        # and refinement then run their (healthy) vectorized backends, which
        # are decision-identical to the reference — so the full tree matches
        # the all-reference run exactly.
        net = small_net()
        degraded = run_guarded(
            pdk,
            net,
            faults=[StageFault("routing", poke_nan_capacitance)],
            guard="degrade",
        )
        reference = run_guarded(pdk, net, guard="off", **ALL_REFERENCE)
        assert_clock_trees_identical(degraded.tree, reference.tree)

    def test_off_with_fault_is_silently_corrupt(self, pdk):
        # The unguarded flow must exhibit the injected bug: a dropped sink
        # ships a tree that misses one flip-flop, with no diagnostics.
        net = small_net()
        result = run_guarded(
            pdk, net, faults=[StageFault("insertion", drop_sink)], guard="off"
        )
        assert result.guard_diagnostics == []
        sink_count = sum(1 for node in result.tree.nodes() if node.is_sink)
        assert sink_count == len(net.sinks) - 1

    def test_off_without_faults_matches_plain_run(self, pdk):
        net = small_net()
        plain = run_guarded(pdk, net)
        off = run_guarded(pdk, net, guard="off", faults=())
        assert_clock_trees_identical(plain.tree, off.tree)
        assert plain.metrics.skew == off.metrics.skew

    def test_diagnostics_carry_the_design_fingerprint(self, pdk):
        net = small_net()
        degraded = run_guarded(
            pdk,
            net,
            faults=[StageFault("insertion", poke_nan_capacitance)],
            guard="degrade",
        )
        assert all(
            d.fingerprint == design_fingerprint(net) for d in degraded.guard_diagnostics
        )


# --------------------------------------------- IR-path fault-injection matrix
def run_guarded_ir(pdk, clock_net, faults=(), guard=None, all_reference=False):
    """The guarded flow on the IR-native representation."""
    backends = BackendSelection(
        timing="reference" if all_reference else None,
        dp="reference" if all_reference else None,
        dme="reference" if all_reference else None,
        guard=guard,
        representation="ir",
    )
    config = CtsConfig(
        high_cluster_size=40, low_cluster_size=6, seed=7, backends=backends
    )
    return DoubleSideCTS(pdk, config, guard_faults=faults).run(clock_net)


#: Every guarded mutating stage of the IR pipeline crossed with structural
#: and numeric corruption classes — the injectors are polymorphic and write
#: straight into the persistent :class:`DesignArrays` columns.
IR_FAULT_CASES = [
    ("routing", poke_nan_capacitance),
    ("routing", drop_sink),
    ("insertion", poke_nan_location),
    ("insertion", duplicate_node_name),
    ("insertion", drop_edit_log_entry),
    ("refinement", flip_wire_side),
    ("refinement", poke_negative_capacitance),
]


@pytest.mark.parametrize("case", IR_FAULT_CASES, ids=fault_id)
class TestIrFaultInjectionMatrix:
    """The guard semantics carry over to the IR-native flow path.

    Unlike the object path (which *replays* earlier stages to rebuild the
    pre-stage tree), the IR path restores the pre-stage design snapshot and
    re-runs only the faulted stage on the reference backends — so for every
    stage the recovered tree is bit-identical to an all-reference IR run.
    """

    def test_strict_raises_naming_the_stage(self, pdk, case):
        stage, injector = case
        net = small_net()
        with pytest.raises(GuardError) as err:
            run_guarded_ir(
                pdk, net, faults=[StageFault(stage, injector)], guard="strict"
            )
        assert err.value.stage == stage
        assert err.value.fingerprint == design_fingerprint(net)

    def test_degrade_recovers_bit_identical_to_all_reference(self, pdk, case):
        stage, injector = case
        net = small_net()
        degraded = run_guarded_ir(
            pdk, net, faults=[StageFault(stage, injector)], guard="degrade"
        )
        stages = [d.stage for d in degraded.guard_diagnostics]
        assert stage in stages
        diagnostic = degraded.guard_diagnostics[stages.index(stage)]
        assert diagnostic.action == "degraded"
        assert diagnostic.backend == "reference"
        assert degraded.degraded
        reference = run_guarded_ir(pdk, net, all_reference=True)
        assert_clock_trees_identical(degraded.tree, reference.tree)


class TestIrGuardSemantics:
    def test_clean_ir_run_under_degrade_matches_off(self, pdk):
        net = small_net()
        off = run_guarded_ir(pdk, net, guard="off")
        degraded = run_guarded_ir(pdk, net, guard="degrade")
        assert degraded.guard_diagnostics == []
        assert_clock_trees_identical(off.tree, degraded.tree)

    def test_ir_off_with_fault_is_silently_corrupt(self, pdk):
        net = small_net()
        result = run_guarded_ir(
            pdk, net, faults=[StageFault("insertion", drop_sink)], guard="off"
        )
        assert result.guard_diagnostics == []
        assert result.design.sink_rows().size == len(net.sinks) - 1

    def test_ir_degrade_matches_object_degrade(self, pdk):
        # The two representations degrade to the same final tree.
        net = small_net()
        fault = [StageFault("insertion", poke_nan_capacitance)]
        via_ir = run_guarded_ir(pdk, net, faults=fault, guard="degrade")
        via_object = run_guarded(pdk, net, faults=fault, guard="degrade")
        assert via_ir.degraded and via_object.degraded
        assert_clock_trees_identical(via_ir.tree, via_object.tree)

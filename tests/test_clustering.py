"""Unit tests for K-means and the dual-level clustering of Section III-B."""

import numpy as np
import pytest

from repro.clustering import KMeans, dual_level_clustering
from repro.geometry import Point
from repro.netlist import ClockSink


def blob_points(seed=0, clusters=4, per_cluster=50, spread=2.0, pitch=100.0):
    rng = np.random.default_rng(seed)
    points = []
    for i in range(clusters):
        cx, cy = (i % 2) * pitch, (i // 2) * pitch
        points.append(rng.normal([cx, cy], spread, size=(per_cluster, 2)))
    return np.vstack(points)


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        pts = blob_points()
        result = KMeans(n_clusters=4, seed=1).fit(pts)
        assert result.cluster_count == 4
        sizes = result.cluster_sizes()
        assert sorted(sizes.tolist()) == [50, 50, 50, 50]

    def test_deterministic_for_fixed_seed(self):
        pts = blob_points(seed=3)
        a = KMeans(n_clusters=4, seed=9).fit(pts)
        b = KMeans(n_clusters=4, seed=9).fit(pts)
        assert np.array_equal(a.labels, b.labels)
        assert np.allclose(a.centroids, b.centroids)

    def test_more_clusters_than_points_degrades_gracefully(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = KMeans(n_clusters=10, seed=0).fit(pts)
        assert result.cluster_count == 2

    def test_single_cluster(self):
        pts = blob_points(clusters=1)
        result = KMeans(n_clusters=1, seed=0).fit(pts)
        assert result.cluster_count == 1
        assert result.cluster_sizes()[0] == len(pts)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=2).fit(np.empty((0, 2)))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=2).fit(np.zeros((5, 3)))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError):
            KMeans(n_clusters=2, max_iterations=0)

    def test_max_cluster_size_respected(self):
        pts = blob_points(per_cluster=40)
        result = KMeans(n_clusters=8, seed=5, max_cluster_size=25).fit(pts)
        assert int(result.cluster_sizes().max()) <= 25

    def test_max_cluster_size_infeasible_rejected(self):
        pts = blob_points(per_cluster=40)
        with pytest.raises(ValueError):
            KMeans(n_clusters=2, seed=5, max_cluster_size=10).fit(pts)

    def test_inertia_decreases_with_more_clusters(self):
        pts = blob_points()
        few = KMeans(n_clusters=2, seed=0).fit(pts)
        many = KMeans(n_clusters=8, seed=0).fit(pts)
        assert many.inertia < few.inertia

    def test_members_partition_all_points(self):
        pts = blob_points()
        result = KMeans(n_clusters=4, seed=0).fit(pts)
        all_members = np.concatenate(
            [result.members(c) for c in range(result.cluster_count)]
        )
        assert sorted(all_members.tolist()) == list(range(len(pts)))


def make_sinks(count, extent=200.0, seed=0):
    rng = np.random.default_rng(seed)
    return [
        ClockSink(
            f"ff_{i}",
            Point(float(rng.uniform(0, extent)), float(rng.uniform(0, extent))),
            0.8,
        )
        for i in range(count)
    ]


class TestDualLevelClustering:
    def test_partition_covers_every_sink(self):
        sinks = make_sinks(400)
        clustering = dual_level_clustering(sinks, high_size=200, low_size=20, seed=1)
        assert clustering.sink_count == 400
        names = [s.name for c in clustering.low_clusters for s in c.sinks]
        assert sorted(names) == sorted(s.name for s in sinks)

    def test_cluster_counts_match_targets(self):
        sinks = make_sinks(600)
        clustering = dual_level_clustering(sinks, high_size=200, low_size=30, seed=1)
        assert len(clustering.high_clusters) == 3
        assert len(clustering.low_clusters) >= 600 // 30

    def test_low_cluster_sizes_near_target(self):
        sinks = make_sinks(300)
        clustering = dual_level_clustering(sinks, high_size=300, low_size=30, seed=2)
        assert max(c.size for c in clustering.low_clusters) <= 32

    def test_low_clusters_point_to_existing_high_cluster(self):
        sinks = make_sinks(250)
        clustering = dual_level_clustering(sinks, high_size=100, low_size=10, seed=3)
        high_indices = {c.index for c in clustering.high_clusters}
        assert all(c.parent_index in high_indices for c in clustering.low_clusters)

    def test_centroid_is_mean_of_members(self):
        sinks = make_sinks(60)
        clustering = dual_level_clustering(sinks, high_size=60, low_size=60, seed=4)
        cluster = clustering.low_clusters[0]
        mean_x = sum(s.location.x for s in cluster.sinks) / cluster.size
        assert cluster.centroid.x == pytest.approx(mean_x)

    def test_single_sink(self):
        clustering = dual_level_clustering([ClockSink("ff", Point(1, 1), 1.0)])
        assert len(clustering.high_clusters) == 1
        assert len(clustering.low_clusters) == 1
        assert clustering.low_clusters[0].size == 1

    def test_small_design_uses_paper_defaults(self):
        sinks = make_sinks(100)
        clustering = dual_level_clustering(sinks)  # Hc=3000, Lc=30
        assert len(clustering.high_clusters) == 1
        assert 3 <= len(clustering.low_clusters) <= 5

    def test_invalid_arguments_rejected(self):
        sinks = make_sinks(10)
        with pytest.raises(ValueError):
            dual_level_clustering([], high_size=10, low_size=5)
        with pytest.raises(ValueError):
            dual_level_clustering(sinks, high_size=10, low_size=20)
        with pytest.raises(ValueError):
            dual_level_clustering(sinks, high_size=0, low_size=0)

    def test_total_capacitance_and_wirelength(self):
        sinks = make_sinks(50)
        clustering = dual_level_clustering(sinks, high_size=50, low_size=10, seed=5)
        total_cap = sum(c.total_capacitance for c in clustering.low_clusters)
        assert total_cap == pytest.approx(sum(s.capacitance for s in sinks))
        assert clustering.total_leaf_wirelength() > 0

    def test_deterministic(self):
        sinks = make_sinks(200)
        a = dual_level_clustering(sinks, high_size=100, low_size=10, seed=11)
        b = dual_level_clustering(sinks, high_size=100, low_size=10, seed=11)
        assert [c.size for c in a.low_clusters] == [c.size for c in b.low_clusters]

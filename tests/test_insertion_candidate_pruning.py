"""Unit tests for DP candidates, dominance pruning, and MOES selection."""

import pytest

from repro.insertion import (
    CandidateSolution,
    MoesWeights,
    filter_max_cap,
    prune_dominated,
    prune_per_side,
    select_by_moes,
    select_min_latency,
)
from repro.insertion.moes import pareto_front
from repro.insertion.patterns import P_BUFFER
from repro.tech.layers import Side


def cand(side=Side.FRONT, cap=10.0, dmax=50.0, dmin=None, buffers=0, ntsvs=0):
    return CandidateSolution(
        up_side=side,
        capacitance=cap,
        max_delay=dmax,
        min_delay=dmin if dmin is not None else dmax,
        buffer_count=buffers,
        ntsv_count=ntsvs,
    )


class TestCandidateSolution:
    def test_skew_and_resources(self):
        c = cand(dmax=50.0, dmin=30.0, buffers=2, ntsvs=3)
        assert c.skew == 20.0
        assert c.resource_count == 5

    def test_invalid_candidates_rejected(self):
        with pytest.raises(ValueError):
            cand(cap=-1.0)
        with pytest.raises(ValueError):
            CandidateSolution(Side.FRONT, 1.0, max_delay=1.0, min_delay=2.0)
        with pytest.raises(ValueError):
            cand(buffers=-1)

    def test_dominance(self):
        better = cand(cap=5.0, dmax=10.0)
        worse = cand(cap=6.0, dmax=12.0)
        assert better.dominates(worse)
        assert better.strictly_dominates(worse)
        assert not worse.dominates(better)

    def test_equal_candidates_dominate_but_not_strictly(self):
        a, b = cand(), cand()
        assert a.dominates(b)
        assert not a.strictly_dominates(b)

    def test_with_pattern_accumulates_resources(self):
        base = cand(buffers=1, ntsvs=1)
        derived = base.with_pattern(
            P_BUFFER, capacitance=2.0, max_delay=60.0, min_delay=55.0,
            added_buffers=1, added_ntsvs=0,
        )
        assert derived.buffer_count == 2
        assert derived.ntsv_count == 1
        assert derived.pattern is P_BUFFER
        assert derived.children == (base,)

    def test_merge_requires_matching_sides(self):
        with pytest.raises(ValueError):
            CandidateSolution.merge(cand(side=Side.FRONT), cand(side=Side.BACK))

    def test_merge_combines_worst_case(self):
        a = cand(cap=3.0, dmax=40.0, dmin=20.0, buffers=1)
        b = cand(cap=4.0, dmax=50.0, dmin=30.0, ntsvs=2)
        merged = CandidateSolution.merge(a, b)
        assert merged.capacitance == 7.0
        assert merged.max_delay == 50.0
        assert merged.min_delay == 20.0
        assert merged.buffer_count == 1
        assert merged.ntsv_count == 2
        assert merged.children == (a, b)


class TestPruning:
    def test_filter_max_cap(self):
        pool = [cand(cap=10.0), cand(cap=70.0)]
        kept = filter_max_cap(pool, 60.0)
        assert len(kept) == 1
        assert kept[0].capacitance == 10.0

    def test_filter_max_cap_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            filter_max_cap([], 0.0)

    def test_prune_dominated_keeps_staircase(self):
        pool = [
            cand(cap=1.0, dmax=100.0),
            cand(cap=5.0, dmax=50.0),
            cand(cap=10.0, dmax=20.0),
            cand(cap=6.0, dmax=60.0),   # dominated by (5, 50)
            cand(cap=12.0, dmax=25.0),  # dominated by (10, 20)
        ]
        kept = prune_dominated(pool)
        assert len(kept) == 3
        caps = sorted(c.capacitance for c in kept)
        assert caps == [1.0, 5.0, 10.0]

    def test_prune_dominated_empty(self):
        assert prune_dominated([]) == []

    def test_resource_diversity_keeps_cheaper_dominated_candidates(self):
        pool = [
            cand(cap=1.0, dmax=10.0, buffers=5),
            cand(cap=2.0, dmax=20.0, buffers=0),  # dominated but much cheaper
        ]
        strict = prune_dominated(pool, keep_resource_diversity=False)
        diverse = prune_dominated(pool, keep_resource_diversity=True)
        assert len(strict) == 1
        assert len(diverse) == 2

    def test_prune_per_side_groups_by_side(self):
        pool = [
            cand(side=Side.FRONT, cap=1.0, dmax=10.0),
            cand(side=Side.BACK, cap=2.0, dmax=50.0),
            cand(side=Side.BACK, cap=3.0, dmax=60.0),  # dominated within BACK
        ]
        kept = prune_per_side(pool)
        sides = [c.up_side for c in kept]
        assert sides.count(Side.FRONT) == 1
        assert sides.count(Side.BACK) == 1

    def test_prune_per_side_applies_cap_limit(self):
        pool = [cand(cap=100.0, dmax=1.0), cand(cap=10.0, dmax=5.0)]
        kept = prune_per_side(pool, max_capacitance=60.0)
        assert len(kept) == 1 and kept[0].capacitance == 10.0

    def test_beam_width_limits_candidates(self):
        pool = [cand(cap=float(i), dmax=100.0 - i) for i in range(20)]
        kept = prune_per_side(pool, max_candidates_per_side=5)
        assert len(kept) == 5
        # The beam samples the staircase: both extremes survive so that
        # upstream nodes can still buffer (low cap) or go fast (low delay).
        assert min(c.capacitance for c in kept) == 0.0
        assert min(c.max_delay for c in kept) == 81.0

    def test_beam_width_one_keeps_fastest(self):
        pool = [cand(cap=float(i), dmax=100.0 - i) for i in range(10)]
        kept = prune_per_side(pool, max_candidates_per_side=1)
        assert len(kept) == 1
        assert kept[0].max_delay == 91.0


class TestSelection:
    def test_moes_weights_validation(self):
        with pytest.raises(ValueError):
            MoesWeights(alpha=-1)
        with pytest.raises(ValueError):
            MoesWeights(alpha=0, beta=0, gamma=0)

    def test_moes_score_matches_eq3(self):
        weights = MoesWeights(alpha=1.0, beta=10.0, gamma=1.0)
        c = cand(dmax=100.0, buffers=3, ntsvs=7)
        assert weights.score(c) == pytest.approx(100 + 30 + 7)

    def test_select_by_moes_prefers_cheap_solution(self):
        expensive_fast = cand(dmax=90.0, buffers=20, ntsvs=50)
        cheap_slightly_slower = cand(dmax=100.0, buffers=5, ntsvs=5)
        chosen = select_by_moes([expensive_fast, cheap_slightly_slower])
        assert chosen is cheap_slightly_slower

    def test_select_min_latency_ignores_resources(self):
        expensive_fast = cand(dmax=90.0, buffers=20, ntsvs=50)
        cheap_slightly_slower = cand(dmax=100.0, buffers=5, ntsvs=5)
        chosen = select_min_latency([expensive_fast, cheap_slightly_slower])
        assert chosen is expensive_fast

    def test_min_latency_tie_break_on_resources(self):
        a = cand(dmax=90.0, buffers=9)
        b = cand(dmax=90.0, buffers=2)
        assert select_min_latency([a, b]) is b

    def test_selection_from_empty_set_rejected(self):
        with pytest.raises(ValueError):
            select_by_moes([])
        with pytest.raises(ValueError):
            select_min_latency([])

    def test_pareto_front(self):
        a = cand(dmax=100.0, buffers=1, ntsvs=1)
        b = cand(dmax=90.0, buffers=2, ntsvs=1)
        c = cand(dmax=95.0, buffers=3, ntsvs=2)  # dominated by b
        front = pareto_front([a, b, c])
        assert a in front and b in front and c not in front


class TestResourceDiversityRule:
    """The dominator-relative resource-diversity rule (one rule, both DP
    backends): a dominated candidate survives iff its resource count is
    strictly below the minimum resource count among the kept candidates
    that actually dominate it."""

    def test_non_dominating_cheap_keeper_does_not_veto_survival(self):
        # c1 (delay 10, 0 resources) does NOT dominate c3 (delay 6): only
        # c2 (delay 5, 4 resources) does.  c3 uses 2 < 4 resources, so the
        # rule keeps it — the old min-over-all-kept bound (0) wrongly
        # dropped it.
        c1 = cand(cap=1.0, dmax=10.0)
        c2 = cand(cap=2.0, dmax=5.0, buffers=4)
        c3 = cand(cap=3.0, dmax=6.0, buffers=2)
        kept = prune_dominated([c1, c2, c3], keep_resource_diversity=True)
        assert c3 in kept
        assert kept == [c1, c2, c3]

    def test_candidate_matching_dominator_resources_still_dies(self):
        c1 = cand(cap=1.0, dmax=5.0, buffers=2)
        c2 = cand(cap=2.0, dmax=6.0, buffers=2)  # dominated, equal resources
        kept = prune_dominated([c1, c2], keep_resource_diversity=True)
        assert kept == [c1]

    def test_corner_aware_floor_is_dominator_relative(self):
        def corner_cand(caps, dmaxs, buffers=0):
            return CandidateSolution(
                up_side=Side.FRONT,
                capacitance=caps[0],
                max_delay=dmaxs[0],
                min_delay=0.0,
                buffer_count=buffers,
                corner_capacitance=caps,
                corner_max_delay=dmaxs,
                corner_min_delay=(0.0,) * len(caps),
            )

        # b is kept (wins corner 1 against a) and cheap, but does NOT
        # vector-dominate c; only a (4 buffers) does.  c survives on the
        # dominator-relative floor, where the stale min-over-kept bound
        # (b's 0 resources) would have pruned it.
        a = corner_cand((1.0, 1.0), (5.0, 5.0), buffers=4)
        b = corner_cand((2.0, 2.0), (9.0, 2.0), buffers=0)
        c = corner_cand((3.0, 3.0), (6.0, 6.0), buffers=2)
        assert a.dominates(c) and not b.dominates(c)
        kept = prune_dominated([a, b, c], keep_resource_diversity=True)
        assert kept == [a, b, c]
        # Without the diversity exception the vector-dominated c dies.
        assert prune_dominated([a, b, c]) == [a, b]

    def test_diversity_survivors_act_as_dominators_later(self):
        c1 = cand(cap=1.0, dmax=5.0, buffers=4)
        c2 = cand(cap=2.0, dmax=7.0, buffers=1)  # survives via diversity
        c3 = cand(cap=3.0, dmax=8.0, buffers=1)  # dominated by c2, equal cost
        kept = prune_dominated([c1, c2, c3], keep_resource_diversity=True)
        assert kept == [c1, c2]

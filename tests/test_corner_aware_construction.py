"""Differential and effectiveness tests for corner-aware construction.

Corner-aware construction moves the PVT corner batch from evaluation into
the optimisation loops themselves: the insertion DP propagates per-corner
(cap, delay) tuples and selects on worst-corner cost, and the skew
refinement accepts/rejects edits on worst-corner skew.  These tests pin the
two contracts that make that safe:

* **Engine equivalence** — the vectorized (batched) and reference
  (per-corner loop) engines must drive the optimizers to *identical*
  decisions, with candidate costs agreeing to 1e-9, including after random
  splice/rewire edit sequences served from the incremental path.
* **Executable spec** — the DP's per-corner cost tuples must equal what the
  reference engine's per-corner loop measures on the realised tree, i.e. the
  analytic corner cost model and ``scenario.apply_to`` timing are the same
  model.

Plus the effectiveness regression of the tentpole: corner-aware refinement
must reach a worst-corner skew no worse than nominal-optimised refinement on
the generated design suite, without regressing nominal skew past the
configured budget.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import benchmark_suite
from repro.flow import CtsConfig, DoubleSideCTS
from repro.insertion import ConcurrentInserter
from repro.insertion.candidate import CandidateSolution
from repro.insertion.patterns import PATTERNS
from repro.refinement import SkewRefiner
from repro.routing import HierarchicalClockRouter
from repro.tech import CornerSet
from repro.tech.layers import Side
from repro.timing import ElmoreTimingEngine, create_engine
from tests.conftest import make_random_clock_net
from tests.test_timing_vectorized import random_edit, random_tree

TOLERANCE = 1e-9

SIGNOFF = CornerSet.parse("tt,ss,ff,hot,cold")

ENGINES = ("reference", "vectorized")


def route(pdk, count=100, extent=140.0, seed=6):
    clock_net = make_random_clock_net(count=count, extent=extent, seed=seed)
    router = HierarchicalClockRouter(pdk, high_cluster_size=60, low_cluster_size=8)
    return router.route(clock_net)


def tree_shape(tree) -> list[tuple]:
    """A structural fingerprint: every node with its parent, kind and sides."""
    return sorted(
        (
            node.name,
            node.kind.value,
            node.side.value,
            node.wire_side.value,
            node.parent.name if node.parent is not None else "",
        )
        for node in tree.nodes()
    )


def refinement_edits(tree, before_names: set[str]) -> list[tuple]:
    """The endpoint edits a refinement made: (buffer parent, adopted sinks)."""
    return sorted(
        (
            node.parent.name,
            tuple(sorted(child.name for child in node.children)),
        )
        for node in tree.nodes()
        if node.name not in before_names
    )


# --------------------------------------------------------------- insertion DP
class TestCornerAwareInsertionDp:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_dp_corner_tuples_match_reference_engine_loop(self, pdk, engine):
        """The DP's per-corner cost prediction is the reference per-corner loop.

        For every corner of the batch, the selected candidate's corner tuple
        entry must equal the latency/min-arrival that the reference engine
        (one ``scenario.apply_to(pdk)`` analysis per corner — the executable
        spec) measures on the realised tree.
        """
        routed = route(pdk)
        result = ConcurrentInserter(pdk, engine=engine, corners=SIGNOFF).run(
            routed.tree
        )
        selected = result.selected
        reference = ElmoreTimingEngine(pdk, corners=SIGNOFF)
        per_corner = reference.analyze_corners(routed.tree, with_slew=False)
        for k, name in enumerate(reference.corners.names):
            assert selected.corner_max_delay[k] == pytest.approx(
                per_corner[name].latency, abs=TOLERANCE
            ), name
            assert selected.corner_min_delay[k] == pytest.approx(
                per_corner[name].min_arrival, abs=TOLERANCE
            ), name

    def test_engines_pick_identical_candidates(self, pdk):
        """Both engines must realise the same tree from the same DP run."""
        results = {}
        for engine in ENGINES:
            routed = route(pdk)
            results[engine] = ConcurrentInserter(
                pdk, engine=engine, corners=SIGNOFF
            ).run(routed.tree)
        ref, vec = results["reference"], results["vectorized"]
        assert ref.selected.corner_max_delay == pytest.approx(
            vec.selected.corner_max_delay, abs=TOLERANCE
        )
        assert ref.selected.corner_capacitance == pytest.approx(
            vec.selected.corner_capacitance, abs=TOLERANCE
        )
        assert ref.inserted_buffers == vec.inserted_buffers
        assert ref.inserted_ntsvs == vec.inserted_ntsvs
        assert tree_shape(ref.tree) == tree_shape(vec.tree)
        # And the final corner sign-off of the two runs agrees to 1e-9.
        for name in ref.timing_per_corner:
            assert ref.timing_per_corner[name].skew == pytest.approx(
                vec.timing_per_corner[name].skew, abs=TOLERANCE
            ), name

    def test_pattern_costs_match_per_corner_nominal_loop(self, pdk):
        """Corner tuple entry k of a pattern cost == nominal DP on corner k.

        This pins the corner cost model at the ``_apply_pattern`` level: the
        batched evaluation must be exactly the per-corner loop of nominal
        evaluations against each ``scenario.apply_to(pdk)`` technology.
        """
        corner_inserter = ConcurrentInserter(pdk, corners=SIGNOFF)
        corners = corner_inserter.corners
        corner_count = len(corners)
        base = CandidateSolution(
            up_side=Side.FRONT,
            capacitance=3.0,
            max_delay=5.0,
            min_delay=2.0,
            corner_capacitance=(3.0,) * corner_count,
            corner_max_delay=(5.0,) * corner_count,
            corner_min_delay=(2.0,) * corner_count,
        )
        nominal_base = CandidateSolution(
            up_side=Side.FRONT, capacitance=3.0, max_delay=5.0, min_delay=2.0
        )
        length = 37.0
        for pattern in PATTERNS:
            batched = corner_inserter._apply_pattern(pattern, length, base)
            for k, scenario in enumerate(corners):
                single = ConcurrentInserter(scenario.apply_to(pdk))._apply_pattern(
                    pattern, length, nominal_base
                )
                if batched is None:
                    assert single is None or not scenario.is_nominal
                    continue
                assert single is not None, (pattern.name, scenario.name)
                assert batched.corner_capacitance[k] == pytest.approx(
                    single.capacitance, abs=TOLERANCE
                ), (pattern.name, scenario.name)
                assert batched.corner_max_delay[k] == pytest.approx(
                    single.max_delay, abs=TOLERANCE
                ), (pattern.name, scenario.name)
                assert batched.corner_min_delay[k] == pytest.approx(
                    single.min_delay, abs=TOLERANCE
                ), (pattern.name, scenario.name)

    def test_scalar_fields_mirror_primary_corner(self, pdk):
        """Every root candidate's scalars equal its nominal tuple entries."""
        routed = route(pdk)
        result = ConcurrentInserter(pdk, corners=SIGNOFF).run(routed.tree)
        primary = SIGNOFF.nominal_index()
        for candidate in result.root_candidates:
            assert candidate.capacitance == candidate.corner_capacitance[primary]
            assert candidate.max_delay == candidate.corner_max_delay[primary]
            assert candidate.min_delay == candidate.corner_min_delay[primary]

    def test_max_cap_respected_at_every_corner(self, pdk):
        """The driven-load constraint is physical: it holds per corner."""
        routed = route(pdk)
        ConcurrentInserter(pdk, corners=SIGNOFF).run(routed.tree)
        for scenario in SIGNOFF:
            engine = ElmoreTimingEngine(scenario.apply_to(pdk))
            assert engine.max_capacitance_violations(routed.tree) == [], scenario.name

    def test_worst_corner_views_on_candidates(self, pdk):
        routed = route(pdk)
        result = ConcurrentInserter(pdk, corners=SIGNOFF).run(routed.tree)
        selected = result.selected
        assert selected.worst_max_delay == max(selected.corner_max_delay)
        assert selected.worst_capacitance == max(selected.corner_capacitance)
        assert selected.worst_max_delay >= selected.max_delay - TOLERANCE
        # Nominal-only candidates degrade to the scalar fields.
        nominal = CandidateSolution(
            up_side=Side.FRONT, capacitance=1.0, max_delay=4.0, min_delay=1.0
        )
        assert nominal.worst_max_delay == 4.0
        assert nominal.worst_capacitance == 1.0
        assert nominal.worst_skew == 3.0

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_engines_agree_on_random_nets(self, pdk, seed):
        rng = np.random.default_rng(seed)
        count = int(rng.integers(30, 80))
        results = {}
        for engine in ENGINES:
            routed = route(pdk, count=count, seed=seed % 1000)
            results[engine] = ConcurrentInserter(
                pdk, engine=engine, corners=SIGNOFF
            ).run(routed.tree)
        ref, vec = results["reference"], results["vectorized"]
        assert ref.selected.corner_max_delay == pytest.approx(
            vec.selected.corner_max_delay, abs=TOLERANCE
        )
        assert tree_shape(ref.tree) == tree_shape(vec.tree)
        # Executable spec: DP tuples == per-corner reference loop latencies.
        reference = ElmoreTimingEngine(pdk, corners=SIGNOFF)
        per_corner = reference.analyze_corners(ref.tree, with_slew=False)
        for k, name in enumerate(reference.corners.names):
            assert ref.selected.corner_max_delay[k] == pytest.approx(
                per_corner[name].latency, abs=TOLERANCE
            ), (seed, name)


# ------------------------------------------------------------ skew refinement
@pytest.fixture(scope="module")
def unrefined_tree(pdk, small_design, small_config):
    """A buffered but unrefined tree shared by the refinement tests."""
    config = small_config.with_updates(enable_skew_refinement=False)
    return DoubleSideCTS(pdk, config).run(small_design).tree


class TestCornerAwareRefinement:
    def test_engines_make_identical_edits(self, pdk, unrefined_tree):
        reports = {}
        trees = {}
        for engine in ENGINES:
            tree = unrefined_tree.copy()
            before_names = {node.name for node in tree.nodes()}
            reports[engine] = SkewRefiner(
                pdk,
                force=True,
                engine=engine,
                corners=SIGNOFF,
                nominal_skew_budget=2.0,
            ).refine(tree)
            trees[engine] = (tree, before_names)
        ref, vec = reports["reference"], reports["vectorized"]
        assert ref.added_buffers == vec.added_buffers
        ref_edits = refinement_edits(*trees["reference"])
        vec_edits = refinement_edits(*trees["vectorized"])
        assert ref_edits == vec_edits
        assert ref.worst_skew_after == pytest.approx(
            vec.worst_skew_after, abs=TOLERANCE
        )
        assert ref.after.skew == pytest.approx(vec.after.skew, abs=TOLERANCE)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_worst_corner_never_degrades(self, pdk, unrefined_tree, engine):
        tree = unrefined_tree.copy()
        report = SkewRefiner(
            pdk, force=True, engine=engine, corners=SIGNOFF
        ).refine(tree)
        assert report.worst_skew_after <= report.worst_skew_before + TOLERANCE
        # The zero default budget means nominal skew must not regress at all.
        assert report.after.skew <= report.before.skew + TOLERANCE
        tree.validate()

    def test_corner_report_fields(self, pdk, unrefined_tree):
        tree = unrefined_tree.copy()
        report = SkewRefiner(pdk, force=True, corners=SIGNOFF).refine(tree)
        assert set(report.corner_skews_before) == set(SIGNOFF.names)
        assert set(report.corner_skews_after) == set(SIGNOFF.names)
        assert report.worst_skew_before == max(report.corner_skews_before.values())
        assert report.worst_skew_reduction >= -TOLERANCE
        summary = report.summary()
        assert {"worst_skew_before_ps", "worst_skew_after_ps"} <= set(summary)
        # Nominal-only reports keep the classic shape.
        nominal_report = SkewRefiner(pdk, force=True).refine(unrefined_tree.copy())
        assert nominal_report.corner_skews_before == {}
        assert "worst_skew_before_ps" not in nominal_report.summary()
        assert nominal_report.worst_skew_after == nominal_report.after.skew

    def test_not_triggered_below_corner_trigger(self, pdk, unrefined_tree):
        tree = unrefined_tree.copy()
        report = SkewRefiner(
            pdk, skew_trigger_fraction=0.999, corners=SIGNOFF
        ).refine(tree)
        assert not report.triggered
        assert report.added_buffers == 0
        assert report.corner_skews_before == report.corner_skews_after

    def test_invalid_budget_rejected(self, pdk):
        with pytest.raises(ValueError, match="budget"):
            SkewRefiner(pdk, nominal_skew_budget=-1.0)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_identical_edits_after_random_edit_sequences(self, pdk, seed):
        """Engines agree on refinement decisions after splice/rewire churn.

        The tree first suffers a random recorded edit sequence (splices and
        rewires), then both engines refine copies corner-aware; the
        vectorized engine serves the trial loop from its corner-batched
        incremental path and must make exactly the reference decisions.
        """
        rng = np.random.default_rng(seed)
        tree = random_tree(rng, sinks=int(rng.integers(20, 50)), internals=12)
        for _ in range(int(rng.integers(1, 6))):
            random_edit(tree, rng, pdk)
        reports = {}
        edits = {}
        for engine in ENGINES:
            copy = tree.copy()
            before_names = {node.name for node in copy.nodes()}
            reports[engine] = SkewRefiner(
                pdk,
                force=True,
                engine=engine,
                corners=SIGNOFF,
                nominal_skew_budget=1.0,
            ).refine(copy)
            edits[engine] = refinement_edits(copy, before_names)
        assert edits["reference"] == edits["vectorized"], seed
        assert reports["reference"].added_buffers == reports["vectorized"].added_buffers
        assert reports["reference"].worst_skew_after == pytest.approx(
            reports["vectorized"].worst_skew_after, abs=TOLERANCE
        ), seed


# ------------------------------------------------------- flow / CLI / DSE
class TestCornerAwareFlowSurfaces:
    def test_flow_builds_corner_aware(self, pdk, small_design, small_config):
        config = small_config.with_updates(
            corners=SIGNOFF,
            corner_aware_construction=True,
            nominal_skew_budget=1.0,
        )
        result = DoubleSideCTS(pdk, config).run(small_design)
        result.tree.validate()
        assert set(result.metrics.corner_skews) == set(SIGNOFF.names)
        assert result.insertion.timing_per_corner is not None
        assert result.insertion.worst_skew >= result.insertion.skew - TOLERANCE
        if result.skew_report is not None and result.skew_report.triggered:
            assert set(result.skew_report.corner_skews_after) == set(SIGNOFF.names)

    def test_config_construction_corners_gate(self):
        plain = CtsConfig(corners=SIGNOFF)
        assert plain.construction_corners() is None
        aware = CtsConfig(corners=SIGNOFF, corner_aware_construction=True)
        assert aware.construction_corners() is SIGNOFF
        off = CtsConfig(corner_aware_construction=True)
        assert off.construction_corners() is None

    def test_cli_flag_round_trip(self):
        from repro.cli import CliError, _config_for, build_parser

        args = build_parser().parse_args(
            [
                "run",
                "C4",
                "--corners",
                "tt,ss",
                "--corner-aware-construction",
                "--nominal-skew-budget",
                "1.5",
            ]
        )
        config = _config_for(args)
        assert config.corner_aware_construction
        assert config.nominal_skew_budget == 1.5
        assert config.corners.names == ["tt", "ss"]
        # The flag without --corners is a usage error (typed, so main()
        # can render it as a one-line message and --debug can reraise it).
        bad = build_parser().parse_args(["run", "C4", "--corner-aware-construction"])
        with pytest.raises(CliError, match="--corners"):
            _config_for(bad)
        # So is a nominal-skew budget without corner-aware construction.
        bad = build_parser().parse_args(
            ["run", "C4", "--corners", "tt,ss", "--nominal-skew-budget", "1.0"]
        )
        with pytest.raises(CliError, match="corner-aware"):
            _config_for(bad)

    def test_dse_sweep_runs_corner_aware(self, pdk):
        from repro.dse import DesignSpaceExplorer

        designs = benchmark_suite(scale=0.05, include_combinational=False, only=["C4"])
        config = CtsConfig(
            high_cluster_size=60,
            low_cluster_size=8,
            corners=SIGNOFF,
            corner_aware_construction=True,
        )
        result = DesignSpaceExplorer(pdk, config).explore(
            designs["C4"], fanout_thresholds=[0, 1000]
        )
        assert len(result.points) == 2
        for point in result.points:
            assert set(point.metrics.corner_skews) == set(SIGNOFF.names)
            assert point.objectives[1] == pytest.approx(point.metrics.worst_skew)


# ------------------------------------------------- effectiveness regression
class TestEffectivenessRegression:
    """Corner-aware refinement must beat (or tie) nominal-optimised refinement
    on worst-corner skew across the generated design suite, for both engines,
    without regressing nominal skew past the configured budget."""

    BUDGET = 2.0

    @pytest.fixture(scope="class")
    def suite_trees(self, pdk):
        designs = benchmark_suite(
            scale=0.25, include_combinational=False, only=["C4", "C5"]
        )
        config = CtsConfig(
            high_cluster_size=400,
            low_cluster_size=30,
            seed=7,
            enable_skew_refinement=False,
        )
        return {
            bench_id: DoubleSideCTS(pdk, config).run(design).tree
            for bench_id, design in designs.items()
        }

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("bench_id", ["C4", "C5"])
    def test_corner_aware_beats_nominal_refinement(
        self, pdk, suite_trees, engine, bench_id
    ):
        base = suite_trees[bench_id]
        nominal_tree = base.copy()
        SkewRefiner(pdk, force=True, engine=engine).refine(nominal_tree)
        corner_tree = base.copy()
        report = SkewRefiner(
            pdk,
            force=True,
            engine=engine,
            corners=SIGNOFF,
            nominal_skew_budget=self.BUDGET,
        ).refine(corner_tree)

        signoff = create_engine(pdk, engine, corners=SIGNOFF)
        nominal_opt_worst = signoff.worst_skew(nominal_tree)
        corner_opt_worst = signoff.worst_skew(corner_tree)
        assert corner_opt_worst <= nominal_opt_worst + TOLERANCE, (
            bench_id,
            engine,
            corner_opt_worst,
            nominal_opt_worst,
        )
        # Worst-corner skew never degrades past the unrefined tree either.
        assert corner_opt_worst <= report.worst_skew_before + TOLERANCE
        # Nominal skew regression is bounded by the configured budget.
        assert report.after.skew <= report.before.skew + self.BUDGET + TOLERANCE

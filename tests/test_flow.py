"""Tests for the end-to-end flows (DoubleSideCTS / SingleSideCTS) and config."""

import pytest

from repro.flow import CtsConfig, DoubleSideCTS
from repro.insertion.moes import MoesWeights
from repro.timing import ElmoreTimingEngine


class TestCtsConfig:
    def test_paper_defaults(self):
        config = CtsConfig()
        assert config.high_cluster_size == 3000
        assert config.low_cluster_size == 30
        assert config.skew_trigger_fraction == pytest.approx(0.23)
        assert config.max_refined_endpoints == 33
        assert config.moes_weights == MoesWeights(1.0, 10.0, 1.0)
        assert config.fanout_threshold is None

    def test_with_updates_returns_new_config(self):
        config = CtsConfig()
        updated = config.with_updates(low_cluster_size=10)
        assert updated.low_cluster_size == 10
        assert config.low_cluster_size == 30

    def test_single_side_clears_fanout_threshold(self):
        config = CtsConfig(fanout_threshold=100)
        assert config.single_side().fanout_threshold is None


class TestDoubleSideCTS:
    def test_requires_backside_pdk(self, front_pdk):
        with pytest.raises(ValueError):
            DoubleSideCTS(front_pdk)

    def test_run_produces_valid_tree_and_metrics(self, ours_result, small_design):
        result = ours_result
        result.tree.validate()
        assert result.metrics.sinks == small_design.flip_flop_count
        assert result.metrics.latency > 0
        assert result.metrics.buffers == result.tree.buffer_count()
        assert result.metrics.ntsvs == result.tree.ntsv_count()
        assert result.metrics.wirelength == pytest.approx(result.tree.wirelength())
        assert result.runtime > 0

    def test_all_sinks_reached(self, ours_result, small_design):
        sink_names = {n.name for n in ours_result.tree.sinks()}
        expected = {ff.name for ff in small_design.flip_flops()}
        assert sink_names == expected

    def test_metrics_match_independent_evaluation(self, pdk, ours_result):
        timing = ElmoreTimingEngine(pdk).analyze(ours_result.tree, with_slew=False)
        assert ours_result.metrics.latency == pytest.approx(timing.latency)
        assert ours_result.metrics.skew == pytest.approx(timing.skew)

    def test_accepts_clock_net_input(self, pdk, small_design, small_config):
        clock_net = small_design.require_clock_net()
        result = DoubleSideCTS(pdk, small_config).run(clock_net, design_name="by_net")
        assert result.design_name == "by_net"
        assert result.metrics.sinks == clock_net.sink_count

    def test_rejects_unknown_input_type(self, pdk, small_config):
        with pytest.raises(TypeError):
            DoubleSideCTS(pdk, small_config).run("not a design")

    def test_deterministic_across_runs(self, pdk, small_design, small_config):
        a = DoubleSideCTS(pdk, small_config).run(small_design)
        b = DoubleSideCTS(pdk, small_config).run(small_design)
        assert a.metrics.latency == pytest.approx(b.metrics.latency)
        assert a.metrics.buffers == b.metrics.buffers
        assert a.metrics.ntsvs == b.metrics.ntsvs

    def test_disable_skew_refinement(self, pdk, small_design, small_config):
        config = small_config.with_updates(enable_skew_refinement=False)
        result = DoubleSideCTS(pdk, config).run(small_design)
        assert result.skew_report is None

    def test_fanout_threshold_zero_gives_single_side_solution(
        self, pdk, small_design, small_config
    ):
        config = small_config.with_updates(fanout_threshold=0)
        result = DoubleSideCTS(pdk, config).run(small_design)
        assert result.metrics.ntsvs == 0

    def test_summary_row(self, ours_result):
        row = ours_result.summary()
        assert row["flow"] == "ours"
        assert row["latency_ps"] > 0


class TestSingleSideCTS:
    def test_runs_on_backside_pdk_but_uses_front_only(self, single_side_result):
        assert single_side_result.metrics.ntsvs == 0
        assert single_side_result.metrics.back_wirelength == 0.0
        single_side_result.tree.validate()

    def test_flow_name(self, single_side_result):
        assert single_side_result.flow_name == "our_buffered_tree"

    def test_double_side_latency_beats_single_side(
        self, ours_result, single_side_result
    ):
        """The headline claim: back-side resources reduce latency."""
        assert ours_result.metrics.latency <= single_side_result.metrics.latency + 1e-6

    def test_same_routing_wirelength(self, ours_result, single_side_result):
        """Both flows share the clock topology, hence the same wirelength

        (the paper's Table III footnote: Clk WL is identical for Ours and the
        single-side tree built by our framework)."""
        assert ours_result.metrics.front_wirelength + ours_result.metrics.back_wirelength == pytest.approx(
            single_side_result.metrics.wirelength, rel=1e-6
        )

"""The fault-tolerant parallel tier: every failure mode must recover.

Parallel construction is bit-identical to serial by contract, which makes
every worker failure perfectly recoverable: the affected task can simply be
recomputed, first by retrying on the pool, finally inline on the main
process (degrade-to-serial).  These tests drive the injector matrix of
:mod:`repro.guard.faults` (crash, hang-past-timeout, corrupt result,
crash-on-pickle, exit-mid-task, broken pool) through every pool consumer
(routing shards, DP subtrees, the DSE sweep, the benchmark flow cache)
under every policy (retry, degrade, strict) and assert:

* recovery is byte-identical to an all-serial run,
* :class:`~repro.parallel.ParallelDiagnostic` rows record stage, task,
  attempt count, and cause,
* ``strict`` raises a typed :class:`~repro.parallel.ParallelError` instead
  of degrading.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow.config import CtsConfig
from repro.guard.faults import (
    WORKER_FAULTS_ENV_VAR,
    WorkerFault,
    arm_worker_faults,
    parse_worker_faults,
)
from repro.insertion.concurrent import InsertionConfig
from repro.insertion.dp_tree import build_dp_tree
from repro.insertion.frontier import VectorizedInsertionDp
from repro.parallel import (
    PARALLEL_POLICY_ENV_VAR,
    WORKERS_ENV_VAR,
    ParallelDiagnostic,
    ParallelError,
    ParallelPolicy,
    resolve_parallel_policy,
    resolve_workers,
    run_tasks,
    shared_pool,
    shutdown_pool,
)
from repro.routing.hierarchical import HierarchicalClockRouter
from repro.tech.pdk import asap7_backside
from tests.conftest import make_random_clock_net
from tests.harness import clock_tree_fingerprint, run_flow
from tests.test_parallel_construction import FRONTIER_FIELDS, assert_designs_bit_equal

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

RETRY = ParallelPolicy(attempts=2, backoff_s=0.0)
DEGRADE = ParallelPolicy(attempts=2, backoff_s=0.0)
STRICT = ParallelPolicy(attempts=2, backoff_s=0.0, mode="strict")


@pytest.fixture(autouse=True)
def _clean_parallel_env(monkeypatch):
    """Isolate from the CI fault/policy env vars (the faults matrix job)."""
    monkeypatch.delenv(WORKER_FAULTS_ENV_VAR, raising=False)
    monkeypatch.delenv(PARALLEL_POLICY_ENV_VAR, raising=False)


@pytest.fixture(scope="module")
def pdk():
    return asap7_backside()


@pytest.fixture(scope="module")
def multi_region_net():
    return make_random_clock_net(count=140, extent=320.0, seed=3)


def _route(pdk, clock_net, workers, policy=None):
    config = CtsConfig(
        high_cluster_size=40,
        low_cluster_size=6,
        seed=7,
        workers=workers,
        parallel_policy=policy,
    )
    return HierarchicalClockRouter(pdk, config=config).route_design(clock_net)


@pytest.fixture(scope="module")
def serial_routing(pdk, multi_region_net):
    return _route(pdk, multi_region_net, 1)


# Module-level so pool workers can resolve them by reference.
def _double(payload):
    return payload * 2


def _serial_marker(payload):
    return ("inline", payload)


def _reject_everything(result, payload):
    raise RuntimeError("injected validate failure")


# ---------------------------------------------------------------- the policy
class TestParallelPolicy:
    def test_defaults(self):
        policy = ParallelPolicy()
        assert policy.attempts == 2
        assert policy.timeout_s is None
        assert policy.mode == "degrade"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"attempts": True},
            {"attempts": 1.5},
            {"timeout_s": 0.0},
            {"timeout_s": -1.0},
            {"backoff_s": -0.1},
            {"backoff_factor": 0.5},
            {"mode": "bogus"},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            ParallelPolicy(**kwargs)

    def test_parse_full_spec(self):
        policy = ParallelPolicy.parse(
            "attempts=3, timeout_s=10, backoff_s=0.1, backoff_factor=3, mode=strict"
        )
        assert policy == ParallelPolicy(
            attempts=3, timeout_s=10.0, backoff_s=0.1, backoff_factor=3.0, mode="strict"
        )

    def test_parse_bare_mode_and_none_timeout(self):
        assert ParallelPolicy.parse("strict").mode == "strict"
        assert ParallelPolicy.parse("degrade").mode == "degrade"
        assert ParallelPolicy.parse("timeout_s=none").timeout_s is None

    @pytest.mark.parametrize("spec", ["bogus", "attempts", "retries=3", "attempts=x"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            ParallelPolicy.parse(spec)

    def test_with_updates(self):
        assert ParallelPolicy().with_updates(mode="strict").mode == "strict"
        with pytest.raises(ValueError):
            ParallelPolicy().with_updates(attempts=0)

    def test_resolution_precedence(self, monkeypatch):
        assert resolve_parallel_policy() == ParallelPolicy()
        monkeypatch.setenv(PARALLEL_POLICY_ENV_VAR, "attempts=4,mode=strict")
        assert resolve_parallel_policy().attempts == 4
        explicit = ParallelPolicy(attempts=7)
        assert resolve_parallel_policy(explicit) is explicit
        assert resolve_parallel_policy("attempts=9").attempts == 9
        monkeypatch.setenv(PARALLEL_POLICY_ENV_VAR, "")
        assert resolve_parallel_policy() == ParallelPolicy(), "empty means unset"

    def test_config_resolved_parallel_policy(self, monkeypatch):
        assert CtsConfig().resolved_parallel_policy() == ParallelPolicy()
        monkeypatch.setenv(PARALLEL_POLICY_ENV_VAR, "strict")
        assert CtsConfig().resolved_parallel_policy().mode == "strict"
        explicit = CtsConfig(parallel_policy=ParallelPolicy(attempts=5))
        assert explicit.resolved_parallel_policy().attempts == 5
        assert explicit.resolved_parallel_policy().mode == "degrade"
        spec = CtsConfig(parallel_policy="attempts=6")
        assert spec.resolved_parallel_policy().attempts == 6


# ------------------------------------------------------------- workers knob
class TestResolveWorkersRejections:
    @pytest.mark.parametrize("value", [0, -1, -8])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="at least 1"):
            resolve_workers(value)

    @pytest.mark.parametrize("value", [2.5, 2.0, "4", True, False])
    def test_rejects_non_integers(self, value):
        # Floats were previously silently truncated and bools silently
        # coerced; both are caller bugs and must be loud.
        with pytest.raises(ValueError, match="at least 1"):
            resolve_workers(value)

    def test_rejects_unparsable_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "two")
        with pytest.raises(ValueError, match="at least 1"):
            resolve_workers(None)
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        with pytest.raises(ValueError, match="at least 1"):
            resolve_workers(None)


# ------------------------------------------------------------ pool lifecycle
class TestSharedPoolLifecycle:
    def test_pool_recreatable_after_shutdown(self):
        # The pre-fix code registered its atexit hook once at import, so a
        # pool created after an earlier teardown leaked at interpreter
        # exit; re-creation must now be first-class.
        pool = shared_pool(2)
        shutdown_pool()
        recreated = shared_pool(2)
        assert recreated is not pool
        assert recreated.submit(_double, 21).result() == 42
        shutdown_pool()

    def test_run_tasks_after_shutdown(self):
        shutdown_pool()
        assert run_tasks("teststage", _double, [1, 2, 3], 2, policy=RETRY) == [2, 4, 6]

    def test_shutdown_idempotent(self):
        shutdown_pool()
        shutdown_pool()


# ------------------------------------------------------- run_tasks mechanics
class TestRunTasks:
    def test_empty_and_serial_paths(self):
        assert run_tasks("teststage", _double, [], 8) == []
        # workers=1 is exactly the serial flow: no pool, no injected faults.
        with arm_worker_faults(WorkerFault(stage="teststage", fail_attempts=99)):
            sink: list = []
            assert run_tasks(
                "teststage", _double, [1, 2], 1, diagnostics=sink
            ) == [2, 4]
            assert sink == []

    def test_healthy_parallel_run_records_nothing(self):
        sink: list = []
        results = run_tasks(
            "teststage", _double, list(range(6)), 3, policy=RETRY, diagnostics=sink
        )
        assert results == [0, 2, 4, 6, 8, 10]
        assert sink == []

    @pytest.mark.parametrize("kind", ["crash", "unpicklable", "exit", "broken_pool"])
    def test_retry_recovers_each_kind(self, kind):
        sink: list = []
        fault = WorkerFault(stage="teststage", kind=kind, fail_attempts=1)
        with arm_worker_faults(fault):
            results = run_tasks(
                "teststage",
                _double,
                [1, 2, 3],
                2,
                policy=RETRY,
                diagnostics=sink,
            )
        assert results == [2, 4, 6]
        assert sink, f"{kind} recovery must be recorded"
        for diag in sink:
            assert diag.stage == "teststage"
            assert diag.action == "retried"
            assert diag.attempts == 2
            assert diag.cause

    def test_retry_recovers_hang_past_timeout(self):
        sink: list = []
        # timeout_s covers queue wait + worker spin-up, and the retry lands
        # on a freshly respawned pool whose forkserver workers import numpy
        # and repro from scratch — so the timeout must be generous enough
        # for a cold worker while the hang stays far above it.
        policy = ParallelPolicy(attempts=2, timeout_s=8.0, backoff_s=0.0)
        fault = WorkerFault(
            stage="teststage", kind="hang", fail_attempts=1, hang_s=25.0
        )
        with arm_worker_faults(fault):
            results = run_tasks(
                "teststage", _double, [1, 2], 2, policy=policy, diagnostics=sink
            )
        assert results == [2, 4]
        assert [d.action for d in sink] == ["retried", "retried"]
        assert all("TimeoutError" in d.cause for d in sink)

    @pytest.mark.parametrize("kind", ["crash", "unpicklable", "exit", "broken_pool"])
    def test_degrade_to_serial_each_kind(self, kind):
        sink: list = []
        fault = WorkerFault(stage="teststage", kind=kind, fail_attempts=99)
        with arm_worker_faults(fault):
            results = run_tasks(
                "teststage",
                _double,
                [1, 2, 3],
                2,
                policy=DEGRADE,
                diagnostics=sink,
            )
        assert results == [2, 4, 6]
        assert len(sink) == 3
        for i, diag in enumerate(sink):
            assert diag.stage == "teststage"
            assert diag.task == f"task {i}"
            assert diag.action == "degraded-to-serial"
            assert diag.attempts == 2
            assert diag.cause

    def test_degrade_hang_uses_inline_fallback(self):
        sink: list = []
        policy = ParallelPolicy(attempts=1, timeout_s=0.4, backoff_s=0.0)
        fault = WorkerFault(
            stage="teststage", kind="hang", fail_attempts=99, hang_s=2.0
        )
        with arm_worker_faults(fault):
            results = run_tasks(
                "teststage", _double, [5, 6], 2, policy=policy, diagnostics=sink
            )
        assert results == [10, 12]
        assert [d.action for d in sink] == ["degraded-to-serial"] * 2

    def test_strict_raises_parallel_error(self):
        fault = WorkerFault(stage="teststage", kind="crash", fail_attempts=99)
        with arm_worker_faults(fault):
            with pytest.raises(ParallelError, match="after 2 attempt"):
                run_tasks("teststage", _double, [1, 2, 3], 2, policy=STRICT)
        # A single payload runs inline (no pool), so the fault never fires.
        with arm_worker_faults(fault):
            assert run_tasks("teststage", _double, [1], 2, policy=STRICT) == [2]
        with arm_worker_faults(fault):
            with pytest.raises(ParallelError) as excinfo:
                run_tasks("teststage", _double, [1, 2], 2, policy=STRICT)
        assert excinfo.value.stage == "teststage"
        assert excinfo.value.task == "task 0"
        assert excinfo.value.attempts == 2
        assert "injected worker crash" in excinfo.value.cause

    def test_task_index_targets_one_task(self):
        sink: list = []
        fault = WorkerFault(
            stage="teststage", kind="crash", fail_attempts=99, task_index=1
        )
        with arm_worker_faults(fault):
            results = run_tasks(
                "teststage",
                _double,
                [1, 2, 3],
                2,
                policy=DEGRADE,
                diagnostics=sink,
                label=lambda i, payload: f"item {payload}",
            )
        assert results == [2, 4, 6]
        assert [d.task for d in sink] == ["item 2"]

    def test_degrade_uses_serial_fn(self):
        fault = WorkerFault(stage="teststage", kind="crash", fail_attempts=99)
        with arm_worker_faults(fault):
            results = run_tasks(
                "teststage",
                _double,
                [7],
                2,
                policy=DEGRADE,
                serial_fn=_serial_marker,
            )
        # Single payload -> inline; with two the pool path degrades.
        assert results == [("inline", 7)]
        with arm_worker_faults(fault):
            results = run_tasks(
                "teststage",
                _double,
                [7, 8],
                2,
                policy=DEGRADE,
                serial_fn=_serial_marker,
            )
        assert results == [("inline", 7), ("inline", 8)]

    def test_validate_failure_counts_as_attempt(self):
        # A validate rejection on every pool result and every serial
        # recomputation leaves nothing to fall back to: ParallelError even
        # under degrade.
        with pytest.raises(ParallelError, match="serial recomputation"):
            run_tasks(
                "teststage",
                _double,
                [1, 2],
                2,
                policy=DEGRADE,
                validate=_reject_everything,
            )

    def test_faults_of_other_stages_do_not_fire(self):
        sink: list = []
        with arm_worker_faults(WorkerFault(stage="routing", fail_attempts=99)):
            results = run_tasks(
                "teststage", _double, [1, 2], 2, policy=RETRY, diagnostics=sink
            )
        assert results == [2, 4]
        assert sink == []


# --------------------------------------------------------------- worker faults
class TestWorkerFaultSpec:
    def test_rejects_bad_kind_and_attempts(self):
        with pytest.raises(ValueError, match="unknown worker-fault kind"):
            WorkerFault(kind="meltdown")
        with pytest.raises(ValueError, match="fail_attempts"):
            WorkerFault(fail_attempts=0)

    def test_parse_specs(self):
        faults = parse_worker_faults("*:crash:1, routing:corrupt:99:2")
        assert faults[0] == WorkerFault(stage="*", kind="crash", fail_attempts=1)
        assert faults[1] == WorkerFault(
            stage="routing", kind="corrupt", fail_attempts=99, task_index=2
        )
        assert parse_worker_faults("a:hang;b:exit") == (
            WorkerFault(stage="a", kind="hang"),
            WorkerFault(stage="b", kind="exit"),
        )
        assert parse_worker_faults("") == ()

    @pytest.mark.parametrize("spec", ["crash", "a:b:c:d:e", "a:crash:x"])
    def test_parse_rejects_bad_entries(self, spec):
        with pytest.raises(ValueError):
            parse_worker_faults(spec)

    def test_fires_matrix(self):
        fault = WorkerFault(stage="routing", kind="crash", fail_attempts=2)
        assert fault.fires("routing", 0, 1)
        assert fault.fires("routing", 5, 2)
        assert not fault.fires("routing", 0, 3)
        assert not fault.fires("insertion", 0, 1)
        anywhere = WorkerFault(stage="*", kind="crash", task_index=3)
        assert anywhere.fires("dse", 3, 1)
        assert not anywhere.fires("dse", 2, 1)


# ------------------------------------------------------------ routing shards
class TestRoutingFaults:
    @pytest.mark.parametrize("kind", ["crash", "corrupt", "unpicklable", "exit"])
    def test_retry_bit_identical(self, pdk, multi_region_net, serial_routing, kind):
        diagnostics_seen: list = []
        fault = WorkerFault(stage="routing", kind=kind, fail_attempts=1)
        with arm_worker_faults(fault):
            routed = _route(pdk, multi_region_net, 4, policy=RETRY)
        assert_designs_bit_equal(serial_routing.design, routed.design)
        assert routed.parallel_tasks >= 2
        diagnostics_seen = routed.parallel_diagnostics
        assert diagnostics_seen
        for diag in diagnostics_seen:
            assert diag.stage == "routing"
            assert diag.task.startswith("region ")
            assert diag.action == "retried"
            assert diag.attempts == 2

    @pytest.mark.parametrize("kind", ["crash", "corrupt"])
    def test_degrade_bit_identical(self, pdk, multi_region_net, serial_routing, kind):
        fault = WorkerFault(stage="routing", kind=kind, fail_attempts=99)
        with arm_worker_faults(fault):
            routed = _route(pdk, multi_region_net, 4, policy=DEGRADE)
        assert_designs_bit_equal(serial_routing.design, routed.design)
        assert routed.tap_names == serial_routing.tap_names
        assert routed.trunk_wirelength == serial_routing.trunk_wirelength
        assert routed.parallel_diagnostics
        for diag in routed.parallel_diagnostics:
            assert diag.action == "degraded-to-serial"
            assert diag.attempts == 2
            assert diag.cause

    def test_hang_recovers_bit_identical(self, pdk, multi_region_net, serial_routing):
        policy = ParallelPolicy(attempts=2, timeout_s=0.75, backoff_s=0.0)
        fault = WorkerFault(
            stage="routing", kind="hang", fail_attempts=1, hang_s=2.5
        )
        with arm_worker_faults(fault):
            routed = _route(pdk, multi_region_net, 4, policy=policy)
        assert_designs_bit_equal(serial_routing.design, routed.design)
        assert all(
            "TimeoutError" in d.cause for d in routed.parallel_diagnostics
        )

    def test_strict_raises(self, pdk, multi_region_net):
        fault = WorkerFault(stage="routing", kind="crash", fail_attempts=99)
        with arm_worker_faults(fault):
            with pytest.raises(ParallelError) as excinfo:
                _route(pdk, multi_region_net, 4, policy=STRICT)
        assert excinfo.value.stage == "routing"
        assert excinfo.value.task.startswith("region ")
        assert "injected worker crash" in excinfo.value.cause

    def test_corrupt_serial_run_unaffected(self, pdk, multi_region_net, serial_routing):
        # workers=1 never goes near the pool, so armed faults must not fire.
        fault = WorkerFault(stage="routing", kind="crash", fail_attempts=99)
        with arm_worker_faults(fault):
            routed = _route(pdk, multi_region_net, 1)
        assert_designs_bit_equal(serial_routing.design, routed.design)
        assert routed.parallel_diagnostics == []


# -------------------------------------------------------------- DP subtrees
class TestInsertionFaults:
    @pytest.fixture(scope="class")
    def dp_setup(self, pdk):
        clock_net = make_random_clock_net(count=300, extent=600.0, seed=5)
        routed = _route(pdk, clock_net, 1)
        dp_tree = build_dp_tree(routed.design, pdk)
        serial_dp = VectorizedInsertionDp(pdk, InsertionConfig(), [pdk])
        serial_frontiers, serial_root = serial_dp.run(dp_tree)
        return dp_tree, serial_frontiers, serial_root

    def _assert_frontiers_equal(self, a_frontiers, a_root, b_frontiers, b_root):
        assert set(a_frontiers) == set(b_frontiers)
        for index in a_frontiers:
            for name in FRONTIER_FIELDS:
                assert np.array_equal(
                    getattr(a_frontiers[index], name),
                    getattr(b_frontiers[index], name),
                ), (index, name)
        for name in FRONTIER_FIELDS:
            assert np.array_equal(getattr(a_root, name), getattr(b_root, name)), name

    @pytest.mark.parametrize(
        "kind,fail_attempts,action",
        [
            ("crash", 1, "retried"),
            ("corrupt", 1, "retried"),
            ("corrupt", 99, "degraded-to-serial"),
        ],
    )
    def test_faults_recover_bit_identical(self, pdk, dp_setup, kind, fail_attempts, action):
        dp_tree, serial_frontiers, serial_root = dp_setup
        dp = VectorizedInsertionDp(pdk, InsertionConfig(), [pdk])
        fault = WorkerFault(
            stage="insertion", kind=kind, fail_attempts=fail_attempts
        )
        with arm_worker_faults(fault):
            frontiers, root = dp.run(dp_tree, workers=4, parallel_policy=DEGRADE)
        self._assert_frontiers_equal(
            serial_frontiers, serial_root, frontiers, root
        )
        assert dp.parallel_tasks >= 2
        assert dp.parallel_diagnostics
        for diag in dp.parallel_diagnostics:
            assert diag.stage == "insertion"
            assert diag.task.startswith("subtree ")
            assert diag.action == action

    def test_strict_raises(self, pdk, dp_setup):
        dp_tree, _, _ = dp_setup
        dp = VectorizedInsertionDp(pdk, InsertionConfig(), [pdk])
        fault = WorkerFault(stage="insertion", kind="crash", fail_attempts=99)
        with arm_worker_faults(fault):
            with pytest.raises(ParallelError) as excinfo:
                dp.run(dp_tree, workers=4, parallel_policy=STRICT)
        assert excinfo.value.stage == "insertion"


# --------------------------------------------------------------- environment
class TestEnvArmedFaults:
    def test_env_spec_recovers_routing(
        self, pdk, multi_region_net, serial_routing, monkeypatch
    ):
        # The CI faults matrix job sets exactly this: every first pool
        # attempt crashes, the default policy's retry recovers everything.
        monkeypatch.setenv(WORKER_FAULTS_ENV_VAR, "*:crash:1")
        routed = _route(pdk, multi_region_net, 4)
        assert_designs_bit_equal(serial_routing.design, routed.design)
        assert routed.parallel_diagnostics
        assert all(d.action == "retried" for d in routed.parallel_diagnostics)

    def test_env_policy_spec_applies(self, pdk, multi_region_net, monkeypatch):
        monkeypatch.setenv(WORKER_FAULTS_ENV_VAR, "routing:crash:99")
        monkeypatch.setenv(PARALLEL_POLICY_ENV_VAR, "attempts=1,mode=strict")
        with pytest.raises(ParallelError, match="after 1 attempt"):
            _route(pdk, multi_region_net, 4)


# ----------------------------------------------------------------- the flow
class TestFlowResult:
    def test_flow_collects_parallel_diagnostics(self, pdk, multi_region_net):
        combo = {"dme": "vectorized", "dp": "vectorized", "timing": "vectorized"}
        serial = run_flow(pdk, multi_region_net, combo, representation="ir")
        assert serial.parallel_tasks == 0
        fault = WorkerFault(stage="*", kind="crash", fail_attempts=1)
        with arm_worker_faults(fault):
            faulted = run_flow(
                pdk,
                multi_region_net,
                combo,
                representation="ir",
                workers=2,
                parallel_policy=RETRY,
            )
        assert clock_tree_fingerprint(serial.tree) == clock_tree_fingerprint(
            faulted.tree
        )
        assert faulted.parallel_tasks >= 2
        assert faulted.parallel_retried >= 1
        assert faulted.parallel_degraded == 0
        assert faulted.parallel_summary() == (
            f"parallel: {faulted.parallel_tasks} tasks, "
            f"{faulted.parallel_retried} retried, 0 degraded-to-serial"
        )

    def test_summary_counts(self):
        from repro.flow.cts import CtsRunResult

        result = CtsRunResult(
            design_name="d",
            flow_name="ours",
            routing=None,
            insertion=None,
            skew_report=None,
            metrics=None,
            runtime=0.0,
            parallel_tasks=5,
            parallel_diagnostics=[
                ParallelDiagnostic("routing", "region 1", 2, "retried", "X"),
                ParallelDiagnostic(
                    "insertion", "subtree 0", 2, "degraded-to-serial", "Y"
                ),
                ParallelDiagnostic("routing", "region 2", 3, "retried", "Z"),
            ],
        )
        assert result.parallel_retried == 2
        assert result.parallel_degraded == 1
        assert result.parallel_summary() == (
            "parallel: 5 tasks, 2 retried, 1 degraded-to-serial"
        )


# -------------------------------------------------------------------- DSE
class TestDseFaults:
    @pytest.fixture(scope="class")
    def dse_setup(self, pdk):
        from repro.dse import DesignSpaceExplorer

        clock_net = make_random_clock_net(count=60, extent=150.0, seed=2)
        config = CtsConfig(high_cluster_size=40, low_cluster_size=6, seed=7)
        explorer = DesignSpaceExplorer(pdk, config)
        serial = explorer.explore(clock_net, [20, 400], workers=1)
        return explorer, clock_net, serial

    @staticmethod
    def _point_rows(result):
        return [
            (
                p.parameter,
                p.metrics.latency,
                p.metrics.skew,
                p.metrics.buffers,
                p.metrics.ntsvs,
            )
            for p in result.points
        ]

    @pytest.mark.parametrize(
        "fail_attempts,action", [(1, "retried"), (99, "degraded-to-serial")]
    )
    def test_worker_faults_recover_sweep(self, dse_setup, fail_attempts, action):
        explorer, clock_net, serial = dse_setup
        fault = WorkerFault(
            stage="dse", kind="crash", fail_attempts=fail_attempts
        )
        with arm_worker_faults(fault):
            faulted = explorer.explore(clock_net, [20, 400], workers=2)
        assert self._point_rows(faulted) == self._point_rows(serial)
        assert not faulted.failures
        assert faulted.parallel_diagnostics
        assert all(d.stage == "dse" for d in faulted.parallel_diagnostics)
        assert all(d.action == action for d in faulted.parallel_diagnostics)
        assert all(
            d.task.startswith("threshold ")
            for d in faulted.parallel_diagnostics
        )


# --------------------------------------------------------------- flow cache
class TestFlowCacheFaults:
    @pytest.fixture(scope="class")
    def cache_setup(self, pdk):
        from repro.designs import benchmark_suite

        designs = benchmark_suite(
            scale=0.05, include_combinational=False, only=["C4"]
        )
        config = CtsConfig(high_cluster_size=60, low_cluster_size=8)
        return designs, config

    def test_warm_recovers_and_matches_lazy(self, pdk, cache_setup):
        from benchmarks.flow_cache import FlowCache

        designs, config = cache_setup
        # A late warm after the shared pool was torn down must re-create it.
        shutdown_pool()
        cache = FlowCache(pdk=pdk, designs=designs, config=config)
        fault = WorkerFault(stage="flow_cache", kind="crash", fail_attempts=1)
        with arm_worker_faults(fault):
            computed = cache.warm(flows=("ours_moes", "single"), workers=2)
        assert computed == 2
        assert len(cache.parallel_diagnostics) == 2
        assert all(d.action == "retried" for d in cache.parallel_diagnostics)
        assert all(d.stage == "flow_cache" for d in cache.parallel_diagnostics)

        lazy = FlowCache(pdk=pdk, designs=designs, config=config)
        warm_row = cache.ours("C4").metrics.as_row()
        lazy_row = lazy.ours("C4").metrics.as_row()
        warm_row.pop("runtime_s", None)
        lazy_row.pop("runtime_s", None)
        assert warm_row == lazy_row

    def test_warm_degrades_to_inline(self, pdk, cache_setup):
        from benchmarks.flow_cache import FlowCache

        designs, config = cache_setup
        cache = FlowCache(pdk=pdk, designs=designs, config=config)
        fault = WorkerFault(stage="flow_cache", kind="crash", fail_attempts=99)
        with arm_worker_faults(fault):
            computed = cache.warm(flows=("ours_moes", "single"), workers=2)
        assert computed == 2
        assert all(
            d.action == "degraded-to-serial" for d in cache.parallel_diagnostics
        )
        assert cache.ours("C4").metrics is not None


# --------------------------------------------------------------------- CLI
class TestCli:
    def test_strict_parallel_flag(self):
        from repro.cli import _config_for, build_parser

        parser = build_parser()
        args = parser.parse_args(["run", "C1", "--strict-parallel"])
        config = _config_for(args)
        assert config.parallel_policy.mode == "strict"
        assert config.resolved_parallel_policy().mode == "strict"
        args = parser.parse_args(["run", "C1"])
        assert _config_for(args).parallel_policy is None
        args = parser.parse_args(["dse", "C1", "--strict-parallel"])
        assert _config_for(args).parallel_policy.mode == "strict"

    def test_strict_parallel_keeps_other_env_knobs(self, monkeypatch):
        from repro.cli import _config_for, build_parser

        monkeypatch.setenv(PARALLEL_POLICY_ENV_VAR, "attempts=4")
        args = build_parser().parse_args(["run", "C1", "--strict-parallel"])
        policy = _config_for(args).parallel_policy
        assert policy.mode == "strict"
        assert policy.attempts == 4, "--strict-parallel only flips the mode"
